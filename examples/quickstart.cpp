// TVDP quickstart: create a platform, ingest a few geo-tagged images,
// and run each of the five query families plus a hybrid query — entirely
// through the public API surface.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "geo/fov.h"
#include "platform/tvdp.h"
#include "query/query.h"

using namespace tvdp;

int main() {
  // 1. Create the platform (embedded catalog + indexes).
  auto created = platform::Tvdp::Create();
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  platform::Tvdp tvdp = std::move(created).value();

  // 2. Register a classification task and its labels.
  auto cls = tvdp.RegisterClassification(
      "street_cleanliness",
      {"clean", "bulky_item", "illegal_dumping", "encampment",
       "overgrown_vegetation"});
  if (!cls.ok()) return 1;

  // 3. Ingest three images with FOV metadata, keywords and timestamps.
  struct Seed {
    double lat, lon, direction;
    const char* label;
    std::vector<std::string> keywords;
  };
  std::vector<Seed> seeds = {
      {34.0500, -118.2500, 90, "encampment", {"tent", "sidewalk"}},
      {34.0520, -118.2480, 180, "clean", {"street", "clean"}},
      {34.0610, -118.2350, 270, "illegal_dumping", {"trash", "bags"}},
  };
  std::vector<int64_t> ids;
  for (size_t i = 0; i < seeds.size(); ++i) {
    platform::ImageRecord rec;
    rec.uri = "quickstart://img" + std::to_string(i);
    rec.location = geo::GeoPoint{seeds[i].lat, seeds[i].lon};
    rec.fov = *geo::FieldOfView::Make(rec.location, seeds[i].direction, 60,
                                      120);
    rec.captured_at = 1546300800 + static_cast<Timestamp>(i) * 3600;
    rec.keywords = seeds[i].keywords;
    rec.source = "quickstart";
    auto id = tvdp.IngestImage(rec);
    if (!id.ok()) return 1;
    ids.push_back(*id);

    // Attach a manual annotation and a small feature vector.
    platform::AnnotationRecord ann;
    ann.classification = "street_cleanliness";
    ann.label = seeds[i].label;
    ann.confidence = 0.95;
    if (!tvdp.AnnotateImage(*id, ann).ok()) return 1;
    ml::FeatureVector feature(8, 0.1);
    feature[i % 8] = 1.0;
    if (!tvdp.StoreFeature(*id, "cnn", feature).ok()) return 1;
  }
  std::printf("ingested %zu images\n", ids.size());

  // 4. Spatial query: everything within 1 km of downtown.
  auto nearby = tvdp.query().SpatialRange(
      geo::BoundingBox::FromCenterRadius({34.051, -118.249}, 1000));
  std::printf("spatial range      -> %zu hits\n", nearby->size());

  // 5. Visual query: top-2 most similar to image 0's feature.
  auto feature = tvdp.GetFeature(ids[0], "cnn");
  auto similar = tvdp.query().VisualTopK("cnn", *feature, 2);
  std::printf("visual top-2       -> first hit id=%lld (distance %.3f)\n",
              static_cast<long long>((*similar)[0].image_id),
              (*similar)[0].visual_distance);

  // 6. Categorical query: all encampment images.
  query::CategoricalPredicate cat;
  cat.classification = "street_cleanliness";
  cat.label = "encampment";
  auto tents = tvdp.query().Categorical(cat);
  std::printf("categorical        -> %zu encampment images\n", tents->size());

  // 7. Textual query.
  query::TextualPredicate text;
  text.keywords = {"tent"};
  auto tagged = tvdp.query().Textual(text);
  std::printf("textual 'tent'     -> %zu hits\n", tagged->size());

  // 8. Temporal query: first two hours.
  auto recent = tvdp.query().Temporal(1546300800, 1546300800 + 7199);
  std::printf("temporal           -> %zu hits\n", recent->size());

  // 9. Hybrid query: spatial AND categorical, planner-chosen order.
  query::HybridQuery hybrid;
  query::SpatialPredicate sp;
  sp.kind = query::SpatialPredicate::Kind::kRange;
  sp.range = geo::BoundingBox::FromCenterRadius({34.051, -118.249}, 1000);
  hybrid.spatial = sp;
  hybrid.categorical = cat;
  auto hits = tvdp.query().Execute(hybrid);
  std::printf("hybrid             -> %zu hits, plan: %s\n", hits->size(),
              tvdp.query().last_plan().c_str());

  // 10. Durable mode: the same facade over a crash-safe WAL + snapshot
  // store — reopening recovers everything committed.
  const std::string db = "/tmp/tvdp_quickstart_db";
  std::remove((db + ".snapshot").c_str());  // fresh run each invocation
  std::remove((db + ".wal").c_str());
  {
    auto durable = platform::Tvdp::Open(db);
    if (!durable.ok()) return 1;
    platform::ImageRecord rec;
    rec.uri = "quickstart://durable";
    rec.location = geo::GeoPoint{34.0553, -118.2430};
    rec.captured_at = 1546310000;
    if (!durable->IngestImage(rec).ok()) return 1;
  }  // "crash": the platform object goes away without any explicit save
  auto reopened = platform::Tvdp::Open(db);
  if (!reopened.ok()) return 1;
  std::printf("durable reopen     -> %zu image(s) recovered from WAL\n",
              reopened->image_count());
  return 0;
}
