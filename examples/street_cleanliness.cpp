// The paper's primary use case (Sec. VII-A), end to end:
//   1. LASAN garbage trucks collect geo-tagged street imagery           (Acquisition)
//   2. the corpus is ingested into TVDP with FOV + temporal metadata    (Access)
//   3. USC researchers fine-tune CNN features, train an SVM, and
//      machine-annotate the unlabelled images through the REST-style
//      API with augmented-knowledge write-back                          (Analysis)
//   4. LASAN queries for dirty streets to dispatch cleaning crews       (Action)
//
// Run: ./build/examples/street_cleanliness [image_count]

#include <cstdio>
#include <cstdlib>

#include "ml/cross_validation.h"
#include "ml/linear_svm.h"
#include "platform/api.h"
#include "platform/dataset_gen.h"
#include "platform/model_registry.h"
#include "platform/tvdp.h"
#include "vision/cnn.h"

using namespace tvdp;

namespace {
constexpr char kTask[] = "street_cleanliness";
}

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 600;
  if (n < 100) n = 100;

  // --- Acquisition: the truck-collected corpus ---
  platform::DatasetConfig config;
  config.count = n;
  auto dataset = platform::GenerateStreetDataset(config);
  std::printf("LASAN trucks collected %zu geo-tagged street images\n",
              dataset.size());

  auto created = platform::Tvdp::Create();
  if (!created.ok()) return 1;
  platform::Tvdp tvdp = std::move(created).value();
  platform::ModelRegistry registry;
  platform::ApiService api(&tvdp, &registry);
  std::string lasan_key = api.CreateApiKey("lasan");
  std::string usc_key = api.CreateApiKey("usc_research");

  std::vector<std::string> labels;
  for (int c = 0; c < image::kNumCleanlinessClasses; ++c) {
    labels.push_back(image::SceneClassName(static_cast<image::SceneClass>(c)));
  }
  if (!tvdp.RegisterClassification(kTask, labels).ok()) return 1;

  // Ingest everything; the first 70% arrive with manual labels (the
  // "22K images with correct labels" prepared as a one-time job).
  size_t labelled_end = dataset.size() * 7 / 10;
  std::vector<int64_t> ids;
  for (size_t i = 0; i < dataset.size(); ++i) {
    auto id = tvdp.IngestImage(dataset[i].record);
    if (!id.ok()) return 1;
    ids.push_back(*id);
    if (i < labelled_end) {
      platform::AnnotationRecord ann;
      ann.classification = kTask;
      ann.label = labels[static_cast<size_t>(dataset[i].label)];
      ann.confidence = 1.0;
      ann.machine = false;  // manual ground truth
      if (!tvdp.AnnotateImage(*id, ann).ok()) return 1;
    }
  }

  // --- Analysis: fine-tune CNN features and train the Fig. 6 winner ---
  std::vector<image::Image> train_images;
  std::vector<int> train_labels;
  for (size_t i = 0; i < labelled_end; ++i) {
    train_images.push_back(dataset[i].pixels);
    train_labels.push_back(static_cast<int>(dataset[i].label));
  }
  vision::CnnFeatureExtractor cnn;
  if (!cnn.Fit(train_images, train_labels).ok()) return 1;

  ml::Dataset train;
  for (size_t i = 0; i < dataset.size(); ++i) {
    auto f = cnn.Extract(dataset[i].pixels);
    if (!f.ok()) return 1;
    if (!tvdp.StoreFeature(ids[i], "cnn", *f).ok()) return 1;
    if (i < labelled_end) {
      train.Add(std::move(*f), static_cast<int>(dataset[i].label)).ok();
    }
  }
  auto moments = train.ComputeMoments();
  train.Standardize(moments);
  auto svm = std::make_unique<ml::LinearSvmClassifier>();
  if (!svm->Train(train).ok()) return 1;

  // 10-fold CV on the labelled slice, as in the paper's protocol.
  Rng cv_rng(7);
  ml::LinearSvmClassifier cv_prototype;
  auto cv = ml::KFoldCrossValidate(cv_prototype, train, 10, cv_rng);
  if (cv.ok()) {
    std::printf("USC: SVM on fine-tuned CNN features, 10-fold CV macro-F1 = "
                "%.3f (paper: 0.83)\n",
                cv->mean_macro_f1);
  }

  // Share the trained model on the platform.
  platform::ModelSpec spec;
  spec.name = "cleanliness_svm_cnn";
  spec.feature_kind = "cnn";
  spec.classification = kTask;
  spec.labels = labels;
  spec.owner = "usc_research";
  // NOTE: the registry model sees standardized features; wrap by
  // standardizing at call time below.
  if (!registry.Register(spec, std::move(svm)).ok()) return 1;
  std::printf("USC registered model 'cleanliness_svm_cnn' on TVDP\n");

  // Machine-annotate the unlabelled 30% through the API (use_model with
  // annotate=true writes augmented knowledge back to the database).
  int correct = 0, total = 0;
  for (size_t i = labelled_end; i < dataset.size(); ++i) {
    auto f = tvdp.GetFeature(ids[i], "cnn");
    if (!f.ok()) return 1;
    Json feature = Json::MakeArray();
    for (size_t d = 0; d < f->size(); ++d) {
      double sd = moments.stddev[d] > 1e-12 ? moments.stddev[d] : 1.0;
      feature.Append(((*f)[d] - moments.mean[d]) / sd);
    }
    Json req = Json::MakeObject();
    req["model"] = "cleanliness_svm_cnn";
    req["feature"] = std::move(feature);
    req["image_id"] = ids[i];
    req["annotate"] = true;
    auto resp = api.HandleRequest(usc_key, "use_model", req);
    if (!resp.ok()) {
      std::fprintf(stderr, "use_model failed: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    ++total;
    if ((*resp)["label"].AsString() ==
        labels[static_cast<size_t>(dataset[i].label)]) {
      ++correct;
    }
  }
  std::printf("machine-annotated %d new images via the API, accuracy %.3f\n",
              total, total ? static_cast<double>(correct) / total : 0.0);

  // --- Action: LASAN pulls the dirty streets for cleaning dispatch ---
  for (const char* problem : {"illegal_dumping", "bulky_item", "encampment"}) {
    Json search = Json::MakeObject();
    search["classification"] = kTask;
    search["label"] = problem;
    auto resp = api.HandleRequest(lasan_key, "search_datasets", search);
    if (!resp.ok()) return 1;
    std::printf("LASAN work queue '%s': %lld locations (plan: %s)\n", problem,
                static_cast<long long>((*resp)["count"].AsInt()),
                (*resp)["plan"]["summary"].AsString().c_str());
  }
  return 0;
}
