// Translational data reuse (Sec. VII-B, Fig. 9): the Homeless Coordinator
// of the City of Los Angeles reuses the street-cleanliness annotations
// that LASAN's pipeline already produced — *without any learning of their
// own* — to study encampments:
//   * count tents city-wide,
//   * find spatial clusters (hotspots),
//   * track week-over-week movement from capture timestamps.
//
// Run: ./build/examples/homeless_tracking [image_count]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "platform/dataset_gen.h"
#include "platform/tvdp.h"
#include "query/query.h"

using namespace tvdp;

namespace {
constexpr char kTask[] = "street_cleanliness";
}

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 800;
  if (n < 100) n = 100;

  // Stand-in for "the platform after LASAN's pipeline ran": ingest a
  // corpus whose cleanliness annotations are already stored. Here the
  // annotations come from ground truth with classifier-like confidence;
  // examples/street_cleanliness.cpp shows the full learning pipeline.
  platform::DatasetConfig config;
  config.count = n;
  config.class_weights = {3, 1, 1, 2, 1};  // encampments are common downtown
  config.hotspots_per_class = 2;
  auto dataset = platform::GenerateStreetDataset(config);

  auto created = platform::Tvdp::Create();
  if (!created.ok()) return 1;
  platform::Tvdp tvdp = std::move(created).value();
  std::vector<std::string> labels;
  for (int c = 0; c < image::kNumCleanlinessClasses; ++c) {
    labels.push_back(image::SceneClassName(static_cast<image::SceneClass>(c)));
  }
  if (!tvdp.RegisterClassification(kTask, labels).ok()) return 1;

  Rng rng(5);
  for (const auto& gi : dataset) {
    auto id = tvdp.IngestImage(gi.record);
    if (!id.ok()) return 1;
    platform::AnnotationRecord ann;
    ann.classification = kTask;
    ann.label = labels[static_cast<size_t>(gi.label)];
    ann.confidence = rng.Uniform(0.7, 1.0);
    ann.machine = true;
    if (!tvdp.AnnotateImage(*id, ann).ok()) return 1;
  }
  std::printf("platform state: %zu images with machine annotations\n",
              tvdp.image_count());

  // --- The Coordinator's study: pure queries, zero training ---

  // 1. City-wide tent count.
  auto tents = tvdp.LocationsWithLabel(kTask, "encampment", 0.75);
  std::printf("\n[1] homeless count: %zu encampment sightings "
              "(confidence >= 0.75)\n",
              tents->size());

  // 2. Hotspot clustering on a 5x5 grid.
  const geo::BoundingBox& region = config.region;
  std::map<std::pair<int, int>, int> cells;
  for (const auto& p : *tents) {
    int row = std::min(
        4, std::max(0, static_cast<int>((p.lat - region.min_lat) /
                                        (region.max_lat - region.min_lat) * 5)));
    int col = std::min(
        4, std::max(0, static_cast<int>((p.lon - region.min_lon) /
                                        (region.max_lon - region.min_lon) * 5)));
    ++cells[{row, col}];
  }
  std::printf("\n[2] tent hotspot grid (5x5 cells, north at top):\n");
  int hottest = 0;
  for (int r = 4; r >= 0; --r) {
    std::printf("    ");
    for (int c = 0; c < 5; ++c) {
      auto it = cells.find({r, c});
      int count = it == cells.end() ? 0 : it->second;
      hottest = std::max(hottest, count);
      std::printf("%5d", count);
    }
    std::printf("\n");
  }
  std::printf("    hottest cell holds %d sightings\n", hottest);

  // 3. Weekly movement: encampment sightings per week via hybrid
  //    categorical+temporal queries.
  std::printf("\n[3] weekly encampment sightings (translational temporal "
              "study):\n");
  Timestamp week = 7 * 86400;
  for (int w = 0; w < 6; ++w) {
    query::HybridQuery q;
    query::CategoricalPredicate cat;
    cat.classification = kTask;
    cat.label = "encampment";
    q.categorical = cat;
    q.temporal = query::TemporalPredicate{config.start_time + w * week,
                                          config.start_time + (w + 1) * week - 1};
    auto hits = tvdp.query().Execute(q);
    if (!hits.ok()) return 1;
    std::printf("    week %d: %3zu sightings  %s\n", w + 1, hits->size(),
                std::string(hits->size(), '#').c_str());
  }

  // 4. Follow-up: which encampment images also show illegal dumping
  //    nearby (within 250 m of a tent sighting)?
  int co_located = 0;
  auto dumping = tvdp.LocationsWithLabel(kTask, "illegal_dumping", 0.0);
  for (const auto& tent : *tents) {
    for (const auto& dump : *dumping) {
      if (geo::HaversineMeters(tent, dump) < 250) {
        ++co_located;
        break;
      }
    }
  }
  std::printf("\n[4] cleanliness correlation: %d of %zu tent sightings have "
              "illegal dumping within 250 m\n",
              co_located, tents->size());
  std::printf("\nno model was trained in this program — every result came "
              "from annotations shared through TVDP.\n");
  return 0;
}
