// Two cited platform features working together:
//
//  * Video as key-frame sequences (Sec. IV-B + MediaQ): a 30 fps drive-by
//    video is collapsed into the handful of frames that maximize spatial
//    coverage, and those key frames are stored as regular TVDP images.
//  * Image scene localization (ref [23]): an image that arrives *without*
//    GPS is located by visual similarity against the tagged corpus.
//
// Run: ./build/examples/video_and_localization

#include <cstdio>

#include "platform/tvdp.h"
#include "platform/video.h"
#include "query/localize.h"

using namespace tvdp;

int main() {
  auto created = platform::Tvdp::Create();
  if (!created.ok()) return 1;
  platform::Tvdp tvdp = std::move(created).value();
  Rng rng(2019);

  // --- 1. Ingest three drive-by videos along different streets ---
  struct Drive {
    geo::GeoPoint start;
    double bearing;
    const char* name;
  };
  Drive drives[] = {
      {{34.0500, -118.2600}, 90, "7th-street-east"},
      {{34.0450, -118.2450}, 0, "main-street-north"},
      {{34.0550, -118.2500}, 135, "broadway-diag"},
  };
  platform::KeyframeSelector selector;
  size_t total_frames = 0, total_keyframes = 0;
  for (const Drive& d : drives) {
    platform::VideoRecord video;
    video.uri = std::string("mediaq://") + d.name;
    video.keywords = {"drive", d.name};
    video.frames = platform::SimulateDriveVideo(
        d.start, d.bearing, /*speed_mps=*/8, /*num_frames=*/240, /*fps=*/30,
        1546300800, rng);
    total_frames += video.frames.size();
    auto ids = platform::IngestVideo(tvdp, video, selector);
    if (!ids.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ids.status().ToString().c_str());
      return 1;
    }
    total_keyframes += ids->size();
    std::printf("%-18s %3zu frames -> %2zu key frames stored\n", d.name,
                video.frames.size(), ids->size());
  }
  std::printf("compression: %zu video frames -> %zu stored key frames "
              "(%.0f%% reduction) with FOV-coverage-greedy selection\n\n",
              total_frames, total_keyframes,
              100.0 * (1.0 - static_cast<double>(total_keyframes) /
                                 total_frames));

  // --- 2. Give every key frame a visual feature ---
  // Features encode "what the scene looks like"; here each street has a
  // distinctive visual signature plus noise (stand-in for CNN features of
  // real frames, whose extraction examples/street_cleanliness.cpp shows).
  const storage::Table* images =
      tvdp.catalog().GetTable(storage::tables::kImages);
  const storage::Schema& schema = images->schema();
  size_t src_idx = static_cast<size_t>(schema.ColumnIndex("source"));
  std::vector<std::pair<int64_t, std::string>> stored;
  images->ForEach([&](const storage::Row& row) {
    stored.emplace_back(row[0].AsInt64(), row[src_idx].AsString());
    return true;
  });
  for (const auto& [id, source] : stored) {
    ml::FeatureVector f(9, 0.05);
    for (int di = 0; di < 3; ++di) {
      if (source.find(drives[di].name) != std::string::npos) {
        f[static_cast<size_t>(di) * 3] = 1.0;
        f[static_cast<size_t>(di) * 3 + 1] = 0.6;
      }
    }
    for (double& v : f) v += rng.Normal(0, 0.04);
    if (!tvdp.StoreFeature(id, "cnn", f).ok()) return 1;
  }

  // --- 3. Localize a GPS-less photo by visual similarity ---
  query::SceneLocalizer localizer(&tvdp.query(), &tvdp.catalog());
  for (int di = 0; di < 3; ++di) {
    ml::FeatureVector probe(9, 0.05);
    probe[static_cast<size_t>(di) * 3] = 1.0;
    probe[static_cast<size_t>(di) * 3 + 1] = 0.6;
    auto loc = localizer.Localize("cnn", probe, 5);
    if (!loc.ok()) {
      std::fprintf(stderr, "localization failed: %s\n",
                   loc.status().ToString().c_str());
      return 1;
    }
    double err = geo::HaversineMeters(loc->estimate, drives[di].start);
    std::printf(
        "photo that 'looks like' %-18s localized to %s "
        "(%.0f m from the drive start, spread %.0f m, %d matches)\n",
        drives[di].name, loc->estimate.ToString().c_str(), err,
        loc->spread_m, loc->support);
  }
  std::printf("\nthe localizer used only shared platform data — every new "
              "tagged upload improves it for every participant.\n");
  return 0;
}
