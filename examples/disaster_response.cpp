// The paper's future-work scenario (Sec. VIII): TVDP as a disaster data
// platform. A wildfire breaks out; the city launches a spatial-
// crowdsourcing campaign to build FOV-complete visual coverage of the
// affected area fast, captures stream into the platform as they arrive,
// and responders watch coverage and query the freshest imagery per block.
//
// Run: ./build/examples/disaster_response

#include <cstdio>

#include "crowd/acquisition.h"
#include "geo/coverage.h"
#include "platform/tvdp.h"

using namespace tvdp;

int main() {
  // The affected area: a 3 km x 3 km box.
  geo::BoundingBox fire_zone =
      geo::BoundingBox::FromCorners({34.08, -118.38}, {34.11, -118.35});

  auto created = platform::Tvdp::Create();
  if (!created.ok()) return 1;
  platform::Tvdp tvdp = std::move(created).value();
  if (!tvdp.RegisterClassification("damage_assessment",
                                   {"unaffected", "smoke", "burned"})
           .ok()) {
    return 1;
  }

  // Campaign: 90% direction-aware coverage of the zone.
  auto grid = geo::CoverageGrid::Make(fire_zone, 6, 6, 4);
  if (!grid.ok()) return 1;
  Rng rng(2024);
  // Drone operators + volunteers near the zone.
  crowd::WorkerPool pool = crowd::WorkerPool::MakeUniform(fire_zone, 35, rng);
  for (auto& w : pool.workers()) {
    w.camera_radius_m = 220;  // drones see further than phones
    w.capacity = 5;
  }
  crowd::Campaign campaign;
  campaign.id = 1;
  campaign.name = "wildfire-2019-06";
  campaign.region = fire_zone;
  campaign.target_coverage = 0.9;
  campaign.created_at = 1561939200;  // 2019-07-01

  crowd::IterativeAcquisition::Options opts;
  opts.max_rounds = 12;
  opts.seconds_per_round = 900;  // 15-minute tasking cycles
  crowd::IterativeAcquisition acquisition(campaign, std::move(*grid),
                                          std::move(pool), opts, 99);

  // Every completed capture is ingested into the platform immediately.
  int ingested = 0;
  auto history = acquisition.Run([&](const crowd::Capture& capture) {
    platform::ImageRecord rec;
    rec.uri = "drone://wildfire/" + std::to_string(ingested);
    rec.location = capture.fov.camera;
    rec.fov = capture.fov;
    rec.captured_at = capture.captured_at;
    rec.source = "campaign:" + campaign.name;
    rec.keywords = {"wildfire", "aerial"};
    if (tvdp.IngestImage(rec).ok()) ++ingested;
  });

  std::printf("== wildfire campaign '%s' ==\n", campaign.name.c_str());
  std::printf("%-6s %-8s %-9s %-10s %-10s\n", "round", "tasks", "done",
              "coverage", "cells");
  for (const auto& r : history) {
    std::printf("%-6d %-8d %-9d %-10.3f %-10.3f\n", r.round, r.tasks_issued,
                r.tasks_completed, r.coverage_after, r.cell_coverage_after);
  }
  std::printf("\n%d captures ingested; final FOV coverage %.1f%%\n", ingested,
              acquisition.grid().CoverageRatio() * 100);

  // Situational queries responders run while the campaign is live:
  // the freshest imagery that actually *shows* a threatened school.
  // The school sits at the center of one coverage cell (row 2, col 2 of
  // the 6x6 grid), i.e. squarely inside the area the campaign documents.
  geo::GeoPoint school{
      fire_zone.min_lat + (fire_zone.max_lat - fire_zone.min_lat) * 2.5 / 6,
      fire_zone.min_lon + (fire_zone.max_lon - fire_zone.min_lon) * 2.5 / 6};
  auto watching = tvdp.query().VisibleAt(school);
  if (!watching.ok()) return 1;
  auto nearby = tvdp.query().SpatialKnn(school, 5);
  if (!nearby.ok()) return 1;
  std::printf("\nimages whose FOV covers the school at %s: %zu "
              "(plus %zu nearest captures for context)\n",
              school.ToString().c_str(), watching->size(), nearby->size());

  // Most recent captures in the northern half of the zone.
  geo::BoundingBox north_half = fire_zone;
  north_half.min_lat = (fire_zone.min_lat + fire_zone.max_lat) / 2;
  query::HybridQuery q;
  query::SpatialPredicate sp;
  sp.kind = query::SpatialPredicate::Kind::kRange;
  sp.range = north_half;
  q.spatial = sp;
  Timestamp end = campaign.created_at +
                  static_cast<Timestamp>(history.size()) *
                      opts.seconds_per_round;
  q.temporal = query::TemporalPredicate{end - 2 * opts.seconds_per_round, end};
  auto fresh = tvdp.query().Execute(q);
  if (!fresh.ok()) return 1;
  std::printf("captures of the northern half from the last 30 minutes: %zu "
              "(plan: %s)\n",
              fresh->size(), tvdp.query().last_plan().c_str());

  // Gaps still open -> the next tasking wave.
  auto gaps = acquisition.grid().FindGaps();
  std::printf("remaining coverage gaps for the next wave: %zu cells\n",
              gaps.size());
  return 0;
}
