#!/usr/bin/env bash
# Lock audit: the MVCC refactor made the read path lock-free, and this
# check keeps it that way. It counts shared_lock acquisitions in the query
# engine and the read endpoints and fails when a new one appears.
#
# Budgets:
#   src/query/            1   QueryEngine::WithReaderLock — the single
#                             legacy-mode funnel (engine.h)
#   src/platform/tvdp.cc  0   facade reads pin an MVCC snapshot
#   src/platform/export.cc 0  exports pin an MVCC snapshot
#   src/platform/api.cc   2   keys_mutex_ (API-key registry, not a read
#                             path over catalog/index state)
set -u
cd "$(dirname "$0")/.."

fail=0

check() {
  local label="$1" budget="$2"
  shift 2
  local count
  count=$(grep -rn 'shared_lock' "$@" 2>/dev/null | grep -cv '^\s*//' || true)
  if [ "$count" -gt "$budget" ]; then
    echo "FAIL: $label has $count shared_lock acquisitions (budget $budget):"
    grep -rn 'shared_lock' "$@" | grep -v '^\s*//'
    fail=1
  else
    echo "ok:   $label shared_lock count $count <= $budget"
  fi
}

check "src/query/" 1 src/query/
check "src/platform/tvdp.cc" 0 src/platform/tvdp.cc
check "src/platform/export.cc" 0 src/platform/export.cc
check "src/platform/api.cc" 2 src/platform/api.cc

if [ "$fail" -ne 0 ]; then
  echo
  echo "Reads must pin an MVCC snapshot (QueryEngine::PinSnapshot) instead"
  echo "of taking the engine lock shared. See DESIGN.md 'MVCC snapshots and"
  echo "copy-on-write storage'."
  exit 1
fi
echo "lock audit passed"
