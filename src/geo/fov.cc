#include "geo/fov.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace tvdp::geo {

Result<FieldOfView> FieldOfView::Make(const GeoPoint& camera,
                                      double direction_deg, double angle_deg,
                                      double radius_m) {
  if (!IsValid(camera)) {
    return Status::InvalidArgument("FOV camera location out of range");
  }
  if (!(angle_deg > 0.0) || angle_deg > 360.0) {
    return Status::InvalidArgument("FOV viewable angle must be in (0, 360]");
  }
  if (!(radius_m > 0.0)) {
    return Status::InvalidArgument("FOV radius must be positive");
  }
  FieldOfView fov;
  fov.camera = camera;
  fov.direction_deg = NormalizeBearing(direction_deg);
  fov.angle_deg = angle_deg;
  fov.radius_m = radius_m;
  return fov;
}

bool FieldOfView::ContainsPoint(const GeoPoint& p) const {
  double d = HaversineMeters(camera, p);
  if (d > radius_m) return false;
  if (d < 1e-9) return true;  // the camera location itself
  if (angle_deg >= 360.0) return true;
  double bearing = InitialBearingDeg(camera, p);
  return std::abs(AngularDifference(bearing, direction_deg)) <=
         angle_deg / 2.0 + 1e-12;
}

BoundingBox FieldOfView::SceneLocation() const {
  BoundingBox box = BoundingBox::Empty();
  box.Extend(camera);
  double half = angle_deg / 2.0;
  // The two boundary rays.
  box.Extend(Destination(camera, direction_deg - half, radius_m));
  box.Extend(Destination(camera, direction_deg + half, radius_m));
  box.Extend(Destination(camera, direction_deg, radius_m));
  // If the arc sweeps past a cardinal bearing, the extremum lies on that
  // bearing at full radius.
  for (double cardinal : {0.0, 90.0, 180.0, 270.0}) {
    if (std::abs(AngularDifference(cardinal, direction_deg)) <= half) {
      box.Extend(Destination(camera, cardinal, radius_m));
    }
  }
  return box;
}

bool FieldOfView::IntersectsBBox(const BoundingBox& box) const {
  if (box.IsEmpty()) return false;
  if (!SceneLocation().Intersects(box)) return false;
  // Camera inside the box => definitely intersecting.
  if (box.Contains(camera)) return true;
  // Any box corner inside the sector?
  const GeoPoint corners[4] = {
      {box.min_lat, box.min_lon},
      {box.min_lat, box.max_lon},
      {box.max_lat, box.min_lon},
      {box.max_lat, box.max_lon},
  };
  for (const auto& c : corners) {
    if (ContainsPoint(c)) return true;
  }
  // Sample the sector boundary (arc + two radial edges) against the box.
  constexpr int kArcSamples = 24;
  double half = angle_deg / 2.0;
  for (int i = 0; i <= kArcSamples; ++i) {
    double b = direction_deg - half + angle_deg * i / kArcSamples;
    if (box.Contains(Destination(camera, b, radius_m))) return true;
  }
  constexpr int kEdgeSamples = 8;
  for (int i = 1; i < kEdgeSamples; ++i) {
    double r = radius_m * i / kEdgeSamples;
    if (box.Contains(Destination(camera, direction_deg - half, r))) return true;
    if (box.Contains(Destination(camera, direction_deg + half, r))) return true;
  }
  return false;
}

bool FieldOfView::CoversBearing(double bearing_deg) const {
  return std::abs(AngularDifference(bearing_deg, direction_deg)) <=
         angle_deg / 2.0 + 1e-12;
}

std::string FieldOfView::ToString() const {
  return StrFormat("FOV{L=%s, theta=%.1f, alpha=%.1f, R=%.1fm}",
                   camera.ToString().c_str(), direction_deg, angle_deg,
                   radius_m);
}

double SectorFractionInsideBBox(const FieldOfView& fov, const BoundingBox& box,
                                int radial_steps, int angular_steps) {
  if (box.IsEmpty() || radial_steps <= 0 || angular_steps <= 0) return 0.0;
  double half = fov.angle_deg / 2.0;
  double covered_weight = 0.0;
  double total_weight = 0.0;
  for (int ri = 0; ri < radial_steps; ++ri) {
    // Midpoint radius; ring weight proportional to its area (~ r dr).
    double r = fov.radius_m * (ri + 0.5) / radial_steps;
    double w = (ri + 0.5);
    for (int ai = 0; ai < angular_steps; ++ai) {
      double b = fov.direction_deg - half +
                 fov.angle_deg * (ai + 0.5) / angular_steps;
      total_weight += w;
      if (box.Contains(Destination(fov.camera, b, r))) covered_weight += w;
    }
  }
  return total_weight > 0 ? covered_weight / total_weight : 0.0;
}

}  // namespace tvdp::geo
