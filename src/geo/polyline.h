#ifndef TVDP_GEO_POLYLINE_H_
#define TVDP_GEO_POLYLINE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/bbox.h"
#include "geo/geo_point.h"

namespace tvdp::geo {

/// A geographic polyline — TVDP uses polylines to model street segments
/// along which collection vehicles (e.g. LASAN garbage trucks) and
/// crowdsourcing workers travel.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<GeoPoint> points);

  const std::vector<GeoPoint>& points() const { return points_; }
  bool empty() const { return points_.size() < 2; }

  /// Total length along the line in meters.
  double LengthMeters() const;

  /// The point at distance `meters` from the start (clamped to the ends).
  GeoPoint PointAt(double meters) const;

  /// Compass bearing of the segment containing the point at `meters`.
  double BearingAt(double meters) const;

  /// Bounding box of all vertices.
  BoundingBox Bounds() const;

 private:
  std::vector<GeoPoint> points_;
  std::vector<double> cumulative_m_;  // prefix lengths, same size as points_
};

/// A street network: a set of named street polylines inside a region.
/// StreetNetwork::MakeGrid builds a deterministic Manhattan-style grid that
/// stands in for the real LA street map in all simulations.
class StreetNetwork {
 public:
  struct Street {
    std::string name;
    Polyline line;
  };

  /// Builds a `rows` x `cols` grid of streets covering `region`, with
  /// per-vertex jitter drawn from `rng` so streets are not perfectly
  /// straight (shape matters for FOV coverage tests).
  static StreetNetwork MakeGrid(const BoundingBox& region, int rows, int cols,
                                Rng& rng, double jitter_fraction = 0.05);

  const std::vector<Street>& streets() const { return streets_; }
  const BoundingBox& region() const { return region_; }

  /// Total length of all streets in meters.
  double TotalLengthMeters() const;

  /// Deterministically samples a (point, bearing) uniformly by length over
  /// the whole network; useful for placing image captures along streets.
  struct SamplePoint {
    GeoPoint location;
    double street_bearing_deg = 0;
    size_t street_index = 0;
  };
  SamplePoint Sample(Rng& rng) const;

 private:
  std::vector<Street> streets_;
  BoundingBox region_;
};

}  // namespace tvdp::geo

#endif  // TVDP_GEO_POLYLINE_H_
