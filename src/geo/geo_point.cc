#include "geo/geo_point.h"

#include <algorithm>

#include "common/strings.h"

namespace tvdp::geo {

double NormalizeBearing(double deg) {
  double d = std::fmod(deg, 360.0);
  if (d < 0) d += 360.0;
  return d;
}

double AngularDifference(double a_deg, double b_deg) {
  double d = std::fmod(a_deg - b_deg, 360.0);
  if (d > 180.0) d -= 360.0;
  if (d <= -180.0) d += 360.0;
  return d;
}

std::string GeoPoint::ToString() const {
  return StrFormat("(%.6f, %.6f)", lat, lon);
}

bool IsValid(const GeoPoint& p) {
  return p.lat >= -90.0 && p.lat <= 90.0 && p.lon >= -180.0 && p.lon <= 180.0;
}

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  double lat1 = DegToRad(a.lat), lat2 = DegToRad(b.lat);
  double dlat = lat2 - lat1;
  double dlon = DegToRad(b.lon - a.lon);
  double s1 = std::sin(dlat / 2), s2 = std::sin(dlon / 2);
  double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  h = std::clamp(h, 0.0, 1.0);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

double InitialBearingDeg(const GeoPoint& from, const GeoPoint& to) {
  double lat1 = DegToRad(from.lat), lat2 = DegToRad(to.lat);
  double dlon = DegToRad(to.lon - from.lon);
  double y = std::sin(dlon) * std::cos(lat2);
  double x = std::cos(lat1) * std::sin(lat2) -
             std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  return NormalizeBearing(RadToDeg(std::atan2(y, x)));
}

GeoPoint Destination(const GeoPoint& start, double bearing_deg,
                     double distance_m) {
  double delta = distance_m / kEarthRadiusMeters;
  double theta = DegToRad(bearing_deg);
  double lat1 = DegToRad(start.lat);
  double lon1 = DegToRad(start.lon);
  double lat2 = std::asin(std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta));
  double lon2 =
      lon1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(lat1),
                        std::cos(delta) - std::sin(lat1) * std::sin(lat2));
  GeoPoint out{RadToDeg(lat2), RadToDeg(lon2)};
  if (out.lon > 180.0) out.lon -= 360.0;
  if (out.lon < -180.0) out.lon += 360.0;
  return out;
}

double Distance(const Point2D& a, const Point2D& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

LocalProjection::LocalProjection(const GeoPoint& origin)
    : origin_(origin), cos_lat_(std::cos(DegToRad(origin.lat))) {}

Point2D LocalProjection::Project(const GeoPoint& p) const {
  double x = DegToRad(p.lon - origin_.lon) * cos_lat_ * kEarthRadiusMeters;
  double y = DegToRad(p.lat - origin_.lat) * kEarthRadiusMeters;
  return {x, y};
}

GeoPoint LocalProjection::Unproject(const Point2D& p) const {
  double lat = origin_.lat + RadToDeg(p.y / kEarthRadiusMeters);
  double lon = origin_.lon + RadToDeg(p.x / (kEarthRadiusMeters * cos_lat_));
  return {lat, lon};
}

}  // namespace tvdp::geo
