#include "geo/polyline.h"

#include <algorithm>

#include "common/strings.h"

namespace tvdp::geo {

Polyline::Polyline(std::vector<GeoPoint> points) : points_(std::move(points)) {
  cumulative_m_.resize(points_.size(), 0.0);
  for (size_t i = 1; i < points_.size(); ++i) {
    cumulative_m_[i] =
        cumulative_m_[i - 1] + HaversineMeters(points_[i - 1], points_[i]);
  }
}

double Polyline::LengthMeters() const {
  return cumulative_m_.empty() ? 0.0 : cumulative_m_.back();
}

GeoPoint Polyline::PointAt(double meters) const {
  if (points_.empty()) return GeoPoint{};
  if (points_.size() == 1 || meters <= 0) return points_.front();
  if (meters >= LengthMeters()) return points_.back();
  auto it = std::upper_bound(cumulative_m_.begin(), cumulative_m_.end(), meters);
  size_t seg = static_cast<size_t>(it - cumulative_m_.begin());  // in [1, n)
  double seg_start = cumulative_m_[seg - 1];
  double seg_len = cumulative_m_[seg] - seg_start;
  double t = seg_len > 1e-12 ? (meters - seg_start) / seg_len : 0.0;
  const GeoPoint& a = points_[seg - 1];
  const GeoPoint& b = points_[seg];
  return GeoPoint{a.lat + (b.lat - a.lat) * t, a.lon + (b.lon - a.lon) * t};
}

double Polyline::BearingAt(double meters) const {
  if (points_.size() < 2) return 0.0;
  double m = std::clamp(meters, 0.0, LengthMeters());
  auto it = std::upper_bound(cumulative_m_.begin(), cumulative_m_.end(), m);
  size_t seg = static_cast<size_t>(it - cumulative_m_.begin());
  seg = std::clamp<size_t>(seg, 1, points_.size() - 1);
  return InitialBearingDeg(points_[seg - 1], points_[seg]);
}

BoundingBox Polyline::Bounds() const {
  BoundingBox box = BoundingBox::Empty();
  for (const auto& p : points_) box.Extend(p);
  return box;
}

StreetNetwork StreetNetwork::MakeGrid(const BoundingBox& region, int rows,
                                      int cols, Rng& rng,
                                      double jitter_fraction) {
  StreetNetwork net;
  net.region_ = region;
  if (region.IsEmpty() || rows < 1 || cols < 1) return net;
  double dlat = (region.max_lat - region.min_lat) / (rows + 1);
  double dlon = (region.max_lon - region.min_lon) / (cols + 1);
  constexpr int kVerticesPerStreet = 12;
  auto jitter = [&](double scale) {
    return rng.Uniform(-jitter_fraction, jitter_fraction) * scale;
  };
  // East-west streets.
  for (int r = 1; r <= rows; ++r) {
    std::vector<GeoPoint> pts;
    double lat = region.min_lat + r * dlat;
    for (int v = 0; v < kVerticesPerStreet; ++v) {
      double lon = region.min_lon + (region.max_lon - region.min_lon) * v /
                                        (kVerticesPerStreet - 1);
      pts.push_back(GeoPoint{lat + jitter(dlat), lon});
    }
    net.streets_.push_back(
        Street{StrFormat("ew-street-%d", r), Polyline(std::move(pts))});
  }
  // North-south streets.
  for (int c = 1; c <= cols; ++c) {
    std::vector<GeoPoint> pts;
    double lon = region.min_lon + c * dlon;
    for (int v = 0; v < kVerticesPerStreet; ++v) {
      double lat = region.min_lat + (region.max_lat - region.min_lat) * v /
                                        (kVerticesPerStreet - 1);
      pts.push_back(GeoPoint{lat, lon + jitter(dlon)});
    }
    net.streets_.push_back(
        Street{StrFormat("ns-street-%d", c), Polyline(std::move(pts))});
  }
  return net;
}

double StreetNetwork::TotalLengthMeters() const {
  double total = 0;
  for (const auto& s : streets_) total += s.line.LengthMeters();
  return total;
}

StreetNetwork::SamplePoint StreetNetwork::Sample(Rng& rng) const {
  SamplePoint out;
  double total = TotalLengthMeters();
  if (total <= 0 || streets_.empty()) return out;
  double pick = rng.Uniform(0, total);
  for (size_t i = 0; i < streets_.size(); ++i) {
    double len = streets_[i].line.LengthMeters();
    if (pick <= len || i + 1 == streets_.size()) {
      double m = std::clamp(pick, 0.0, len);
      out.location = streets_[i].line.PointAt(m);
      out.street_bearing_deg = streets_[i].line.BearingAt(m);
      out.street_index = i;
      return out;
    }
    pick -= len;
  }
  return out;
}

}  // namespace tvdp::geo
