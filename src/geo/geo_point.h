#ifndef TVDP_GEO_GEO_POINT_H_
#define TVDP_GEO_GEO_POINT_H_

#include <cmath>
#include <string>

namespace tvdp::geo {

/// Mean Earth radius in meters (spherical model).
inline constexpr double kEarthRadiusMeters = 6371000.0;

/// Degrees <-> radians.
inline double DegToRad(double deg) { return deg * M_PI / 180.0; }
inline double RadToDeg(double rad) { return rad * 180.0 / M_PI; }

/// Normalizes a compass bearing into [0, 360).
double NormalizeBearing(double deg);

/// Signed smallest angular difference a-b in (-180, 180].
double AngularDifference(double a_deg, double b_deg);

/// A WGS84-style latitude/longitude pair in degrees. This is the "GPS
/// Location" spatial descriptor of the TVDP data model.
struct GeoPoint {
  double lat = 0.0;  ///< Latitude in degrees, [-90, 90].
  double lon = 0.0;  ///< Longitude in degrees, [-180, 180].

  friend bool operator==(const GeoPoint& a, const GeoPoint& b) {
    return a.lat == b.lat && a.lon == b.lon;
  }

  std::string ToString() const;
};

/// True iff the point is within valid latitude/longitude bounds.
bool IsValid(const GeoPoint& p);

/// Great-circle (haversine) distance in meters.
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// Initial compass bearing (degrees, [0,360)) from `from` toward `to`.
double InitialBearingDeg(const GeoPoint& from, const GeoPoint& to);

/// Destination point when travelling `distance_m` meters from `start` along
/// compass `bearing_deg` on the sphere.
GeoPoint Destination(const GeoPoint& start, double bearing_deg,
                     double distance_m);

/// A point in a local planar (meters) frame.
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2D& a, const Point2D& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two planar points.
double Distance(const Point2D& a, const Point2D& b);

/// Equirectangular projection centred on a reference point: accurate to
/// well under 1% over city-scale extents, which is all TVDP needs for
/// coverage measurement and index geometry.
class LocalProjection {
 public:
  /// Creates a projection centred at `origin`.
  explicit LocalProjection(const GeoPoint& origin);

  /// Geographic -> local meters.
  Point2D Project(const GeoPoint& p) const;

  /// Local meters -> geographic.
  GeoPoint Unproject(const Point2D& p) const;

  const GeoPoint& origin() const { return origin_; }

 private:
  GeoPoint origin_;
  double cos_lat_;
};

}  // namespace tvdp::geo

#endif  // TVDP_GEO_GEO_POINT_H_
