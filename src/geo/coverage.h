#ifndef TVDP_GEO_COVERAGE_H_
#define TVDP_GEO_COVERAGE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geo/bbox.h"
#include "geo/fov.h"

namespace tvdp::geo {

/// Spatial coverage measurement of geo-tagged visual data (paper Sec. III,
/// after Alfarrarjeh et al., "Spatial coverage measurement of geo-tagged
/// visual data: A database approach", BigMM'18).
///
/// The region of interest is divided into a uniform grid; each cell tracks
/// which of `direction_sectors` viewing-direction sectors have been covered
/// by at least one FOV. A cell+sector is covered when an FOV whose sector
/// overlaps the cell views it from that direction. This captures the
/// intuition that a street corner photographed only facing north is not
/// fully documented.
class CoverageGrid {
 public:
  /// Creates a grid over `region` with `rows` x `cols` cells and
  /// `direction_sectors` angular sectors per cell.
  static Result<CoverageGrid> Make(const BoundingBox& region, int rows,
                                   int cols, int direction_sectors = 4);

  /// Registers one FOV's contribution to the grid. Returns the number of
  /// (cell, sector) pairs newly covered — i.e. the marginal coverage gain,
  /// which iterative crowdsourcing uses to prioritise campaigns.
  int AddFov(const FieldOfView& fov);

  /// Fraction in [0,1] of (cell, sector) pairs covered.
  double CoverageRatio() const;

  /// Fraction of cells with at least one covered sector (direction-blind
  /// coverage; the weaker measure based on camera point data only).
  double CellCoverageRatio() const;

  /// A coverage gap: a cell and the list of uncovered sector bearings.
  struct Gap {
    GeoPoint cell_center;
    BoundingBox cell_bounds;
    std::vector<double> missing_bearings_deg;
  };

  /// All gaps, ordered row-major. A fully covered grid returns {}.
  std::vector<Gap> FindGaps() const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int direction_sectors() const { return sectors_; }
  const BoundingBox& region() const { return region_; }

  /// Number of FOVs registered so far.
  int64_t fov_count() const { return fov_count_; }

  /// True iff (row, col, sector) is covered.
  bool IsCovered(int row, int col, int sector) const;

  /// Bounds of the (row, col) cell.
  BoundingBox CellBounds(int row, int col) const;

 private:
  CoverageGrid() = default;

  size_t BitIndex(int row, int col, int sector) const {
    return (static_cast<size_t>(row) * cols_ + col) * sectors_ + sector;
  }

  BoundingBox region_;
  int rows_ = 0;
  int cols_ = 0;
  int sectors_ = 0;
  int64_t fov_count_ = 0;
  std::vector<bool> covered_;
};

}  // namespace tvdp::geo

#endif  // TVDP_GEO_COVERAGE_H_
