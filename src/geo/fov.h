#ifndef TVDP_GEO_FOV_H_
#define TVDP_GEO_FOV_H_

#include <string>

#include "common/result.h"
#include "geo/bbox.h"
#include "geo/geo_point.h"

namespace tvdp::geo {

/// Field-of-View spatial descriptor (paper Fig. 3, after Ay et al. 2008):
/// the spatial extent of an image is a circular sector defined by
///   - camera location L (GPS),
///   - viewing direction theta (compass bearing of the optical axis),
///   - viewable angle alpha (full angular width of the sector), and
///   - maximum visible distance R.
/// The FOV descriptor is more accurate than the raw camera location because
/// it captures *what the image shows*, not where the camera stood.
struct FieldOfView {
  GeoPoint camera;            ///< Camera location L.
  double direction_deg = 0;   ///< Viewing direction theta, [0, 360).
  double angle_deg = 60;      ///< Viewable angle alpha, (0, 360].
  double radius_m = 100;      ///< Maximum visible distance R in meters.

  /// Validates the descriptor fields.
  static Result<FieldOfView> Make(const GeoPoint& camera, double direction_deg,
                                  double angle_deg, double radius_m);

  /// True iff geographic point `p` lies inside the viewable sector.
  bool ContainsPoint(const GeoPoint& p) const;

  /// The scene location: minimum bounding rectangle of the sector (the
  /// "Scene Location" descriptor of the data model). Exact: accounts for
  /// the arc crossing the cardinal bearings.
  BoundingBox SceneLocation() const;

  /// True iff the sector intersects `box` (conservative: tests the scene
  /// MBR first, then samples the sector boundary).
  bool IntersectsBBox(const BoundingBox& box) const;

  /// Overlap between the viewing direction and a target bearing, as
  /// |angular difference| <= alpha/2.
  bool CoversBearing(double bearing_deg) const;

  std::string ToString() const;

  friend bool operator==(const FieldOfView& a, const FieldOfView& b) {
    return a.camera == b.camera && a.direction_deg == b.direction_deg &&
           a.angle_deg == b.angle_deg && a.radius_m == b.radius_m;
  }
};

/// Fraction [0,1] of `fov`'s sector area that falls inside `box`, estimated
/// by deterministic midpoint sampling over a polar grid. Used by coverage
/// measurement and the oriented index's refinement step.
double SectorFractionInsideBBox(const FieldOfView& fov, const BoundingBox& box,
                                int radial_steps = 8, int angular_steps = 16);

}  // namespace tvdp::geo

#endif  // TVDP_GEO_FOV_H_
