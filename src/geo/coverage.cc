#include "geo/coverage.h"

#include <algorithm>
#include <cmath>

namespace tvdp::geo {

Result<CoverageGrid> CoverageGrid::Make(const BoundingBox& region, int rows,
                                        int cols, int direction_sectors) {
  if (region.IsEmpty()) {
    return Status::InvalidArgument("coverage region must be non-empty");
  }
  if (rows < 1 || cols < 1) {
    return Status::InvalidArgument("coverage grid needs >=1 rows and cols");
  }
  if (direction_sectors < 1 || direction_sectors > 360) {
    return Status::InvalidArgument("direction sectors must be in [1, 360]");
  }
  CoverageGrid grid;
  grid.region_ = region;
  grid.rows_ = rows;
  grid.cols_ = cols;
  grid.sectors_ = direction_sectors;
  grid.covered_.assign(
      static_cast<size_t>(rows) * cols * direction_sectors, false);
  return grid;
}

BoundingBox CoverageGrid::CellBounds(int row, int col) const {
  double dlat = (region_.max_lat - region_.min_lat) / rows_;
  double dlon = (region_.max_lon - region_.min_lon) / cols_;
  BoundingBox box;
  box.min_lat = region_.min_lat + row * dlat;
  box.max_lat = box.min_lat + dlat;
  box.min_lon = region_.min_lon + col * dlon;
  box.max_lon = box.min_lon + dlon;
  return box;
}

int CoverageGrid::AddFov(const FieldOfView& fov) {
  ++fov_count_;
  BoundingBox scene = fov.SceneLocation();
  if (!scene.Intersects(region_)) return 0;

  double dlat = (region_.max_lat - region_.min_lat) / rows_;
  double dlon = (region_.max_lon - region_.min_lon) / cols_;
  int row_lo = std::clamp(
      static_cast<int>(std::floor((scene.min_lat - region_.min_lat) / dlat)), 0,
      rows_ - 1);
  int row_hi = std::clamp(
      static_cast<int>(std::floor((scene.max_lat - region_.min_lat) / dlat)), 0,
      rows_ - 1);
  int col_lo = std::clamp(
      static_cast<int>(std::floor((scene.min_lon - region_.min_lon) / dlon)), 0,
      cols_ - 1);
  int col_hi = std::clamp(
      static_cast<int>(std::floor((scene.max_lon - region_.min_lon) / dlon)), 0,
      cols_ - 1);

  // The FOV views a cell "from" the bearing at which the camera sees the
  // cell center; that bearing selects the direction sector being covered.
  double sector_width = 360.0 / sectors_;
  int newly_covered = 0;
  for (int r = row_lo; r <= row_hi; ++r) {
    for (int c = col_lo; c <= col_hi; ++c) {
      BoundingBox cell = CellBounds(r, c);
      if (!fov.IntersectsBBox(cell)) continue;
      GeoPoint center = cell.Center();
      double bearing;
      double dist = HaversineMeters(fov.camera, center);
      if (dist < 1e-6) {
        bearing = fov.direction_deg;  // camera stands in the cell center
      } else {
        bearing = InitialBearingDeg(fov.camera, center);
      }
      int sector =
          std::clamp(static_cast<int>(NormalizeBearing(bearing) / sector_width),
                     0, sectors_ - 1);
      size_t idx = BitIndex(r, c, sector);
      if (!covered_[idx]) {
        covered_[idx] = true;
        ++newly_covered;
      }
    }
  }
  return newly_covered;
}

double CoverageGrid::CoverageRatio() const {
  if (covered_.empty()) return 0.0;
  size_t on = 0;
  for (bool b : covered_) on += b ? 1 : 0;
  return static_cast<double>(on) / covered_.size();
}

double CoverageGrid::CellCoverageRatio() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  int covered_cells = 0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      for (int s = 0; s < sectors_; ++s) {
        if (covered_[BitIndex(r, c, s)]) {
          ++covered_cells;
          break;
        }
      }
    }
  }
  return static_cast<double>(covered_cells) / (rows_ * cols_);
}

std::vector<CoverageGrid::Gap> CoverageGrid::FindGaps() const {
  std::vector<Gap> gaps;
  double sector_width = 360.0 / sectors_;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      Gap gap;
      for (int s = 0; s < sectors_; ++s) {
        if (!covered_[BitIndex(r, c, s)]) {
          gap.missing_bearings_deg.push_back((s + 0.5) * sector_width);
        }
      }
      if (!gap.missing_bearings_deg.empty()) {
        gap.cell_bounds = CellBounds(r, c);
        gap.cell_center = gap.cell_bounds.Center();
        gaps.push_back(std::move(gap));
      }
    }
  }
  return gaps;
}

bool CoverageGrid::IsCovered(int row, int col, int sector) const {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_ || sector < 0 ||
      sector >= sectors_) {
    return false;
  }
  return covered_[BitIndex(row, col, sector)];
}

}  // namespace tvdp::geo
