#ifndef TVDP_GEO_BBOX_H_
#define TVDP_GEO_BBOX_H_

#include <string>

#include "geo/geo_point.h"

namespace tvdp::geo {

/// An axis-aligned geographic bounding box (min/max latitude & longitude).
/// Used for spatial range queries and as the "Scene Location" descriptor
/// (the MBR of the region depicted by an image's FOV).
///
/// Longitude wrap-around at the antimeridian is not modelled; TVDP targets
/// city-scale deployments.
struct BoundingBox {
  double min_lat = 1.0;
  double min_lon = 1.0;
  double max_lat = -1.0;
  double max_lon = -1.0;

  /// An empty (invalid) box; Extend() grows it from nothing.
  static BoundingBox Empty() { return BoundingBox{1.0, 1.0, -1.0, -1.0}; }

  /// Box spanning the two corner points.
  static BoundingBox FromCorners(const GeoPoint& a, const GeoPoint& b);

  /// Box around `center` reaching `radius_m` meters in each direction.
  static BoundingBox FromCenterRadius(const GeoPoint& center, double radius_m);

  /// True iff the box contains no points (never extended).
  bool IsEmpty() const { return min_lat > max_lat || min_lon > max_lon; }

  /// Grows the box to include `p`.
  void Extend(const GeoPoint& p);

  /// Grows the box to include `other`.
  void Extend(const BoundingBox& other);

  /// True iff `p` lies inside (inclusive).
  bool Contains(const GeoPoint& p) const;

  /// True iff `other` is fully inside this box.
  bool Contains(const BoundingBox& other) const;

  /// True iff the two boxes share any point.
  bool Intersects(const BoundingBox& other) const;

  /// Geometric center.
  GeoPoint Center() const;

  /// Degree-space area (used for index heuristics, not geodesy).
  double AreaDeg2() const;

  /// Degree-space perimeter.
  double PerimeterDeg() const;

  /// The intersection box (empty if disjoint).
  BoundingBox Intersection(const BoundingBox& other) const;

  std::string ToString() const;

  friend bool operator==(const BoundingBox& a, const BoundingBox& b) {
    return a.min_lat == b.min_lat && a.min_lon == b.min_lon &&
           a.max_lat == b.max_lat && a.max_lon == b.max_lon;
  }
};

}  // namespace tvdp::geo

#endif  // TVDP_GEO_BBOX_H_
