#include "geo/bbox.h"

#include <algorithm>

#include "common/strings.h"

namespace tvdp::geo {

BoundingBox BoundingBox::FromCorners(const GeoPoint& a, const GeoPoint& b) {
  BoundingBox box = Empty();
  box.Extend(a);
  box.Extend(b);
  return box;
}

BoundingBox BoundingBox::FromCenterRadius(const GeoPoint& center,
                                          double radius_m) {
  double dlat = RadToDeg(radius_m / kEarthRadiusMeters);
  double coslat = std::cos(DegToRad(center.lat));
  double dlon = coslat > 1e-9
                    ? RadToDeg(radius_m / (kEarthRadiusMeters * coslat))
                    : 180.0;
  BoundingBox box;
  box.min_lat = center.lat - dlat;
  box.max_lat = center.lat + dlat;
  box.min_lon = center.lon - dlon;
  box.max_lon = center.lon + dlon;
  return box;
}

void BoundingBox::Extend(const GeoPoint& p) {
  if (IsEmpty()) {
    min_lat = max_lat = p.lat;
    min_lon = max_lon = p.lon;
    return;
  }
  min_lat = std::min(min_lat, p.lat);
  max_lat = std::max(max_lat, p.lat);
  min_lon = std::min(min_lon, p.lon);
  max_lon = std::max(max_lon, p.lon);
}

void BoundingBox::Extend(const BoundingBox& other) {
  if (other.IsEmpty()) return;
  Extend(GeoPoint{other.min_lat, other.min_lon});
  Extend(GeoPoint{other.max_lat, other.max_lon});
}

bool BoundingBox::Contains(const GeoPoint& p) const {
  return !IsEmpty() && p.lat >= min_lat && p.lat <= max_lat &&
         p.lon >= min_lon && p.lon <= max_lon;
}

bool BoundingBox::Contains(const BoundingBox& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return other.min_lat >= min_lat && other.max_lat <= max_lat &&
         other.min_lon >= min_lon && other.max_lon <= max_lon;
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return !(other.min_lat > max_lat || other.max_lat < min_lat ||
           other.min_lon > max_lon || other.max_lon < min_lon);
}

GeoPoint BoundingBox::Center() const {
  return GeoPoint{(min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0};
}

double BoundingBox::AreaDeg2() const {
  if (IsEmpty()) return 0.0;
  return (max_lat - min_lat) * (max_lon - min_lon);
}

double BoundingBox::PerimeterDeg() const {
  if (IsEmpty()) return 0.0;
  return 2.0 * ((max_lat - min_lat) + (max_lon - min_lon));
}

BoundingBox BoundingBox::Intersection(const BoundingBox& other) const {
  if (!Intersects(other)) return Empty();
  BoundingBox out;
  out.min_lat = std::max(min_lat, other.min_lat);
  out.max_lat = std::min(max_lat, other.max_lat);
  out.min_lon = std::max(min_lon, other.min_lon);
  out.max_lon = std::min(max_lon, other.max_lon);
  return out;
}

std::string BoundingBox::ToString() const {
  if (IsEmpty()) return "[empty]";
  return StrFormat("[%.6f,%.6f]..[%.6f,%.6f]", min_lat, min_lon, max_lat,
                   max_lon);
}

}  // namespace tvdp::geo
