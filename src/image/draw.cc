#include "image/draw.h"

#include <algorithm>
#include <cmath>

namespace tvdp::image {
namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
}

}  // namespace

void FillRect(Image& img, int x, int y, int w, int h, Rgb color) {
  int x0 = std::max(x, 0), y0 = std::max(y, 0);
  int x1 = std::min(x + w, img.width()), y1 = std::min(y + h, img.height());
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) img.at(xx, yy) = color;
  }
}

void FillCircle(Image& img, int cx, int cy, int r, Rgb color) {
  if (r < 0) return;
  int x0 = std::max(cx - r, 0), x1 = std::min(cx + r, img.width() - 1);
  int y0 = std::max(cy - r, 0), y1 = std::min(cy + r, img.height() - 1);
  int r2 = r * r;
  for (int yy = y0; yy <= y1; ++yy) {
    for (int xx = x0; xx <= x1; ++xx) {
      int dx = xx - cx, dy = yy - cy;
      if (dx * dx + dy * dy <= r2) img.at(xx, yy) = color;
    }
  }
}

void FillTriangle(Image& img, int x0, int y0, int x1, int y1, int x2, int y2,
                  Rgb color) {
  int min_x = std::max(std::min({x0, x1, x2}), 0);
  int max_x = std::min(std::max({x0, x1, x2}), img.width() - 1);
  int min_y = std::max(std::min({y0, y1, y2}), 0);
  int max_y = std::min(std::max({y0, y1, y2}), img.height() - 1);
  auto edge = [](int ax, int ay, int bx, int by, int px, int py) {
    return static_cast<long long>(bx - ax) * (py - ay) -
           static_cast<long long>(by - ay) * (px - ax);
  };
  long long area = edge(x0, y0, x1, y1, x2, y2);
  if (area == 0) return;
  for (int yy = min_y; yy <= max_y; ++yy) {
    for (int xx = min_x; xx <= max_x; ++xx) {
      long long w0 = edge(x1, y1, x2, y2, xx, yy);
      long long w1 = edge(x2, y2, x0, y0, xx, yy);
      long long w2 = edge(x0, y0, x1, y1, xx, yy);
      bool all_nonneg = w0 >= 0 && w1 >= 0 && w2 >= 0;
      bool all_nonpos = w0 <= 0 && w1 <= 0 && w2 <= 0;
      if (all_nonneg || all_nonpos) img.at(xx, yy) = color;
    }
  }
}

void DrawLine(Image& img, int x0, int y0, int x1, int y1, Rgb color) {
  int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    img.Set(x0, y0, color);
    if (x0 == x1 && y0 == y1) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void DrawThickLine(Image& img, int x0, int y0, int x1, int y1, int thickness,
                   Rgb color) {
  int r = std::max(thickness / 2, 0);
  int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    FillCircle(img, x0, y0, r, color);
    if (x0 == x1 && y0 == y1) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void VerticalGradient(Image& img, int y0, int y1, Rgb top, Rgb bottom) {
  y0 = std::max(y0, 0);
  y1 = std::min(y1, img.height());
  if (y1 <= y0) return;
  for (int y = y0; y < y1; ++y) {
    double t = (y1 - y0) > 1 ? static_cast<double>(y - y0) / (y1 - y0 - 1) : 0;
    Rgb c = Blend(top, bottom, t);
    for (int x = 0; x < img.width(); ++x) img.at(x, y) = c;
  }
}

void SpeckleRect(Image& img, int x, int y, int w, int h, int amplitude,
                 Rng& rng) {
  int x0 = std::max(x, 0), y0 = std::max(y, 0);
  int x1 = std::min(x + w, img.width()), y1 = std::min(y + h, img.height());
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) {
      int d = static_cast<int>(rng.UniformInt(-amplitude, amplitude));
      Rgb& p = img.at(xx, yy);
      p.r = ClampByte(p.r + d);
      p.g = ClampByte(p.g + d);
      p.b = ClampByte(p.b + d);
    }
  }
}

void AddGaussianNoise(Image& img, double stddev, Rng& rng) {
  if (stddev <= 0) return;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      Rgb& p = img.at(x, y);
      p.r = ClampByte(p.r + rng.Normal(0, stddev));
      p.g = ClampByte(p.g + rng.Normal(0, stddev));
      p.b = ClampByte(p.b + rng.Normal(0, stddev));
    }
  }
}

void ScaleBrightness(Image& img, double factor) {
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      Rgb& p = img.at(x, y);
      p.r = ClampByte(p.r * factor);
      p.g = ClampByte(p.g * factor);
      p.b = ClampByte(p.b * factor);
    }
  }
}

}  // namespace tvdp::image
