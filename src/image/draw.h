#ifndef TVDP_IMAGE_DRAW_H_
#define TVDP_IMAGE_DRAW_H_

#include "common/rng.h"
#include "image/image.h"

namespace tvdp::image {

/// Rasterization primitives used by the synthetic street-scene generator.
/// All primitives clip against the image border.

/// Fills the axis-aligned rectangle [x, x+w) x [y, y+h).
void FillRect(Image& img, int x, int y, int w, int h, Rgb color);

/// Fills a solid disc of radius `r` centred at (cx, cy).
void FillCircle(Image& img, int cx, int cy, int r, Rgb color);

/// Fills the triangle with the given vertices (scanline rasterization).
void FillTriangle(Image& img, int x0, int y0, int x1, int y1, int x2, int y2,
                  Rgb color);

/// Draws a 1px Bresenham line.
void DrawLine(Image& img, int x0, int y0, int x1, int y1, Rgb color);

/// Draws a thick line by stamping discs along the Bresenham path.
void DrawThickLine(Image& img, int x0, int y0, int x1, int y1, int thickness,
                   Rgb color);

/// Vertical gradient from `top` to `bottom` over rows [y0, y1).
void VerticalGradient(Image& img, int y0, int y1, Rgb top, Rgb bottom);

/// Perturbs every pixel of the rectangle with zero-mean uniform channel
/// noise of amplitude `amplitude` (useful for matte textures).
void SpeckleRect(Image& img, int x, int y, int w, int h, int amplitude,
                 Rng& rng);

/// Adds zero-mean Gaussian noise (stddev in 8-bit counts) to all pixels.
void AddGaussianNoise(Image& img, double stddev, Rng& rng);

/// Multiplies every channel by `factor` (global illumination change).
void ScaleBrightness(Image& img, double factor);

}  // namespace tvdp::image

#endif  // TVDP_IMAGE_DRAW_H_
