#ifndef TVDP_IMAGE_SCENE_GEN_H_
#define TVDP_IMAGE_SCENE_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "image/image.h"

namespace tvdp::image {

/// The visual content classes of the street-cleanliness use case (paper
/// Fig. 5) plus graffiti, the second "translational" task of Sec. VII-B.
enum class SceneClass {
  kClean = 0,
  kBulkyItem,
  kIllegalDumping,
  kEncampment,
  kOvergrownVegetation,
  kGraffiti,
};

/// Number of street-cleanliness classes (excludes graffiti).
inline constexpr int kNumCleanlinessClasses = 5;
/// Total number of scene classes the generator can render.
inline constexpr int kNumSceneClasses = 6;

/// Stable label string for a class (e.g. "encampment").
std::string SceneClassName(SceneClass c);

/// Inverse of SceneClassName; returns kClean for unknown names.
SceneClass SceneClassFromName(const std::string& name);

/// A labelled region within a generated scene (drives the part-of-image
/// annotation descriptors of the data model).
struct SceneObject {
  SceneClass label = SceneClass::kClean;
  int x = 0;  ///< left, pixels
  int y = 0;  ///< top, pixels
  int w = 0;
  int h = 0;
};

/// A generated street scene: the raster plus ground-truth object regions.
struct Scene {
  Image image;
  SceneClass label = SceneClass::kClean;
  std::vector<SceneObject> objects;
};

/// Configuration for the synthetic street-scene renderer.
struct SceneGenConfig {
  int width = 64;
  int height = 64;
  /// 0 = trivially separable classes, 1 = heavily cluttered/confusable.
  /// Drives sensor noise, illumination spread, distractor density, and the
  /// probability of small off-class contamination objects.
  double difficulty = 0.5;
};

/// Deterministic renderer of synthetic street scenes, one per class, with
/// intra-class variation (layout, colors, illumination, clutter) controlled
/// entirely by the caller-provided Rng. This is TVDP's stand-in for the
/// 22K-image LASAN dataset: every downstream feature extractor operates on
/// these pixels exactly as it would on photographs.
///
/// Class design notes (so the reproduction matches the paper's per-class
/// F1 ordering, Fig. 7):
///  * overgrown vegetation has a dominant and distinctive hue mass, making
///    it the easiest class (highest F1, even for the color histogram);
///  * encampment tents share shapes with bulky items and colors with
///    dumping piles, making it the hardest class (lowest F1);
///  * clean scenes still contain benign street furniture so that "clean"
///    is not simply "empty".
class StreetSceneGenerator {
 public:
  explicit StreetSceneGenerator(SceneGenConfig config = {});

  const SceneGenConfig& config() const { return config_; }

  /// Renders one scene of class `label` with randomness from `rng`.
  Scene Generate(SceneClass label, Rng& rng) const;

 private:
  void DrawBaseStreet(Image& img, Rng& rng) const;
  void DrawDistractors(Image& img, Rng& rng) const;
  void DrawBulkyItem(Scene& scene, Rng& rng, bool contaminant) const;
  void DrawIllegalDumping(Scene& scene, Rng& rng, bool contaminant) const;
  void DrawEncampment(Scene& scene, Rng& rng, bool contaminant) const;
  void DrawVegetation(Scene& scene, Rng& rng, bool contaminant) const;
  void DrawGraffiti(Scene& scene, Rng& rng, bool contaminant) const;
  void DrawMotif(Scene& scene, SceneClass label, Rng& rng,
                 bool contaminant) const;

  SceneGenConfig config_;
};

}  // namespace tvdp::image

#endif  // TVDP_IMAGE_SCENE_GEN_H_
