#ifndef TVDP_IMAGE_AUGMENT_H_
#define TVDP_IMAGE_AUGMENT_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "image/image.h"

namespace tvdp::image {

/// Image augmentation operators (paper Sec. IV-B: stored visual data is
/// "original" or "augmented"; augmented images are synthesized by image
/// processing such as cropping and rotating — the Augmentor-style pipeline).

/// Horizontal mirror.
Image FlipHorizontal(const Image& img);

/// Vertical mirror.
Image FlipVertical(const Image& img);

/// Rotation by an arbitrary angle about the image center (nearest-neighbour
/// sampling; uncovered pixels take `fill`).
Image Rotate(const Image& img, double degrees, Rgb fill = Rgb{0, 0, 0});

/// Random crop keeping `keep_fraction` of each dimension, resized back to
/// the original size.
Result<Image> RandomCropResize(const Image& img, double keep_fraction,
                               Rng& rng);

/// One augmentation step description.
enum class AugmentOp {
  kFlipHorizontal,
  kRotateSmall,    ///< rotate by U(-12, 12) degrees
  kCropResize,     ///< random 85% crop, resized back
  kBrightness,     ///< brightness scale U(0.75, 1.25)
  kGaussianNoise,  ///< additive noise, stddev 6
};

/// A reproducible augmentation pipeline: applies a random subset/ordering
/// of the configured ops to produce `count` augmented variants per input.
class Augmentor {
 public:
  /// Uses all ops by default.
  Augmentor();
  explicit Augmentor(std::vector<AugmentOp> ops);

  /// Generates `count` augmented variants of `img` using randomness from
  /// `rng`. Each variant applies 1-3 ops.
  std::vector<Image> Generate(const Image& img, int count, Rng& rng) const;

  /// Applies a single op with randomness from `rng`.
  Image ApplyOp(const Image& img, AugmentOp op, Rng& rng) const;

 private:
  std::vector<AugmentOp> ops_;
};

}  // namespace tvdp::image

#endif  // TVDP_IMAGE_AUGMENT_H_
