#include "image/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace tvdp::image {

Hsv RgbToHsv(const Rgb& c) {
  double r = c.r / 255.0, g = c.g / 255.0, b = c.b / 255.0;
  double mx = std::max({r, g, b});
  double mn = std::min({r, g, b});
  double d = mx - mn;
  Hsv out;
  out.v = mx;
  out.s = mx > 0 ? d / mx : 0;
  if (d < 1e-12) {
    out.h = 0;
  } else if (mx == r) {
    out.h = 60.0 * std::fmod((g - b) / d, 6.0);
  } else if (mx == g) {
    out.h = 60.0 * ((b - r) / d + 2.0);
  } else {
    out.h = 60.0 * ((r - g) / d + 4.0);
  }
  if (out.h < 0) out.h += 360.0;
  return out;
}

Rgb HsvToRgb(const Hsv& c) {
  double h = std::fmod(c.h, 360.0);
  if (h < 0) h += 360.0;
  double s = std::clamp(c.s, 0.0, 1.0);
  double v = std::clamp(c.v, 0.0, 1.0);
  double cc = v * s;
  double x = cc * (1 - std::abs(std::fmod(h / 60.0, 2.0) - 1));
  double m = v - cc;
  double r = 0, g = 0, b = 0;
  if (h < 60) { r = cc; g = x; }
  else if (h < 120) { r = x; g = cc; }
  else if (h < 180) { g = cc; b = x; }
  else if (h < 240) { g = x; b = cc; }
  else if (h < 300) { r = x; b = cc; }
  else { r = cc; b = x; }
  auto to8 = [&](double t) {
    return static_cast<uint8_t>(std::lround(std::clamp(t + m, 0.0, 1.0) * 255));
  };
  return Rgb{to8(r), to8(g), to8(b)};
}

Rgb Blend(const Rgb& a, const Rgb& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto mix = [&](uint8_t x, uint8_t y) {
    return static_cast<uint8_t>(std::lround(x * (1 - t) + y * t));
  };
  return Rgb{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

Image::Image(int width, int height, Rgb fill)
    : width_(std::max(width, 0)),
      height_(std::max(height, 0)),
      pixels_(static_cast<size_t>(width_) * height_, fill) {}

void Image::Fill(Rgb c) { std::fill(pixels_.begin(), pixels_.end(), c); }

std::vector<float> Image::ToGray() const {
  std::vector<float> out(pixel_count());
  for (size_t i = 0; i < pixels_.size(); ++i) {
    const Rgb& p = pixels_[i];
    out[i] = (0.299f * p.r + 0.587f * p.g + 0.114f * p.b) / 255.0f;
  }
  return out;
}

Result<Image> Image::Resize(int new_width, int new_height) const {
  if (new_width <= 0 || new_height <= 0) {
    return Status::InvalidArgument("resize target must be positive");
  }
  if (empty()) return Status::FailedPrecondition("cannot resize empty image");
  Image out(new_width, new_height);
  double sx = static_cast<double>(width_) / new_width;
  double sy = static_cast<double>(height_) / new_height;
  for (int y = 0; y < new_height; ++y) {
    double fy = (y + 0.5) * sy - 0.5;
    int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, height_ - 1);
    int y1 = std::min(y0 + 1, height_ - 1);
    double ty = std::clamp(fy - y0, 0.0, 1.0);
    for (int x = 0; x < new_width; ++x) {
      double fx = (x + 0.5) * sx - 0.5;
      int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0, width_ - 1);
      int x1 = std::min(x0 + 1, width_ - 1);
      double tx = std::clamp(fx - x0, 0.0, 1.0);
      auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
      const Rgb& p00 = at(x0, y0);
      const Rgb& p10 = at(x1, y0);
      const Rgb& p01 = at(x0, y1);
      const Rgb& p11 = at(x1, y1);
      auto channel = [&](uint8_t Rgb::*ch) {
        double top = lerp(p00.*ch, p10.*ch, tx);
        double bot = lerp(p01.*ch, p11.*ch, tx);
        return static_cast<uint8_t>(
            std::lround(std::clamp(lerp(top, bot, ty), 0.0, 255.0)));
      };
      out.at(x, y) = Rgb{channel(&Rgb::r), channel(&Rgb::g), channel(&Rgb::b)};
    }
  }
  return out;
}

Result<Image> Image::Crop(int x, int y, int w, int h) const {
  int x0 = std::max(x, 0);
  int y0 = std::max(y, 0);
  int x1 = std::min(x + w, width_);
  int y1 = std::min(y + h, height_);
  if (x1 <= x0 || y1 <= y0) {
    return Status::InvalidArgument("crop rectangle outside image");
  }
  Image out(x1 - x0, y1 - y0);
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) {
      out.at(xx - x0, yy - y0) = at(xx, yy);
    }
  }
  return out;
}

std::vector<uint8_t> EncodePpm(const Image& img) {
  char header[64];
  int n = std::snprintf(header, sizeof(header), "P6\n%d %d\n255\n",
                        img.width(), img.height());
  std::vector<uint8_t> out(header, header + n);
  out.reserve(out.size() + img.pixel_count() * 3);
  for (const Rgb& p : img.pixels()) {
    out.push_back(p.r);
    out.push_back(p.g);
    out.push_back(p.b);
  }
  return out;
}

Result<Image> DecodePpm(const std::vector<uint8_t>& bytes) {
  // Minimal P6 parser: "P6\n<w> <h>\n255\n" followed by raw bytes. Comments
  // are not supported (we only parse what EncodePpm produces).
  int w = 0, h = 0, maxv = 0, consumed = 0;
  if (bytes.size() < 11 ||
      std::sscanf(reinterpret_cast<const char*>(bytes.data()),
                  "P6\n%d %d\n%d\n%n", &w, &h, &maxv, &consumed) != 3) {
    return Status::InvalidArgument("not a P6 PPM");
  }
  if (w <= 0 || h <= 0 || maxv != 255) {
    return Status::InvalidArgument("unsupported PPM geometry");
  }
  size_t need = static_cast<size_t>(consumed) + static_cast<size_t>(w) * h * 3;
  if (bytes.size() < need) {
    return Status::InvalidArgument("truncated PPM payload");
  }
  Image img(w, h);
  const uint8_t* p = bytes.data() + consumed;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.at(x, y) = Rgb{p[0], p[1], p[2]};
      p += 3;
    }
  }
  return img;
}

}  // namespace tvdp::image
