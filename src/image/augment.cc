#include "image/augment.h"

#include <algorithm>
#include <cmath>

#include "image/draw.h"

namespace tvdp::image {

Image FlipHorizontal(const Image& img) {
  Image out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.at(img.width() - 1 - x, y) = img.at(x, y);
    }
  }
  return out;
}

Image FlipVertical(const Image& img) {
  Image out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.at(x, img.height() - 1 - y) = img.at(x, y);
    }
  }
  return out;
}

Image Rotate(const Image& img, double degrees, Rgb fill) {
  Image out(img.width(), img.height(), fill);
  if (img.empty()) return out;
  double rad = degrees * M_PI / 180.0;
  double c = std::cos(rad), s = std::sin(rad);
  double cx = (img.width() - 1) / 2.0, cy = (img.height() - 1) / 2.0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      // Inverse-map destination -> source.
      double dx = x - cx, dy = y - cy;
      double sx = c * dx + s * dy + cx;
      double sy = -s * dx + c * dy + cy;
      int ix = static_cast<int>(std::lround(sx));
      int iy = static_cast<int>(std::lround(sy));
      if (img.Inside(ix, iy)) out.at(x, y) = img.at(ix, iy);
    }
  }
  return out;
}

Result<Image> RandomCropResize(const Image& img, double keep_fraction,
                               Rng& rng) {
  if (keep_fraction <= 0 || keep_fraction > 1) {
    return Status::InvalidArgument("keep_fraction must be in (0, 1]");
  }
  if (img.empty()) return Status::FailedPrecondition("empty image");
  int cw = std::max(1, static_cast<int>(img.width() * keep_fraction));
  int ch = std::max(1, static_cast<int>(img.height() * keep_fraction));
  int max_x = img.width() - cw;
  int max_y = img.height() - ch;
  int x = max_x > 0 ? static_cast<int>(rng.UniformInt(0, max_x)) : 0;
  int y = max_y > 0 ? static_cast<int>(rng.UniformInt(0, max_y)) : 0;
  TVDP_ASSIGN_OR_RETURN(Image cropped, img.Crop(x, y, cw, ch));
  return cropped.Resize(img.width(), img.height());
}

Augmentor::Augmentor()
    : ops_{AugmentOp::kFlipHorizontal, AugmentOp::kRotateSmall,
           AugmentOp::kCropResize, AugmentOp::kBrightness,
           AugmentOp::kGaussianNoise} {}

Augmentor::Augmentor(std::vector<AugmentOp> ops) : ops_(std::move(ops)) {}

Image Augmentor::ApplyOp(const Image& img, AugmentOp op, Rng& rng) const {
  switch (op) {
    case AugmentOp::kFlipHorizontal:
      return FlipHorizontal(img);
    case AugmentOp::kRotateSmall:
      return Rotate(img, rng.Uniform(-12.0, 12.0));
    case AugmentOp::kCropResize: {
      auto r = RandomCropResize(img, 0.85, rng);
      return r.ok() ? std::move(r).value() : img;
    }
    case AugmentOp::kBrightness: {
      Image out = img;
      ScaleBrightness(out, rng.Uniform(0.75, 1.25));
      return out;
    }
    case AugmentOp::kGaussianNoise: {
      Image out = img;
      AddGaussianNoise(out, 6.0, rng);
      return out;
    }
  }
  return img;
}

std::vector<Image> Augmentor::Generate(const Image& img, int count,
                                       Rng& rng) const {
  std::vector<Image> out;
  if (ops_.empty() || count <= 0) return out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Image v = img;
    int steps = static_cast<int>(rng.UniformInt(1, 3));
    for (int s = 0; s < steps; ++s) {
      AugmentOp op = ops_[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(ops_.size()) - 1))];
      v = ApplyOp(v, op, rng);
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace tvdp::image
