#ifndef TVDP_IMAGE_IMAGE_H_
#define TVDP_IMAGE_IMAGE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace tvdp::image {

/// An 8-bit RGB pixel.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  friend bool operator==(const Rgb& a, const Rgb& b) {
    return a.r == b.r && a.g == b.g && a.b == b.b;
  }
};

/// Hue/saturation/value with h in [0, 360), s and v in [0, 1].
struct Hsv {
  double h = 0;
  double s = 0;
  double v = 0;
};

/// Converts an RGB pixel to HSV.
Hsv RgbToHsv(const Rgb& c);

/// Converts HSV back to RGB (h wrapped into [0,360), s/v clamped to [0,1]).
Rgb HsvToRgb(const Hsv& c);

/// Linear blend of two colors: a*(1-t) + b*t.
Rgb Blend(const Rgb& a, const Rgb& b, double t);

/// An owned, dense, row-major 8-bit RGB raster. All of TVDP's visual
/// descriptors (color histogram, SIFT-BoW, CNN features) are computed from
/// this representation; the synthetic street-scene generator renders into it.
class Image {
 public:
  /// An empty 0x0 image.
  Image() = default;

  /// A width x height image filled with `fill`.
  Image(int width, int height, Rgb fill = Rgb{0, 0, 0});

  Image(const Image&) = default;
  Image& operator=(const Image&) = default;
  Image(Image&&) = default;
  Image& operator=(Image&&) = default;

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }
  size_t pixel_count() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(height_);
  }

  /// Unchecked pixel access; (x, y) must be inside the image.
  const Rgb& at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  Rgb& at(int x, int y) {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }

  /// Checked pixel write; silently ignores out-of-bounds coordinates
  /// (convenient for drawing primitives that clip at the border).
  void Set(int x, int y, Rgb c) {
    if (x >= 0 && x < width_ && y >= 0 && y < height_) at(x, y) = c;
  }

  /// True iff (x, y) is inside the image.
  bool Inside(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Fills the whole image with `c`.
  void Fill(Rgb c);

  /// Luma (ITU-R BT.601) grayscale plane scaled to [0, 1].
  std::vector<float> ToGray() const;

  /// Bilinear resize; returns InvalidArgument for non-positive target sizes.
  Result<Image> Resize(int new_width, int new_height) const;

  /// Crop to the given rectangle; clipped against image bounds. Returns
  /// InvalidArgument when the clipped rectangle is empty.
  Result<Image> Crop(int x, int y, int w, int h) const;

  /// Raw interleaved RGB bytes, row-major.
  const std::vector<Rgb>& pixels() const { return pixels_; }

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

/// Serializes to binary PPM (P6) bytes — handy for eyeballing generated
/// scenes and for size accounting in the storage layer.
std::vector<uint8_t> EncodePpm(const Image& img);

/// Parses binary PPM (P6) bytes.
Result<Image> DecodePpm(const std::vector<uint8_t>& bytes);

}  // namespace tvdp::image

#endif  // TVDP_IMAGE_IMAGE_H_
