#include "image/scene_gen.h"

#include <algorithm>
#include <cmath>

#include "image/draw.h"

namespace tvdp::image {
namespace {

// Layout fractions of the rendered scene (top to bottom):
// sky | building facade | sidewalk | road.
constexpr double kSkyFrac = 0.30;
constexpr double kFacadeFrac = 0.30;
constexpr double kSidewalkFrac = 0.22;

struct Layout {
  int sky_end;
  int facade_end;
  int sidewalk_end;  // road occupies [sidewalk_end, height)
};

Layout ComputeLayout(int height) {
  Layout l;
  l.sky_end = static_cast<int>(height * kSkyFrac);
  l.facade_end = l.sky_end + static_cast<int>(height * kFacadeFrac);
  l.sidewalk_end = l.facade_end + static_cast<int>(height * kSidewalkFrac);
  return l;
}

Rgb JitterColor(Rgb base, int amp, Rng& rng) {
  auto j = [&](uint8_t v) {
    int d = static_cast<int>(rng.UniformInt(-amp, amp));
    return static_cast<uint8_t>(std::clamp(v + d, 0, 255));
  };
  return Rgb{j(base.r), j(base.g), j(base.b)};
}

}  // namespace

std::string SceneClassName(SceneClass c) {
  switch (c) {
    case SceneClass::kClean: return "clean";
    case SceneClass::kBulkyItem: return "bulky_item";
    case SceneClass::kIllegalDumping: return "illegal_dumping";
    case SceneClass::kEncampment: return "encampment";
    case SceneClass::kOvergrownVegetation: return "overgrown_vegetation";
    case SceneClass::kGraffiti: return "graffiti";
  }
  return "clean";
}

SceneClass SceneClassFromName(const std::string& name) {
  for (int i = 0; i < kNumSceneClasses; ++i) {
    SceneClass c = static_cast<SceneClass>(i);
    if (SceneClassName(c) == name) return c;
  }
  return SceneClass::kClean;
}

StreetSceneGenerator::StreetSceneGenerator(SceneGenConfig config)
    : config_(config) {
  config_.width = std::max(config_.width, 16);
  config_.height = std::max(config_.height, 16);
  config_.difficulty = std::clamp(config_.difficulty, 0.0, 1.0);
}

void StreetSceneGenerator::DrawBaseStreet(Image& img, Rng& rng) const {
  const Layout l = ComputeLayout(img.height());
  // Sky: light gradient with slight daily color variation.
  Rgb sky_top = JitterColor(Rgb{150, 185, 225}, 25, rng);
  Rgb sky_bot = JitterColor(Rgb{205, 220, 235}, 20, rng);
  VerticalGradient(img, 0, l.sky_end, sky_top, sky_bot);

  // Building facade: one or two buildings with window grid.
  Rgb wall = JitterColor(Rgb{172, 150, 128}, 35, rng);
  FillRect(img, 0, l.sky_end, img.width(), l.facade_end - l.sky_end, wall);
  int split = -1;
  if (rng.Bernoulli(0.5)) {
    split = static_cast<int>(rng.UniformInt(img.width() / 4,
                                            3 * img.width() / 4));
    Rgb wall2 = JitterColor(Rgb{138, 132, 140}, 30, rng);
    FillRect(img, split, l.sky_end, img.width() - split,
             l.facade_end - l.sky_end, wall2);
  }
  // Windows.
  Rgb window = JitterColor(Rgb{70, 85, 105}, 15, rng);
  int win_w = std::max(img.width() / 16, 2);
  int win_h = std::max((l.facade_end - l.sky_end) / 5, 2);
  for (int y = l.sky_end + win_h / 2; y + win_h < l.facade_end;
       y += 2 * win_h) {
    for (int x = win_w; x + win_w < img.width(); x += 3 * win_w) {
      FillRect(img, x, y, win_w, win_h, window);
    }
  }
  // Sidewalk: light concrete with seam lines.
  Rgb walk = JitterColor(Rgb{190, 188, 182}, 18, rng);
  FillRect(img, 0, l.facade_end, img.width(), l.sidewalk_end - l.facade_end,
           walk);
  Rgb seam = Blend(walk, Rgb{90, 90, 90}, 0.4);
  for (int x = img.width() / 6; x < img.width(); x += img.width() / 5) {
    DrawLine(img, x, l.facade_end, x + img.width() / 20, l.sidewalk_end - 1,
             seam);
  }
  // Road: dark asphalt with a lane marking.
  Rgb road = JitterColor(Rgb{72, 72, 76}, 14, rng);
  FillRect(img, 0, l.sidewalk_end, img.width(),
           img.height() - l.sidewalk_end, road);
  Rgb lane = Rgb{210, 200, 90};
  int lane_y = l.sidewalk_end + (img.height() - l.sidewalk_end) * 2 / 3;
  for (int x = 0; x < img.width(); x += img.width() / 6) {
    FillRect(img, x, lane_y, img.width() / 12, 2, lane);
  }
}

void StreetSceneGenerator::DrawDistractors(Image& img, Rng& rng) const {
  const Layout l = ComputeLayout(img.height());
  double density = 0.20 + 0.5 * config_.difficulty;
  // Street pole.
  if (rng.Bernoulli(density)) {
    int x = static_cast<int>(rng.UniformInt(2, img.width() - 3));
    Rgb pole = Rgb{60, 60, 62};
    FillRect(img, x, l.sky_end, 2, l.sidewalk_end - l.sky_end, pole);
  }
  // Trash bin (benign street furniture: dark green cylinder-ish).
  if (rng.Bernoulli(density * 0.8)) {
    int w = img.width() / 12;
    int x = static_cast<int>(rng.UniformInt(0, img.width() - w - 1));
    int y = l.sidewalk_end - img.height() / 10;
    FillRect(img, x, y, w, img.height() / 10, Rgb{40, 72, 48});
  }
  // Parked car silhouette on the road (rectangle + wheels) — intentionally
  // shares coarse shape statistics with bulky items.
  if (rng.Bernoulli(density)) {
    int w = img.width() / 4;
    int h = img.height() / 10;
    int x = static_cast<int>(rng.UniformInt(0, img.width() - w - 1));
    int y = l.sidewalk_end + 1;
    Rgb body = JitterColor(Rgb{95, 100, 120}, 40, rng);
    FillRect(img, x, y, w, h, body);
    FillCircle(img, x + w / 5, y + h, h / 3, Rgb{25, 25, 25});
    FillCircle(img, x + 4 * w / 5, y + h, h / 3, Rgb{25, 25, 25});
  }
  // Pedestrian (thin vertical blob).
  if (rng.Bernoulli(density * 0.6)) {
    int x = static_cast<int>(rng.UniformInt(2, img.width() - 4));
    int h = img.height() / 7;
    int y = l.sidewalk_end - h;
    Rgb shirt = JitterColor(Rgb{150, 80, 80}, 60, rng);
    FillRect(img, x, y, 3, h * 2 / 3, shirt);
    FillCircle(img, x + 1, y - 2, 2, Rgb{205, 170, 140});
  }
}

void StreetSceneGenerator::DrawBulkyItem(Scene& scene, Rng& rng,
                                         bool contaminant) const {
  Image& img = scene.image;
  const Layout l = ComputeLayout(img.height());
  double scale = contaminant ? 0.4 : 1.0;
  int count = contaminant ? 1 : static_cast<int>(rng.UniformInt(1, 2));
  for (int i = 0; i < count; ++i) {
    int w = static_cast<int>(img.width() * rng.Uniform(0.22, 0.40) * scale);
    int h = static_cast<int>(img.height() * rng.Uniform(0.14, 0.24) * scale);
    w = std::max(w, 4);
    h = std::max(h, 3);
    int x = static_cast<int>(rng.UniformInt(0, std::max(img.width() - w - 1, 1)));
    int base_y = l.sidewalk_end - 1;
    int y = base_y - h;
    // Furniture body: warm wood/upholstery tones.
    Rgb body = JitterColor(rng.Bernoulli(0.5) ? Rgb{140, 96, 60}
                                              : Rgb{120, 110, 130},
                           25, rng);
    FillRect(img, x, y, w, h, body);
    if (rng.Bernoulli(0.7)) {
      // Couch: backrest + armrests.
      Rgb dark = Blend(body, Rgb{0, 0, 0}, 0.25);
      FillRect(img, x, y - h / 2, w, h / 2, dark);
      FillRect(img, x, y - h / 3, w / 6, h + h / 3, dark);
      FillRect(img, x + w - w / 6, y - h / 3, w / 6, h + h / 3, dark);
    } else {
      // Dresser: drawer seams.
      Rgb seam = Blend(body, Rgb{0, 0, 0}, 0.5);
      for (int d = 1; d <= 2; ++d) {
        DrawLine(img, x, y + d * h / 3, x + w - 1, y + d * h / 3, seam);
      }
    }
    // Legs.
    Rgb leg = Rgb{50, 40, 30};
    FillRect(img, x + 1, base_y, 2, 2, leg);
    FillRect(img, x + w - 3, base_y, 2, 2, leg);
    scene.objects.push_back(
        SceneObject{SceneClass::kBulkyItem, x, y - h / 2, w, h + h / 2});
  }
}

void StreetSceneGenerator::DrawIllegalDumping(Scene& scene, Rng& rng,
                                              bool contaminant) const {
  Image& img = scene.image;
  const Layout l = ComputeLayout(img.height());
  int bags = contaminant ? 2 : static_cast<int>(rng.UniformInt(4, 9));
  int cx = static_cast<int>(rng.UniformInt(img.width() / 6,
                                           5 * img.width() / 6));
  int spread = img.width() / (contaminant ? 10 : 5);
  int min_x = img.width(), min_y = img.height(), max_x = 0, max_y = 0;
  for (int i = 0; i < bags; ++i) {
    int r = std::max(
        2, static_cast<int>(img.width() * rng.Uniform(0.03, 0.07) *
                            (contaminant ? 0.6 : 1.0)));
    int x = cx + static_cast<int>(rng.UniformInt(-spread, spread));
    int y = l.sidewalk_end - 2 -
            static_cast<int>(rng.UniformInt(0, img.height() / 14));
    // Trash bags: dark plastic, frequently white (the visually distinct
    // municipal bags), occasionally brown debris.
    double shade = rng.Uniform();
    Rgb bag = shade < 0.45 ? JitterColor(Rgb{38, 38, 44}, 12, rng)
              : shade < 0.80 ? JitterColor(Rgb{215, 215, 210}, 15, rng)
                             : JitterColor(Rgb{90, 60, 45}, 20, rng);
    FillCircle(img, x, y, r, bag);
    // Specular highlight on plastic.
    FillCircle(img, x - r / 3, y - r / 3, std::max(r / 4, 1),
               Blend(bag, Rgb{255, 255, 255}, 0.45));
    min_x = std::min(min_x, x - r);
    min_y = std::min(min_y, y - r);
    max_x = std::max(max_x, x + r);
    max_y = std::max(max_y, y + r);
  }
  // Scattered loose debris.
  int debris = contaminant ? 4 : static_cast<int>(rng.UniformInt(8, 20));
  for (int i = 0; i < debris; ++i) {
    int x = cx + static_cast<int>(rng.UniformInt(-spread * 2, spread * 2));
    int y = l.sidewalk_end - 1 -
            static_cast<int>(rng.UniformInt(0, img.height() / 12));
    img.Set(x, y, JitterColor(Rgb{120, 110, 95}, 60, rng));
  }
  if (max_x > min_x) {
    scene.objects.push_back(SceneObject{SceneClass::kIllegalDumping, min_x,
                                        min_y, max_x - min_x, max_y - min_y});
  }
}

void StreetSceneGenerator::DrawEncampment(Scene& scene, Rng& rng,
                                          bool contaminant) const {
  Image& img = scene.image;
  const Layout l = ComputeLayout(img.height());
  int tents = contaminant ? 1 : static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < tents; ++i) {
    int w = static_cast<int>(img.width() * rng.Uniform(0.22, 0.38) *
                             (contaminant ? 0.5 : 1.0));
    int h = static_cast<int>(w * rng.Uniform(0.55, 0.8));
    w = std::max(w, 5);
    h = std::max(h, 4);
    int x = static_cast<int>(
        rng.UniformInt(0, std::max(img.width() - w - 1, 1)));
    int base_y = l.sidewalk_end - 1;
    // Tarp colors deliberately overlap bulky-item and dumping palettes
    // (blue/grey/olive) so encampment is the hardest class, as in Fig. 7.
    Rgb tarp;
    double pick = rng.Uniform();
    if (pick < 0.60) tarp = JitterColor(Rgb{60, 95, 150}, 25, rng);        // blue
    else if (pick < 0.82) tarp = JitterColor(Rgb{120, 120, 125}, 20, rng); // grey
    else tarp = JitterColor(Rgb{100, 110, 70}, 20, rng);                   // olive
    // Ridge tent: triangle with a darker right face for shading.
    int apex_x = x + w / 2;
    int apex_y = base_y - h;
    FillTriangle(img, x, base_y, apex_x, apex_y, x + w, base_y, tarp);
    FillTriangle(img, apex_x, apex_y, x + w, base_y, x + w * 3 / 4,
                 base_y, Blend(tarp, Rgb{0, 0, 0}, 0.3));
    // Dark entrance.
    FillTriangle(img, apex_x - w / 8, base_y, apex_x, base_y - h / 2,
                 apex_x + w / 8, base_y, Rgb{25, 25, 28});
    // Occasionally a shopping cart / belongings pile next to the tent.
    if (!contaminant && rng.Bernoulli(0.5)) {
      int px = std::min(x + w + 2, img.width() - 4);
      FillRect(img, px, base_y - 4, 4, 4, JitterColor(Rgb{130, 130, 135}, 25, rng));
    }
    scene.objects.push_back(
        SceneObject{SceneClass::kEncampment, x, apex_y, w, h});
  }
}

void StreetSceneGenerator::DrawVegetation(Scene& scene, Rng& rng,
                                          bool contaminant) const {
  Image& img = scene.image;
  const Layout l = ComputeLayout(img.height());
  // Overgrown mass: many overlapping green discs spilling from the facade
  // line over the sidewalk. Dominant distinctive hue => easiest class.
  int clumps = contaminant ? 6 : static_cast<int>(rng.UniformInt(18, 36));
  int cx = static_cast<int>(rng.UniformInt(img.width() / 5,
                                           4 * img.width() / 5));
  int cy = l.facade_end;
  int spread_x = img.width() / (contaminant ? 8 : 3);
  int spread_y = (l.sidewalk_end - l.sky_end) / 2;
  int min_x = img.width(), min_y = img.height(), max_x = 0, max_y = 0;
  for (int i = 0; i < clumps; ++i) {
    int x = cx + static_cast<int>(rng.UniformInt(-spread_x, spread_x));
    int y = cy + static_cast<int>(rng.UniformInt(-spread_y, spread_y / 2));
    int r = std::max(2, static_cast<int>(img.width() * rng.Uniform(0.03, 0.08) *
                                         (contaminant ? 0.6 : 1.0)));
    double green = rng.Uniform(0.5, 1.0);
    Rgb leaf{static_cast<uint8_t>(30 + 50 * rng.Uniform()),
             static_cast<uint8_t>(90 + 110 * green),
             static_cast<uint8_t>(25 + 45 * rng.Uniform())};
    FillCircle(img, x, y, r, leaf);
    min_x = std::min(min_x, x - r);
    min_y = std::min(min_y, y - r);
    max_x = std::max(max_x, x + r);
    max_y = std::max(max_y, y + r);
  }
  // Grass tufts along the sidewalk seam.
  int tufts = contaminant ? 3 : 12;
  for (int i = 0; i < tufts; ++i) {
    int x = static_cast<int>(rng.UniformInt(0, img.width() - 1));
    int y = l.sidewalk_end - 1 - static_cast<int>(rng.UniformInt(0, 3));
    DrawLine(img, x, y, x + static_cast<int>(rng.UniformInt(-1, 1)), y - 3,
             Rgb{60, 140, 50});
  }
  if (max_x > min_x) {
    scene.objects.push_back(SceneObject{SceneClass::kOvergrownVegetation,
                                        min_x, min_y, max_x - min_x,
                                        max_y - min_y});
  }
}

void StreetSceneGenerator::DrawGraffiti(Scene& scene, Rng& rng,
                                        bool contaminant) const {
  Image& img = scene.image;
  const Layout l = ComputeLayout(img.height());
  int strokes = contaminant ? 2 : static_cast<int>(rng.UniformInt(3, 7));
  int min_x = img.width(), min_y = img.height(), max_x = 0, max_y = 0;
  for (int i = 0; i < strokes; ++i) {
    // Saturated spray-paint hues on the facade band.
    Hsv hsv{rng.Uniform(0, 360), rng.Uniform(0.7, 1.0), rng.Uniform(0.6, 1.0)};
    Rgb paint = HsvToRgb(hsv);
    int x0 = static_cast<int>(rng.UniformInt(2, std::max(img.width() - 3, 3)));
    int y0 = static_cast<int>(rng.UniformInt(
        l.sky_end + 2, std::max(l.facade_end - 3, l.sky_end + 2)));
    int len = static_cast<int>(img.width() * rng.Uniform(0.15, 0.4) *
                               (contaminant ? 0.5 : 1.0));
    // Wavy stroke: a few connected segments.
    int x = x0, y = y0;
    int segs = 3;
    for (int s = 0; s < segs; ++s) {
      int nx = std::clamp(x + static_cast<int>(rng.UniformInt(-len / segs,
                                                              len / segs)),
                          0, img.width() - 1);
      int ny = std::clamp(
          y + static_cast<int>(rng.UniformInt(-img.height() / 12,
                                              img.height() / 12)),
          l.sky_end, l.facade_end - 1);
      DrawThickLine(img, x, y, nx, ny, contaminant ? 1 : 2, paint);
      min_x = std::min({min_x, x, nx});
      max_x = std::max({max_x, x, nx});
      min_y = std::min({min_y, y, ny});
      max_y = std::max({max_y, y, ny});
      x = nx;
      y = ny;
    }
  }
  if (max_x > min_x) {
    scene.objects.push_back(SceneObject{SceneClass::kGraffiti, min_x, min_y,
                                        max_x - min_x,
                                        std::max(max_y - min_y, 1)});
  }
}

void StreetSceneGenerator::DrawMotif(Scene& scene, SceneClass label, Rng& rng,
                                     bool contaminant) const {
  switch (label) {
    case SceneClass::kClean:
      break;
    case SceneClass::kBulkyItem:
      DrawBulkyItem(scene, rng, contaminant);
      break;
    case SceneClass::kIllegalDumping:
      DrawIllegalDumping(scene, rng, contaminant);
      break;
    case SceneClass::kEncampment:
      DrawEncampment(scene, rng, contaminant);
      break;
    case SceneClass::kOvergrownVegetation:
      DrawVegetation(scene, rng, contaminant);
      break;
    case SceneClass::kGraffiti:
      DrawGraffiti(scene, rng, contaminant);
      break;
  }
}

Scene StreetSceneGenerator::Generate(SceneClass label, Rng& rng) const {
  Scene scene;
  scene.label = label;
  scene.image = Image(config_.width, config_.height);
  DrawBaseStreet(scene.image, rng);
  DrawDistractors(scene.image, rng);

  // Off-class contamination: at high difficulty a small secondary motif
  // from another class may appear in the background, as in real street
  // photos where problems co-occur.
  double contamination_p = 0.04 * config_.difficulty;
  if (rng.Bernoulli(contamination_p)) {
    int other = static_cast<int>(rng.UniformInt(1, kNumSceneClasses - 1));
    if (static_cast<SceneClass>(other) != label) {
      DrawMotif(scene, static_cast<SceneClass>(other), rng,
                /*contaminant=*/true);
    }
  }

  DrawMotif(scene, label, rng, /*contaminant=*/false);

  // Global illumination + sensor noise keyed to difficulty.
  double illum = rng.Uniform(1.0 - 0.25 * config_.difficulty,
                             1.0 + 0.25 * config_.difficulty);
  ScaleBrightness(scene.image, illum);
  AddGaussianNoise(scene.image, 3.0 + 9.0 * config_.difficulty, rng);
  return scene;
}

}  // namespace tvdp::image
