#include "platform/sharding.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <thread>

#include "common/file.h"
#include "common/logging.h"
#include "query/planner.h"
#include "storage/wal.h"

namespace tvdp::platform {

namespace {

/// Meters per degree of latitude (spherical model); longitude scales by
/// cos(latitude).
constexpr double kMetersPerDegLat = 111320.0;

/// Expands `box` by `radius_m` meters in every direction (degree-space
/// approximation, ample for city-scale prune regions).
geo::BoundingBox ExpandByMeters(geo::BoundingBox box, double radius_m) {
  if (box.IsEmpty() || radius_m <= 0) return box;
  const double dlat = radius_m / kMetersPerDegLat;
  const double mid_lat = (box.min_lat + box.max_lat) / 2;
  const double cos_lat =
      std::max(0.01, std::cos(geo::DegToRad(mid_lat)));
  const double dlon = radius_m / (kMetersPerDegLat * cos_lat);
  box.min_lat -= dlat;
  box.max_lat += dlat;
  box.min_lon -= dlon;
  box.max_lon += dlon;
  return box;
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1,
      static_cast<size_t>(std::ceil(q * static_cast<double>(v.size())) - 1));
  return v[idx];
}

Json BBoxJson(const geo::BoundingBox& b) {
  Json arr = Json::MakeArray();
  arr.Append(Json(b.min_lat));
  arr.Append(Json(b.min_lon));
  arr.Append(Json(b.max_lat));
  arr.Append(Json(b.max_lon));
  return arr;
}

constexpr size_t kLatencyRing = 256;

}  // namespace

/// The per-query ShardTarget adapter handed to the scatter-gather stage.
/// It snapshots the shard's engine handle at query start, so a concurrent
/// KillShard lets in-flight probes finish against the old instance.
class ShardProbeTarget : public query::ShardTarget {
 public:
  ShardProbeTarget(const ShardManager* mgr, int shard,
                   std::shared_ptr<Tvdp> tvdp, geo::BoundingBox region,
                   bool migrating,
                   std::vector<std::shared_ptr<Tvdp>> replicas = {},
                   int preferred_replica = -1)
      : mgr_(mgr),
        shard_(shard),
        tvdp_(std::move(tvdp)),
        region_(region),
        migrating_(migrating),
        replicas_(std::move(replicas)),
        preferred_replica_(preferred_replica) {}

  int id() const override { return shard_; }
  geo::BoundingBox region() const override { return region_; }
  bool migrating() const override { return migrating_; }

  Result<std::vector<query::QueryHit>> Probe(const query::HybridQuery& q,
                                             const RequestContext& ctx,
                                             const query::QueryBudget& budget,
                                             query::QueryPlan* plan_out)
      override {
    return mgr_->ProbeShard(shard_, tvdp_, q, ctx, budget, plan_out);
  }

  query::ShardEstimate Estimate(const query::HybridQuery& q) const override {
    return mgr_->EstimateShard(tvdp_, q);
  }

  int replica_count() const override {
    return static_cast<int>(replicas_.size());
  }

  int preferred_replica() const override { return preferred_replica_; }

  Result<std::vector<query::QueryHit>> ProbeReplica(
      int r, const query::HybridQuery& q, const RequestContext& ctx,
      const query::QueryBudget& budget, query::QueryPlan* plan_out) override {
    if (r < 0 || r >= static_cast<int>(replicas_.size())) {
      return Status::Unavailable("replica index out of range");
    }
    // A replica holds the same local id space as its primary, so the same
    // id translation applies. Fault injection stays off: the configured
    // profile models the primary, and the failover read must not re-roll
    // the dice that just killed the primary probe.
    return mgr_->ProbeShard(shard_, replicas_[static_cast<size_t>(r)], q, ctx,
                            budget, plan_out, /*inject_faults=*/false);
  }

 private:
  const ShardManager* mgr_;
  int shard_;
  std::shared_ptr<Tvdp> tvdp_;
  geo::BoundingBox region_;
  bool migrating_;
  std::vector<std::shared_ptr<Tvdp>> replicas_;
  int preferred_replica_;
};

ShardManager::ShardManager(ShardManagerOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ShardManager>> ShardManager::Create(
    ShardManagerOptions options) {
  if (options.shard_count < 1) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  if (options.grid_rows < 1 || options.grid_cols < 1) {
    return Status::InvalidArgument(
        "shard grid must have at least one row and one column");
  }
  if (options.region.IsEmpty() ||
      !geo::IsValid({options.region.min_lat, options.region.min_lon}) ||
      !geo::IsValid({options.region.max_lat, options.region.max_lon})) {
    return Status::InvalidArgument(
        "shard grid region must be a valid non-empty bounding box");
  }
  const int cells = options.grid_rows * options.grid_cols;
  if (options.shard_count > cells) {
    return Status::InvalidArgument(
        "shard_count exceeds the number of grid cells");
  }
  std::set<int> assigned;
  for (const auto& [cell, shard] : options.cell_assignments) {
    if (cell < 0 || cell >= cells) {
      return Status::InvalidArgument("cell assignment out of grid range");
    }
    if (shard < 0 || shard >= options.shard_count) {
      return Status::InvalidArgument("cell assigned to an unknown shard");
    }
    if (!assigned.insert(cell).second) {
      return Status::InvalidArgument("duplicate cell assignment for cell " +
                                     std::to_string(cell));
    }
  }
  if (!(options.gather.per_shard_deadline_fraction > 0) ||
      options.gather.per_shard_deadline_fraction > 1) {
    return Status::InvalidArgument(
        "per_shard_deadline_fraction must be in (0, 1]");
  }
  if (!(options.gather.degraded_keep_fraction > 0) ||
      options.gather.degraded_keep_fraction > 1) {
    return Status::InvalidArgument(
        "degraded_keep_fraction must be in (0, 1]");
  }
  if (options.breaker.failure_threshold < 1) {
    return Status::InvalidArgument("breaker failure_threshold must be >= 1");
  }
  if (options.replication.replication_factor < 1) {
    return Status::InvalidArgument(
        "replication_factor must be >= 1 (1 = replication off)");
  }
  if (options.replication.max_async_lag_records < 1) {
    return Status::InvalidArgument("max_async_lag_records must be >= 1");
  }

  auto mgr =
      std::unique_ptr<ShardManager>(new ShardManager(std::move(options)));
  const ShardManagerOptions& opts = mgr->options_;
  const int n = opts.shard_count;

  // cell -> shard: explicit assignments first, round-robin for the rest.
  mgr->cell_to_shard_.assign(static_cast<size_t>(cells), -1);
  for (const auto& [cell, shard] : opts.cell_assignments) {
    mgr->cell_to_shard_[static_cast<size_t>(cell)] = shard;
  }
  for (int c = 0; c < cells; ++c) {
    if (mgr->cell_to_shard_[static_cast<size_t>(c)] < 0) {
      mgr->cell_to_shard_[static_cast<size_t>(c)] = c % n;
    }
  }
  // A persisted shard map (written at a migration's cutover) overrides the
  // configured assignments: committed cell moves survive restarts.
  bool had_shard_map = false;
  if (!opts.base_path.empty()) {
    TVDP_ASSIGN_OR_RETURN(had_shard_map, mgr->LoadShardMap());
  }

  mgr->slots_.resize(static_cast<size_t>(n));
  Rng seed_rng(opts.fault_seed);
  const int rf = opts.replication.replication_factor;
  for (int i = 0; i < n; ++i) {
    Slot& slot = mgr->slots_[static_cast<size_t>(i)];
    slot.rng = seed_rng.Fork();
    mgr->RecomputeCellsLocked(i);
    if (opts.base_path.empty()) {
      TVDP_ASSIGN_OR_RETURN(Tvdp t, Tvdp::Create());
      slot.tvdp = std::make_shared<Tvdp>(std::move(t));
    } else {
      // Evidence-only failover recovery: the persisted shard map names the
      // copy path whose engine is the primary (a crash between a
      // promotion's commit point and its in-memory flip resolves here —
      // the promoted replica's path opens as the primary, the stale old
      // primary's path is wiped and re-bootstrapped as a replica below, so
      // its forked history can never serve).
      if (i < static_cast<int>(mgr->boot_primaries_.size())) {
        slot.primary_index = mgr->boot_primaries_[static_cast<size_t>(i)];
        slot.epoch = mgr->boot_epochs_[static_cast<size_t>(i)];
      }
      if (slot.primary_index < 0 || slot.primary_index >= rf) {
        return Status::FailedPrecondition(
            "shard_map.json promotes shard " + std::to_string(i) +
            " to copy " + std::to_string(slot.primary_index) +
            " but replication_factor is " + std::to_string(rf));
      }
      slot.base_path = mgr->CopyPath(i, slot.primary_index);
      TVDP_ASSIGN_OR_RETURN(Tvdp t, Tvdp::Open(slot.base_path, opts.durable));
      slot.tvdp = std::make_shared<Tvdp>(std::move(t));
      slot.tvdp->set_epoch(slot.epoch);
      storage::DurableCatalog* dc = slot.tvdp->durable_catalog();
      slot.replayed = dc->replayed_records();
      // The spillover prune margin must survive a reopen: recompute it from
      // the recovered catalog instead of restarting at 0 (which silently
      // dropped FOV-overlap matches near shard borders).
      slot.max_fov_radius_m = slot.tvdp->MaxFovRadiusM();
      for (const storage::PendingBroadcast& p : dc->PendingBroadcasts()) {
        slot.pending_broadcasts[p.broadcast_id] = p;
      }
      mgr->next_broadcast_id_ =
          std::max(mgr->next_broadcast_id_, dc->max_broadcast_id() + 1);
    }
    if (rf > 1) {
      slot.replicas = std::make_shared<ReplicaSet>(i, slot.epoch);
      TVDP_RETURN_IF_ERROR(mgr->AttachReplicas(i, slot.tvdp,
                                               slot.primary_index,
                                               slot.replicas));
    }
  }
  // Seed the persisted epoch/primary vectors from what the slots booted
  // with: these (not the slots, which lag mid-promotion) are what every
  // subsequent shard_map.json write sources.
  mgr->persisted_epochs_.reserve(static_cast<size_t>(n));
  mgr->persisted_primaries_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    mgr->persisted_epochs_.push_back(mgr->slots_[static_cast<size_t>(i)].epoch);
    mgr->persisted_primaries_.push_back(
        mgr->slots_[static_cast<size_t>(i)].primary_index);
  }
  if (mgr->options_.breakers) {
    mgr->tracker_ = std::make_unique<edge::DeviceHealthTracker>(
        static_cast<size_t>(n), mgr->options_.breaker);
  }
  mgr->RebuildReverseMapsLocked();
  bool any_pending = false;
  bool any_rebalance = false;
  for (const Slot& slot : mgr->slots_) {
    if (!slot.pending_broadcasts.empty()) any_pending = true;
    for (const auto& [bid, p] : slot.pending_broadcasts) {
      if (p.op == "rebalance_cells") any_rebalance = true;
    }
  }
  if ((mgr->options_.atomic_broadcasts && any_pending) || any_rebalance) {
    // Startup reconciliation: resolve the broadcasts and migrations a
    // previous process's crash left pending before this fleet starts
    // serving. Migration intents reconcile regardless of the classification
    // broadcast mode — rebalancing is always run under the durable
    // protocol.
    WriteTicket ticket(mgr.get());
    std::lock_guard<std::mutex> lock(mgr->broadcast_mutex_);
    Result<Json> report = mgr->ReconcileLocked();
    if (!report.ok()) return report.status();
  }
  if (had_shard_map) {
    // A shard map on disk proves at least one cutover committed; a crash
    // between that commit point and GC can leave moved rows on their old
    // shard with no pending intent to say so. Sweeping foreign rows is
    // idempotent, so run it unconditionally on every live shard.
    for (int i = 0; i < n; ++i) {
      if (!mgr->shard_alive(i)) continue;
      Status swept = mgr->SweepForeignRows(i);
      if (!swept.ok()) return swept;
    }
  }
  return mgr;
}

double ShardManager::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ShardManager::CellForLocation(const geo::GeoPoint& p) const {
  const geo::BoundingBox& r = options_.region;
  const double dlat = (r.max_lat - r.min_lat) / options_.grid_rows;
  const double dlon = (r.max_lon - r.min_lon) / options_.grid_cols;
  int row = dlat > 0 ? static_cast<int>((p.lat - r.min_lat) / dlat) : 0;
  int col = dlon > 0 ? static_cast<int>((p.lon - r.min_lon) / dlon) : 0;
  row = std::clamp(row, 0, options_.grid_rows - 1);
  col = std::clamp(col, 0, options_.grid_cols - 1);
  return row * options_.grid_cols + col;
}

int ShardManager::ShardForLocation(const geo::GeoPoint& p) const {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return cell_to_shard_[static_cast<size_t>(CellForLocation(p))];
}

ShardManager::WriteTicket::WriteTicket(const ShardManager* mgr) : mgr_(mgr) {
  std::unique_lock<std::mutex> lock(mgr_->gate_mutex_);
  mgr_->gate_cv_.wait(lock, [&] { return !mgr_->write_block_; });
  ++mgr_->writes_in_flight_;
}

ShardManager::WriteTicket::~WriteTicket() {
  std::lock_guard<std::mutex> lock(mgr_->gate_mutex_);
  if (--mgr_->writes_in_flight_ == 0) mgr_->gate_cv_.notify_all();
}

void ShardManager::BlockWrites() const {
  std::unique_lock<std::mutex> lock(gate_mutex_);
  write_block_ = true;
  gate_cv_.wait(lock, [&] { return writes_in_flight_ == 0; });
}

void ShardManager::UnblockWrites() const {
  std::lock_guard<std::mutex> lock(gate_mutex_);
  write_block_ = false;
  gate_cv_.notify_all();
}

geo::BoundingBox ShardManager::ExpandedRegionLocked(int shard) const {
  const Slot& slot = slots_[static_cast<size_t>(shard)];
  return ExpandByMeters(slot.cells, slot.max_fov_radius_m);
}

Result<int64_t> ShardManager::IngestImage(const ImageRecord& record) {
  if (!geo::IsValid(record.location)) {
    return Status::InvalidArgument("image location out of lat/lon bounds");
  }
  // The ticket pins the routing decision: a cutover (which rewrites cell
  // ownership) waits until in-flight writes drain, so a row can never land
  // on a shard that stopped owning its cell mid-insert.
  WriteTicket ticket(this);
  int shard;
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    shard = cell_to_shard_[static_cast<size_t>(CellForLocation(
        record.location))];
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  TVDP_ASSIGN_OR_RETURN(int64_t local, tvdp->IngestImage(record));
  if (record.fov.has_value()) {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    slot.max_fov_radius_m =
        std::max(slot.max_fov_radius_m, record.fov->radius_m);
  }
  ShipShard(shard);
  return local * shard_count() + shard;
}

std::string ShardManager::CopyPath(int shard, int copy) const {
  if (options_.base_path.empty()) return std::string();
  std::string base = options_.base_path + "/shard_" + std::to_string(shard);
  if (copy == 0) return base;
  return base + "_replica_" + std::to_string(copy - 1);
}

int ShardManager::ReplicaCopyIndex(int primary_index, int r) const {
  // Copy indices 0..rf-1 minus the primary's, in order; replica slot r is
  // the (r+1)-th remaining index. Stable across promotions: the demoted
  // primary's path becomes a replica path without renaming any directory.
  int seen = -1;
  for (int c = 0; c < options_.replication.replication_factor; ++c) {
    if (c == primary_index) continue;
    if (++seen == r) return c;
  }
  return -1;
}

Status ShardManager::AttachReplicas(
    int shard, const std::shared_ptr<Tvdp>& primary, int primary_index,
    const std::shared_ptr<ReplicaSet>& replicas) {
  const int rf = options_.replication.replication_factor;
  std::vector<std::string> paths;
  paths.reserve(static_cast<size_t>(rf - 1));
  for (int r = 0; r + 1 < rf; ++r) {
    paths.push_back(CopyPath(shard, ReplicaCopyIndex(primary_index, r)));
  }
  return replicas->Attach(primary, paths, options_.durable,
                          options_.replication.sync);
}

void ShardManager::ShipShard(int shard) const {
  std::shared_ptr<ReplicaSet> reps;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    reps = slots_[static_cast<size_t>(shard)].replicas;
  }
  if (!reps) return;
  // kSync: every acked write is on every live replica (fsynced when
  // durable) before the caller returns. kAsync: ship only once the lag
  // bound is hit; the channel carries the rest until then.
  if (options_.replication.sync == SyncLevel::kSync ||
      reps->lag_records() >= options_.replication.max_async_lag_records) {
    (void)reps->Ship();
  }
}

void ShardManager::SetBroadcastHook(
    std::function<bool(const std::string& phase, int shard)> hook) {
  std::lock_guard<std::mutex> lock(broadcast_mutex_);
  broadcast_hook_ = std::move(hook);
}

bool ShardManager::BroadcastHookOk(const char* phase, int shard) const {
  if (!broadcast_hook_) return true;
  return broadcast_hook_(phase, shard);
}

Status ShardManager::AppendBroadcastTo(int shard,
                                       const storage::WalRecord& record) {
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    // Re-checked under the lock on every per-shard step: a handle
    // snapshotted before a KillShard must never receive broadcast writes —
    // a "crashed" shard that kept durably logging would falsify the crash
    // model the reconciliation tests rely on.
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  if (tvdp->durable_catalog()) {
    // fsyncs before returning; deliberately outside slots_mutex_ so query
    // dispatch never blocks behind a broadcast's disk write.
    TVDP_RETURN_IF_ERROR(tvdp->durable_catalog()->AppendBroadcast(record));
  }
  std::lock_guard<std::mutex> lock(slots_mutex_);
  Slot& slot = slots_[static_cast<size_t>(shard)];
  if (record.type == storage::WalRecordType::kBroadcastIntent ||
      record.type == storage::WalRecordType::kMigrationIntent) {
    storage::PendingBroadcast pending{record.broadcast_id, record.op,
                                      record.payload, record.target_ids};
    pending.type = record.type;
    slot.pending_broadcasts[record.broadcast_id] = std::move(pending);
  } else {
    slot.pending_broadcasts.erase(record.broadcast_id);
  }
  return Status::OK();
}

Result<int64_t> ShardManager::RegisterClassification(
    const std::string& name, const std::vector<std::string>& labels,
    const std::string& description) {
  // Broadcasts mutate every shard's engine, so they must be drainable by
  // the cutover / promotion-fence write gate like any routed write: without
  // the ticket a per-shard apply could commit on the old primary between
  // the fence's Ship() drain and the epoch rise — a write acked to the
  // caller that the promoted primary never sees.
  WriteTicket ticket(this);
  if (!options_.atomic_broadcasts) {
    // Legacy fire-and-forget broadcast, kept only so the regression
    // harness can demonstrate the hazard this PR fixes: a mid-loop failure
    // leaves the classification registered on a prefix of shards, and the
    // per-shard ids are never compared.
    std::vector<std::shared_ptr<Tvdp>> live;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].killed || !slots_[i].tvdp) {
          return Status::Unavailable("shard " + std::to_string(i) +
                                     " is down; classification broadcast "
                                     "requires the full fleet");
        }
        live.push_back(slots_[i].tvdp);
      }
    }
    int64_t first_id = -1;
    for (size_t i = 0; i < live.size(); ++i) {
      TVDP_ASSIGN_OR_RETURN(int64_t id, live[i]->RegisterClassification(
                                            name, labels, description));
      if (i == 0) first_id = id;
      ShipShard(static_cast<int>(i));
    }
    return first_id;
  }

  std::lock_guard<std::mutex> block(broadcast_mutex_);
  const int n = shard_count();
  std::vector<std::shared_ptr<Tvdp>> live(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int i = 0; i < n; ++i) {
      const Slot& slot = slots_[static_cast<size_t>(i)];
      if (slot.killed || !slot.tvdp) {
        return Status::Unavailable("shard " + std::to_string(i) +
                                   " is down; classification broadcast "
                                   "requires the full fleet");
      }
      live[static_cast<size_t>(i)] = slot.tvdp;
    }
  }

  // The id every shard is expected to assign, recorded in the intent so
  // recovery can check the fleet converged on the same ids.
  std::vector<int64_t> targets(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    TVDP_ASSIGN_OR_RETURN(
        targets[static_cast<size_t>(i)],
        live[static_cast<size_t>(i)]->PeekClassificationId(name));
  }

  const int64_t bid = next_broadcast_id_++;
  Json payload = Json::MakeObject();
  payload["name"] = Json(name);
  Json jlabels = Json::MakeArray();
  for (const std::string& l : labels) jlabels.Append(Json(l));
  payload["labels"] = std::move(jlabels);
  payload["description"] = Json(description);
  const storage::WalRecord intent = storage::WalRecord::BroadcastIntent(
      bid, "register_classification", payload.Dump(), targets);

  // Phase 1: a durable intent on every shard before anything is applied.
  for (int i = 0; i < n; ++i) {
    if (!BroadcastHookOk("intent", i)) {
      // Simulated coordinator crash. Intents already written stay pending
      // for reconciliation; since nothing applied, it will roll them back.
      return Status::Unavailable("broadcast " + std::to_string(bid) +
                                 " abandoned before intent on shard " +
                                 std::to_string(i));
    }
    Status logged = AppendBroadcastTo(i, intent);
    if (!logged.ok()) {
      // Nothing applied yet anywhere: abort the earlier intents in place.
      for (int j = 0; j < i; ++j) {
        (void)AppendBroadcastTo(j, storage::WalRecord::BroadcastAbort(bid));
      }
      return logged;
    }
  }

  // Phase 2: apply on every shard. From here on a failure leaves the
  // intent pending — ReconcileBroadcasts / shard recovery decides from
  // evidence whether to complete it forward or roll it back.
  std::vector<int64_t> ids(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    if (!BroadcastHookOk("apply", i)) {
      return Status::Unavailable("broadcast " + std::to_string(bid) +
                                 " abandoned before apply on shard " +
                                 std::to_string(i) +
                                 "; pending until reconciliation");
    }
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      Slot& slot = slots_[static_cast<size_t>(i)];
      if (slot.killed || !slot.tvdp) {
        return Status::Unavailable("shard " + std::to_string(i) +
                                   " went down during broadcast " +
                                   std::to_string(bid) +
                                   "; pending until reconciliation");
      }
      live[static_cast<size_t>(i)] = slot.tvdp;
    }
    Result<int64_t> id = live[static_cast<size_t>(i)]->RegisterClassification(
        name, labels, description);
    if (!id.ok()) {
      if (i == 0) {
        // The first apply failed, so no shard holds the operation: the
        // intents can be rolled back immediately.
        for (int j = 0; j < n; ++j) {
          (void)AppendBroadcastTo(j, storage::WalRecord::BroadcastAbort(bid));
        }
      }
      return id.status();
    }
    ids[static_cast<size_t>(i)] = id.value();
    ShipShard(i);
  }

  // Applied everywhere — verify the fleet agreed on one id before
  // committing. A mismatch is still resolved (every shard did apply), but
  // surfaced as data loss naming the divergent shards.
  std::string divergent;
  for (int i = 1; i < n; ++i) {
    if (ids[static_cast<size_t>(i)] == ids[0]) continue;
    if (!divergent.empty()) divergent += ", ";
    divergent += std::to_string(i) + " (id " +
                 std::to_string(ids[static_cast<size_t>(i)]) + ")";
  }
  if (!divergent.empty()) {
    for (int i = 0; i < n; ++i) {
      (void)AppendBroadcastTo(i, storage::WalRecord::BroadcastCommit(bid));
    }
    return Status::DataLoss("classification '" + name +
                            "' diverged: shard 0 assigned id " +
                            std::to_string(ids[0]) + " but shard " +
                            divergent + " disagreed");
  }

  // Phase 3: commit markers. Best-effort per shard — the operation is
  // fully applied, so a marker lost to a crash only means reconciliation
  // re-derives the commit from the applied evidence.
  for (int i = 0; i < n; ++i) {
    if (!BroadcastHookOk("commit", i)) {
      return Status::Unavailable("broadcast " + std::to_string(bid) +
                                 " applied on every shard but abandoned "
                                 "before commit on shard " +
                                 std::to_string(i) +
                                 "; pending until reconciliation");
    }
    (void)AppendBroadcastTo(i, storage::WalRecord::BroadcastCommit(bid));
  }
  return ids[0];
}

Result<Json> ShardManager::ReconcileBroadcasts() {
  Result<Json> report = [this]() -> Result<Json> {
    // Ticket before broadcast_mutex_ (the fixed order): reconciliation
    // sweeps and re-applies against shard engines, which the write gate
    // must be able to drain. Released before the deferred-promotion drain
    // below — PromoteShard's fence blocks writes and would deadlock
    // against our own ticket.
    WriteTicket ticket(this);
    std::lock_guard<std::mutex> lock(broadcast_mutex_);
    return ReconcileLocked();
  }();
  // Reconciliation can resolve the migration a promotion was deferred
  // behind; run the deferred promotions with no lock held.
  DrainDeferredPromotions();
  return report;
}

Result<Json> ShardManager::ReconcileLocked() {
  const int n = shard_count();
  std::vector<std::shared_ptr<Tvdp>> handles(static_cast<size_t>(n));
  std::vector<bool> alive(static_cast<size_t>(n), false);
  std::map<int64_t, storage::PendingBroadcast> pending;
  std::map<int64_t, std::vector<int>> holders;
  bool all_live = true;
  int64_t in_flight_id = 0;
  std::unordered_set<int64_t> committed;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int i = 0; i < n; ++i) {
      const Slot& slot = slots_[static_cast<size_t>(i)];
      alive[static_cast<size_t>(i)] = !slot.killed && slot.tvdp != nullptr;
      if (alive[static_cast<size_t>(i)]) {
        handles[static_cast<size_t>(i)] = slot.tvdp;
      } else {
        all_live = false;
      }
      for (const auto& [bid, p] : slot.pending_broadcasts) {
        pending.emplace(bid, p);
        holders[bid].push_back(i);
      }
    }
    if (migration_.active) in_flight_id = migration_.id;
    committed = committed_migrations_;
  }

  Json completed = Json::MakeArray();
  Json rolled_back = Json::MakeArray();
  Json deferred = Json::MakeArray();
  Json errors = Json::MakeArray();
  for (const auto& [bid, p] : pending) {
    Json entry = Json::MakeObject();
    entry["broadcast_id"] = Json(bid);
    entry["op"] = Json(p.op);
    if (p.op == "rebalance_cells") {
      Result<Json> parsed = Json::Parse(p.payload);
      if (!parsed.ok()) {
        errors.Append(Json("migration " + std::to_string(bid) +
                           ": bad payload: " + parsed.status().ToString()));
        continue;
      }
      const int msrc = static_cast<int>((*parsed)["source"].AsInt());
      const int mtgt = static_cast<int>((*parsed)["target"].AsInt());
      entry["source"] = Json(msrc);
      entry["target"] = Json(mtgt);
      entry["cells"] = (*parsed)["cells"];
      if (bid == in_flight_id) {
        // This process's own migration is still running; its coordinator —
        // not the reconciler — owns the resolution.
        entry["action"] = Json("in_flight");
        deferred.Append(std::move(entry));
        continue;
      }
      if (committed.count(bid) > 0) {
        // The shard map committed at cutover: roll forward. Re-mark the
        // commit on every live holder, then finish the GC the crash
        // skipped (sweeping the source's moved rows is idempotent).
        Json remaining = Json::MakeArray();
        bool failed = false;
        for (int i : holders[bid]) {
          if (!alive[static_cast<size_t>(i)]) {
            remaining.Append(Json(i));
            continue;
          }
          Status marked =
              AppendBroadcastTo(i, storage::WalRecord::MigrationCommit(bid));
          if (!marked.ok()) {
            errors.Append(Json("migration " + std::to_string(bid) +
                               " shard " + std::to_string(i) + ": " +
                               marked.ToString()));
            failed = true;
          }
        }
        if (alive[static_cast<size_t>(msrc)]) {
          Status swept = SweepForeignRowsTicketed(msrc);
          if (!swept.ok()) {
            errors.Append(Json("migration " + std::to_string(bid) +
                               " gc: " + swept.ToString()));
            failed = true;
          }
        }
        {
          std::lock_guard<std::mutex> lock(slots_mutex_);
          if (alive[static_cast<size_t>(msrc)]) {
            slots_[static_cast<size_t>(msrc)].migrating = false;
          }
          if (alive[static_cast<size_t>(mtgt)]) {
            slots_[static_cast<size_t>(mtgt)].migrating = false;
          }
          if (!migration_.active && migration_.id == bid) {
            migration_ = MigrationState{};
          }
          RebuildReverseMapsLocked();
        }
        entry["action"] = Json("completed_forward");
        if (remaining.size() > 0) entry["awaiting_recovery"] = remaining;
        (failed ? deferred : completed).Append(std::move(entry));
      } else if (alive[static_cast<size_t>(msrc)] &&
                 alive[static_cast<size_t>(mtgt)]) {
        // No committed shard map: the cutover never happened, so the
        // source still owns every row — undo the partial copy. Sweeping
        // the target's foreign rows deletes exactly the migrated-in copies
        // (their cells still map to the source).
        bool failed = false;
        for (int i : holders[bid]) {
          Status marked =
              AppendBroadcastTo(i, storage::WalRecord::MigrationAbort(bid));
          if (!marked.ok()) {
            errors.Append(Json("migration " + std::to_string(bid) +
                               " shard " + std::to_string(i) + ": " +
                               marked.ToString()));
            failed = true;
          }
        }
        Status swept = SweepForeignRowsTicketed(mtgt);
        if (!swept.ok()) {
          errors.Append(Json("migration " + std::to_string(bid) +
                             " undo: " + swept.ToString()));
          failed = true;
        }
        {
          std::lock_guard<std::mutex> lock(slots_mutex_);
          slots_[static_cast<size_t>(msrc)].migrating = false;
          slots_[static_cast<size_t>(mtgt)].migrating = false;
          if (!migration_.active && migration_.id == bid) {
            migration_ = MigrationState{};
          }
          RebuildReverseMapsLocked();
        }
        entry["action"] = Json("rolled_back");
        (failed ? deferred : rolled_back).Append(std::move(entry));
      } else {
        // A dead endpoint may hold rows (or the only copies) this decision
        // needs; defer until both endpoints are back.
        entry["action"] = Json("deferred");
        Json down = Json::MakeArray();
        for (int i = 0; i < n; ++i) {
          if (!alive[static_cast<size_t>(i)]) down.Append(Json(i));
        }
        entry["down_shards"] = std::move(down);
        deferred.Append(std::move(entry));
      }
      continue;
    }
    if (p.op != "register_classification") {
      errors.Append(Json("broadcast " + std::to_string(bid) +
                         ": unknown op '" + p.op + "'"));
      continue;
    }
    Result<Json> parsed = Json::Parse(p.payload);
    if (!parsed.ok()) {
      errors.Append(Json("broadcast " + std::to_string(bid) +
                         ": bad payload: " + parsed.status().ToString()));
      continue;
    }
    const std::string& name = (*parsed)["name"].AsString();
    std::vector<std::string> labels;
    for (const Json& l : (*parsed)["labels"].AsArray()) {
      labels.push_back(l.AsString());
    }
    const std::string& description = (*parsed)["description"].AsString();
    entry["name"] = Json(name);

    // Evidence: did any live shard's classification table already absorb
    // this operation?
    bool applied_somewhere = false;
    for (int i = 0; i < n; ++i) {
      if (alive[static_cast<size_t>(i)] &&
          handles[static_cast<size_t>(i)]->ClassificationApplied(name,
                                                                 labels)) {
        applied_somewhere = true;
        break;
      }
    }

    if (applied_somewhere) {
      // Complete forward: re-apply (idempotent) on every live shard still
      // holding the intent, then commit. Intents on down shards resolve
      // when those shards recover and re-run this pass.
      Json remaining = Json::MakeArray();
      bool failed = false;
      for (int i : holders[bid]) {
        if (!alive[static_cast<size_t>(i)]) {
          remaining.Append(Json(i));
          continue;
        }
        Result<int64_t> id =
            handles[static_cast<size_t>(i)]->RegisterClassification(
                name, labels, description);
        if (!id.ok()) {
          errors.Append(Json("broadcast " + std::to_string(bid) + " shard " +
                             std::to_string(i) + ": " +
                             id.status().ToString()));
          failed = true;
          continue;
        }
        Status marked =
            AppendBroadcastTo(i, storage::WalRecord::BroadcastCommit(bid));
        if (!marked.ok()) {
          errors.Append(Json("broadcast " + std::to_string(bid) + " shard " +
                             std::to_string(i) + ": " + marked.ToString()));
          failed = true;
        }
      }
      entry["action"] = Json("completed_forward");
      if (remaining.size() > 0) entry["awaiting_recovery"] = remaining;
      (failed ? deferred : completed).Append(std::move(entry));
    } else if (all_live) {
      // Every shard is up and none applied it: the coordinator died before
      // any apply, so the operation never happened — roll it back.
      bool failed = false;
      for (int i : holders[bid]) {
        Status marked =
            AppendBroadcastTo(i, storage::WalRecord::BroadcastAbort(bid));
        if (!marked.ok()) {
          errors.Append(Json("broadcast " + std::to_string(bid) + " shard " +
                             std::to_string(i) + ": " + marked.ToString()));
          failed = true;
        }
      }
      entry["action"] = Json("rolled_back");
      (failed ? deferred : rolled_back).Append(std::move(entry));
    } else {
      // A down shard may hold the only evidence that the operation was
      // applied; rolling back now could diverge from what that shard
      // replays on recovery. Defer until the fleet is whole.
      entry["action"] = Json("deferred");
      Json down = Json::MakeArray();
      for (int i = 0; i < n; ++i) {
        if (!alive[static_cast<size_t>(i)]) down.Append(Json(i));
      }
      entry["down_shards"] = std::move(down);
      deferred.Append(std::move(entry));
    }
  }

  // Stragglers: a migrating flag with no unresolved rebalance intent means
  // the migration passed its commit markers but died before GC finished —
  // finish the sweep and clear the flag.
  Json finalized = Json::MakeArray();
  std::vector<int> stragglers;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int i = 0; i < n; ++i) {
      const Slot& slot = slots_[static_cast<size_t>(i)];
      if (!slot.migrating || slot.killed || !slot.tvdp) continue;
      if (migration_.active &&
          (i == migration_.source || i == migration_.target)) {
        continue;
      }
      bool has_intent = false;
      for (const auto& [bid, p] : slot.pending_broadcasts) {
        if (p.op == "rebalance_cells") has_intent = true;
      }
      if (!has_intent) stragglers.push_back(i);
    }
  }
  for (int i : stragglers) {
    Status swept = SweepForeignRowsTicketed(i);
    if (!swept.ok()) {
      errors.Append(Json("migration finalize shard " + std::to_string(i) +
                         ": " + swept.ToString()));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      slots_[static_cast<size_t>(i)].migrating = false;
      RebuildReverseMapsLocked();
    }
    finalized.Append(Json(i));
  }

  Json out = Json::MakeObject();
  out["completed"] = std::move(completed);
  out["rolled_back"] = std::move(rolled_back);
  out["deferred"] = std::move(deferred);
  out["finalized"] = std::move(finalized);
  out["errors"] = std::move(errors);
  Json detail = Json::MakeObject();
  Status consistent = VerifyConsistencyLocked(&detail);
  out["consistent"] = Json(consistent.ok());
  out["divergent"] = std::move(detail["divergent"]);
  return out;
}

Status ShardManager::VerifyClassificationConsistency(Json* detail) const {
  std::lock_guard<std::mutex> lock(broadcast_mutex_);
  return VerifyConsistencyLocked(detail);
}

Status ShardManager::VerifyConsistencyLocked(Json* detail) const {
  const int n = shard_count();
  std::vector<std::shared_ptr<Tvdp>> handles(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int i = 0; i < n; ++i) {
      const Slot& slot = slots_[static_cast<size_t>(i)];
      handles[static_cast<size_t>(i)] = slot.killed ? nullptr : slot.tvdp;
    }
  }
  int ref = -1;
  Json ref_table;
  std::string shard_list;
  std::set<std::string> names;
  Json divergent = Json::MakeObject();
  for (int i = 0; i < n; ++i) {
    if (!handles[static_cast<size_t>(i)]) continue;
    Json table = handles[static_cast<size_t>(i)]->ClassificationTableJson();
    if (ref < 0) {
      ref = i;
      ref_table = std::move(table);
      continue;
    }
    if (table == ref_table) continue;
    // Collect the classification names whose entries disagree.
    for (const auto& [cls, entry] : table.AsObject()) {
      if (!ref_table.Has(cls) || !(ref_table[cls] == entry)) names.insert(cls);
    }
    for (const auto& [cls, entry] : ref_table.AsObject()) {
      if (!table.Has(cls)) names.insert(cls);
    }
    if (!shard_list.empty()) shard_list += ", ";
    shard_list += std::to_string(i);
    divergent[std::to_string(i)] = std::move(table);
  }
  if (detail) {
    Json d = Json::MakeObject();
    d["reference_shard"] = ref < 0 ? Json() : Json(ref);
    d["reference"] = ref_table;
    d["divergent"] = divergent;
    *detail = std::move(d);
  }
  if (shard_list.empty()) return Status::OK();
  std::string name_list;
  for (const std::string& cls : names) {
    if (!name_list.empty()) name_list += ", ";
    name_list += "'" + cls + "'";
  }
  return Status::DataLoss("classification tables diverged from shard " +
                          std::to_string(ref) + " on shard(s) " + shard_list +
                          " (classifications: " + name_list + ")");
}

size_t ShardManager::pending_broadcasts(int shard) const {
  if (shard < 0 || shard >= shard_count()) return 0;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(shard)].pending_broadcasts.size();
}

void ShardManager::SetMigrationHook(
    std::function<bool(const std::string& phase, int shard)> hook) {
  std::lock_guard<std::mutex> lock(migration_mutex_);
  migration_hook_ = std::move(hook);
}

bool ShardManager::MigrationHookOk(const char* phase, int shard) const {
  if (!migration_hook_) return true;
  return migration_hook_(phase, shard);
}

bool ShardManager::shard_migrating(int shard) const {
  if (shard < 0 || shard >= shard_count()) return false;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(shard)].migrating;
}

Status ShardManager::AbandonMigration(const std::string& why) {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  migration_.active = false;
  migration_.phase = "abandoned";
  // The endpoints keep their migrating flags: dual-serve + merge dedup
  // keeps queries exact until reconciliation resolves the durable intents.
  return Status::Unavailable(why);
}

void ShardManager::RecomputeCellsLocked(int shard) {
  const ShardManagerOptions& opts = options_;
  const int cells = opts.grid_rows * opts.grid_cols;
  const double dlat =
      (opts.region.max_lat - opts.region.min_lat) / opts.grid_rows;
  const double dlon =
      (opts.region.max_lon - opts.region.min_lon) / opts.grid_cols;
  geo::BoundingBox box = geo::BoundingBox::Empty();
  for (int c = 0; c < cells; ++c) {
    if (cell_to_shard_[static_cast<size_t>(c)] != shard) continue;
    const int row = c / opts.grid_cols;
    const int col = c % opts.grid_cols;
    geo::BoundingBox cell_box;
    cell_box.min_lat = opts.region.min_lat + row * dlat;
    cell_box.max_lat = opts.region.min_lat + (row + 1) * dlat;
    cell_box.min_lon = opts.region.min_lon + col * dlon;
    cell_box.max_lon = opts.region.min_lon + (col + 1) * dlon;
    box.Extend(cell_box);
  }
  slots_[static_cast<size_t>(shard)].cells = box;
}

void ShardManager::RebuildReverseMapsLocked() {
  const int n = static_cast<int>(slots_.size());
  std::vector<std::unordered_map<int64_t, int64_t>> maps(
      static_cast<size_t>(n));
  for (const auto& [global, loc] : relocated_) {
    maps[static_cast<size_t>(loc.first)][loc.second] = global;
  }
  if (migration_.active) {
    // Keep the in-copy entries of the running migration: its target already
    // serves the copied rows, and they must keep translating to their
    // original global ids (chained moves resolve through the source's own
    // map, built just above).
    const auto& src_map = maps[static_cast<size_t>(migration_.source)];
    auto& tgt_map = maps[static_cast<size_t>(migration_.target)];
    for (const auto& [slocal, tlocal] : migration_.relocations) {
      auto it = src_map.find(slocal);
      tgt_map[tlocal] = it != src_map.end()
                            ? it->second
                            : slocal * n + migration_.source;
    }
  }
  for (int i = 0; i < n; ++i) {
    auto& m = maps[static_cast<size_t>(i)];
    slots_[static_cast<size_t>(i)].reverse_relocations =
        m.empty() ? nullptr
                  : std::make_shared<const std::unordered_map<int64_t, int64_t>>(
                        std::move(m));
  }
}

std::string ShardManager::ShardMapPath() const {
  return options_.base_path + "/shard_map.json";
}

Status ShardManager::WriteShardMapLocked(
    const std::vector<int>& cell_map,
    const std::vector<std::array<int64_t, 3>>& relocs,
    const std::vector<int64_t>& committed) {
  Json doc = Json::MakeObject();
  doc["version"] = Json(++shard_map_version_);
  Json jcells = Json::MakeArray();
  for (int s : cell_map) jcells.Append(Json(s));
  doc["cell_to_shard"] = std::move(jcells);
  Json jrel = Json::MakeArray();
  for (const auto& r : relocs) {
    Json triple = Json::MakeArray();
    triple.Append(Json(r[0]));
    triple.Append(Json(r[1]));
    triple.Append(Json(r[2]));
    jrel.Append(std::move(triple));
  }
  doc["relocations"] = std::move(jrel);
  Json jcom = Json::MakeArray();
  for (int64_t id : committed) jcom.Append(Json(id));
  doc["committed_migrations"] = std::move(jcom);
  // Fencing evidence: the per-shard promotion epoch and which copy path is
  // the primary, always sourced from the persisted vectors (the last
  // durably committed values) rather than the slots — a concurrent
  // rebalance writing the map mid-promotion must never regress a shard's
  // committed epoch back to what its in-memory slot still says. Writing
  // this file IS a promotion's durable commit point.
  Json jep = Json::MakeArray();
  for (int64_t e : persisted_epochs_) jep.Append(Json(e));
  doc["epochs"] = std::move(jep);
  Json jpr = Json::MakeArray();
  for (int p : persisted_primaries_) jpr.Append(Json(p));
  doc["primaries"] = std::move(jpr);
  const std::string text = doc.Dump();
  Fs* fs = options_.durable.fs ? options_.durable.fs : Fs::Default();
  return AtomicWriteFile(*fs, ShardMapPath(),
                         std::vector<uint8_t>(text.begin(), text.end()));
}

Result<bool> ShardManager::LoadShardMap() {
  Fs* fs = options_.durable.fs ? options_.durable.fs : Fs::Default();
  const std::string path = ShardMapPath();
  if (!fs->Exists(path)) return false;
  TVDP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, fs->ReadAll(path));
  TVDP_ASSIGN_OR_RETURN(
      Json doc, Json::Parse(std::string_view(
                    reinterpret_cast<const char*>(bytes.data()),
                    bytes.size())));
  const Json& jcells = doc["cell_to_shard"];
  if (jcells.AsArray().size() != cell_to_shard_.size()) {
    return Status::FailedPrecondition(
        "shard_map.json disagrees with the configured grid; the grid shape "
        "cannot change once cells have been rebalanced");
  }
  for (size_t c = 0; c < cell_to_shard_.size(); ++c) {
    const int s = static_cast<int>(jcells.AsArray()[c].AsInt());
    if (s < 0 || s >= options_.shard_count) {
      return Status::FailedPrecondition(
          "shard_map.json assigns a cell to an unknown shard");
    }
    cell_to_shard_[c] = s;
  }
  for (const Json& r : doc["relocations"].AsArray()) {
    const auto& triple = r.AsArray();
    relocated_[triple[0].AsInt()] = {static_cast<int>(triple[1].AsInt()),
                                     triple[2].AsInt()};
  }
  for (const Json& id : doc["committed_migrations"].AsArray()) {
    committed_migrations_.insert(id.AsInt());
  }
  boot_epochs_.assign(static_cast<size_t>(options_.shard_count), 0);
  boot_primaries_.assign(static_cast<size_t>(options_.shard_count), 0);
  // Absent on maps written before replication existed: all shards at epoch
  // 0 with copy 0 as primary — exactly the pre-replication layout.
  if (doc.Has("epochs")) {
    const auto& jep = doc["epochs"].AsArray();
    for (size_t i = 0; i < jep.size() && i < boot_epochs_.size(); ++i) {
      boot_epochs_[i] = jep[i].AsInt();
    }
  }
  if (doc.Has("primaries")) {
    const auto& jpr = doc["primaries"].AsArray();
    for (size_t i = 0; i < jpr.size() && i < boot_primaries_.size(); ++i) {
      boot_primaries_[i] = static_cast<int>(jpr[i].AsInt());
    }
  }
  shard_map_version_ = doc["version"].AsInt();
  return true;
}

Status ShardManager::SweepForeignRows(int shard) {
  // The sweep deletes rows through the shard engine; ticket it so the
  // cutover / fence barrier drains it like any other write.
  WriteTicket ticket(this);
  return SweepForeignRowsTicketed(shard);
}

Status ShardManager::SweepForeignRowsTicketed(int shard) {
  std::shared_ptr<Tvdp> tvdp;
  std::vector<int> cell_map;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
    cell_map = cell_to_shard_;
  }
  const std::vector<int64_t> doomed =
      tvdp->ImageIdsMatching([&](const geo::GeoPoint& p) {
        return cell_map[static_cast<size_t>(CellForLocation(p))] != shard;
      });
  if (!doomed.empty()) {
    TVDP_RETURN_IF_ERROR(tvdp->RemoveImages(doomed));
  }
  const double fov = tvdp->MaxFovRadiusM();
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    slots_[static_cast<size_t>(shard)].max_fov_radius_m = fov;
  }
  ShipShard(shard);
  return Status::OK();
}

Result<size_t> ShardManager::MigrationCopyPass(
    const std::shared_ptr<Tvdp>& src, const std::shared_ptr<Tvdp>& dst,
    const std::function<bool(const geo::GeoPoint&)>& in_cells, int source,
    int target) {
  const int n = shard_count();
  size_t delta = 0;
  const std::vector<int64_t> ids = src->ImageIdsMatching(in_cells);
  for (int64_t slocal : ids) {
    int64_t tlocal = -1;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      auto it = migration_.relocations.find(slocal);
      if (it != migration_.relocations.end()) tlocal = it->second;
    }
    TVDP_ASSIGN_OR_RETURN(std::vector<AnnotationRecord> anns,
                          src->ListAnnotations(slocal));
    TVDP_ASSIGN_OR_RETURN(auto feats, src->ListFeatures(slocal));
    if (tlocal < 0) {
      TVDP_ASSIGN_OR_RETURN(ImageRecord rec, src->ExportImage(slocal));
      if (rec.original_image_id.has_value()) {
        // The provenance link is shard-local. Originals sort before their
        // augmented derivatives (smaller ids), so a co-migrating original
        // is already relocated by the time we get here; an original that
        // stays behind has no target-side identity and the link drops.
        std::lock_guard<std::mutex> lock(slots_mutex_);
        auto it = migration_.relocations.find(*rec.original_image_id);
        if (it != migration_.relocations.end()) {
          rec.original_image_id = it->second;
        } else {
          rec.original_image_id.reset();
        }
      }
      TVDP_ASSIGN_OR_RETURN(tlocal, dst->IngestImage(rec));
      {
        // Publish the relocation before copying the row's satellites so a
        // concurrent probe translates the (already visible) target row back
        // to its original global id as early as possible.
        std::lock_guard<std::mutex> lock(slots_mutex_);
        migration_.relocations[slocal] = tlocal;
        ++migration_.rows_copied;
        int64_t global = slocal * n + source;
        const auto& src_reverse =
            slots_[static_cast<size_t>(source)].reverse_relocations;
        if (src_reverse) {
          auto rit = src_reverse->find(slocal);
          if (rit != src_reverse->end()) global = rit->second;
        }
        auto next =
            slots_[static_cast<size_t>(target)].reverse_relocations
                ? std::make_shared<std::unordered_map<int64_t, int64_t>>(
                      *slots_[static_cast<size_t>(target)].reverse_relocations)
                : std::make_shared<std::unordered_map<int64_t, int64_t>>();
        (*next)[tlocal] = global;
        slots_[static_cast<size_t>(target)].reverse_relocations =
            std::move(next);
      }
      for (const AnnotationRecord& ann : anns) {
        TVDP_RETURN_IF_ERROR(dst->AnnotateImage(tlocal, ann).status());
      }
      for (const auto& [kind, vec] : feats) {
        TVDP_RETURN_IF_ERROR(dst->StoreFeature(tlocal, kind, vec));
      }
      ++delta;
      continue;
    }
    // Already copied: diff the satellites. Annotations only append, so the
    // target's list is a prefix of the source's; features diff by kind.
    bool touched = false;
    TVDP_ASSIGN_OR_RETURN(std::vector<AnnotationRecord> tanns,
                          dst->ListAnnotations(tlocal));
    for (size_t a = tanns.size(); a < anns.size(); ++a) {
      TVDP_RETURN_IF_ERROR(dst->AnnotateImage(tlocal, anns[a]).status());
      touched = true;
    }
    TVDP_ASSIGN_OR_RETURN(auto tfeats, dst->ListFeatures(tlocal));
    std::set<std::string> have;
    for (const auto& [kind, vec] : tfeats) have.insert(kind);
    for (const auto& [kind, vec] : feats) {
      if (have.count(kind)) continue;
      TVDP_RETURN_IF_ERROR(dst->StoreFeature(tlocal, kind, vec));
      touched = true;
    }
    if (touched) {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      ++migration_.rows_caught_up;
      ++delta;
    }
  }
  // The migrated-in rows must reach the target's replicas too, or losing
  // the target's primary right after a cutover would lose the moved rows.
  ShipShard(target);
  return delta;
}

Result<Json> ShardManager::RebalanceCells(const std::vector<int>& cells,
                                          int source, int target) {
  Result<Json> report = RebalanceCellsInner(cells, source, target);
  // A resolved migration may unblock a promotion that arrived while it ran;
  // drain with migration_mutex_ released (PromoteShard never takes it, but
  // a promotion hook may re-enter RebalanceCells).
  if (report.ok()) DrainDeferredPromotions();
  return report;
}

Result<Json> ShardManager::RebalanceCellsInner(const std::vector<int>& cells,
                                               int source, int target) {
  const int n = shard_count();
  if (source < 0 || source >= n || target < 0 || target >= n) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (source == target) {
    return Status::InvalidArgument(
        "source and target of a rebalance must differ");
  }
  if (cells.empty()) {
    return Status::InvalidArgument("no cells to migrate");
  }
  const int total_cells = options_.grid_rows * options_.grid_cols;
  std::set<int> cell_set;
  for (int c : cells) {
    if (c < 0 || c >= total_cells) {
      return Status::InvalidArgument("unknown grid cell " +
                                     std::to_string(c));
    }
    if (!cell_set.insert(c).second) {
      return Status::InvalidArgument("duplicate cell " + std::to_string(c) +
                                     " in the rebalance request");
    }
  }

  std::lock_guard<std::mutex> mig_lock(migration_mutex_);
  std::shared_ptr<Tvdp> src, dst;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int c : cells) {
      if (cell_to_shard_[static_cast<size_t>(c)] != source) {
        return Status::FailedPrecondition(
            "cell " + std::to_string(c) + " is owned by shard " +
            std::to_string(cell_to_shard_[static_cast<size_t>(c)]) +
            ", not the requested source " + std::to_string(source));
      }
    }
    const Slot& s = slots_[static_cast<size_t>(source)];
    const Slot& t = slots_[static_cast<size_t>(target)];
    if (s.killed || !s.tvdp) {
      return Status::FailedPrecondition("source shard " +
                                        std::to_string(source) + " is down");
    }
    if (t.killed || !t.tvdp) {
      return Status::FailedPrecondition("target shard " +
                                        std::to_string(target) + " is down");
    }
    if (s.migrating || t.migrating) {
      return Status::FailedPrecondition(
          "an earlier migration touching shard " +
          std::to_string(s.migrating ? source : target) +
          " is unresolved; run reconcile first");
    }
    if (s.promoting || t.promoting) {
      // A promotion mid-flight is rewriting the endpoint's engine identity;
      // migrating rows through it would copy from (or into) an engine about
      // to be fenced.
      return Status::FailedPrecondition(
          "a promotion of shard " +
          std::to_string(s.promoting ? source : target) +
          " is in flight; retry the rebalance after it resolves");
    }
    for (const Slot* slot : {&s, &t}) {
      for (const auto& [bid, p] : slot->pending_broadcasts) {
        if (p.op == "rebalance_cells") {
          return Status::FailedPrecondition(
              "an unresolved rebalance intent (migration " +
              std::to_string(bid) + ") blocks this migration; run "
              "reconcile first");
        }
      }
    }
    src = s.tvdp;
    dst = t.tvdp;
  }
  if (!(src->ClassificationTableJson() == dst->ClassificationTableJson())) {
    return Status::FailedPrecondition(
        "source and target classification tables diverge; reconcile "
        "broadcasts before rebalancing");
  }

  int64_t mid;
  {
    std::lock_guard<std::mutex> block(broadcast_mutex_);
    mid = next_broadcast_id_++;
  }
  Json payload = Json::MakeObject();
  Json jcells = Json::MakeArray();
  for (int c : cells) jcells.Append(Json(c));
  payload["cells"] = std::move(jcells);
  payload["source"] = Json(source);
  payload["target"] = Json(target);
  const int64_t high_water = static_cast<int64_t>(src->image_count());
  payload["high_water"] = Json(high_water);
  const storage::WalRecord intent = storage::WalRecord::MigrationIntent(
      mid, "rebalance_cells", payload.Dump(),
      {static_cast<int64_t>(source), static_cast<int64_t>(target)});

  // Phase 1 — intent: durably logged on both endpoints before anything
  // moves. A hook veto here models a coordinator crash (state stays for
  // reconciliation); an append *failure* rolls the earlier intent back
  // inline, since nothing has been applied anywhere yet.
  const int endpoints[2] = {source, target};
  for (int i = 0; i < 2; ++i) {
    if (!MigrationHookOk("intent", endpoints[i])) {
      return Status::Unavailable(
          "migration " + std::to_string(mid) +
          " abandoned before intent on shard " +
          std::to_string(endpoints[i]) + "; pending until reconciliation");
    }
    Status logged = AppendBroadcastTo(endpoints[i], intent);
    if (!logged.ok()) {
      for (int j = 0; j < i; ++j) {
        (void)AppendBroadcastTo(endpoints[j],
                                storage::WalRecord::MigrationAbort(mid));
      }
      return logged;
    }
  }
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    migration_ = MigrationState{};
    migration_.active = true;
    migration_.id = mid;
    migration_.cells = cells;
    migration_.source = source;
    migration_.target = target;
    migration_.phase = "copy";
    migration_.high_water = high_water;
    slots_[static_cast<size_t>(source)].migrating = true;
    slots_[static_cast<size_t>(target)].migrating = true;
  }

  // Phases 2+3 — copy, then idempotent catch-up passes until the delta the
  // still-serving source absorbed drains (bounded; the gated final pass
  // under cutover catches any persistent trickle).
  auto in_cells = [this, cell_set](const geo::GeoPoint& p) {
    return cell_set.count(CellForLocation(p)) > 0;
  };
  // Fail fast on a killed endpoint: the snapshotted handles would keep
  // working, but durably writing to a "crashed" shard would falsify the
  // crash model recovery is tested against. Checked after every hook call
  // too — fault hooks kill shards mid-phase to simulate exactly that.
  auto endpoints_down = [this, source, target]() {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& s = slots_[static_cast<size_t>(source)];
    const Slot& t = slots_[static_cast<size_t>(target)];
    return s.killed || !s.tvdp || t.killed || !t.tvdp;
  };
  constexpr int kMaxCatchUpPasses = 6;
  for (int pass = 0; pass < kMaxCatchUpPasses; ++pass) {
    const char* phase = pass == 0 ? "copy" : "catchup";
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      migration_.phase = phase;
    }
    if (!MigrationHookOk(phase, source)) {
      return AbandonMigration("migration " + std::to_string(mid) +
                              " abandoned at " + phase +
                              "; pending until reconciliation");
    }
    if (endpoints_down()) {
      return AbandonMigration("migration " + std::to_string(mid) +
                              " abandoned: an endpoint died mid-copy; "
                              "pending until reconciliation");
    }
    Result<size_t> changed = MigrationCopyPass(src, dst, in_cells, source,
                                               target);
    if (!changed.ok()) {
      (void)AbandonMigration("");
      return changed.status();
    }
    if (pass > 0 && *changed == 0) break;
  }

  // Phase 4 — cutover: gate new writes, drain the in-flight ones, run the
  // final catch-up against the now-quiescent source, persist the new shard
  // map (the durable commit point), and flip routing.
  if (!MigrationHookOk("cutover", source)) {
    return AbandonMigration("migration " + std::to_string(mid) +
                            " abandoned before cutover; pending until "
                            "reconciliation");
  }
  if (endpoints_down()) {
    return AbandonMigration("migration " + std::to_string(mid) +
                            " abandoned: an endpoint died before cutover; "
                            "pending until reconciliation");
  }
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    migration_.phase = "cutover";
  }
  BlockWrites();
  Result<size_t> final_pass =
      MigrationCopyPass(src, dst, in_cells, source, target);
  if (!final_pass.ok()) {
    UnblockWrites();
    (void)AbandonMigration("");
    return final_pass.status();
  }
  const double target_fov = dst->MaxFovRadiusM();
  // Held across the file write AND the in-memory flip: a promotion's map
  // write serializes behind it, so it can neither regress this cutover's
  // just-committed cell ownership (by snapshotting the pre-flip memory
  // state) nor have its own committed epoch regressed by us (the write
  // sources epochs/primaries from the persisted vectors it maintains).
  std::unique_lock<std::mutex> map_lock(shard_map_mutex_);
  if (!options_.base_path.empty()) {
    std::vector<int> new_cell_map;
    std::vector<std::array<int64_t, 3>> new_relocs;
    std::vector<int64_t> new_committed;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      new_cell_map = cell_to_shard_;
      for (int c : cells) new_cell_map[static_cast<size_t>(c)] = target;
      for (const auto& [global, loc] : relocated_) {
        new_relocs.push_back({global, loc.first, loc.second});
      }
      const auto& src_reverse =
          slots_[static_cast<size_t>(source)].reverse_relocations;
      for (const auto& [slocal, tlocal] : migration_.relocations) {
        int64_t global = slocal * n + source;
        if (src_reverse) {
          auto rit = src_reverse->find(slocal);
          if (rit != src_reverse->end()) global = rit->second;
        }
        new_relocs.push_back({global, target, tlocal});
      }
      new_committed.assign(committed_migrations_.begin(),
                           committed_migrations_.end());
      new_committed.push_back(mid);
    }
    Status saved = WriteShardMapLocked(new_cell_map, new_relocs,
                                       new_committed);
    if (!saved.ok()) {
      map_lock.unlock();
      UnblockWrites();
      (void)AbandonMigration("");
      return saved;
    }
  }
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int c : cells) cell_to_shard_[static_cast<size_t>(c)] = target;
    committed_migrations_.insert(mid);
    const auto& src_reverse =
        slots_[static_cast<size_t>(source)].reverse_relocations;
    for (const auto& [slocal, tlocal] : migration_.relocations) {
      int64_t global = slocal * n + source;
      if (src_reverse) {
        auto rit = src_reverse->find(slocal);
        if (rit != src_reverse->end()) global = rit->second;
      }
      relocated_[global] = {target, tlocal};
    }
    RecomputeCellsLocked(source);
    RecomputeCellsLocked(target);
    Slot& t = slots_[static_cast<size_t>(target)];
    t.max_fov_radius_m = std::max(t.max_fov_radius_m, target_fov);
    RebuildReverseMapsLocked();
    migration_.phase = "commit";
  }
  map_lock.unlock();
  UnblockWrites();

  // Phase 5 — commit markers + GC. The migration is committed; everything
  // from here is best-effort and reconciliation finishes whatever a crash
  // skips (forward: the shard map already says so).
  for (int i = 0; i < 2; ++i) {
    if (!MigrationHookOk("commit", endpoints[i])) {
      return AbandonMigration("migration " + std::to_string(mid) +
                              " committed but abandoned before its commit "
                              "marker on shard " +
                              std::to_string(endpoints[i]) +
                              "; reconciliation will finalize it");
    }
    (void)AppendBroadcastTo(endpoints[i],
                            storage::WalRecord::MigrationCommit(mid));
  }
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    migration_.phase = "gc";
  }
  if (!MigrationHookOk("gc", source)) {
    return AbandonMigration("migration " + std::to_string(mid) +
                            " committed but abandoned before GC; "
                            "reconciliation will finalize it");
  }
  std::vector<int64_t> moved;
  size_t rows_copied, rows_caught_up, relocation_count;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    moved.reserve(migration_.relocations.size());
    for (const auto& [slocal, tlocal] : migration_.relocations) {
      moved.push_back(slocal);
    }
    rows_copied = migration_.rows_copied;
    rows_caught_up = migration_.rows_caught_up;
    relocation_count = migration_.relocations.size();
  }
  Status gc = src->RemoveImages(moved);
  if (!gc.ok()) {
    (void)AbandonMigration("");
    return gc;
  }
  ShipShard(source);
  const double source_fov = src->MaxFovRadiusM();
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    slots_[static_cast<size_t>(source)].max_fov_radius_m = source_fov;
    slots_[static_cast<size_t>(source)].migrating = false;
    slots_[static_cast<size_t>(target)].migrating = false;
    migration_.active = false;
    migration_.phase = "done";
    RebuildReverseMapsLocked();
  }

  Json report = Json::MakeObject();
  report["migration_id"] = Json(mid);
  Json rcells = Json::MakeArray();
  for (int c : cells) rcells.Append(Json(c));
  report["cells"] = std::move(rcells);
  report["source"] = Json(source);
  report["target"] = Json(target);
  report["rows_copied"] = Json(static_cast<int64_t>(rows_copied));
  report["rows_caught_up"] = Json(static_cast<int64_t>(rows_caught_up));
  report["relocations"] = Json(static_cast<int64_t>(relocation_count));
  return report;
}

Result<int64_t> ShardManager::AnnotateImage(
    int64_t image_id, const AnnotationRecord& annotation) {
  if (image_id < 0) {
    return Status::InvalidArgument("image id must be non-negative");
  }
  const int n = shard_count();
  WriteTicket ticket(this);
  int shard;
  int64_t local;
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    auto it = relocated_.find(image_id);
    if (it != relocated_.end()) {
      shard = it->second.first;
      local = it->second.second;
    } else {
      shard = static_cast<int>(image_id % n);
      local = image_id / n;
    }
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  TVDP_ASSIGN_OR_RETURN(int64_t ann_local,
                        tvdp->AnnotateImage(local, annotation));
  ShipShard(shard);
  return ann_local * n + shard;
}

Status ShardManager::StoreFeature(int64_t image_id, const std::string& kind,
                                  const ml::FeatureVector& feature) {
  if (image_id < 0) {
    return Status::InvalidArgument("image id must be non-negative");
  }
  const int n = shard_count();
  WriteTicket ticket(this);
  int shard;
  int64_t local;
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    auto it = relocated_.find(image_id);
    if (it != relocated_.end()) {
      shard = it->second.first;
      local = it->second.second;
    } else {
      shard = static_cast<int>(image_id % n);
      local = image_id / n;
    }
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  TVDP_RETURN_IF_ERROR(tvdp->StoreFeature(local, kind, feature));
  ShipShard(shard);
  return Status::OK();
}

Result<ml::FeatureVector> ShardManager::GetFeature(
    int64_t image_id, const std::string& kind) const {
  if (image_id < 0) {
    return Status::InvalidArgument("image id must be non-negative");
  }
  const int n = shard_count();
  // Reads take a ticket too: the routing decision must not span a cutover,
  // or a read routed to the old owner could race the GC of the moved row.
  WriteTicket ticket(this);
  int shard;
  int64_t local;
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    auto it = relocated_.find(image_id);
    if (it != relocated_.end()) {
      shard = it->second.first;
      local = it->second.second;
    } else {
      shard = static_cast<int>(image_id % n);
      local = image_id / n;
    }
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  return tvdp->GetFeature(local, kind);
}

Result<Json> ShardManager::ImageRowJson(int64_t image_id) const {
  if (image_id < 0) {
    return Status::InvalidArgument("image id must be non-negative");
  }
  const int n = shard_count();
  WriteTicket ticket(this);
  int shard;
  int64_t local;
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    auto it = relocated_.find(image_id);
    if (it != relocated_.end()) {
      shard = it->second.first;
      local = it->second.second;
    } else {
      shard = static_cast<int>(image_id % n);
      local = image_id / n;
    }
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  TVDP_ASSIGN_OR_RETURN(Json row, tvdp->ImageRowJson(local));
  row["id"] = Json(image_id);
  return row;
}

Result<std::vector<query::QueryHit>> ShardManager::ProbeShard(
    int shard, const std::shared_ptr<Tvdp>& tvdp, const query::HybridQuery& q,
    const RequestContext& ctx, const query::QueryBudget& budget,
    query::QueryPlan* plan_out, bool inject_faults) const {
  if (!tvdp) {
    return Status::Unavailable("shard " + std::to_string(shard) + " is down");
  }
  ShardFaultProfile f;
  bool crash = false, hang = false, slow = false;
  std::shared_ptr<const std::unordered_map<int64_t, int64_t>> reverse;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    f = slot.faults;
    reverse = slot.reverse_relocations;
    if (inject_faults) {
      if (f.crash_prob > 0) crash = slot.rng.Bernoulli(f.crash_prob);
      if (!crash && f.hang_prob > 0) hang = slot.rng.Bernoulli(f.hang_prob);
      if (!crash && !hang && f.slow_prob > 0) {
        slow = slot.rng.Bernoulli(f.slow_prob);
      }
    }
  }
  if (crash) {
    return Status::Unavailable("shard " + std::to_string(shard) +
                               " crash (injected)");
  }
  if (hang) {
    // Block in 1 ms slices until the attempt's budget or the hang cap
    // runs out — the probe never answers, like a wedged replica.
    double hung = 0;
    while (hung < f.hang_ms && ctx.Check().ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      hung += 1;
    }
    return Status::Unavailable("shard " + std::to_string(shard) +
                               " hang (injected)");
  }
  if (slow && f.slow_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(f.slow_ms));
  }
  query::HybridQuery local_q = q;
  if (reverse && !reverse->empty()) {
    // A shard holding relocated rows cannot truncate a ranked query
    // locally: relocated rows sit at the high end of the local id space,
    // so the local tie order no longer matches the global (original-id)
    // order and local top-k could evict a true global winner. Return the
    // shard's full ranking instead; the gather-side merge re-truncates
    // globally after ids are translated back.
    const int all = static_cast<int>(
        std::min<size_t>(tvdp->image_count(),
                         static_cast<size_t>(
                             std::numeric_limits<int>::max())));
    if (local_q.visual.has_value() &&
        local_q.visual->kind == query::VisualPredicate::Kind::kTopK) {
      local_q.visual->k = std::max(local_q.visual->k, all);
    }
    if (local_q.spatial.has_value() &&
        local_q.spatial->kind == query::SpatialPredicate::Kind::kKnn) {
      local_q.spatial->k = std::max(local_q.spatial->k, all);
    }
  }
  TVDP_ASSIGN_OR_RETURN(std::vector<query::QueryHit> hits,
                        tvdp->ExecuteQuery(local_q, &ctx, budget, plan_out));
  const int n = shard_count();
  if (n > 1) {
    // Rows migrated in (or mid-copy) keep their original global id so the
    // dual-serving window dedups exactly; everything else translates
    // arithmetically.
    for (query::QueryHit& h : hits) {
      if (reverse) {
        auto it = reverse->find(h.image_id);
        if (it != reverse->end()) {
          h.image_id = it->second;
          continue;
        }
      }
      h.image_id = h.image_id * n + shard;
    }
  }
  return hits;
}

query::ShardEstimate ShardManager::EstimateShard(
    const std::shared_ptr<Tvdp>& tvdp, const query::HybridQuery& q) const {
  query::ShardEstimate est;
  if (!tvdp) return est;
  Result<query::QueryPlan> plan = tvdp->ExplainQuery(q);
  if (!plan.ok()) return est;
  if (!plan->conjuncts.empty()) {
    est.rows = plan->conjuncts.front().estimated_rows;
  }
  // Only exact counters may prove emptiness: the textual estimate is a
  // min-df / capped-sum over real posting lists and the temporal estimate
  // an exact order statistic, so a zero there is a zero. Spatial and
  // categorical estimates are heuristic and never prune.
  for (const query::ConjunctPlan& c : plan->conjuncts) {
    if ((c.family == "textual" || c.family == "temporal") &&
        c.estimated_rows == 0) {
      est.provably_empty = true;
    }
  }
  return est;
}

void ShardManager::RecordProbeOutcome(const query::ShardReport& report) const {
  if (report.outcome != query::ShardOutcome::kProbed &&
      report.outcome != query::ShardOutcome::kMigrating &&
      report.outcome != query::ShardOutcome::kFailed &&
      report.outcome != query::ShardOutcome::kFailedOver) {
    return;
  }
  const bool failed = report.outcome == query::ShardOutcome::kFailed;
  // A failed-over probe whose primary was actually attempted is a primary
  // failure for the breaker, even though the query succeeded via a replica.
  // A probe served by a replica without touching the primary (breaker
  // already open, or a balanced read) says nothing about the primary.
  const bool primary_failure =
      report.primary_probed &&
      (failed || report.outcome == query::ShardOutcome::kFailedOver);
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(report.shard)];
    ++slot.probes;
    if (failed) ++slot.failures;
    if (slot.latencies.size() < kLatencyRing) {
      slot.latencies.push_back(report.latency_ms);
    } else {
      slot.latencies[slot.latency_next % kLatencyRing] = report.latency_ms;
    }
    ++slot.latency_next;
  }
  bool tripped_open = false;
  if (tracker_ && report.primary_probed) {
    std::lock_guard<std::mutex> lock(tracker_mutex_);
    const size_t i = static_cast<size_t>(report.shard);
    const edge::CircuitState before = tracker_->state(i);
    if (primary_failure) {
      tracker_->RecordFailure(i, NowMs());
    } else {
      tracker_->RecordSuccess(i, NowMs());
    }
    tripped_open = before != edge::CircuitState::kOpen &&
                   tracker_->state(i) == edge::CircuitState::kOpen;
  }
  if (tripped_open) {
    // The breaker just gave up on this primary. If the shard is replicated
    // and its engine is actually gone, retry the automatic promotion the
    // KillShard-time attempt may have skipped (e.g. a fault hook vetoed
    // it). No locks held here; PromoteShard manages its own.
    bool promotable = false;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      const Slot& slot = slots_[static_cast<size_t>(report.shard)];
      promotable = slot.replicas && (slot.killed || !slot.tvdp) &&
                   !slot.promoting;
    }
    if (promotable) {
      Result<Json> promoted =
          const_cast<ShardManager*>(this)->PromoteShard(report.shard);
      if (!promoted.ok()) {
        TVDP_LOG(Warning) << "breaker-triggered promotion of shard "
                          << report.shard
                          << " failed: " << promoted.status().ToString();
      }
    }
  }
}

Result<ShardManager::ShardedQueryResult> ShardManager::ExecuteQuery(
    const query::HybridQuery& q, const RequestContext* ctx,
    const query::QueryBudget& budget, bool shed_shards_degraded) const {
  const size_t n = slots_.size();
  std::vector<ShardProbeTarget> targets;
  targets.reserve(n);
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (size_t i = 0; i < n; ++i) {
      Slot& slot = slots_[i];
      std::vector<std::shared_ptr<Tvdp>> replicas;
      int preferred = -1;
      if (slot.replicas && options_.replication.serve_replica_reads) {
        const int rc = slot.replicas->replica_count();
        for (int r = 0; r < rc; ++r) {
          std::shared_ptr<Tvdp> handle = slot.replicas->replica(r);
          if (handle) replicas.push_back(std::move(handle));
        }
        if (options_.replication.balance_replica_reads &&
            !replicas.empty() && !slot.killed && slot.tvdp) {
          // Round-robin the clean read across primary + replicas; lane 0
          // is the primary (preferred stays -1).
          const size_t lane = slot.read_rr++ % (replicas.size() + 1);
          if (lane > 0) preferred = static_cast<int>(lane - 1);
        }
      }
      targets.emplace_back(this, static_cast<int>(i),
                           slot.killed ? nullptr : slot.tvdp,
                           ExpandedRegionLocked(static_cast<int>(i)),
                           slot.migrating, std::move(replicas), preferred);
    }
  }
  std::vector<query::ShardTarget*> ptrs;
  ptrs.reserve(n);
  for (ShardProbeTarget& t : targets) ptrs.push_back(&t);

  query::ScatterGatherOptions gopts = options_.gather;
  gopts.shed_low_selectivity =
      gopts.shed_low_selectivity || shed_shards_degraded;
  if (tracker_) {
    gopts.admit = [this](int shard) {
      std::lock_guard<std::mutex> lock(tracker_mutex_);
      return tracker_->AllowRequest(static_cast<size_t>(shard), NowMs());
    };
    // All-shards-blocked responses carry a retry-after derived from the
    // earliest breaker half-open deadline instead of a static hint.
    gopts.retry_after_hint = [this](const std::vector<int>& blocked) {
      std::lock_guard<std::mutex> lock(tracker_mutex_);
      const double now = NowMs();
      double best = -1;
      for (int s : blocked) {
        const double rem =
            tracker_->RemainingCooldownMs(static_cast<size_t>(s), now);
        if (rem > 0 && (best < 0 || rem < best)) best = rem;
      }
      return best > 0 ? best : 50.0;
    };
  }
  gopts.observe = [this](const query::ShardReport& r) {
    RecordProbeOutcome(r);
  };

  TVDP_ASSIGN_OR_RETURN(
      query::ShardedResult gathered,
      query::ScatterGather::Execute(ptrs, nullptr, q, ctx, budget, gopts));

  ShardedQueryResult out;
  out.hits = std::move(gathered.hits);
  out.coverage = std::move(gathered.coverage);
  if (n == 1) {
    // Degenerate single-shard mode: the shard's executed plan verbatim,
    // byte-identical to an unsharded platform's plan JSON.
    out.plan = gathered.plans.empty() ? Json::MakeObject()
                                      : gathered.plans[0].second.ToJson();
  } else {
    Json node = Json::MakeObject();
    node["op"] = "ScatterGather";
    node["detail"] =
        "probed " + std::to_string(out.coverage.ProbedShards().size()) + "/" +
        std::to_string(n);
    Json shard_plans = Json::MakeArray();
    for (const auto& [sid, plan] : gathered.plans) {
      Json entry = Json::MakeObject();
      entry["shard"] = Json(sid);
      entry["plan"] = plan.ToJson();
      shard_plans.Append(std::move(entry));
    }
    node["shard_plans"] = std::move(shard_plans);
    out.plan = std::move(node);
  }
  return out;
}

Result<Json> ShardManager::ExplainQuery(const query::HybridQuery& q,
                                        const query::QueryBudget& budget) const {
  TVDP_RETURN_IF_ERROR(query::Planner::Validate(q));
  std::vector<std::pair<int, std::shared_ptr<Tvdp>>> shards;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (size_t i = 0; i < slots_.size(); ++i) {
      shards.emplace_back(static_cast<int>(i),
                          slots_[i].killed ? nullptr : slots_[i].tvdp);
    }
  }
  if (shards.size() == 1) {
    if (!shards[0].second) {
      return Status::Unavailable("shard 0 is down");
    }
    TVDP_ASSIGN_OR_RETURN(query::QueryPlan plan,
                          shards[0].second->ExplainQuery(q, budget));
    return plan.ToJson();
  }
  Json node = Json::MakeObject();
  node["op"] = "ScatterGather";
  node["detail"] = "shards " + std::to_string(shards.size());
  Json shard_plans = Json::MakeArray();
  for (const auto& [sid, tvdp] : shards) {
    Json entry = Json::MakeObject();
    entry["shard"] = Json(sid);
    if (!tvdp) {
      entry["error"] = "Unavailable";
    } else {
      Result<query::QueryPlan> plan = tvdp->ExplainQuery(q, budget);
      if (!plan.ok()) return plan.status();
      entry["plan"] = plan->ToJson();
    }
    shard_plans.Append(std::move(entry));
  }
  node["shard_plans"] = std::move(shard_plans);
  return node;
}

Status ShardManager::SetShardFaults(int shard,
                                    const ShardFaultProfile& faults) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  auto valid_prob = [](double p) { return p >= 0 && p <= 1; };
  if (!valid_prob(faults.crash_prob) || !valid_prob(faults.hang_prob) ||
      !valid_prob(faults.slow_prob)) {
    return Status::InvalidArgument(
        "fault probabilities must be in [0, 1]");
  }
  if (faults.slow_ms < 0 || faults.hang_ms < 0) {
    return Status::InvalidArgument("fault delays must be non-negative");
  }
  std::lock_guard<std::mutex> lock(slots_mutex_);
  slots_[static_cast<size_t>(shard)].faults = faults;
  return Status::OK();
}

Status ShardManager::KillShard(int shard, bool drop_state) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  std::shared_ptr<ReplicaSet> reps;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed) {
      return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                        " is already down");
    }
    if (slot.migrating && !drop_state) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard) +
          " is an endpoint of an in-flight cell migration; pass drop_state "
          "to kill it anyway (the migration will abandon and reconcile "
          "later)");
    }
    slot.killed = true;
    if (!slot.base_path.empty() || drop_state) {
      // A durable shard crashes for real: drop the engine (no checkpoint,
      // no flush) so recovery has to replay the WAL. In-flight probes keep
      // their snapshotted handle and finish against the old instance. An
      // in-memory shard only loses its engine under the explicit total-loss
      // model (`drop_state`) — there is no WAL to rebuild it from.
      slot.tvdp.reset();
      // Total loss on an in-memory shard takes its broadcast log with it;
      // durable shards keep the mirror because the on-disk log survives.
      if (slot.base_path.empty()) slot.pending_broadcasts.clear();
    }
    reps = slot.replicas;
  }
  if (reps) {
    // The crash takes the unshipped capture channel with it. Under kSync
    // the channel is empty at every ack boundary, so no acknowledged write
    // is in it; under kAsync a durable shard's promotion re-derives the
    // lost records from the primary's on-disk WAL tail.
    reps->DiscardPending();
    if (reps->has_live_replica()) {
      // Automatic failover: promote the most-caught-up replica. Best
      // effort — a fault hook's veto leaves the shard down, and the
      // breaker-trip path in RecordProbeOutcome retries later.
      Result<Json> promoted = PromoteShard(shard);
      if (!promoted.ok()) {
        TVDP_LOG(Warning) << "automatic promotion of killed shard " << shard
                          << " failed: " << promoted.status().ToString();
      }
    }
  }
  return Status::OK();
}

Status ShardManager::RecoverShard(int shard) {
  Status out = RecoverShardInner(shard);
  // Recovery reconciles migrations, which may unblock a parked promotion.
  DrainDeferredPromotions();
  return out;
}

Status ShardManager::RecoverShardInner(int shard) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  // Ticketed (the reconciliation pass below mutates shard engines and must
  // be drainable by the cutover / fence write gate), then serialized with
  // broadcasts so that pass sees a stable fleet (ticket before
  // broadcast_mutex_ before slots_mutex_, never the reverse).
  WriteTicket ticket(this);
  std::lock_guard<std::mutex> block(broadcast_mutex_);
  std::string base_path;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    if (!slot.killed) {
      return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                        " is not down");
    }
    if (slot.base_path.empty() && !slot.tvdp) {
      // An in-memory shard that lost its engine has no WAL to replay;
      // "recovering" it would put an empty zombie back into rotation.
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard) +
          " is in-memory with no engine to revive (nothing to replay)");
    }
    base_path = slot.base_path;
  }
  std::shared_ptr<ReplicaSet> reps;
  std::shared_ptr<Tvdp> revived_primary;
  int primary_index = 0;
  if (!base_path.empty()) {
    // Reopen outside slots_mutex_ — WAL replay is disk-bound and must not
    // stall query dispatch. The slot stays killed until the swap below, so
    // no other caller can race the handle.
    TVDP_ASSIGN_OR_RETURN(Tvdp t, Tvdp::Open(base_path, options_.durable));
    auto revived = std::make_shared<Tvdp>(std::move(t));
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    slot.tvdp = std::move(revived);
    slot.tvdp->set_epoch(slot.epoch);
    storage::DurableCatalog* dc = slot.tvdp->durable_catalog();
    slot.replayed = dc->replayed_records();
    slot.max_fov_radius_m = slot.tvdp->MaxFovRadiusM();
    slot.pending_broadcasts.clear();
    for (const storage::PendingBroadcast& p : dc->PendingBroadcasts()) {
      slot.pending_broadcasts[p.broadcast_id] = p;
    }
    next_broadcast_id_ =
        std::max(next_broadcast_id_, dc->max_broadcast_id() + 1);
    slot.killed = false;
    reps = slot.replicas;
    revived_primary = slot.tvdp;
    primary_index = slot.primary_index;
  } else {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    slot.killed = false;
    reps = slot.replicas;
    revived_primary = slot.tvdp;
    primary_index = slot.primary_index;
  }
  if (reps && revived_primary) {
    // The replicas may have drifted past the recovered primary (they kept
    // the shipped records the crash destroyed locally under kAsync) or
    // behind it; rather than diff, wipe and re-bootstrap them from the
    // revived primary — the only state that is now authoritative.
    TVDP_RETURN_IF_ERROR(
        AttachReplicas(shard, revived_primary, primary_index, reps));
  }
  bool any_rebalance = false;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const Slot& s : slots_) {
      if (s.migrating) any_rebalance = true;
      for (const auto& [bid, p] : s.pending_broadcasts) {
        if (p.op == "rebalance_cells") any_rebalance = true;
      }
    }
  }
  if (!options_.atomic_broadcasts && !any_rebalance) return Status::OK();
  // Resolve whatever a crash left pending now that this shard is back,
  // then surface (without undoing the recovery) any remaining divergence.
  // In legacy (non-atomic) broadcast mode only migration state is
  // reconciled and divergence is left unreported, as before.
  TVDP_ASSIGN_OR_RETURN(Json report, ReconcileLocked());
  (void)report;
  if (!options_.atomic_broadcasts) return Status::OK();
  return VerifyConsistencyLocked(nullptr);
}

void ShardManager::SetPromotionHook(
    std::function<bool(const std::string& phase, int shard)> hook) {
  std::lock_guard<std::mutex> lock(promotion_mutex_);
  promotion_hook_ = std::move(hook);
}

bool ShardManager::PromotionHookOk(const char* phase, int shard) const {
  if (!promotion_hook_) return true;
  return promotion_hook_(phase, shard);
}

Status ShardManager::CommitPromotionToShardMap(int shard, int64_t new_epoch,
                                               int new_primary_index) {
  if (options_.base_path.empty()) return Status::OK();
  // shard_map_mutex_ first (it orders before slots_mutex_): the mutex both
  // serializes this write against a concurrent rebalance cutover's and
  // pins the cell snapshot below to the cutover's write-then-flip critical
  // section, so the map this promotion persists can never carry a cell
  // ownership the cutover already superseded on disk.
  std::lock_guard<std::mutex> map_lock(shard_map_mutex_);
  std::vector<int> cell_map;
  std::vector<std::array<int64_t, 3>> relocs;
  std::vector<int64_t> committed;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    cell_map = cell_to_shard_;
    for (const auto& [global, loc] : relocated_) {
      relocs.push_back({global, loc.first, loc.second});
    }
    committed.assign(committed_migrations_.begin(),
                     committed_migrations_.end());
  }
  const int64_t prev_epoch = persisted_epochs_[static_cast<size_t>(shard)];
  const int prev_primary = persisted_primaries_[static_cast<size_t>(shard)];
  persisted_epochs_[static_cast<size_t>(shard)] = new_epoch;
  persisted_primaries_[static_cast<size_t>(shard)] = new_primary_index;
  Status written = WriteShardMapLocked(cell_map, relocs, committed);
  if (!written.ok()) {
    // The file kept its old contents; the in-memory persisted state must
    // agree, or a later (unrelated) map write would durably promote a
    // replica that was never flipped to.
    persisted_epochs_[static_cast<size_t>(shard)] = prev_epoch;
    persisted_primaries_[static_cast<size_t>(shard)] = prev_primary;
  }
  return written;
}

Result<Json> ShardManager::PromoteShard(int shard) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  std::lock_guard<std::mutex> promo(promotion_mutex_);
  std::shared_ptr<ReplicaSet> reps;
  std::shared_ptr<Tvdp> old_primary;
  int64_t old_epoch = 0;
  int old_primary_index = 0;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    if (!slot.replicas) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard) +
          " is not replicated; nothing to promote");
    }
    if (slot.migrating) {
      // Promotion and migration both rewrite the shard's engine identity;
      // park the promotion until the migration resolves (reconciliation /
      // rebalance completion drains the deferred set).
      deferred_promotions_.insert(shard);
      Json out = Json::MakeObject();
      out["shard"] = Json(shard);
      out["action"] = Json("deferred");
      return out;
    }
    deferred_promotions_.erase(shard);
    if (!slot.replicas->has_live_replica()) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard) +
          " has no live replica to promote");
    }
    reps = slot.replicas;
    old_primary = slot.tvdp;  // may be null: the primary crashed
    old_epoch = slot.epoch;
    old_primary_index = slot.primary_index;
    slot.promoting = true;
  }

  // Every exit below must clear the promoting flag; run the phases in a
  // closure so one cleanup covers all paths.
  Result<Json> result = [&]() -> Result<Json> {
    const int64_t new_epoch = old_epoch + 1;
    auto abandoned = [shard](const char* phase) {
      return Status::Unavailable(
          "promotion of shard " + std::to_string(shard) + " abandoned at " +
          phase + "; durable evidence resolves it at recovery");
    };

    // Phase 1 — ship: drain whatever the capture channel still holds.
    if (!PromotionHookOk("ship", shard)) return abandoned("ship");
    TVDP_RETURN_IF_ERROR(reps->Ship());

    // Phase 2 — apply: a durable primary that died with unshipped records
    // (the kAsync window, or a crash that destroyed the channel) left them
    // in its WAL; tail it past the shipped offset and apply. This is what
    // makes "zero lost acknowledged writes" hold for durable shards even
    // under kAsync.
    if (!PromotionHookOk("apply", shard)) return abandoned("apply");
    size_t applied_tail = 0;
    const std::string old_primary_path = CopyPath(shard, old_primary_index);
    if (!old_primary_path.empty()) {
      Fs* fs = options_.durable.fs ? options_.durable.fs : Fs::Default();
      const std::string wal_path = old_primary_path + ".wal";
      if (fs->Exists(wal_path)) {
        Result<storage::WalRecovery> tail =
            storage::Wal::TailFrom(fs, wal_path, reps->shipped_wal_offset());
        // Tail errors are not fatal: a compacted WAL means the shipped
        // offset over-covers the log and nothing is missing.
        if (tail.ok() && !tail->records.empty()) {
          std::vector<storage::WalRecord> mutations;
          for (storage::WalRecord& r : tail->records) {
            if (r.type == storage::WalRecordType::kInsert ||
                r.type == storage::WalRecordType::kDelete) {
              mutations.push_back(std::move(r));
            }
          }
          if (!mutations.empty()) {
            TVDP_RETURN_IF_ERROR(reps->ApplyToLive(mutations));
            applied_tail = mutations.size();
          }
        }
      }
    }

    // Phase 3 — ack: every live durable replica fsyncs its own WAL, so the
    // promoted state survives a second crash.
    if (!PromotionHookOk("ack", shard)) return abandoned("ack");
    TVDP_RETURN_IF_ERROR(reps->FsyncReplicas());

    const int elected = reps->ElectMostCaughtUp();
    if (elected < 0) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard) +
          " lost its last live replica mid-promotion");
    }
    const int new_primary_index = ReplicaCopyIndex(old_primary_index, elected);

    // Phase 4 — promote: atomically rewrite the shard map with the bumped
    // epoch and the new primary path. THE durable commit point: a restart
    // before this write serves the old primary, after it the new one.
    if (!PromotionHookOk("promote", shard)) return abandoned("promote");
    TVDP_RETURN_IF_ERROR(
        CommitPromotionToShardMap(shard, new_epoch, new_primary_index));

    // Phase 5 — fence: gate writes, drain the in-flight ones into the
    // replicas (they committed against the old primary under the old
    // epoch, so they must ship BEFORE the epoch gate rises), then raise
    // the epoch and fence the old engine. From here a straggler holding
    // the old primary's handle gets kFailedPrecondition on writes and its
    // captures are rejected as stale — no split-brain.
    if (!PromotionHookOk("fence", shard)) return abandoned("fence");
    BlockWrites();
    Status shipped = reps->Ship();
    if (!shipped.ok()) {
      UnblockWrites();
      return shipped;
    }
    reps->set_epoch(new_epoch);
    if (old_primary) {
      old_primary->Fence(new_epoch);
      reps->Detach(old_primary);
    }

    // Phase 6 — flip: swap routing to the promoted engine, rebind the
    // capture observer, reset the breaker. A veto here models a crash
    // after the fence: the shard map already names the new primary, so a
    // restart (or a retried PromoteShard) completes the flip.
    if (!PromotionHookOk("flip", shard)) {
      UnblockWrites();
      return abandoned("flip");
    }
    std::shared_ptr<Tvdp> engine = reps->Take(elected);
    if (!engine) {
      UnblockWrites();
      return Status::Internal("elected replica vanished during promotion");
    }
    engine->set_epoch(new_epoch);
    const double fov = engine->MaxFovRadiusM();
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      Slot& slot = slots_[static_cast<size_t>(shard)];
      slot.tvdp = engine;
      slot.killed = false;
      slot.epoch = new_epoch;
      slot.primary_index = new_primary_index;
      slot.base_path = CopyPath(shard, new_primary_index);
      slot.max_fov_radius_m = std::max(slot.max_fov_radius_m, fov);
    }
    reps->Rebind(engine);
    UnblockWrites();
    if (tracker_) {
      // The failures that tripped the breaker belonged to the dead
      // primary; the promoted engine starts with a clean circuit.
      std::lock_guard<std::mutex> lock(tracker_mutex_);
      tracker_->Reset(static_cast<size_t>(shard));
    }

    Json report = Json::MakeObject();
    report["shard"] = Json(shard);
    report["action"] = Json("promoted");
    report["old_epoch"] = Json(old_epoch);
    report["new_epoch"] = Json(new_epoch);
    report["promoted_replica"] = Json(elected);
    report["new_primary_index"] = Json(new_primary_index);
    report["applied_tail_records"] =
        Json(static_cast<int64_t>(applied_tail));
    return report;
  }();

  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    slots_[static_cast<size_t>(shard)].promoting = false;
  }
  return result;
}

void ShardManager::DrainDeferredPromotions() {
  std::vector<int> ready;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int s : deferred_promotions_) {
      if (!slots_[static_cast<size_t>(s)].migrating) ready.push_back(s);
    }
  }
  for (int s : ready) {
    Result<Json> promoted = PromoteShard(s);  // re-defers if migrating again
    if (!promoted.ok()) {
      TVDP_LOG(Warning) << "deferred promotion of shard " << s
                        << " failed: " << promoted.status().ToString();
      std::lock_guard<std::mutex> lock(slots_mutex_);
      deferred_promotions_.erase(s);
    }
  }
}

Status ShardManager::KillReplica(int shard, int replica) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  std::shared_ptr<ReplicaSet> reps;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    reps = slots_[static_cast<size_t>(shard)].replicas;
  }
  if (!reps) {
    return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                      " is not replicated");
  }
  return reps->KillReplica(replica);
}

bool ShardManager::shard_promoting(int shard) const {
  if (shard < 0 || shard >= shard_count()) return false;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(shard)].promoting;
}

int64_t ShardManager::shard_epoch(int shard) const {
  if (shard < 0 || shard >= shard_count()) return 0;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(shard)].epoch;
}

int ShardManager::shard_primary_index(int shard) const {
  if (shard < 0 || shard >= shard_count()) return 0;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(shard)].primary_index;
}

int ShardManager::live_replica_count(int shard) const {
  if (shard < 0 || shard >= shard_count()) return 0;
  std::shared_ptr<ReplicaSet> reps;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    reps = slots_[static_cast<size_t>(shard)].replicas;
  }
  return reps ? reps->live_replica_count() : 0;
}

size_t ShardManager::replica_lag_records(int shard) const {
  if (shard < 0 || shard >= shard_count()) return 0;
  std::shared_ptr<ReplicaSet> reps;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    reps = slots_[static_cast<size_t>(shard)].replicas;
  }
  return reps ? reps->lag_records() : 0;
}

bool ShardManager::shard_alive(int shard) const {
  if (shard < 0 || shard >= shard_count()) return false;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  const Slot& slot = slots_[static_cast<size_t>(shard)];
  return !slot.killed && slot.tvdp != nullptr;
}

edge::CircuitState ShardManager::breaker_state(int shard) const {
  if (!tracker_ || shard < 0 || shard >= shard_count()) {
    return edge::CircuitState::kClosed;
  }
  std::lock_guard<std::mutex> lock(tracker_mutex_);
  return tracker_->state(static_cast<size_t>(shard));
}

size_t ShardManager::replayed_records(int shard) const {
  if (shard < 0 || shard >= shard_count()) return 0;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(shard)].replayed;
}

Json ShardManager::StatsJson() const {
  Json out = Json::MakeObject();
  out["shard_count"] = Json(shard_count());
  out["breakers"] = Json(options_.breakers);
  out["atomic_broadcasts"] = Json(options_.atomic_broadcasts);
  out["replication_factor"] =
      Json(options_.replication.replication_factor);
  out["sync"] = Json(options_.replication.sync == SyncLevel::kSync
                         ? std::string("sync")
                         : std::string("async"));
  Json shards = Json::MakeArray();
  for (int i = 0; i < shard_count(); ++i) {
    std::shared_ptr<Tvdp> tvdp;
    std::shared_ptr<ReplicaSet> reps;
    Json s = Json::MakeObject();
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      const Slot& slot = slots_[static_cast<size_t>(i)];
      tvdp = slot.killed ? nullptr : slot.tvdp;
      reps = slot.replicas;
      s["epoch"] = Json(slot.epoch);
      s["primary_index"] = Json(slot.primary_index);
      s["promoting"] = Json(slot.promoting);
      s["shard"] = Json(i);
      s["alive"] = Json(!slot.killed && slot.tvdp != nullptr);
      s["durable"] = Json(!slot.base_path.empty());
      s["probes"] = Json(slot.probes);
      s["failures"] = Json(slot.failures);
      s["probe_p50_ms"] = Json(Percentile(slot.latencies, 0.50));
      s["probe_p99_ms"] = Json(Percentile(slot.latencies, 0.99));
      s["replayed_records"] = Json(slot.replayed);
      s["pending_broadcasts"] = Json(slot.pending_broadcasts.size());
      s["region"] = BBoxJson(ExpandedRegionLocked(i));
      s["migrating"] = Json(slot.migrating);
      const bool endpoint = !migration_.phase.empty() &&
                            (i == migration_.source || i == migration_.target);
      s["migration_phase"] =
          Json(endpoint ? migration_.phase : std::string());
      s["migration_rows_copied"] =
          Json(endpoint ? migration_.rows_copied : size_t{0});
      s["migration_rows_caught_up"] =
          Json(endpoint ? migration_.rows_caught_up : size_t{0});
    }
    {
      std::lock_guard<std::mutex> lock(tracker_mutex_);
      s["breaker"] =
          Json(tracker_ ? edge::CircuitStateName(tracker_->state(
                              static_cast<size_t>(i)))
                        : std::string("disabled"));
    }
    s["images"] = Json(tvdp ? tvdp->image_count() : 0);
    if (tvdp) s["mvcc"] = tvdp->MvccStats();
    s["wal_bytes"] =
        Json(tvdp && tvdp->durable_catalog()
                 ? tvdp->durable_catalog()->wal_size_bytes()
                 : 0);
    // Self-locked; read outside slots_mutex_ so a mid-ship stats call
    // never stalls dispatch.
    if (reps) s["replication"] = reps->StatsJson();
    shards.Append(std::move(s));
  }
  out["shards"] = std::move(shards);
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Json mig = Json::MakeObject();
    mig["active"] = Json(migration_.active);
    mig["id"] = Json(migration_.id);
    mig["phase"] = Json(migration_.phase);
    mig["source"] = Json(migration_.source);
    mig["target"] = Json(migration_.target);
    mig["rows_copied"] = Json(migration_.rows_copied);
    mig["rows_caught_up"] = Json(migration_.rows_caught_up);
    out["migration"] = std::move(mig);
    size_t pending_rebalance = 0;
    for (const Slot& slot : slots_) {
      for (const auto& [bid, p] : slot.pending_broadcasts) {
        if (p.op == "rebalance_cells") ++pending_rebalance;
      }
    }
    out["pending_rebalance_intents"] = Json(pending_rebalance);
    out["relocated_rows"] = Json(relocated_.size());
  }
  return out;
}

size_t ShardManager::image_count() const {
  std::vector<std::shared_ptr<Tvdp>> live;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const Slot& slot : slots_) {
      if (!slot.killed && slot.tvdp) live.push_back(slot.tvdp);
    }
  }
  size_t total = 0;
  for (const auto& t : live) total += t->image_count();
  return total;
}

Tvdp* ShardManager::shard(int i) {
  if (i < 0 || i >= shard_count()) return nullptr;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(i)].tvdp.get();
}

}  // namespace tvdp::platform
