#include "platform/sharding.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "query/planner.h"

namespace tvdp::platform {

namespace {

/// Meters per degree of latitude (spherical model); longitude scales by
/// cos(latitude).
constexpr double kMetersPerDegLat = 111320.0;

/// Expands `box` by `radius_m` meters in every direction (degree-space
/// approximation, ample for city-scale prune regions).
geo::BoundingBox ExpandByMeters(geo::BoundingBox box, double radius_m) {
  if (box.IsEmpty() || radius_m <= 0) return box;
  const double dlat = radius_m / kMetersPerDegLat;
  const double mid_lat = (box.min_lat + box.max_lat) / 2;
  const double cos_lat =
      std::max(0.01, std::cos(geo::DegToRad(mid_lat)));
  const double dlon = radius_m / (kMetersPerDegLat * cos_lat);
  box.min_lat -= dlat;
  box.max_lat += dlat;
  box.min_lon -= dlon;
  box.max_lon += dlon;
  return box;
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1,
      static_cast<size_t>(std::ceil(q * static_cast<double>(v.size())) - 1));
  return v[idx];
}

Json BBoxJson(const geo::BoundingBox& b) {
  Json arr = Json::MakeArray();
  arr.Append(Json(b.min_lat));
  arr.Append(Json(b.min_lon));
  arr.Append(Json(b.max_lat));
  arr.Append(Json(b.max_lon));
  return arr;
}

constexpr size_t kLatencyRing = 256;

}  // namespace

/// The per-query ShardTarget adapter handed to the scatter-gather stage.
/// It snapshots the shard's engine handle at query start, so a concurrent
/// KillShard lets in-flight probes finish against the old instance.
class ShardProbeTarget : public query::ShardTarget {
 public:
  ShardProbeTarget(const ShardManager* mgr, int shard,
                   std::shared_ptr<Tvdp> tvdp, geo::BoundingBox region)
      : mgr_(mgr),
        shard_(shard),
        tvdp_(std::move(tvdp)),
        region_(region) {}

  int id() const override { return shard_; }
  geo::BoundingBox region() const override { return region_; }

  Result<std::vector<query::QueryHit>> Probe(const query::HybridQuery& q,
                                             const RequestContext& ctx,
                                             const query::QueryBudget& budget,
                                             query::QueryPlan* plan_out)
      override {
    return mgr_->ProbeShard(shard_, tvdp_, q, ctx, budget, plan_out);
  }

  query::ShardEstimate Estimate(const query::HybridQuery& q) const override {
    return mgr_->EstimateShard(tvdp_, q);
  }

 private:
  const ShardManager* mgr_;
  int shard_;
  std::shared_ptr<Tvdp> tvdp_;
  geo::BoundingBox region_;
};

ShardManager::ShardManager(ShardManagerOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ShardManager>> ShardManager::Create(
    ShardManagerOptions options) {
  if (options.shard_count < 1) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  if (options.grid_rows < 1 || options.grid_cols < 1) {
    return Status::InvalidArgument(
        "shard grid must have at least one row and one column");
  }
  if (options.region.IsEmpty() ||
      !geo::IsValid({options.region.min_lat, options.region.min_lon}) ||
      !geo::IsValid({options.region.max_lat, options.region.max_lon})) {
    return Status::InvalidArgument(
        "shard grid region must be a valid non-empty bounding box");
  }
  const int cells = options.grid_rows * options.grid_cols;
  if (options.shard_count > cells) {
    return Status::InvalidArgument(
        "shard_count exceeds the number of grid cells");
  }
  std::set<int> assigned;
  for (const auto& [cell, shard] : options.cell_assignments) {
    if (cell < 0 || cell >= cells) {
      return Status::InvalidArgument("cell assignment out of grid range");
    }
    if (shard < 0 || shard >= options.shard_count) {
      return Status::InvalidArgument("cell assigned to an unknown shard");
    }
    if (!assigned.insert(cell).second) {
      return Status::InvalidArgument("duplicate cell assignment for cell " +
                                     std::to_string(cell));
    }
  }
  if (!(options.gather.per_shard_deadline_fraction > 0) ||
      options.gather.per_shard_deadline_fraction > 1) {
    return Status::InvalidArgument(
        "per_shard_deadline_fraction must be in (0, 1]");
  }
  if (!(options.gather.degraded_keep_fraction > 0) ||
      options.gather.degraded_keep_fraction > 1) {
    return Status::InvalidArgument(
        "degraded_keep_fraction must be in (0, 1]");
  }
  if (options.breaker.failure_threshold < 1) {
    return Status::InvalidArgument("breaker failure_threshold must be >= 1");
  }

  auto mgr =
      std::unique_ptr<ShardManager>(new ShardManager(std::move(options)));
  const ShardManagerOptions& opts = mgr->options_;
  const int n = opts.shard_count;

  // cell -> shard: explicit assignments first, round-robin for the rest.
  mgr->cell_to_shard_.assign(static_cast<size_t>(cells), -1);
  for (const auto& [cell, shard] : opts.cell_assignments) {
    mgr->cell_to_shard_[static_cast<size_t>(cell)] = shard;
  }
  for (int c = 0; c < cells; ++c) {
    if (mgr->cell_to_shard_[static_cast<size_t>(c)] < 0) {
      mgr->cell_to_shard_[static_cast<size_t>(c)] = c % n;
    }
  }

  mgr->slots_.resize(static_cast<size_t>(n));
  Rng seed_rng(opts.fault_seed);
  const double dlat =
      (opts.region.max_lat - opts.region.min_lat) / opts.grid_rows;
  const double dlon =
      (opts.region.max_lon - opts.region.min_lon) / opts.grid_cols;
  for (int i = 0; i < n; ++i) {
    Slot& slot = mgr->slots_[static_cast<size_t>(i)];
    slot.rng = seed_rng.Fork();
    for (int c = 0; c < cells; ++c) {
      if (mgr->cell_to_shard_[static_cast<size_t>(c)] != i) continue;
      const int row = c / opts.grid_cols;
      const int col = c % opts.grid_cols;
      geo::BoundingBox cell_box;
      cell_box.min_lat = opts.region.min_lat + row * dlat;
      cell_box.max_lat = opts.region.min_lat + (row + 1) * dlat;
      cell_box.min_lon = opts.region.min_lon + col * dlon;
      cell_box.max_lon = opts.region.min_lon + (col + 1) * dlon;
      slot.cells.Extend(cell_box);
    }
    if (opts.base_path.empty()) {
      TVDP_ASSIGN_OR_RETURN(Tvdp t, Tvdp::Create());
      slot.tvdp = std::make_shared<Tvdp>(std::move(t));
    } else {
      slot.base_path = opts.base_path + "/shard_" + std::to_string(i);
      TVDP_ASSIGN_OR_RETURN(Tvdp t, Tvdp::Open(slot.base_path, opts.durable));
      slot.tvdp = std::make_shared<Tvdp>(std::move(t));
      storage::DurableCatalog* dc = slot.tvdp->durable_catalog();
      slot.replayed = dc->replayed_records();
      // The spillover prune margin must survive a reopen: recompute it from
      // the recovered catalog instead of restarting at 0 (which silently
      // dropped FOV-overlap matches near shard borders).
      slot.max_fov_radius_m = slot.tvdp->MaxFovRadiusM();
      for (const storage::PendingBroadcast& p : dc->PendingBroadcasts()) {
        slot.pending_broadcasts[p.broadcast_id] = p;
      }
      mgr->next_broadcast_id_ =
          std::max(mgr->next_broadcast_id_, dc->max_broadcast_id() + 1);
    }
  }
  if (mgr->options_.breakers) {
    mgr->tracker_ = std::make_unique<edge::DeviceHealthTracker>(
        static_cast<size_t>(n), mgr->options_.breaker);
  }
  bool any_pending = false;
  for (const Slot& slot : mgr->slots_) {
    if (!slot.pending_broadcasts.empty()) any_pending = true;
  }
  if (mgr->options_.atomic_broadcasts && any_pending) {
    // Startup reconciliation: resolve the broadcasts a previous process's
    // crash left pending before this fleet starts serving.
    std::lock_guard<std::mutex> lock(mgr->broadcast_mutex_);
    Result<Json> report = mgr->ReconcileLocked();
    if (!report.ok()) return report.status();
  }
  return mgr;
}

double ShardManager::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ShardManager::CellForLocation(const geo::GeoPoint& p) const {
  const geo::BoundingBox& r = options_.region;
  const double dlat = (r.max_lat - r.min_lat) / options_.grid_rows;
  const double dlon = (r.max_lon - r.min_lon) / options_.grid_cols;
  int row = dlat > 0 ? static_cast<int>((p.lat - r.min_lat) / dlat) : 0;
  int col = dlon > 0 ? static_cast<int>((p.lon - r.min_lon) / dlon) : 0;
  row = std::clamp(row, 0, options_.grid_rows - 1);
  col = std::clamp(col, 0, options_.grid_cols - 1);
  return row * options_.grid_cols + col;
}

int ShardManager::ShardForLocation(const geo::GeoPoint& p) const {
  return cell_to_shard_[static_cast<size_t>(CellForLocation(p))];
}

geo::BoundingBox ShardManager::ExpandedRegionLocked(int shard) const {
  const Slot& slot = slots_[static_cast<size_t>(shard)];
  return ExpandByMeters(slot.cells, slot.max_fov_radius_m);
}

Result<int64_t> ShardManager::IngestImage(const ImageRecord& record) {
  if (!geo::IsValid(record.location)) {
    return Status::InvalidArgument("image location out of lat/lon bounds");
  }
  const int shard = ShardForLocation(record.location);
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  TVDP_ASSIGN_OR_RETURN(int64_t local, tvdp->IngestImage(record));
  if (record.fov.has_value()) {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    slot.max_fov_radius_m =
        std::max(slot.max_fov_radius_m, record.fov->radius_m);
  }
  return local * shard_count() + shard;
}

void ShardManager::SetBroadcastHook(
    std::function<bool(const std::string& phase, int shard)> hook) {
  std::lock_guard<std::mutex> lock(broadcast_mutex_);
  broadcast_hook_ = std::move(hook);
}

bool ShardManager::BroadcastHookOk(const char* phase, int shard) const {
  if (!broadcast_hook_) return true;
  return broadcast_hook_(phase, shard);
}

Status ShardManager::AppendBroadcastTo(int shard,
                                       const storage::WalRecord& record) {
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    // Re-checked under the lock on every per-shard step: a handle
    // snapshotted before a KillShard must never receive broadcast writes —
    // a "crashed" shard that kept durably logging would falsify the crash
    // model the reconciliation tests rely on.
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  if (tvdp->durable_catalog()) {
    // fsyncs before returning; deliberately outside slots_mutex_ so query
    // dispatch never blocks behind a broadcast's disk write.
    TVDP_RETURN_IF_ERROR(tvdp->durable_catalog()->AppendBroadcast(record));
  }
  std::lock_guard<std::mutex> lock(slots_mutex_);
  Slot& slot = slots_[static_cast<size_t>(shard)];
  if (record.type == storage::WalRecordType::kBroadcastIntent) {
    slot.pending_broadcasts[record.broadcast_id] = storage::PendingBroadcast{
        record.broadcast_id, record.op, record.payload, record.target_ids};
  } else {
    slot.pending_broadcasts.erase(record.broadcast_id);
  }
  return Status::OK();
}

Result<int64_t> ShardManager::RegisterClassification(
    const std::string& name, const std::vector<std::string>& labels,
    const std::string& description) {
  if (!options_.atomic_broadcasts) {
    // Legacy fire-and-forget broadcast, kept only so the regression
    // harness can demonstrate the hazard this PR fixes: a mid-loop failure
    // leaves the classification registered on a prefix of shards, and the
    // per-shard ids are never compared.
    std::vector<std::shared_ptr<Tvdp>> live;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].killed || !slots_[i].tvdp) {
          return Status::Unavailable("shard " + std::to_string(i) +
                                     " is down; classification broadcast "
                                     "requires the full fleet");
        }
        live.push_back(slots_[i].tvdp);
      }
    }
    int64_t first_id = -1;
    for (size_t i = 0; i < live.size(); ++i) {
      TVDP_ASSIGN_OR_RETURN(int64_t id, live[i]->RegisterClassification(
                                            name, labels, description));
      if (i == 0) first_id = id;
    }
    return first_id;
  }

  std::lock_guard<std::mutex> block(broadcast_mutex_);
  const int n = shard_count();
  std::vector<std::shared_ptr<Tvdp>> live(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int i = 0; i < n; ++i) {
      const Slot& slot = slots_[static_cast<size_t>(i)];
      if (slot.killed || !slot.tvdp) {
        return Status::Unavailable("shard " + std::to_string(i) +
                                   " is down; classification broadcast "
                                   "requires the full fleet");
      }
      live[static_cast<size_t>(i)] = slot.tvdp;
    }
  }

  // The id every shard is expected to assign, recorded in the intent so
  // recovery can check the fleet converged on the same ids.
  std::vector<int64_t> targets(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    TVDP_ASSIGN_OR_RETURN(
        targets[static_cast<size_t>(i)],
        live[static_cast<size_t>(i)]->PeekClassificationId(name));
  }

  const int64_t bid = next_broadcast_id_++;
  Json payload = Json::MakeObject();
  payload["name"] = Json(name);
  Json jlabels = Json::MakeArray();
  for (const std::string& l : labels) jlabels.Append(Json(l));
  payload["labels"] = std::move(jlabels);
  payload["description"] = Json(description);
  const storage::WalRecord intent = storage::WalRecord::BroadcastIntent(
      bid, "register_classification", payload.Dump(), targets);

  // Phase 1: a durable intent on every shard before anything is applied.
  for (int i = 0; i < n; ++i) {
    if (!BroadcastHookOk("intent", i)) {
      // Simulated coordinator crash. Intents already written stay pending
      // for reconciliation; since nothing applied, it will roll them back.
      return Status::Unavailable("broadcast " + std::to_string(bid) +
                                 " abandoned before intent on shard " +
                                 std::to_string(i));
    }
    Status logged = AppendBroadcastTo(i, intent);
    if (!logged.ok()) {
      // Nothing applied yet anywhere: abort the earlier intents in place.
      for (int j = 0; j < i; ++j) {
        (void)AppendBroadcastTo(j, storage::WalRecord::BroadcastAbort(bid));
      }
      return logged;
    }
  }

  // Phase 2: apply on every shard. From here on a failure leaves the
  // intent pending — ReconcileBroadcasts / shard recovery decides from
  // evidence whether to complete it forward or roll it back.
  std::vector<int64_t> ids(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    if (!BroadcastHookOk("apply", i)) {
      return Status::Unavailable("broadcast " + std::to_string(bid) +
                                 " abandoned before apply on shard " +
                                 std::to_string(i) +
                                 "; pending until reconciliation");
    }
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      Slot& slot = slots_[static_cast<size_t>(i)];
      if (slot.killed || !slot.tvdp) {
        return Status::Unavailable("shard " + std::to_string(i) +
                                   " went down during broadcast " +
                                   std::to_string(bid) +
                                   "; pending until reconciliation");
      }
      live[static_cast<size_t>(i)] = slot.tvdp;
    }
    Result<int64_t> id = live[static_cast<size_t>(i)]->RegisterClassification(
        name, labels, description);
    if (!id.ok()) {
      if (i == 0) {
        // The first apply failed, so no shard holds the operation: the
        // intents can be rolled back immediately.
        for (int j = 0; j < n; ++j) {
          (void)AppendBroadcastTo(j, storage::WalRecord::BroadcastAbort(bid));
        }
      }
      return id.status();
    }
    ids[static_cast<size_t>(i)] = id.value();
  }

  // Applied everywhere — verify the fleet agreed on one id before
  // committing. A mismatch is still resolved (every shard did apply), but
  // surfaced as data loss naming the divergent shards.
  std::string divergent;
  for (int i = 1; i < n; ++i) {
    if (ids[static_cast<size_t>(i)] == ids[0]) continue;
    if (!divergent.empty()) divergent += ", ";
    divergent += std::to_string(i) + " (id " +
                 std::to_string(ids[static_cast<size_t>(i)]) + ")";
  }
  if (!divergent.empty()) {
    for (int i = 0; i < n; ++i) {
      (void)AppendBroadcastTo(i, storage::WalRecord::BroadcastCommit(bid));
    }
    return Status::DataLoss("classification '" + name +
                            "' diverged: shard 0 assigned id " +
                            std::to_string(ids[0]) + " but shard " +
                            divergent + " disagreed");
  }

  // Phase 3: commit markers. Best-effort per shard — the operation is
  // fully applied, so a marker lost to a crash only means reconciliation
  // re-derives the commit from the applied evidence.
  for (int i = 0; i < n; ++i) {
    if (!BroadcastHookOk("commit", i)) {
      return Status::Unavailable("broadcast " + std::to_string(bid) +
                                 " applied on every shard but abandoned "
                                 "before commit on shard " +
                                 std::to_string(i) +
                                 "; pending until reconciliation");
    }
    (void)AppendBroadcastTo(i, storage::WalRecord::BroadcastCommit(bid));
  }
  return ids[0];
}

Result<Json> ShardManager::ReconcileBroadcasts() {
  std::lock_guard<std::mutex> lock(broadcast_mutex_);
  return ReconcileLocked();
}

Result<Json> ShardManager::ReconcileLocked() {
  const int n = shard_count();
  std::vector<std::shared_ptr<Tvdp>> handles(static_cast<size_t>(n));
  std::vector<bool> alive(static_cast<size_t>(n), false);
  std::map<int64_t, storage::PendingBroadcast> pending;
  std::map<int64_t, std::vector<int>> holders;
  bool all_live = true;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int i = 0; i < n; ++i) {
      const Slot& slot = slots_[static_cast<size_t>(i)];
      alive[static_cast<size_t>(i)] = !slot.killed && slot.tvdp != nullptr;
      if (alive[static_cast<size_t>(i)]) {
        handles[static_cast<size_t>(i)] = slot.tvdp;
      } else {
        all_live = false;
      }
      for (const auto& [bid, p] : slot.pending_broadcasts) {
        pending.emplace(bid, p);
        holders[bid].push_back(i);
      }
    }
  }

  Json completed = Json::MakeArray();
  Json rolled_back = Json::MakeArray();
  Json deferred = Json::MakeArray();
  Json errors = Json::MakeArray();
  for (const auto& [bid, p] : pending) {
    Json entry = Json::MakeObject();
    entry["broadcast_id"] = Json(bid);
    entry["op"] = Json(p.op);
    if (p.op != "register_classification") {
      errors.Append(Json("broadcast " + std::to_string(bid) +
                         ": unknown op '" + p.op + "'"));
      continue;
    }
    Result<Json> parsed = Json::Parse(p.payload);
    if (!parsed.ok()) {
      errors.Append(Json("broadcast " + std::to_string(bid) +
                         ": bad payload: " + parsed.status().ToString()));
      continue;
    }
    const std::string& name = (*parsed)["name"].AsString();
    std::vector<std::string> labels;
    for (const Json& l : (*parsed)["labels"].AsArray()) {
      labels.push_back(l.AsString());
    }
    const std::string& description = (*parsed)["description"].AsString();
    entry["name"] = Json(name);

    // Evidence: did any live shard's classification table already absorb
    // this operation?
    bool applied_somewhere = false;
    for (int i = 0; i < n; ++i) {
      if (alive[static_cast<size_t>(i)] &&
          handles[static_cast<size_t>(i)]->ClassificationApplied(name,
                                                                 labels)) {
        applied_somewhere = true;
        break;
      }
    }

    if (applied_somewhere) {
      // Complete forward: re-apply (idempotent) on every live shard still
      // holding the intent, then commit. Intents on down shards resolve
      // when those shards recover and re-run this pass.
      Json remaining = Json::MakeArray();
      bool failed = false;
      for (int i : holders[bid]) {
        if (!alive[static_cast<size_t>(i)]) {
          remaining.Append(Json(i));
          continue;
        }
        Result<int64_t> id =
            handles[static_cast<size_t>(i)]->RegisterClassification(
                name, labels, description);
        if (!id.ok()) {
          errors.Append(Json("broadcast " + std::to_string(bid) + " shard " +
                             std::to_string(i) + ": " +
                             id.status().ToString()));
          failed = true;
          continue;
        }
        Status marked =
            AppendBroadcastTo(i, storage::WalRecord::BroadcastCommit(bid));
        if (!marked.ok()) {
          errors.Append(Json("broadcast " + std::to_string(bid) + " shard " +
                             std::to_string(i) + ": " + marked.ToString()));
          failed = true;
        }
      }
      entry["action"] = Json("completed_forward");
      if (remaining.size() > 0) entry["awaiting_recovery"] = remaining;
      (failed ? deferred : completed).Append(std::move(entry));
    } else if (all_live) {
      // Every shard is up and none applied it: the coordinator died before
      // any apply, so the operation never happened — roll it back.
      bool failed = false;
      for (int i : holders[bid]) {
        Status marked =
            AppendBroadcastTo(i, storage::WalRecord::BroadcastAbort(bid));
        if (!marked.ok()) {
          errors.Append(Json("broadcast " + std::to_string(bid) + " shard " +
                             std::to_string(i) + ": " + marked.ToString()));
          failed = true;
        }
      }
      entry["action"] = Json("rolled_back");
      (failed ? deferred : rolled_back).Append(std::move(entry));
    } else {
      // A down shard may hold the only evidence that the operation was
      // applied; rolling back now could diverge from what that shard
      // replays on recovery. Defer until the fleet is whole.
      entry["action"] = Json("deferred");
      Json down = Json::MakeArray();
      for (int i = 0; i < n; ++i) {
        if (!alive[static_cast<size_t>(i)]) down.Append(Json(i));
      }
      entry["down_shards"] = std::move(down);
      deferred.Append(std::move(entry));
    }
  }

  Json out = Json::MakeObject();
  out["completed"] = std::move(completed);
  out["rolled_back"] = std::move(rolled_back);
  out["deferred"] = std::move(deferred);
  out["errors"] = std::move(errors);
  Json detail = Json::MakeObject();
  Status consistent = VerifyConsistencyLocked(&detail);
  out["consistent"] = Json(consistent.ok());
  out["divergent"] = std::move(detail["divergent"]);
  return out;
}

Status ShardManager::VerifyClassificationConsistency(Json* detail) const {
  std::lock_guard<std::mutex> lock(broadcast_mutex_);
  return VerifyConsistencyLocked(detail);
}

Status ShardManager::VerifyConsistencyLocked(Json* detail) const {
  const int n = shard_count();
  std::vector<std::shared_ptr<Tvdp>> handles(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (int i = 0; i < n; ++i) {
      const Slot& slot = slots_[static_cast<size_t>(i)];
      handles[static_cast<size_t>(i)] = slot.killed ? nullptr : slot.tvdp;
    }
  }
  int ref = -1;
  Json ref_table;
  std::string shard_list;
  std::set<std::string> names;
  Json divergent = Json::MakeObject();
  for (int i = 0; i < n; ++i) {
    if (!handles[static_cast<size_t>(i)]) continue;
    Json table = handles[static_cast<size_t>(i)]->ClassificationTableJson();
    if (ref < 0) {
      ref = i;
      ref_table = std::move(table);
      continue;
    }
    if (table == ref_table) continue;
    // Collect the classification names whose entries disagree.
    for (const auto& [cls, entry] : table.AsObject()) {
      if (!ref_table.Has(cls) || !(ref_table[cls] == entry)) names.insert(cls);
    }
    for (const auto& [cls, entry] : ref_table.AsObject()) {
      if (!table.Has(cls)) names.insert(cls);
    }
    if (!shard_list.empty()) shard_list += ", ";
    shard_list += std::to_string(i);
    divergent[std::to_string(i)] = std::move(table);
  }
  if (detail) {
    Json d = Json::MakeObject();
    d["reference_shard"] = ref < 0 ? Json() : Json(ref);
    d["reference"] = ref_table;
    d["divergent"] = divergent;
    *detail = std::move(d);
  }
  if (shard_list.empty()) return Status::OK();
  std::string name_list;
  for (const std::string& cls : names) {
    if (!name_list.empty()) name_list += ", ";
    name_list += "'" + cls + "'";
  }
  return Status::DataLoss("classification tables diverged from shard " +
                          std::to_string(ref) + " on shard(s) " + shard_list +
                          " (classifications: " + name_list + ")");
}

size_t ShardManager::pending_broadcasts(int shard) const {
  if (shard < 0 || shard >= shard_count()) return 0;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(shard)].pending_broadcasts.size();
}

Result<int64_t> ShardManager::AnnotateImage(
    int64_t image_id, const AnnotationRecord& annotation) {
  if (image_id < 0) {
    return Status::InvalidArgument("image id must be non-negative");
  }
  const int n = shard_count();
  const int shard = static_cast<int>(image_id % n);
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  TVDP_ASSIGN_OR_RETURN(int64_t local,
                        tvdp->AnnotateImage(image_id / n, annotation));
  return local * n + shard;
}

Status ShardManager::StoreFeature(int64_t image_id, const std::string& kind,
                                  const ml::FeatureVector& feature) {
  if (image_id < 0) {
    return Status::InvalidArgument("image id must be non-negative");
  }
  const int n = shard_count();
  const int shard = static_cast<int>(image_id % n);
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  return tvdp->StoreFeature(image_id / n, kind, feature);
}

Result<ml::FeatureVector> ShardManager::GetFeature(
    int64_t image_id, const std::string& kind) const {
  if (image_id < 0) {
    return Status::InvalidArgument("image id must be non-negative");
  }
  const int n = shard_count();
  const int shard = static_cast<int>(image_id % n);
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  return tvdp->GetFeature(image_id / n, kind);
}

Result<Json> ShardManager::ImageRowJson(int64_t image_id) const {
  if (image_id < 0) {
    return Status::InvalidArgument("image id must be non-negative");
  }
  const int n = shard_count();
  const int shard = static_cast<int>(image_id % n);
  std::shared_ptr<Tvdp> tvdp;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    const Slot& slot = slots_[static_cast<size_t>(shard)];
    if (slot.killed || !slot.tvdp) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is down");
    }
    tvdp = slot.tvdp;
  }
  TVDP_ASSIGN_OR_RETURN(Json row, tvdp->ImageRowJson(image_id / n));
  row["id"] = Json(image_id);
  return row;
}

Result<std::vector<query::QueryHit>> ShardManager::ProbeShard(
    int shard, const std::shared_ptr<Tvdp>& tvdp, const query::HybridQuery& q,
    const RequestContext& ctx, const query::QueryBudget& budget,
    query::QueryPlan* plan_out) const {
  if (!tvdp) {
    return Status::Unavailable("shard " + std::to_string(shard) + " is down");
  }
  ShardFaultProfile f;
  bool crash = false, hang = false, slow = false;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    f = slot.faults;
    if (f.crash_prob > 0) crash = slot.rng.Bernoulli(f.crash_prob);
    if (!crash && f.hang_prob > 0) hang = slot.rng.Bernoulli(f.hang_prob);
    if (!crash && !hang && f.slow_prob > 0) {
      slow = slot.rng.Bernoulli(f.slow_prob);
    }
  }
  if (crash) {
    return Status::Unavailable("shard " + std::to_string(shard) +
                               " crash (injected)");
  }
  if (hang) {
    // Block in 1 ms slices until the attempt's budget or the hang cap
    // runs out — the probe never answers, like a wedged replica.
    double hung = 0;
    while (hung < f.hang_ms && ctx.Check().ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      hung += 1;
    }
    return Status::Unavailable("shard " + std::to_string(shard) +
                               " hang (injected)");
  }
  if (slow && f.slow_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(f.slow_ms));
  }
  TVDP_ASSIGN_OR_RETURN(std::vector<query::QueryHit> hits,
                        tvdp->ExecuteQuery(q, &ctx, budget, plan_out));
  const int n = shard_count();
  if (n > 1) {
    for (query::QueryHit& h : hits) h.image_id = h.image_id * n + shard;
  }
  return hits;
}

query::ShardEstimate ShardManager::EstimateShard(
    const std::shared_ptr<Tvdp>& tvdp, const query::HybridQuery& q) const {
  query::ShardEstimate est;
  if (!tvdp) return est;
  Result<query::QueryPlan> plan = tvdp->ExplainQuery(q);
  if (!plan.ok()) return est;
  if (!plan->conjuncts.empty()) {
    est.rows = plan->conjuncts.front().estimated_rows;
  }
  // Only exact counters may prove emptiness: the textual estimate is a
  // min-df / capped-sum over real posting lists and the temporal estimate
  // an exact order statistic, so a zero there is a zero. Spatial and
  // categorical estimates are heuristic and never prune.
  for (const query::ConjunctPlan& c : plan->conjuncts) {
    if ((c.family == "textual" || c.family == "temporal") &&
        c.estimated_rows == 0) {
      est.provably_empty = true;
    }
  }
  return est;
}

void ShardManager::RecordProbeOutcome(const query::ShardReport& report) const {
  if (report.outcome != query::ShardOutcome::kProbed &&
      report.outcome != query::ShardOutcome::kFailed) {
    return;
  }
  const bool failed = report.outcome == query::ShardOutcome::kFailed;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(report.shard)];
    ++slot.probes;
    if (failed) ++slot.failures;
    if (slot.latencies.size() < kLatencyRing) {
      slot.latencies.push_back(report.latency_ms);
    } else {
      slot.latencies[slot.latency_next % kLatencyRing] = report.latency_ms;
    }
    ++slot.latency_next;
  }
  if (tracker_) {
    std::lock_guard<std::mutex> lock(tracker_mutex_);
    const size_t i = static_cast<size_t>(report.shard);
    if (failed) {
      tracker_->RecordFailure(i, NowMs());
    } else {
      tracker_->RecordSuccess(i, NowMs());
    }
  }
}

Result<ShardManager::ShardedQueryResult> ShardManager::ExecuteQuery(
    const query::HybridQuery& q, const RequestContext* ctx,
    const query::QueryBudget& budget, bool shed_shards_degraded) const {
  const size_t n = slots_.size();
  std::vector<ShardProbeTarget> targets;
  targets.reserve(n);
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (size_t i = 0; i < n; ++i) {
      const Slot& slot = slots_[i];
      targets.emplace_back(this, static_cast<int>(i),
                           slot.killed ? nullptr : slot.tvdp,
                           ExpandedRegionLocked(static_cast<int>(i)));
    }
  }
  std::vector<query::ShardTarget*> ptrs;
  ptrs.reserve(n);
  for (ShardProbeTarget& t : targets) ptrs.push_back(&t);

  query::ScatterGatherOptions gopts = options_.gather;
  gopts.shed_low_selectivity =
      gopts.shed_low_selectivity || shed_shards_degraded;
  if (tracker_) {
    gopts.admit = [this](int shard) {
      std::lock_guard<std::mutex> lock(tracker_mutex_);
      return tracker_->AllowRequest(static_cast<size_t>(shard), NowMs());
    };
  }
  gopts.observe = [this](const query::ShardReport& r) {
    RecordProbeOutcome(r);
  };

  TVDP_ASSIGN_OR_RETURN(
      query::ShardedResult gathered,
      query::ScatterGather::Execute(ptrs, nullptr, q, ctx, budget, gopts));

  ShardedQueryResult out;
  out.hits = std::move(gathered.hits);
  out.coverage = std::move(gathered.coverage);
  if (n == 1) {
    // Degenerate single-shard mode: the shard's executed plan verbatim,
    // byte-identical to an unsharded platform's plan JSON.
    out.plan = gathered.plans.empty() ? Json::MakeObject()
                                      : gathered.plans[0].second.ToJson();
  } else {
    Json node = Json::MakeObject();
    node["op"] = "ScatterGather";
    node["detail"] =
        "probed " + std::to_string(out.coverage.ProbedShards().size()) + "/" +
        std::to_string(n);
    Json shard_plans = Json::MakeArray();
    for (const auto& [sid, plan] : gathered.plans) {
      Json entry = Json::MakeObject();
      entry["shard"] = Json(sid);
      entry["plan"] = plan.ToJson();
      shard_plans.Append(std::move(entry));
    }
    node["shard_plans"] = std::move(shard_plans);
    out.plan = std::move(node);
  }
  return out;
}

Result<Json> ShardManager::ExplainQuery(const query::HybridQuery& q,
                                        const query::QueryBudget& budget) const {
  TVDP_RETURN_IF_ERROR(query::Planner::Validate(q));
  std::vector<std::pair<int, std::shared_ptr<Tvdp>>> shards;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (size_t i = 0; i < slots_.size(); ++i) {
      shards.emplace_back(static_cast<int>(i),
                          slots_[i].killed ? nullptr : slots_[i].tvdp);
    }
  }
  if (shards.size() == 1) {
    if (!shards[0].second) {
      return Status::Unavailable("shard 0 is down");
    }
    TVDP_ASSIGN_OR_RETURN(query::QueryPlan plan,
                          shards[0].second->ExplainQuery(q, budget));
    return plan.ToJson();
  }
  Json node = Json::MakeObject();
  node["op"] = "ScatterGather";
  node["detail"] = "shards " + std::to_string(shards.size());
  Json shard_plans = Json::MakeArray();
  for (const auto& [sid, tvdp] : shards) {
    Json entry = Json::MakeObject();
    entry["shard"] = Json(sid);
    if (!tvdp) {
      entry["error"] = "Unavailable";
    } else {
      Result<query::QueryPlan> plan = tvdp->ExplainQuery(q, budget);
      if (!plan.ok()) return plan.status();
      entry["plan"] = plan->ToJson();
    }
    shard_plans.Append(std::move(entry));
  }
  node["shard_plans"] = std::move(shard_plans);
  return node;
}

Status ShardManager::SetShardFaults(int shard,
                                    const ShardFaultProfile& faults) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  auto valid_prob = [](double p) { return p >= 0 && p <= 1; };
  if (!valid_prob(faults.crash_prob) || !valid_prob(faults.hang_prob) ||
      !valid_prob(faults.slow_prob)) {
    return Status::InvalidArgument(
        "fault probabilities must be in [0, 1]");
  }
  if (faults.slow_ms < 0 || faults.hang_ms < 0) {
    return Status::InvalidArgument("fault delays must be non-negative");
  }
  std::lock_guard<std::mutex> lock(slots_mutex_);
  slots_[static_cast<size_t>(shard)].faults = faults;
  return Status::OK();
}

Status ShardManager::KillShard(int shard, bool drop_state) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  std::lock_guard<std::mutex> lock(slots_mutex_);
  Slot& slot = slots_[static_cast<size_t>(shard)];
  if (slot.killed) {
    return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                      " is already down");
  }
  slot.killed = true;
  if (!slot.base_path.empty() || drop_state) {
    // A durable shard crashes for real: drop the engine (no checkpoint,
    // no flush) so recovery has to replay the WAL. In-flight probes keep
    // their snapshotted handle and finish against the old instance. An
    // in-memory shard only loses its engine under the explicit total-loss
    // model (`drop_state`) — there is no WAL to rebuild it from.
    slot.tvdp.reset();
    // Total loss on an in-memory shard takes its broadcast log with it;
    // durable shards keep the mirror because the on-disk log survives.
    if (slot.base_path.empty()) slot.pending_broadcasts.clear();
  }
  return Status::OK();
}

Status ShardManager::RecoverShard(int shard) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  // Serialized with broadcasts so the reconciliation pass below sees a
  // stable fleet (broadcast_mutex_ before slots_mutex_, never the reverse).
  std::lock_guard<std::mutex> block(broadcast_mutex_);
  std::string base_path;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    if (!slot.killed) {
      return Status::FailedPrecondition("shard " + std::to_string(shard) +
                                        " is not down");
    }
    if (slot.base_path.empty() && !slot.tvdp) {
      // An in-memory shard that lost its engine has no WAL to replay;
      // "recovering" it would put an empty zombie back into rotation.
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard) +
          " is in-memory with no engine to revive (nothing to replay)");
    }
    base_path = slot.base_path;
  }
  if (!base_path.empty()) {
    // Reopen outside slots_mutex_ — WAL replay is disk-bound and must not
    // stall query dispatch. The slot stays killed until the swap below, so
    // no other caller can race the handle.
    TVDP_ASSIGN_OR_RETURN(Tvdp t, Tvdp::Open(base_path, options_.durable));
    auto revived = std::make_shared<Tvdp>(std::move(t));
    std::lock_guard<std::mutex> lock(slots_mutex_);
    Slot& slot = slots_[static_cast<size_t>(shard)];
    slot.tvdp = std::move(revived);
    storage::DurableCatalog* dc = slot.tvdp->durable_catalog();
    slot.replayed = dc->replayed_records();
    slot.max_fov_radius_m = slot.tvdp->MaxFovRadiusM();
    slot.pending_broadcasts.clear();
    for (const storage::PendingBroadcast& p : dc->PendingBroadcasts()) {
      slot.pending_broadcasts[p.broadcast_id] = p;
    }
    next_broadcast_id_ =
        std::max(next_broadcast_id_, dc->max_broadcast_id() + 1);
    slot.killed = false;
  } else {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    slots_[static_cast<size_t>(shard)].killed = false;
  }
  if (!options_.atomic_broadcasts) return Status::OK();
  // Resolve whatever a crash left pending now that this shard is back,
  // then surface (without undoing the recovery) any remaining divergence.
  TVDP_ASSIGN_OR_RETURN(Json report, ReconcileLocked());
  (void)report;
  return VerifyConsistencyLocked(nullptr);
}

bool ShardManager::shard_alive(int shard) const {
  if (shard < 0 || shard >= shard_count()) return false;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  const Slot& slot = slots_[static_cast<size_t>(shard)];
  return !slot.killed && slot.tvdp != nullptr;
}

edge::CircuitState ShardManager::breaker_state(int shard) const {
  if (!tracker_ || shard < 0 || shard >= shard_count()) {
    return edge::CircuitState::kClosed;
  }
  std::lock_guard<std::mutex> lock(tracker_mutex_);
  return tracker_->state(static_cast<size_t>(shard));
}

size_t ShardManager::replayed_records(int shard) const {
  if (shard < 0 || shard >= shard_count()) return 0;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(shard)].replayed;
}

Json ShardManager::StatsJson() const {
  Json out = Json::MakeObject();
  out["shard_count"] = Json(shard_count());
  out["breakers"] = Json(options_.breakers);
  out["atomic_broadcasts"] = Json(options_.atomic_broadcasts);
  Json shards = Json::MakeArray();
  for (int i = 0; i < shard_count(); ++i) {
    std::shared_ptr<Tvdp> tvdp;
    Json s = Json::MakeObject();
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      const Slot& slot = slots_[static_cast<size_t>(i)];
      tvdp = slot.killed ? nullptr : slot.tvdp;
      s["shard"] = Json(i);
      s["alive"] = Json(!slot.killed && slot.tvdp != nullptr);
      s["durable"] = Json(!slot.base_path.empty());
      s["probes"] = Json(slot.probes);
      s["failures"] = Json(slot.failures);
      s["probe_p50_ms"] = Json(Percentile(slot.latencies, 0.50));
      s["probe_p99_ms"] = Json(Percentile(slot.latencies, 0.99));
      s["replayed_records"] = Json(slot.replayed);
      s["pending_broadcasts"] = Json(slot.pending_broadcasts.size());
      s["region"] = BBoxJson(ExpandedRegionLocked(i));
    }
    {
      std::lock_guard<std::mutex> lock(tracker_mutex_);
      s["breaker"] =
          Json(tracker_ ? edge::CircuitStateName(tracker_->state(
                              static_cast<size_t>(i)))
                        : std::string("disabled"));
    }
    s["images"] = Json(tvdp ? tvdp->image_count() : 0);
    s["wal_bytes"] =
        Json(tvdp && tvdp->durable_catalog()
                 ? tvdp->durable_catalog()->wal_size_bytes()
                 : 0);
    shards.Append(std::move(s));
  }
  out["shards"] = std::move(shards);
  return out;
}

size_t ShardManager::image_count() const {
  std::vector<std::shared_ptr<Tvdp>> live;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const Slot& slot : slots_) {
      if (!slot.killed && slot.tvdp) live.push_back(slot.tvdp);
    }
  }
  size_t total = 0;
  for (const auto& t : live) total += t->image_count();
  return total;
}

Tvdp* ShardManager::shard(int i) {
  if (i < 0 || i >= shard_count()) return nullptr;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_[static_cast<size_t>(i)].tvdp.get();
}

}  // namespace tvdp::platform
