#ifndef TVDP_PLATFORM_MODEL_REGISTRY_H_
#define TVDP_PLATFORM_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "ml/classifier.h"

namespace tvdp::platform {

/// Metadata describing a shared analysis model (paper Sec. V, API #7:
/// "Devise new ML models ... by defining its input and output
/// specifications").
struct ModelSpec {
  std::string name;                  ///< registry key
  std::string feature_kind;          ///< expected input descriptor, e.g. "cnn"
  std::string classification;        ///< the task whose labels it emits
  std::vector<std::string> labels;   ///< output label per class index
  std::string owner;                 ///< registering collaborator
};

/// The shared model registry of the Analysis service: collaborators
/// register trained models; other participants run them ("use machine
/// learning models") or download them for edge deployment ("download
/// machine learning models").
class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Registers a trained model under spec.name; AlreadyExists on clash.
  Status Register(ModelSpec spec, std::unique_ptr<ml::Classifier> model);

  /// True iff a model with that name exists.
  bool Has(const std::string& name) const { return entries_.count(name) > 0; }

  /// The spec of a registered model.
  Result<ModelSpec> GetSpec(const std::string& name) const;

  /// Runs the named model on a feature vector; returns the label string.
  Result<std::string> Predict(const std::string& name,
                              const ml::FeatureVector& feature) const;

  /// Runs the named model and returns (label, confidence).
  Result<std::pair<std::string, double>> PredictWithConfidence(
      const std::string& name, const ml::FeatureVector& feature) const;

  /// Serializes the model for edge download (Unimplemented for model
  /// families without a portable representation).
  Result<Json> Download(const std::string& name) const;

  /// Names of all registered models, sorted.
  std::vector<std::string> List() const;

 private:
  struct Entry {
    ModelSpec spec;
    std::unique_ptr<ml::Classifier> model;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_MODEL_REGISTRY_H_
