#ifndef TVDP_PLATFORM_ADMISSION_H_
#define TVDP_PLATFORM_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/json.h"
#include "common/result.h"

namespace tvdp::platform {

class AdmissionController;

/// Service classes. Interactive requests (dashboards, operators) are
/// queued separately from batch requests (bulk exports, re-analysis) so a
/// batch burst cannot starve interactive latency.
enum class Priority { kInteractive = 0, kBatch = 1 };

/// The controller's overload state machine (DESIGN.md "Overload,
/// deadlines, and admission control"):
///
///   kNormal   — slots or queue headroom available; full-fidelity plans.
///   kDegraded — waiters have accumulated past the degrade threshold;
///               admitted queries run cheaper plans (fewer LSH probes,
///               capped candidates) and responses carry "degraded": true.
///   kShedding — a queue is at capacity; new arrivals displace the oldest
///               (most likely stale) waiter, which is shed with
///               kResourceExhausted and a retry-after hint.
enum class OverloadState { kNormal = 0, kDegraded = 1, kShedding = 2 };

/// Stable lowercase name ("normal", "degraded", "shedding").
const char* OverloadStateName(OverloadState s);

struct AdmissionOptions {
  /// Requests executing concurrently; beyond this arrivals queue.
  int max_concurrent = 4;
  /// Queue capacity per priority; an arrival into a full queue sheds the
  /// oldest waiter of that priority (LIFO service, FIFO shedding).
  size_t max_queue_interactive = 64;
  size_t max_queue_batch = 32;
  /// Longest a request may wait for a slot before it is shed as stale.
  double max_queue_wait_ms = 500;
  /// Per-key token bucket: sustained requests/second per API key;
  /// 0 disables rate limiting.
  double rate_per_sec = 0;
  /// Bucket depth (burst allowance); 0 means max(rate_per_sec, 1).
  double burst = 0;
  /// Fraction of total queue capacity occupied by waiters at which the
  /// controller enters kDegraded.
  double degrade_occupancy = 0.25;
  /// Hysteresis: after the last time a waiter had to queue, the controller
  /// reports (at least) kDegraded for this many ms even if the queues have
  /// momentarily drained — prevents full-fidelity plans from flapping back
  /// in between overload bursts. 0 disables the hold.
  double degraded_hold_ms = 0;
  /// Injectable millisecond clock (monotonic) for deterministic
  /// token-bucket and staleness tests; default is steady_clock.
  std::function<double()> now_ms;
};

/// RAII admission slot: holding a live ticket means the request counts
/// against the concurrency cap; destruction (or Release) frees the slot
/// and grants it to the newest eligible waiter. Move-only.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept;
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket();

  /// True when the controller was in kDegraded (or worse) at grant time,
  /// counting this waiter itself — any grant out of a sufficient backlog
  /// is degraded: the request should run a cheaper plan and mark its
  /// response degraded.
  bool degraded() const { return degraded_; }

  /// Frees the slot early; idempotent.
  void Release();

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, bool degraded)
      : controller_(controller), degraded_(degraded) {}

  AdmissionController* controller_ = nullptr;
  bool degraded_ = false;
};

/// Point-in-time counters exported as JSON for observability.
struct ServerStats {
  uint64_t admitted = 0;           ///< granted a slot (immediately or queued)
  uint64_t admitted_degraded = 0;  ///< of those, granted under kDegraded+
  uint64_t shed_queue_full = 0;    ///< oldest waiter displaced by an arrival
  uint64_t shed_stale = 0;         ///< timed out waiting for a slot
  uint64_t rate_limited = 0;       ///< rejected by the per-key token bucket
  uint64_t expired = 0;            ///< deadline passed before/while queued
  uint64_t cancelled = 0;          ///< cancelled before/while queued
  uint64_t completed = 0;          ///< tickets released
  size_t queue_depth_interactive = 0;
  size_t queue_depth_batch = 0;
  int in_flight = 0;
  OverloadState state = OverloadState::kNormal;
};

/// Admission control in front of ApiService::HandleRequest: a concurrency
/// cap with bounded per-priority wait queues served newest-first (LIFO —
/// under overload the newest request is the one most likely to still meet
/// its deadline; the oldest is shed), plus a per-key token-bucket rate
/// limiter. Rejections are kResourceExhausted with a retry-after hint
/// (see common/retry.h WithRetryAfterHint); contexts that expire or are
/// cancelled while queued surface as kDeadlineExceeded / kCancelled.
///
/// Thread safety: fully internally synchronized.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = AdmissionOptions());

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a slot is granted or the request is rejected. `key`
  /// feeds the rate limiter; `ctx` bounds the wait (an already-failed
  /// context is rejected before any queueing).
  Result<AdmissionTicket> Admit(const std::string& key, Priority priority,
                                const RequestContext& ctx = RequestContext());

  /// Records one served request's latency for the per-endpoint digest.
  void RecordLatency(const std::string& endpoint, double ms);

  ServerStats stats() const;
  OverloadState state() const;

  /// Counters, queue depths, state, and per-endpoint {count, p50_ms,
  /// p99_ms} as a JSON object.
  Json StatsJson() const;

 private:
  friend class AdmissionTicket;

  struct Waiter {
    Priority priority = Priority::kInteractive;
    enum class Outcome { kWaiting, kGranted, kShed } outcome = Outcome::kWaiting;
    bool granted_degraded = false;
  };

  double NowMs() const;
  /// State computed from queue occupancy; requires mutex_ held.
  OverloadState StateLocked() const;
  std::deque<std::shared_ptr<Waiter>>& QueueFor(Priority p) {
    return p == Priority::kInteractive ? interactive_ : batch_;
  }
  size_t QueueCap(Priority p) const {
    return p == Priority::kInteractive ? options_.max_queue_interactive
                                       : options_.max_queue_batch;
  }
  /// Grants the freed slot to the newest eligible waiter; mutex_ held.
  void GrantNextLocked();
  /// Called by tickets when they go out of scope.
  void ReleaseSlot();
  /// Removes `w` from its queue if still present; mutex_ held.
  void RemoveWaiterLocked(const std::shared_ptr<Waiter>& w);

  AdmissionOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int in_flight_ = 0;
  /// When a waiter last joined a queue (options_.now_ms clock); drives the
  /// degraded_hold_ms hysteresis in StateLocked.
  double last_backlog_ms_ = -1e300;
  std::deque<std::shared_ptr<Waiter>> interactive_;  // back = newest
  std::deque<std::shared_ptr<Waiter>> batch_;

  struct Bucket {
    double tokens = 0;
    double last_ms = 0;
    bool initialized = false;
  };
  std::map<std::string, Bucket> buckets_;

  ServerStats counters_;  // queue depths / state filled at snapshot time

  /// Bounded latency reservoir per endpoint (newest-overwrite ring).
  struct LatencyRing {
    std::vector<double> samples;
    size_t next = 0;
    uint64_t count = 0;
  };
  std::map<std::string, LatencyRing> latencies_;
};

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_ADMISSION_H_
