#ifndef TVDP_PLATFORM_SHARDING_H_
#define TVDP_PLATFORM_SHARDING_H_

#include <array>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/rng.h"
#include "edge/health.h"
#include "geo/bbox.h"
#include "platform/replication.h"
#include "platform/tvdp.h"
#include "query/scatter_gather.h"
#include "storage/durable_catalog.h"

namespace tvdp::platform {

/// Seeded fault injection for one shard: every probe draws independently
/// (crash, then hang, then slow) from the shard's deterministic stream.
///   crash — the probe fails instantly with kUnavailable;
///   hang  — the probe blocks (in 1 ms slices, watching the attempt
///           context) until the attempt budget or `hang_ms` runs out,
///           then fails with kUnavailable — the straggler-shard model;
///   slow  — the probe sleeps `slow_ms` and then proceeds normally.
struct ShardFaultProfile {
  double crash_prob = 0;
  double hang_prob = 0;
  double slow_prob = 0;
  double slow_ms = 0;
  /// Upper bound on an injected hang, so a probe with no deadline still
  /// terminates.
  double hang_ms = 250;
};

/// Configuration of a ShardManager.
struct ShardManagerOptions {
  /// Number of independent engine instances. 1 is the degenerate
  /// single-shard mode (byte-identical to an unsharded platform).
  int shard_count = 1;

  /// The spatial grid: `grid_rows` x `grid_cols` equal cells tiling
  /// `region`. Images are routed to the shard owning the cell their
  /// camera location falls in (locations outside the region clamp to the
  /// nearest edge cell).
  int grid_rows = 1;
  int grid_cols = 1;
  geo::BoundingBox region;

  /// Optional explicit (cell, shard) assignments; cells not listed use
  /// the default round-robin `cell % shard_count`. A duplicate cell is
  /// kInvalidArgument.
  std::vector<std::pair<int, int>> cell_assignments;

  /// When non-empty, each shard persists through its own DurableCatalog
  /// (WAL + snapshot) rooted at `<base_path>/shard_<i>`; a killed shard
  /// can then be recovered by replaying its WAL. Empty = in-memory shards.
  std::string base_path;

  /// Durable-store knobs shared by every shard (tests hook a
  /// FaultInjectingFs here to inject slow-I/O and write faults).
  storage::DurableCatalogOptions durable;

  /// Scatter-gather tuning (per-shard deadline fraction, hedging policy,
  /// pruning switches, degraded shedding fraction).
  query::ScatterGatherOptions gather;

  /// Per-shard circuit breakers (closed / open / half-open) fed by probe
  /// outcomes; `breakers = false` disables the gate (the naive bench
  /// configuration).
  bool breakers = true;
  edge::HealthOptions breaker;

  /// Two-phase intent/commit protocol for fleet-wide writes
  /// (RegisterClassification): an intent is durably logged on every shard
  /// before anything is applied, a commit marker after every shard
  /// acknowledged, and recovery reconciles whatever a crash left pending.
  /// `false` restores the PR 6 fire-and-forget broadcast — a mid-loop
  /// failure leaves the classification registered on a prefix of shards
  /// with unchecked ids; kept only so the regression harness can
  /// demonstrate that hazard.
  bool atomic_broadcasts = true;

  /// Per-shard replication: total copies, sync level, replica-read policy
  /// (DESIGN.md "Replication, failover, and fencing"). The default factor
  /// of 1 is replication off — byte-identical to the pre-replication
  /// behaviour.
  ReplicationOptions replication;

  /// Seed of the per-shard fault-injection streams.
  uint64_t fault_seed = 0x5eedfa071ULL;

  /// Clock used for breaker bookkeeping, milliseconds on any monotonic
  /// scale; null = steady_clock. Tests inject a fake clock to step the
  /// open -> half-open cooldown deterministically.
  std::function<double()> now_ms;
};

/// An in-process sharded serving layer: N fault-isolated engine instances
/// (each with its own catalog, WAL, and indexes) behind one facade that
/// routes ingest by camera location and answers queries through the
/// scatter-gather stage with per-shard circuit breakers, hedged probes,
/// seeded fault injection, partial-result coverage, and online recovery
/// (WAL replay + half-open re-admission).
///
/// Global image ids interleave the shard id: `global = local * N + shard`,
/// so ids are dense per shard, never collide across shards, and coincide
/// with local ids when N == 1 (the degenerate mode stays byte-identical
/// to an unsharded platform).
///
/// Thread safety: all public methods are safe to call concurrently.
/// Probes snapshot a shard's engine handle, so KillShard during an
/// in-flight query lets that query finish against the old instance.
class ShardManager {
 public:
  /// Validates `options` (degenerate configs are kInvalidArgument) and
  /// builds the shard fleet. Durable shards that find existing state on
  /// disk recover it (WAL replay) before serving.
  static Result<std::unique_ptr<ShardManager>> Create(
      ShardManagerOptions options);

  ShardManager(const ShardManager&) = delete;
  ShardManager& operator=(const ShardManager&) = delete;

  int shard_count() const { return static_cast<int>(slots_.size()); }

  /// The grid cell `p` falls in (clamped into the region).
  int CellForLocation(const geo::GeoPoint& p) const;

  /// The shard owning `p`'s grid cell (clamped into the region).
  int ShardForLocation(const geo::GeoPoint& p) const;

  // --- Acquisition / analysis (routed to the owning shard) ---

  /// Routes by camera location; returns the image's global id.
  Result<int64_t> IngestImage(const ImageRecord& record);

  /// Atomic broadcast: registers the task on every shard through the
  /// two-phase intent/commit protocol (idempotent per shard). All shards
  /// must be live. Every shard's resulting classification id is verified
  /// against the first shard's — a mismatch is kDataLoss naming the
  /// divergent shards. A crash mid-broadcast leaves a durably logged
  /// intent that `ReconcileBroadcasts` / shard recovery completes forward
  /// (some shard already applied) or rolls back (none did), so the fleet
  /// always converges to one classification table.
  Result<int64_t> RegisterClassification(
      const std::string& name, const std::vector<std::string>& labels,
      const std::string& description = "");

  /// Repair entry point (also run automatically by Create and
  /// RecoverShard): resolves every pending broadcast intent visible on the
  /// live fleet. An intent is completed forward when any live shard
  /// already applied it, rolled back when every shard is live and none
  /// applied it, and deferred while a shard that might hold the only
  /// evidence is still down. Returns a report
  /// ({"completed","rolled_back","deferred","errors","consistent",
  ///   "divergent"}) — surfaced by the API's `reconcile` endpoint.
  Result<Json> ReconcileBroadcasts();

  /// Compares the classification tables (name -> id, label -> type id) of
  /// every live shard; divergence is kDataLoss naming the classifications
  /// and shards that disagree. `detail` (optional) receives the divergent
  /// entries per shard.
  Status VerifyClassificationConsistency(Json* detail = nullptr) const;

  /// Test hook called before each per-shard step of a broadcast with the
  /// phase ("intent" / "apply" / "commit") and the shard index. Returning
  /// false abandons the broadcast at that point — the simulated
  /// coordinator crash used by the fault-injection suite. The hook may
  /// call KillShard.
  void SetBroadcastHook(
      std::function<bool(const std::string& phase, int shard)> hook);

  /// Unresolved broadcast intents currently pending on one shard.
  size_t pending_broadcasts(int shard) const;

  /// Routes by the global image id; returns a global annotation id.
  Result<int64_t> AnnotateImage(int64_t image_id,
                                const AnnotationRecord& annotation);

  Status StoreFeature(int64_t image_id, const std::string& kind,
                      const ml::FeatureVector& feature);

  Result<ml::FeatureVector> GetFeature(int64_t image_id,
                                       const std::string& kind) const;

  /// The image's metadata row (download_datasets shape) with the global id.
  Result<Json> ImageRowJson(int64_t image_id) const;

  // --- Access ---

  struct ShardedQueryResult {
    std::vector<query::QueryHit> hits;
    query::Coverage coverage;
    /// N == 1: the shard's executed plan verbatim; N > 1: a ScatterGather
    /// wrapper node with the per-shard plans as children.
    Json plan;
  };

  /// Scatter-gather query execution with partial-result semantics. When
  /// `shed_shards_degraded` is set (the admission controller degraded the
  /// request) the lowest-estimated-selectivity shards are shed before any
  /// probe runs — whole shards go before whole queries.
  Result<ShardedQueryResult> ExecuteQuery(
      const query::HybridQuery& q, const RequestContext* ctx = nullptr,
      const query::QueryBudget& budget = query::QueryBudget(),
      bool shed_shards_degraded = false) const;

  /// Deterministic plan JSON without executing (explain_query shape).
  Result<Json> ExplainQuery(
      const query::HybridQuery& q,
      const query::QueryBudget& budget = query::QueryBudget()) const;

  // --- Fault injection & lifecycle ---

  /// Installs a fault profile on one shard (probabilities in [0, 1]).
  Status SetShardFaults(int shard, const ShardFaultProfile& faults);

  /// Simulates a crash: a durable shard's engine is dropped without a
  /// checkpoint (recovery must replay its WAL); an in-memory shard is
  /// marked down. In-flight probes finish against the old instance;
  /// subsequent probes fail with kUnavailable until recovery.
  /// `drop_state` additionally discards an in-memory shard's engine — the
  /// total-loss model (no WAL, nothing to replay), after which RecoverShard
  /// reports kFailedPrecondition instead of reviving an empty zombie.
  /// kFailedPrecondition while the shard is an endpoint of an in-flight
  /// cell migration, unless `drop_state` forces the kill (the migration
  /// then abandons and reconciliation resolves its durable intents).
  Status KillShard(int shard, bool drop_state = false);

  /// Online recovery: reopens a durable shard from its snapshot + WAL
  /// (counting replayed records, recomputing the FOV spillover margin, and
  /// reloading pending broadcast intents) or revives an in-memory shard,
  /// without restarting the platform. A reconciliation pass then resolves
  /// any broadcasts the crash left pending; the recovered shard stays up
  /// even when that pass reports divergence (kDataLoss). The shard's
  /// circuit breaker is left to re-admit it through its half-open probe.
  /// kFailedPrecondition for an in-memory shard with nothing to revive
  /// (no WAL to replay). A replicated shard's replicas are re-attached
  /// (wiped and re-bootstrapped) from the recovered primary.
  Status RecoverShard(int shard);

  // --- Replication & failover (DESIGN.md "Replication, failover, and
  //     fencing") ---

  /// Fails shard `shard` over to its most-caught-up live replica as a
  /// durable multi-phase state machine:
  ///
  ///   1. ship  — the capture channel is drained into the replicas;
  ///   2. apply — for a durable shard whose primary died with unshipped
  ///              records, the primary's on-disk WAL tail (past the shipped
  ///              offset) is read back and applied, so every *acknowledged*
  ///              write reaches the replicas even under kAsync lag;
  ///   3. ack   — every live durable replica fsyncs its own WAL;
  ///   4. promote — the shard map is atomically rewritten with a bumped
  ///              fencing epoch and the new primary path: THE cross-restart
  ///              commit point (a crash before it resolves to the old
  ///              primary, after it to the new one);
  ///   5. fence — the old primary engine (if still held anywhere) starts
  ///              rejecting writes with kFailedPrecondition, and the
  ///              replica channel rejects its stale-epoch captures;
  ///   6. flip  — routing atomically swaps to the promoted engine, the
  ///              shard's circuit breaker resets, and the capture observer
  ///              rebinds to the new primary.
  ///
  /// A promotion requested while the shard is a migration endpoint is
  /// deferred ({"action":"deferred"}) and runs when the migration
  /// resolves. kFailedPrecondition when the shard has no live replica.
  /// Returns {"shard","action","old_epoch","new_epoch","promoted_replica",
  /// "applied_tail_records"}.
  Result<Json> PromoteShard(int shard);

  /// Test hook called at each promotion phase boundary
  /// ("ship" / "apply" / "ack" / "promote" / "fence" / "flip") with the
  /// shard being promoted. Returning false abandons the promotion at that
  /// point — the simulated coordinator crash; durable state is left for
  /// Create / RecoverShard to resolve from evidence.
  void SetPromotionHook(
      std::function<bool(const std::string& phase, int shard)> hook);

  /// Kills one replica of a replicated shard (fault injection).
  Status KillReplica(int shard, int replica);

  /// True while a promotion of `shard` is in flight (RebalanceCells
  /// refuses to touch such a shard).
  bool shard_promoting(int shard) const;

  /// The shard's current fencing epoch (0 until its first failover).
  int64_t shard_epoch(int shard) const;

  /// Which copy path currently serves as the primary (0 = the original
  /// `shard_<i>` path; r >= 1 = replica path `shard_<i>_replica_<r-1>`).
  int shard_primary_index(int shard) const;

  /// Live replicas standing by for `shard` (0 when unreplicated).
  int live_replica_count(int shard) const;

  /// Captured-but-unshipped records on `shard`'s replication channel (the
  /// kAsync lag; 0 under kSync outside a write's critical section).
  size_t replica_lag_records(int shard) const;

  // --- Online rebalancing (DESIGN.md "Online shard rebalancing") ---

  /// Moves the given grid cells from `source` to `target` while both keep
  /// serving, as a durable multi-phase state machine:
  ///
  ///   1. intent   — a kMigrationIntent record is fsynced into both shards'
  ///                 broadcast logs before anything moves;
  ///   2. copy     — the cells' rows (images, annotations, features) are
  ///                 bulk-copied into the target through the normal ingest
  ///                 path while the source keeps absorbing writes; copied
  ///                 rows keep their original global ids via relocation
  ///                 maps, so the dual-serving window stays exact (the
  ///                 scatter-gather merge dedups by image id);
  ///   3. catch-up — idempotent diff passes re-copy whatever arrived during
  ///                 the bulk copy until the delta drains;
  ///   4. cutover  — new writes are briefly gated, a final catch-up runs,
  ///                 the new shard map (cell ownership + relocations) is
  ///                 atomically persisted to `<base_path>/shard_map.json` —
  ///                 THE cross-restart commit point — and the in-memory
  ///                 routing, prune regions and FOV margins flip;
  ///   5. commit+gc— commit markers resolve the intents and the moved rows
  ///                 are garbage-collected from the source.
  ///
  /// A crash at any boundary leaves durable evidence that Create /
  /// RecoverShard / ReconcileBroadcasts resolves: forward once the shard
  /// map committed, backward before it. Guards: unknown or duplicate cells,
  /// source == target, or an out-of-range shard are kInvalidArgument; a
  /// cell not owned by `source`, a dead endpoint, divergent classification
  /// tables, or an unresolved earlier migration are kFailedPrecondition.
  /// Returns a report ({"migration_id","cells","source","target",
  /// "rows_copied","rows_caught_up","relocations"}).
  Result<Json> RebalanceCells(const std::vector<int>& cells, int source,
                              int target);

  /// Test hook called at each migration phase boundary
  /// ("intent" / "copy" / "catchup" / "cutover" / "commit" / "gc") with the
  /// shard the step is about to touch. Returning false abandons the
  /// migration at that point — the simulated coordinator crash. Durable
  /// state (intents, the shard map) is left as-is for reconciliation; the
  /// endpoints keep dual-serving so queries stay exact until then.
  void SetMigrationHook(
      std::function<bool(const std::string& phase, int shard)> hook);

  /// True while `shard` is an endpoint of an unresolved cell migration.
  bool shard_migrating(int shard) const;

  bool shard_alive(int shard) const;
  edge::CircuitState breaker_state(int shard) const;

  /// WAL records replayed by the last RecoverShard of this shard.
  size_t replayed_records(int shard) const;

  /// Per-shard operational state for the platform_stats endpoint: breaker
  /// state, image/WAL sizes, probe counters, last-probe p50/p99.
  Json StatsJson() const;

  size_t image_count() const;

  /// Direct access to one shard's engine (tests); nullptr while killed.
  Tvdp* shard(int i);

 private:
  friend class ShardProbeTarget;

  struct Slot {
    std::shared_ptr<Tvdp> tvdp;
    bool killed = false;
    ShardFaultProfile faults;
    Rng rng{0};
    double max_fov_radius_m = 0;
    geo::BoundingBox cells = geo::BoundingBox::Empty();
    std::string base_path;  ///< "" for in-memory shards
    size_t probes = 0;
    size_t failures = 0;
    size_t replayed = 0;
    std::vector<double> latencies;  ///< ring buffer of probe latencies
    size_t latency_next = 0;
    /// Mirror of the shard's unresolved broadcast intents (the durable
    /// source of truth is the shard's broadcast log; in-memory shards only
    /// have this mirror). Guarded by slots_mutex_; refreshed from the
    /// durable log on Create/RecoverShard.
    std::map<int64_t, storage::PendingBroadcast> pending_broadcasts;
    /// True while this shard is an endpoint of an unresolved cell
    /// migration; successful probes then report kMigrating and the merge
    /// dedups the dual-served rows. Guarded by slots_mutex_.
    bool migrating = false;
    /// local id -> original global id for rows this shard serves on behalf
    /// of another shard (migrated in, or mid-copy). Immutable snapshot
    /// swapped under slots_mutex_; probes read it lock-free after the swap.
    std::shared_ptr<const std::unordered_map<int64_t, int64_t>>
        reverse_relocations;
    /// Replica group (nullptr when replication is off). Set at Create,
    /// reassignment only under slots_mutex_; the set's own state is
    /// self-locked.
    std::shared_ptr<ReplicaSet> replicas;
    /// Fencing epoch of the current primary; bumped by each committed
    /// promotion. Guarded by slots_mutex_.
    int64_t epoch = 0;
    /// Which copy path the primary engine serves from (0 = `shard_<i>`,
    /// r >= 1 = `shard_<i>_replica_<r-1>`). Guarded by slots_mutex_.
    int primary_index = 0;
    /// True while a promotion of this shard is in flight; RebalanceCells
    /// refuses to touch it. Guarded by slots_mutex_.
    bool promoting = false;
    /// Round-robin lane for balanced replica reads. Guarded by
    /// slots_mutex_.
    size_t read_rr = 0;
  };

  /// Coordinator-side state of the (single) in-flight migration. Guarded by
  /// slots_mutex_; only RebalanceCells (serialized by migration_mutex_)
  /// mutates it.
  struct MigrationState {
    bool active = false;
    int64_t id = 0;
    std::vector<int> cells;
    int source = -1;
    int target = -1;
    std::string phase;  ///< "", copy, catchup, cutover, commit, gc,
                        ///< abandoned, done
    int64_t high_water = 0;  ///< source image rows at intent (informational)
    size_t rows_copied = 0;
    size_t rows_caught_up = 0;
    /// source-local id -> target-local id of every row copied so far.
    std::unordered_map<int64_t, int64_t> relocations;
  };

  explicit ShardManager(ShardManagerOptions options);

  double NowMs() const;

  /// The shard's prune region: its cells' union expanded by the largest
  /// FOV radius ingested into it. Caller holds slots_mutex_.
  geo::BoundingBox ExpandedRegionLocked(int shard) const;

  /// One probe against a snapshotted engine handle: fault draws first
  /// (crash / hang / slow), then the shard-local query, then local ->
  /// global id translation. Replica probes pass `inject_faults = false`:
  /// the configured fault profile models the primary, and a failover read
  /// must not re-roll the dice that just killed the primary probe.
  Result<std::vector<query::QueryHit>> ProbeShard(
      int shard, const std::shared_ptr<Tvdp>& tvdp,
      const query::HybridQuery& q, const RequestContext& ctx,
      const query::QueryBudget& budget, query::QueryPlan* plan_out,
      bool inject_faults = true) const;

  query::ShardEstimate EstimateShard(const std::shared_ptr<Tvdp>& tvdp,
                                     const query::HybridQuery& q) const;

  /// Breaker + latency bookkeeping for one gathered probe outcome. A
  /// breaker that trips open for a replicated shard whose engine is dead
  /// retries the automatic promotion (the KillShard-time attempt may have
  /// been vetoed by a fault hook).
  void RecordProbeOutcome(const query::ShardReport& report) const;

  // --- Replication internals ---

  /// On-disk root of copy `copy` of shard `shard`: copy 0 is
  /// `<base>/shard_<i>` (the pre-replication layout, unchanged), copy
  /// r >= 1 is `<base>/shard_<i>_replica_<r-1>`. "" for in-memory fleets.
  std::string CopyPath(int shard, int copy) const;

  /// Replica copy slot r's path index given the current primary: the
  /// (r+1)-th copy index skipping `primary_index`.
  int ReplicaCopyIndex(int primary_index, int r) const;

  /// Opens + attaches `shard`'s replicas around `primary` (wiping any
  /// stale on-disk state at the replica paths and bootstrapping from the
  /// primary). `primary_index` names the copy path the primary serves
  /// from. Caller must not hold slots_mutex_.
  Status AttachReplicas(int shard, const std::shared_ptr<Tvdp>& primary,
                        int primary_index,
                        const std::shared_ptr<ReplicaSet>& replicas);

  /// Ships `shard`'s captured mutations to its replicas according to the
  /// configured sync level (kSync: always, before the write is
  /// acknowledged; kAsync: once the lag bound is reached). Called after
  /// every successful routed write.
  void ShipShard(int shard) const;

  /// True unless the promotion test hook vetoes this step. Caller holds
  /// promotion_mutex_.
  bool PromotionHookOk(const char* phase, int shard) const;

  /// Runs any promotions deferred behind a migration that has since
  /// resolved. Takes promotion_mutex_ via PromoteShard; caller must hold
  /// neither promotion_mutex_ nor slots_mutex_.
  void DrainDeferredPromotions();

  /// Appends one broadcast or migration record to `shard`'s log (durable
  /// shards fsync it through the DurableCatalog; in-memory shards only
  /// update the mirror). Unavailable when the shard is down. Caller holds
  /// broadcast_mutex_ or migration_mutex_ (the mirror itself is guarded by
  /// slots_mutex_ inside).
  Status AppendBroadcastTo(int shard, const storage::WalRecord& record);

  /// True unless a test hook vetoes this step (simulated coordinator
  /// crash). Caller holds broadcast_mutex_.
  bool BroadcastHookOk(const char* phase, int shard) const;

  /// Reconciliation + consistency check bodies; caller holds a WriteTicket
  /// (reconciliation mutates shard engines — rollback sweeps, forward
  /// re-applies — and the cutover/fence write gate must be able to drain
  /// it) and then broadcast_mutex_, in that order.
  Result<Json> ReconcileLocked();
  Status VerifyConsistencyLocked(Json* detail) const;

  // --- Rebalancing internals ---

  /// RAII write ticket: every engine-mutating ShardManager path (routed
  /// writes, classification broadcasts, reconciliation, foreign-row
  /// sweeps) holds one so a cutover (which flips the routing) or a
  /// promotion fence (which raises the epoch gate) can wait the in-flight
  /// mutations out instead of racing them. Acquired before
  /// broadcast_mutex_, never inside it — and never nested: a holder that
  /// re-acquired while BlockWrites waits would deadlock the barrier.
  class WriteTicket {
   public:
    explicit WriteTicket(const ShardManager* mgr);
    ~WriteTicket();

   private:
    const ShardManager* mgr_;
  };
  friend class WriteTicket;

  /// Blocks new write tickets and waits until the in-flight count drains
  /// (the cutover barrier) / lifts the block.
  void BlockWrites() const;
  void UnblockWrites() const;

  /// True unless the migration test hook vetoes this step. Caller holds
  /// migration_mutex_.
  bool MigrationHookOk(const char* phase, int shard) const;

  /// One idempotent copy/diff pass of the in-flight migration: full-copies
  /// source rows in the migrating cells that have no relocation yet and
  /// diff-copies new annotations / feature kinds onto already-copied rows.
  /// Returns the number of rows this pass changed (0 = caught up). Caller
  /// holds migration_mutex_; engine work runs lock-free on the snapshotted
  /// handles.
  Result<size_t> MigrationCopyPass(
      const std::shared_ptr<Tvdp>& src, const std::shared_ptr<Tvdp>& dst,
      const std::function<bool(const geo::GeoPoint&)>& in_cells, int source,
      int target);

  /// RebalanceCells / RecoverShard bodies; the public wrappers drain any
  /// deferred promotions after the migration locks are released.
  Result<Json> RebalanceCellsInner(const std::vector<int>& cells, int source,
                                   int target);
  Status RecoverShardInner(int shard);

  /// Marks the in-flight migration abandoned (coordinator crash model):
  /// durable intents stay pending for reconciliation and the endpoints keep
  /// their migrating flags (dual-serve keeps queries exact). Returns
  /// kUnavailable carrying `why`.
  Status AbandonMigration(const std::string& why);

  /// Deletes every row on `shard` whose cell the current shard map assigns
  /// to a different shard, then recomputes the shard's FOV margin — the GC
  /// half of forward recovery and the undo half of rollback. The public
  /// entry acquires a WriteTicket; the Ticketed body is for callers
  /// (ReconcileLocked) already holding one.
  Status SweepForeignRows(int shard);
  Status SweepForeignRowsTicketed(int shard);

  /// Recomputes `shard`'s cells bounding box from cell_to_shard_. Caller
  /// holds slots_mutex_.
  void RecomputeCellsLocked(int shard);

  /// Rebuilds every slot's reverse relocation map from relocated_ (drops
  /// any in-copy entries of an abandoned migration). Caller holds
  /// slots_mutex_.
  void RebuildReverseMapsLocked();

  std::string ShardMapPath() const;

  /// Atomically persists the given post-cutover cell map together with the
  /// persisted per-shard fencing epochs / primary copy indices — the
  /// durable commit point of a migration or a promotion. Caller holds
  /// shard_map_mutex_ (the single serialization point for every
  /// shard_map.json write; epochs and primaries are always sourced from
  /// persisted_epochs_ / persisted_primaries_ at write time, so a
  /// concurrent writer can never regress another shard's committed
  /// promotion).
  Status WriteShardMapLocked(const std::vector<int>& cell_map,
                             const std::vector<std::array<int64_t, 3>>& relocs,
                             const std::vector<int64_t>& committed);

  /// Snapshots the current cell state under slots_mutex_, then (under
  /// shard_map_mutex_) bumps `shard`'s persisted epoch / primary and writes
  /// the map — the promotion commit point. The persisted vectors are
  /// reverted if the write fails, so an aborted promotion cannot flip a
  /// later restart onto an unpromoted replica.
  Status CommitPromotionToShardMap(int shard, int64_t new_epoch,
                                   int new_primary_index);

  /// Loads `<base_path>/shard_map.json` if present, overriding the options'
  /// cell assignments and seeding relocated_ / committed_migrations_ /
  /// boot_epochs_ / boot_primaries_. Returns whether a map file existed
  /// (its existence triggers a foreign-row sweep at Create — the GC a
  /// crash may have skipped).
  Result<bool> LoadShardMap();

  ShardManagerOptions options_;
  /// Mutable under slots_mutex_ since cutovers rewrite cell ownership.
  std::vector<int> cell_to_shard_;
  mutable std::vector<Slot> slots_;
  mutable std::mutex slots_mutex_;
  /// Serializes fleet-wide broadcasts, reconciliation, and recovery; taken
  /// before slots_mutex_ (never the reverse). A migration takes it only
  /// briefly per append batch; migration_mutex_ orders before it.
  mutable std::mutex broadcast_mutex_;
  int64_t next_broadcast_id_ = 1;  ///< guarded by broadcast_mutex_
  std::function<bool(const std::string&, int)> broadcast_hook_;

  /// Serializes promotions end to end (one in flight at a time).
  /// Deliberately independent of the order chain below: PromoteShard never
  /// takes migration_mutex_ or broadcast_mutex_, so a promotion hook may
  /// re-entrantly call RebalanceCells / KillShard without a cycle.
  mutable std::mutex promotion_mutex_;
  std::function<bool(const std::string&, int)> promotion_hook_;  ///< by promotion_mutex_
  /// Shards whose promotion is parked behind an in-flight migration; the
  /// migration's resolution drains them. Guarded by slots_mutex_.
  std::unordered_set<int> deferred_promotions_;
  /// Epochs / primary copy indices loaded from shard_map.json, consumed by
  /// Create when building the slots (empty = fresh map, all zeros).
  std::vector<int64_t> boot_epochs_;
  std::vector<int> boot_primaries_;

  /// Serializes migrations end to end (one in flight at a time). Lock
  /// order: migration_mutex_ -> broadcast_mutex_ -> slots_mutex_.
  mutable std::mutex migration_mutex_;
  MigrationState migration_;  ///< guarded by slots_mutex_
  std::function<bool(const std::string&, int)> migration_hook_;  ///< by migration_mutex_
  /// original global id -> (owning shard, local id) for every row moved by
  /// a committed migration; consulted before the arithmetic id % N routing.
  /// Guarded by slots_mutex_.
  std::unordered_map<int64_t, std::pair<int, int64_t>> relocated_;
  /// Ids of migrations whose cutover committed (survives restarts through
  /// shard_map.json) — the evidence recovery rolls forward on. Guarded by
  /// slots_mutex_.
  std::unordered_set<int64_t> committed_migrations_;

  /// Serializes every shard_map.json write (promotion commits and
  /// rebalance cutovers would otherwise interleave and regress each
  /// other's persisted state). The rebalance cutover holds it across the
  /// file write AND the in-memory routing flip so a concurrent promotion's
  /// map write cannot snapshot the pre-flip cell map after the cutover
  /// committed. Ordered before slots_mutex_, never inside it.
  mutable std::mutex shard_map_mutex_;
  int64_t shard_map_version_ = 0;  ///< guarded by shard_map_mutex_
  /// Per-shard fencing epoch / primary copy index as last durably written
  /// to shard_map.json (seeded from boot_epochs_ / boot_primaries_ at
  /// Create). Authoritative for map writes: slots_ lag behind between a
  /// promotion's commit point (phase 4) and its in-memory flip (phase 6).
  /// Guarded by shard_map_mutex_.
  std::vector<int64_t> persisted_epochs_;
  std::vector<int> persisted_primaries_;

  /// The cutover write gate (leaf lock; never held across engine calls).
  mutable std::mutex gate_mutex_;
  mutable std::condition_variable gate_cv_;
  mutable int writes_in_flight_ = 0;
  mutable bool write_block_ = false;
  /// DeviceHealthTracker is not thread-safe; every access goes through
  /// this mutex.
  mutable std::unique_ptr<edge::DeviceHealthTracker> tracker_;
  mutable std::mutex tracker_mutex_;
};

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_SHARDING_H_
