#ifndef TVDP_PLATFORM_REPLICATION_H_
#define TVDP_PLATFORM_REPLICATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "platform/tvdp.h"
#include "storage/durable_catalog.h"
#include "storage/wal.h"

namespace tvdp::platform {

/// When a routed write is acknowledged to the client relative to its
/// replication (DESIGN.md "Replication, failover, and fencing").
enum class SyncLevel {
  /// The record is applied to every live replica — and fsynced into each
  /// durable replica's own WAL — before the client ack. Losing the primary
  /// loses nothing that was acknowledged.
  kSync = 0,
  /// The record is acknowledged once the primary committed it; replicas
  /// apply in the background with a bounded lag (`max_async_lag_records`,
  /// exposed as `replica_lag_records`). Losing the primary can lose up to
  /// that many acknowledged records.
  kAsync = 1,
};

/// Per-shard replication configuration (ShardManagerOptions::replication).
struct ReplicationOptions {
  /// Total copies of each shard, primary included. 1 = replication off
  /// (the pre-replication behaviour, byte-identical); 2 = primary + one
  /// replica; etc.
  int replication_factor = 1;

  SyncLevel sync = SyncLevel::kSync;

  /// kAsync only: ship once this many captured records are waiting.
  size_t max_async_lag_records = 64;

  /// Allow scatter-gather to fail a probe over to a replica when the
  /// primary is down or its breaker is open.
  bool serve_replica_reads = true;

  /// Round-robin clean (non-failover) read probes across primary and
  /// replicas for capacity. Off by default: replica reads under kAsync can
  /// trail the primary by the lag bound.
  bool balance_replica_reads = false;
};

/// One shard's replica group: the capture channel fed by the primary's
/// mutation observer, the replica engines the channel is shipped to, and
/// the bookkeeping promotion needs (per-replica applied counts, the shipped
/// WAL offset, the fencing epoch).
///
/// Thread safety: all public methods are safe to call concurrently.
/// `Capture` runs under the primary's writer lock and only touches the
/// channel mutex; `Ship` serializes on its own mutex so concurrent writers
/// cannot interleave halves of a batch into a replica.
class ReplicaSet {
 public:
  ReplicaSet(int shard, int64_t epoch);

  /// Opens `replica_paths.size()` replica engines (durable when the path is
  /// non-empty — any stale on-disk state at the path is wiped first — else
  /// in-memory), bootstraps each from the primary's current state, and
  /// installs the capture observer on the primary. Durable replicas are
  /// opened with sync_on_commit off; `Ship` fsyncs them explicitly when the
  /// sync level demands it.
  Status Attach(const std::shared_ptr<Tvdp>& primary,
                const std::vector<std::string>& replica_paths,
                storage::DurableCatalogOptions durable, SyncLevel sync);

  /// Detaches the capture observer from `primary` (engine handoff; the
  /// channel keeps whatever it already captured).
  void Detach(const std::shared_ptr<Tvdp>& primary);

  /// Installs the capture observer on a new primary (the promotion flip)
  /// without re-bootstrapping the remaining replicas, and re-anchors the
  /// shipped WAL offset to the new primary's log. The epoch gate (already
  /// raised by the fence) keeps any stragglers from the old primary out.
  void Rebind(const std::shared_ptr<Tvdp>& primary);

  /// fsyncs every live durable replica's WAL — the promotion "ack" phase
  /// (under kAsync the background ships never fsynced).
  Status FsyncReplicas();

  /// Applies every captured-but-unshipped record to every live replica;
  /// with kSync the durable replicas are fsynced before returning. A
  /// replica that fails to apply is marked dead (the write is NOT failed —
  /// a sick replica must not take down the primary's availability); its
  /// death is visible through `live_replica_count` / `StatsJson`.
  Status Ship();

  /// Crash model: the primary died with the channel unshipped — the
  /// captured records are gone (promotion re-derives them from the
  /// primary's on-disk WAL tail when one exists).
  void DiscardPending();

  /// Applies `records` (e.g. a recovered WAL tail) to every live replica
  /// and fsyncs durable ones — the promotion "apply" phase.
  Status ApplyToLive(const std::vector<storage::WalRecord>& records);

  /// Captured records not yet shipped (the kAsync lag, 0 under kSync).
  size_t lag_records() const;

  /// Primary-WAL byte offset covered by shipping so far (0 for in-memory
  /// primaries; regresses are impossible — compaction invalidates it and
  /// the promotion tail read guards on file size).
  uint64_t shipped_wal_offset() const;

  int replica_count() const;
  int live_replica_count() const;
  bool has_live_replica() const { return live_replica_count() > 0; }

  /// The replica engine handle (nullptr when killed / taken / out of range).
  std::shared_ptr<Tvdp> replica(int r) const;

  /// Records successfully applied to replica `r` since attach.
  uint64_t applied_records(int r) const;

  /// Kills one replica (fault injection): its engine is dropped and it no
  /// longer receives shipped records.
  Status KillReplica(int r);

  /// The most-caught-up live replica (max applied records, ties to the
  /// lowest index), or -1 when none is live.
  int ElectMostCaughtUp() const;

  /// Removes replica `r` from the set and returns its engine — the
  /// promotion flip. The remaining replicas keep serving the set.
  std::shared_ptr<Tvdp> Take(int r);

  /// Raises the set's fencing epoch: captured records stamped with an older
  /// epoch (a stale primary still holding the observer) are rejected.
  void set_epoch(int64_t epoch);
  int64_t epoch() const;
  size_t rejected_stale_records() const;

  int shard() const { return shard_; }
  SyncLevel sync() const { return sync_; }

  /// {"replicas","live","lag_records","shipped_wal_offset","epoch",
  ///  "rejected_stale_records","applied":[..]}
  Json StatsJson() const;

 private:
  struct Replica {
    std::shared_ptr<Tvdp> engine;
    bool live = false;
    uint64_t applied = 0;
    std::string base_path;  ///< "" = in-memory
  };

  /// The observer body: appends (record, post-append WAL offset) to the
  /// channel unless the record's epoch is stale. Runs under the primary's
  /// writer lock.
  void Capture(const storage::WalRecord& record, uint64_t wal_offset);

  /// Applies one drained batch to every live replica. Caller holds
  /// ship_mutex_ (never channel_mutex_).
  Status ApplyBatchLocked(const std::vector<storage::WalRecord>& batch,
                          bool fsync);

  const int shard_;

  /// Channel state: captured records + epoch gate. Leaf mutex — safe to
  /// take under the primary's writer lock.
  mutable std::mutex channel_mutex_;
  std::vector<std::pair<storage::WalRecord, uint64_t>> channel_;
  int64_t epoch_;
  size_t rejected_stale_ = 0;

  /// Serializes Ship / ApplyToLive so concurrent writers cannot interleave
  /// halves of a batch into a replica. Taken before the other two mutexes,
  /// never inside either.
  mutable std::mutex ship_mutex_;

  /// Guards the replica table itself (handles, live flags, applied counts)
  /// — a leaf mutex so handle reads never wait behind an in-flight ship.
  mutable std::mutex members_mutex_;
  std::vector<Replica> replicas_;       ///< guarded by members_mutex_
  uint64_t shipped_wal_offset_ = 0;     ///< guarded by members_mutex_
  SyncLevel sync_ = SyncLevel::kSync;   ///< set at Attach
};

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_REPLICATION_H_
