#include "platform/video.h"

#include <algorithm>

#include "common/strings.h"

namespace tvdp::platform {

Result<std::vector<size_t>> KeyframeSelector::Select(
    const std::vector<VideoFrame>& frames) const {
  std::vector<size_t> selected;
  if (frames.empty()) return selected;

  // Coverage model over the trajectory's own extent.
  geo::BoundingBox extent = geo::BoundingBox::Empty();
  for (const auto& f : frames) extent.Extend(f.fov.SceneLocation());
  TVDP_ASSIGN_OR_RETURN(
      geo::CoverageGrid grid,
      geo::CoverageGrid::Make(extent, options_.grid_rows, options_.grid_cols,
                              options_.direction_sectors));

  // Greedy max-marginal-gain selection. Gain evaluation must not mutate
  // the shared grid, so each candidate is scored against a copy; the
  // winner is then applied. Frame counts are video-scale (hundreds), and
  // the loop caps at max_keyframes, so the quadratic scan is fine.
  std::vector<bool> used(frames.size(), false);
  while (options_.max_keyframes <= 0 ||
         static_cast<int>(selected.size()) < options_.max_keyframes) {
    int best = -1;
    int best_gain = options_.min_marginal_gain - 1;
    for (size_t i = 0; i < frames.size(); ++i) {
      if (used[i]) continue;
      geo::CoverageGrid probe = grid;
      int gain = probe.AddFov(frames[i].fov);
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[static_cast<size_t>(best)] = true;
    grid.AddFov(frames[static_cast<size_t>(best)].fov);
    selected.push_back(static_cast<size_t>(best));
  }
  return selected;
}

Result<std::vector<int64_t>> IngestVideo(Tvdp& tvdp, const VideoRecord& video,
                                         const KeyframeSelector& selector) {
  if (video.frames.empty()) {
    return Status::InvalidArgument("video has no frames");
  }
  TVDP_ASSIGN_OR_RETURN(std::vector<size_t> keyframes,
                        selector.Select(video.frames));
  if (keyframes.empty()) {
    return Status::FailedPrecondition("no key frames add spatial coverage");
  }
  std::sort(keyframes.begin(), keyframes.end());  // store in frame order

  std::vector<int64_t> ids;
  ids.reserve(keyframes.size());
  for (size_t idx : keyframes) {
    const VideoFrame& frame = video.frames[idx];
    ImageRecord rec;
    rec.uri = StrFormat("%s#frame%d", video.uri.c_str(), frame.frame_index);
    rec.location = frame.fov.camera;
    rec.fov = frame.fov;
    rec.captured_at = frame.captured_at;
    rec.uploaded_at = frame.captured_at;
    rec.source = "video:" + video.uri;
    rec.keywords = video.keywords;
    rec.keywords.push_back(StrFormat("frame%d", frame.frame_index));
    TVDP_ASSIGN_OR_RETURN(int64_t id, tvdp.IngestImage(rec));
    ids.push_back(id);
  }
  return ids;
}

std::vector<VideoFrame> SimulateDriveVideo(const geo::GeoPoint& start,
                                           double bearing_deg,
                                           double speed_mps, int num_frames,
                                           double fps, Timestamp start_time,
                                           Rng& rng) {
  std::vector<VideoFrame> frames;
  if (num_frames <= 0 || fps <= 0) return frames;
  double side = rng.Bernoulli(0.5) ? 90.0 : -90.0;
  for (int i = 0; i < num_frames; ++i) {
    double t = i / fps;
    geo::GeoPoint position =
        geo::Destination(start, bearing_deg, speed_mps * t);
    position = geo::Destination(position, rng.Uniform(0, 360),
                                rng.Uniform(0, 2.0));  // GPS noise
    auto fov = geo::FieldOfView::Make(
        position, bearing_deg + side + rng.Normal(0, 4.0),
        60 + rng.Normal(0, 3.0), 110 + rng.Normal(0, 10.0));
    if (!fov.ok()) continue;
    VideoFrame frame;
    frame.fov = *fov;
    frame.captured_at = start_time + static_cast<Timestamp>(t);
    frame.frame_index = i;
    frames.push_back(frame);
  }
  return frames;
}

}  // namespace tvdp::platform
