#include "platform/dataset_gen.h"

#include <algorithm>

#include "common/strings.h"

namespace tvdp::platform {
namespace {

/// Per-class spatial hotspot model: each problem class draws its capture
/// locations near a few class-specific centers with Gaussian spread, which
/// is what makes the clustering study of Sec. VII-B meaningful.
struct Hotspots {
  std::vector<geo::GeoPoint> centers;
  double sigma_m = 400;
};

Hotspots MakeHotspots(const geo::BoundingBox& region, int count, Rng& rng) {
  Hotspots h;
  for (int i = 0; i < count; ++i) {
    h.centers.push_back(geo::GeoPoint{
        rng.Uniform(region.min_lat, region.max_lat),
        rng.Uniform(region.min_lon, region.max_lon)});
  }
  return h;
}

}  // namespace

std::vector<std::string> KeywordsForClass(image::SceneClass label, Rng& rng) {
  static const char* kCommon[] = {"street", "sidewalk", "losangeles", "city"};
  std::vector<std::string> out;
  out.push_back(kCommon[rng.UniformInt(0, 3)]);
  switch (label) {
    case image::SceneClass::kClean:
      out.push_back("clean");
      break;
    case image::SceneClass::kBulkyItem:
      out.push_back("furniture");
      out.push_back(rng.Bernoulli(0.5) ? "couch" : "mattress");
      break;
    case image::SceneClass::kIllegalDumping:
      out.push_back("trash");
      out.push_back("dumping");
      break;
    case image::SceneClass::kEncampment:
      out.push_back("tent");
      out.push_back("homeless");
      break;
    case image::SceneClass::kOvergrownVegetation:
      out.push_back("vegetation");
      out.push_back("weeds");
      break;
    case image::SceneClass::kGraffiti:
      out.push_back("graffiti");
      out.push_back("wall");
      break;
  }
  return out;
}

std::vector<GeoImage> GenerateStreetDataset(const DatasetConfig& config) {
  std::vector<GeoImage> out;
  if (config.count <= 0 || config.region.IsEmpty()) return out;

  Rng rng(config.seed);
  geo::StreetNetwork streets = geo::StreetNetwork::MakeGrid(
      config.region, config.streets_rows, config.streets_cols, rng);
  image::StreetSceneGenerator generator(config.scene);

  int num_classes = config.include_graffiti ? image::kNumSceneClasses
                                            : image::kNumCleanlinessClasses;
  std::vector<double> weights = config.class_weights;
  if (weights.empty()) {
    weights.assign(static_cast<size_t>(num_classes), 1.0);
  }
  weights.resize(static_cast<size_t>(num_classes), 0.0);

  // Hotspots for the non-clean classes.
  std::vector<Hotspots> hotspots(static_cast<size_t>(num_classes));
  if (config.hotspots_per_class > 0) {
    for (int c = 1; c < num_classes; ++c) {
      hotspots[static_cast<size_t>(c)] =
          MakeHotspots(config.region, config.hotspots_per_class, rng);
    }
  }

  out.reserve(static_cast<size_t>(config.count));
  for (int i = 0; i < config.count; ++i) {
    int cls = static_cast<int>(rng.WeightedIndex(weights));
    image::SceneClass label = static_cast<image::SceneClass>(cls);

    // Capture point: along a street; problem classes snap toward one of
    // their hotspots by resampling a few street points and keeping the
    // one nearest a hotspot center.
    geo::StreetNetwork::SamplePoint sample = streets.Sample(rng);
    if (cls > 0 && !hotspots[static_cast<size_t>(cls)].centers.empty()) {
      const Hotspots& h = hotspots[static_cast<size_t>(cls)];
      double best_d = 1e18;
      geo::StreetNetwork::SamplePoint best = sample;
      for (int attempt = 0; attempt < 6; ++attempt) {
        geo::StreetNetwork::SamplePoint cand =
            attempt == 0 ? sample : streets.Sample(rng);
        for (const auto& center : h.centers) {
          double d = geo::HaversineMeters(cand.location, center);
          if (d < best_d) {
            best_d = d;
            best = cand;
          }
        }
      }
      sample = best;
    }

    image::Scene scene = generator.Generate(label, rng);

    GeoImage gi;
    gi.pixels = std::move(scene.image);
    gi.label = label;
    gi.objects = std::move(scene.objects);

    // Camera faces the sidewalk: street bearing +- 90 degrees.
    double facing = sample.street_bearing_deg +
                    (rng.Bernoulli(0.5) ? 90.0 : -90.0) +
                    rng.Normal(0, 8.0);
    auto fov = geo::FieldOfView::Make(sample.location, facing,
                                      rng.Uniform(50, 70),
                                      rng.Uniform(60, 140));
    gi.record.location = sample.location;
    if (fov.ok()) gi.record.fov = *fov;
    gi.record.captured_at =
        config.start_time +
        rng.UniformInt(0, std::max<int64_t>(config.time_span_seconds - 1, 0));
    gi.record.uploaded_at =
        gi.record.captured_at + rng.UniformInt(60, 7200);
    gi.record.source = "lasan_truck";
    gi.record.uri = StrFormat("tvdp://images/synth/%06d.ppm", i);
    gi.record.keywords = KeywordsForClass(label, rng);
    out.push_back(std::move(gi));
  }
  return out;
}

}  // namespace tvdp::platform
