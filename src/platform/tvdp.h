#ifndef TVDP_PLATFORM_TVDP_H_
#define TVDP_PLATFORM_TVDP_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/timeutil.h"
#include "geo/coverage.h"
#include "geo/fov.h"
#include "query/engine.h"
#include "storage/catalog.h"
#include "storage/durable_catalog.h"
#include "storage/tvdp_schema.h"

namespace tvdp::platform {

/// Everything known about an image at ingest time.
struct ImageRecord {
  std::string uri;
  geo::GeoPoint location;
  std::optional<geo::FieldOfView> fov;
  Timestamp captured_at = 0;
  Timestamp uploaded_at = 0;
  std::string source = "upload";  ///< e.g. "lasan_truck", "crowd", "upload"
  std::vector<std::string> keywords;
  bool is_augmented = false;
  std::optional<int64_t> original_image_id;
};

/// One annotation to attach to an image.
struct AnnotationRecord {
  std::string classification;  ///< task name, e.g. "street_cleanliness"
  std::string label;           ///< e.g. "encampment"
  double confidence = 1.0;
  bool machine = false;        ///< machine vs manual provenance
  /// Optional sub-image region.
  std::optional<std::array<int, 4>> region;  // x, y, w, h
};

/// The Translational Visual Data Platform facade: one object wiring the
/// four core services of Fig. 1 over the embedded store and indexes.
///
///  * Acquisition — IngestImage / IngestCapture (crowdsourced uploads).
///  * Access      — query() exposes the five query families + hybrids.
///  * Analysis    — feature storage, classification registry, annotation
///                  write-back (augmented knowledge, Sec. VII-B).
///  * Action      — annotations and features are readable by every other
///                  participant, enabling translational reuse; edge
///                  dispatch lives in tvdp::edge and is driven from here
///                  by the examples.
///
/// Thread safety: reads are LOCK-FREE. Every mutation commits by
/// publishing an immutable MVCC snapshot through the query engine (see
/// DESIGN.md "MVCC snapshots and copy-on-write storage"); a read pins the
/// current snapshot with two atomic ops and never touches `mutex()`, so
/// readers can neither block nor starve a writer. Ingest, annotation
/// write-back, feature storage and checkpointing take the writer side of
/// the platform-wide lock, so a write is observed atomically — catalog
/// rows, index entries and the published snapshot never tear apart. WAL
/// commit ordering matches publish ordering (writers are fully
/// serialized). See DESIGN.md "Concurrency model".
class Tvdp {
 public:
  /// Creates a platform with a fresh in-memory TVDP-schema catalog.
  static Result<Tvdp> Create();

  /// Opens (or creates) a crash-safe platform rooted at `base_path`
  /// (`<base_path>.snapshot` + `<base_path>.wal`). Every ingest, annotation
  /// and feature write is committed through the write-ahead log; reopening
  /// after a crash recovers all committed records, rebuilds the query
  /// indexes and the classification registry.
  static Result<Tvdp> Open(const std::string& base_path,
                           storage::DurableCatalogOptions options = {});

  // Custom moves: the fencing state lives in atomics (lock-free readers),
  // which have no implicit move.
  Tvdp(Tvdp&& other) noexcept;
  Tvdp& operator=(Tvdp&& other) noexcept;

  // --- Acquisition ---

  /// Stores an image's metadata rows and indexes it. Returns the image id.
  Result<int64_t> IngestImage(const ImageRecord& record);

  /// Batch ingest; returns ids in order.
  Result<std::vector<int64_t>> IngestImages(
      const std::vector<ImageRecord>& records);

  // --- Analysis ---

  /// Registers a classification task with its label set; idempotent on
  /// name. Returns the classification id.
  Result<int64_t> RegisterClassification(const std::string& name,
                                         const std::vector<std::string>& labels,
                                         const std::string& description = "");

  /// Id of the registered classification `name`, or NotFound.
  Result<int64_t> ClassificationId(const std::string& name) const;

  /// The id a `RegisterClassification(name, ...)` call would return right
  /// now: the existing id when `name` is registered, otherwise the id the
  /// classification table will assign next. The sharded broadcast
  /// coordinator records these per-shard targets in the intent so recovery
  /// can verify the fleet converged on the same ids.
  Result<int64_t> PeekClassificationId(const std::string& name) const;

  /// True iff `name` is registered and every label in `labels` is present —
  /// the reconciliation pass's "this shard already applied the broadcast"
  /// evidence check.
  bool ClassificationApplied(const std::string& name,
                             const std::vector<std::string>& labels) const;

  /// Deterministic dump of the classification registry
  /// ({name: {"id": .., "labels": {label: type_id}}}) used by the sharded
  /// layer to verify the fleet's classification tables are identical.
  Json ClassificationTableJson() const;

  /// Largest FOV radius (meters) stored in the catalog, 0 when none — lets
  /// the sharded layer rebuild its spillover prune margin after a reopen.
  double MaxFovRadiusM() const;

  /// Attaches an annotation (manual or machine) to an image; the task and
  /// label must have been registered. Returns the annotation id.
  Result<int64_t> AnnotateImage(int64_t image_id,
                                const AnnotationRecord& annotation);

  /// Stores (and indexes) a visual feature vector for an image.
  Status StoreFeature(int64_t image_id, const std::string& kind,
                      const ml::FeatureVector& feature);

  // --- Access ---

  query::QueryEngine& query() { return *engine_; }
  const query::QueryEngine& query() const { return *engine_; }

  /// Evaluates a hybrid query under the platform-wide shared lock,
  /// honoring an optional request context (deadline/cancellation) and a
  /// query budget (degraded plans) — the access-layer entry point used by
  /// the API service. When `plan_out` is non-null it receives the executed
  /// plan (operator tree with estimated and actual cardinalities).
  Result<std::vector<query::QueryHit>> ExecuteQuery(
      const query::HybridQuery& q, const RequestContext* ctx = nullptr,
      const query::QueryBudget& budget = query::QueryBudget(),
      query::QueryPlan* plan_out = nullptr) const;

  /// Plans a hybrid query without executing it (the `explain_query` API
  /// endpoint). Deterministic for a given query and corpus state.
  Result<query::QueryPlan> ExplainQuery(
      const query::HybridQuery& q,
      const query::QueryBudget& budget = query::QueryBudget()) const;

  /// MVCC observability: the engine's snapshot stats ({version,
  /// pinned_snapshots, retired_versions, bytes copied/shared on the last
  /// commit}) — surfaced per shard/engine in `platform_stats`.
  Json MvccStats() const;

  /// The platform-wide writer lock (owned by the query engine so facade
  /// and engine callers synchronize on the same object). Every facade
  /// mutation takes it exclusively; reads pin an MVCC snapshot instead of
  /// locking (legacy standalone engines still take it shared).
  std::shared_mutex& mutex() const { return engine_->mutex(); }

  storage::Catalog& catalog() {
    return durable_ ? durable_->catalog() : *catalog_;
  }
  const storage::Catalog& catalog() const {
    return durable_ ? durable_->catalog() : *catalog_;
  }

  /// True when this platform persists through a durable catalog.
  bool durable() const { return durable_ != nullptr; }

  /// The durable store (nullptr for in-memory platforms).
  storage::DurableCatalog* durable_catalog() { return durable_.get(); }

  /// Number of live images.
  size_t image_count() const;

  /// The label (annotation) of `image_id` under `classification` with the
  /// highest confidence, or NotFound.
  Result<std::string> GetLabel(int64_t image_id,
                               const std::string& classification) const;

  /// Retrieves the stored feature of the given kind.
  Result<ml::FeatureVector> GetFeature(int64_t image_id,
                                       const std::string& kind) const;

  /// The image's metadata row in the download_datasets JSON shape
  /// ({"id","uri","lat","lon","captured_at","source"}); NotFound for an
  /// unknown id. Shared by the API layer and the sharded serving layer so
  /// both render rows identically.
  Result<Json> ImageRowJson(int64_t image_id) const;

  /// All camera locations of images annotated (classification, label) with
  /// confidence >= min_confidence — the translational primitive behind the
  /// homeless-counting study (Sec. VII-B: reuse encampment annotations).
  Result<std::vector<geo::GeoPoint>> LocationsWithLabel(
      const std::string& classification, const std::string& label,
      double min_confidence = 0.0) const;

  // --- Rebalancing support (used by the sharded serving layer to move
  // grid cells between shards, DESIGN.md "Online shard rebalancing") ---

  /// The full acquisition-time record of `image_id`, reconstructed from the
  /// catalog rows (FOV and keywords included) — the export half of a cell
  /// migration; NotFound for an unknown id.
  Result<ImageRecord> ExportImage(int64_t image_id) const;

  /// Camera location of `image_id`; NotFound for an unknown id.
  Result<geo::GeoPoint> ImageLocation(int64_t image_id) const;

  /// Ids of every image whose camera location satisfies `pred`, in id
  /// order — the migration copy loop's cell scan.
  std::vector<int64_t> ImageIdsMatching(
      const std::function<bool(const geo::GeoPoint&)>& pred) const;

  /// All annotations attached to `image_id` in insertion order, type ids
  /// translated back to (classification, label) names. Annotations whose
  /// type id is not in the registry are skipped.
  Result<std::vector<AnnotationRecord>> ListAnnotations(int64_t image_id) const;

  /// All stored feature vectors of `image_id` as (kind, vector) pairs, in
  /// insertion order.
  Result<std::vector<std::pair<std::string, ml::FeatureVector>>> ListFeatures(
      int64_t image_id) const;

  /// Removes the given images and every dependent row (FOV, scene
  /// location, keywords, features, annotations) — through the WAL when
  /// durable — then rebuilds the query indexes from the surviving rows.
  /// The GC half of a cell migration. Unknown ids are skipped.
  Status RemoveImages(const std::vector<int64_t>& ids);

  // --- Replication support (used by platform::ReplicaSet, DESIGN.md
  // "Replication, failover, and fencing") ---

  /// Installs (or clears, with nullptr) the mutation observer: a callback
  /// invoked — under the engine writer lock, after the mutation committed —
  /// with the WAL-shaped record of every row insert/delete this engine
  /// performs. The replication layer captures these to ship them to the
  /// shard's replicas; because the writer lock serializes mutations, the
  /// observed stream totally orders with the primary's WAL.
  void SetMutationObserver(
      std::function<void(const storage::WalRecord&)> observer);

  /// Applies a batch of shipped primary records to this (replica) engine:
  /// forced-id inserts and deletes, committed through the replica's own WAL
  /// when durable, with query indexes and the classification registry kept
  /// in sync. Already-applied records (id present) are skipped, so
  /// re-shipping after a retry or a WAL tail replay is safe. Returns the
  /// number of records newly applied.
  Result<size_t> ApplyReplicated(
      const std::vector<storage::WalRecord>& records);

  /// Full-state dump as replayable kInsert records (schema order, ids
  /// included) — bootstraps a fresh replica from a primary that predates
  /// replication being enabled.
  std::vector<storage::WalRecord> SnapshotRecords() const;

  /// Fencing: a fenced engine rejects every mutation with
  /// kFailedPrecondition. A stale primary is fenced at promotion so its
  /// in-flight writers cannot ack anything the new primary will not have.
  void Fence(int64_t fenced_at_epoch);
  bool fenced() const;

  /// The engine's replication epoch, stamped onto every mutation record it
  /// produces (and persisted via the durable catalog when one is attached).
  void set_epoch(int64_t epoch);
  int64_t epoch() const;

  // --- Persistence ---

  Status SaveToFile(const std::string& path) const;

  /// Durable mode: forces a snapshot + WAL reset now. No-op in-memory.
  Status Checkpoint();

 private:
  Tvdp() = default;

  /// Routes a row insert through the WAL when durable, else straight to the
  /// in-memory catalog.
  Result<int64_t> InsertRow(const std::string& table, storage::Row row);

  /// Routes a row delete through the WAL when durable, else straight to the
  /// in-memory catalog.
  Status DeleteRow(const std::string& table, storage::RowId id);

  /// Re-indexes every image and feature row (caller holds mutex()
  /// exclusively; the indexes must be empty).
  Status ReindexAllLocked();

  /// Rebuilds query indexes and the classification registry from the
  /// recovered catalog after a durable Open.
  Status RebuildFromCatalog();

  /// Rebuilds only the classification registry from the catalog rows
  /// (classifications_ is guarded by the writer path's exclusive lock; the
  /// caller must not be racing mutations).
  Status RebuildClassificationsUnlocked();

  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<storage::DurableCatalog> durable_;
  std::unique_ptr<query::QueryEngine> engine_;
  // classification name -> (classification id, label -> type id)
  std::map<std::string, std::pair<int64_t, std::map<std::string, int64_t>>>
      classifications_;
  // Replication state. The observer is guarded by the engine writer lock
  // (mutations already hold it exclusively when it is consulted); the
  // fencing state is atomic so lock-free readers (fenced()/epoch(),
  // SnapshotRecords) observe it without the lock.
  std::function<void(const storage::WalRecord&)> mutation_observer_;
  std::atomic<int64_t> epoch_{0};
  std::atomic<bool> fenced_{false};
};

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_TVDP_H_
