#include "platform/replication.h"

#include <algorithm>

#include "common/file.h"
#include "common/logging.h"

namespace tvdp::platform {

ReplicaSet::ReplicaSet(int shard, int64_t epoch)
    : shard_(shard), epoch_(epoch) {}

Status ReplicaSet::Attach(const std::shared_ptr<Tvdp>& primary,
                          const std::vector<std::string>& replica_paths,
                          storage::DurableCatalogOptions durable,
                          SyncLevel sync) {
  // Replicas commit through their own WAL but are fsynced by Ship (when the
  // sync level demands it), not per record.
  durable.sync_on_commit = false;
  Fs* fs = durable.fs ? durable.fs : Fs::Default();

  std::vector<Replica> replicas;
  std::vector<storage::WalRecord> bootstrap = primary->SnapshotRecords();
  for (const std::string& path : replica_paths) {
    Replica rep;
    rep.base_path = path;
    if (path.empty()) {
      TVDP_ASSIGN_OR_RETURN(Tvdp engine, Tvdp::Create());
      rep.engine = std::make_shared<Tvdp>(std::move(engine));
    } else {
      // Wipe whatever a previous incarnation (e.g. a demoted stale primary)
      // left at the path: the replica re-bootstraps from the live primary,
      // which is the only state that survived the failover.
      for (const char* suffix : {".snapshot", ".wal", ".broadcast"}) {
        std::string file = path + suffix;
        if (fs->Exists(file)) TVDP_RETURN_IF_ERROR(fs->Remove(file));
      }
      TVDP_ASSIGN_OR_RETURN(Tvdp engine, Tvdp::Open(path, durable));
      rep.engine = std::make_shared<Tvdp>(std::move(engine));
    }
    TVDP_ASSIGN_OR_RETURN(size_t bootstrapped,
                          rep.engine->ApplyReplicated(bootstrap));
    if (!path.empty()) {
      TVDP_RETURN_IF_ERROR(rep.engine->durable_catalog()->Flush());
    }
    rep.live = true;
    rep.applied = bootstrapped;
    replicas.push_back(std::move(rep));
  }

  uint64_t offset =
      primary->durable() ? primary->durable_catalog()->wal_size_bytes() : 0;
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    replicas_ = std::move(replicas);
    shipped_wal_offset_ = offset;
    sync_ = sync;
  }
  // Weak handle: the observer must not keep a dropped (killed) primary
  // alive. It runs under the primary's writer lock, after the mutation
  // committed, so the durable WAL's size_bytes() is the record's post-
  // append boundary — the offset promotion tails from.
  std::weak_ptr<Tvdp> weak = primary;
  primary->SetMutationObserver([this, weak](const storage::WalRecord& record) {
    uint64_t off = 0;
    if (std::shared_ptr<Tvdp> p = weak.lock()) {
      if (p->durable()) off = p->durable_catalog()->wal_size_bytes();
    }
    Capture(record, off);
  });
  return Status::OK();
}

void ReplicaSet::Detach(const std::shared_ptr<Tvdp>& primary) {
  if (primary) primary->SetMutationObserver(nullptr);
}

void ReplicaSet::Rebind(const std::shared_ptr<Tvdp>& primary) {
  uint64_t offset =
      primary->durable() ? primary->durable_catalog()->wal_size_bytes() : 0;
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    shipped_wal_offset_ = offset;
  }
  std::weak_ptr<Tvdp> weak = primary;
  primary->SetMutationObserver([this, weak](const storage::WalRecord& record) {
    uint64_t off = 0;
    if (std::shared_ptr<Tvdp> p = weak.lock()) {
      if (p->durable()) off = p->durable_catalog()->wal_size_bytes();
    }
    Capture(record, off);
  });
}

Status ReplicaSet::FsyncReplicas() {
  std::lock_guard<std::mutex> ship(ship_mutex_);
  std::vector<std::shared_ptr<Tvdp>> live;
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    for (const Replica& r : replicas_) {
      if (r.live && r.engine && r.engine->durable()) live.push_back(r.engine);
    }
  }
  for (const auto& engine : live) {
    TVDP_RETURN_IF_ERROR(engine->durable_catalog()->Flush());
  }
  return Status::OK();
}

void ReplicaSet::Capture(const storage::WalRecord& record,
                         uint64_t wal_offset) {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  if (record.epoch < epoch_) {
    // A stale primary (fenced out by a promotion it has not observed)
    // still holds the observer: its mutations must never reach the
    // replicas, or the new primary's history would fork.
    ++rejected_stale_;
    return;
  }
  channel_.emplace_back(record, wal_offset);
}

Status ReplicaSet::Ship() {
  std::lock_guard<std::mutex> ship(ship_mutex_);
  std::vector<std::pair<storage::WalRecord, uint64_t>> drained;
  {
    std::lock_guard<std::mutex> lock(channel_mutex_);
    drained.swap(channel_);
  }
  if (drained.empty()) return Status::OK();
  std::vector<storage::WalRecord> batch;
  batch.reserve(drained.size());
  uint64_t max_offset = 0;
  for (auto& [record, offset] : drained) {
    max_offset = std::max(max_offset, offset);
    batch.push_back(std::move(record));
  }
  Status s = ApplyBatchLocked(batch, sync_ == SyncLevel::kSync);
  if (s.ok() && max_offset > 0) {
    std::lock_guard<std::mutex> lock(members_mutex_);
    shipped_wal_offset_ = std::max(shipped_wal_offset_, max_offset);
  }
  return s;
}

void ReplicaSet::DiscardPending() {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  channel_.clear();
}

Status ReplicaSet::ApplyToLive(const std::vector<storage::WalRecord>& records) {
  std::lock_guard<std::mutex> ship(ship_mutex_);
  return ApplyBatchLocked(records, /*fsync=*/true);
}

Status ReplicaSet::ApplyBatchLocked(
    const std::vector<storage::WalRecord>& batch, bool fsync) {
  if (batch.empty()) return Status::OK();
  // Snapshot the live handles; the engine work runs without ReplicaSet
  // locks (each engine has its own writer lock).
  std::vector<std::pair<size_t, std::shared_ptr<Tvdp>>> live;
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    for (size_t r = 0; r < replicas_.size(); ++r) {
      if (replicas_[r].live && replicas_[r].engine) {
        live.emplace_back(r, replicas_[r].engine);
      }
    }
  }
  for (auto& [r, engine] : live) {
    Result<size_t> newly_applied = engine->ApplyReplicated(batch);
    Status applied = newly_applied.status();
    if (applied.ok() && fsync && engine->durable()) {
      applied = engine->durable_catalog()->Flush();
    }
    std::lock_guard<std::mutex> lock(members_mutex_);
    if (r >= replicas_.size() || replicas_[r].engine != engine) continue;
    if (applied.ok()) {
      // Count what the engine actually applied, not the batch size: records
      // it skipped as already-applied (a retry or WAL-tail overlap) must not
      // inflate the applied counter ElectMostCaughtUp compares.
      replicas_[r].applied += *newly_applied;
    } else {
      // A sick replica must not take down the primary's availability: mark
      // it dead and keep serving. Its death is visible in the stats, and a
      // later promotion will not elect it.
      TVDP_LOG(Warning) << "shard " << shard_ << " replica " << r
                        << " failed to apply shipped records, marking dead: "
                        << applied.ToString();
      replicas_[r].live = false;
      replicas_[r].engine.reset();
    }
  }
  return Status::OK();
}

size_t ReplicaSet::lag_records() const {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  return channel_.size();
}

uint64_t ReplicaSet::shipped_wal_offset() const {
  std::lock_guard<std::mutex> lock(members_mutex_);
  return shipped_wal_offset_;
}

int ReplicaSet::replica_count() const {
  std::lock_guard<std::mutex> lock(members_mutex_);
  return static_cast<int>(replicas_.size());
}

int ReplicaSet::live_replica_count() const {
  std::lock_guard<std::mutex> lock(members_mutex_);
  int live = 0;
  for (const Replica& r : replicas_) {
    if (r.live && r.engine) ++live;
  }
  return live;
}

std::shared_ptr<Tvdp> ReplicaSet::replica(int r) const {
  std::lock_guard<std::mutex> lock(members_mutex_);
  if (r < 0 || r >= static_cast<int>(replicas_.size())) return nullptr;
  return replicas_[static_cast<size_t>(r)].live
             ? replicas_[static_cast<size_t>(r)].engine
             : nullptr;
}

uint64_t ReplicaSet::applied_records(int r) const {
  std::lock_guard<std::mutex> lock(members_mutex_);
  if (r < 0 || r >= static_cast<int>(replicas_.size())) return 0;
  return replicas_[static_cast<size_t>(r)].applied;
}

Status ReplicaSet::KillReplica(int r) {
  std::lock_guard<std::mutex> lock(members_mutex_);
  if (r < 0 || r >= static_cast<int>(replicas_.size())) {
    return Status::InvalidArgument("replica index out of range: " +
                                   std::to_string(r));
  }
  replicas_[static_cast<size_t>(r)].live = false;
  replicas_[static_cast<size_t>(r)].engine.reset();
  return Status::OK();
}

int ReplicaSet::ElectMostCaughtUp() const {
  std::lock_guard<std::mutex> lock(members_mutex_);
  int best = -1;
  uint64_t best_applied = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (!replicas_[r].live || !replicas_[r].engine) continue;
    if (best == -1 || replicas_[r].applied > best_applied) {
      best = static_cast<int>(r);
      best_applied = replicas_[r].applied;
    }
  }
  return best;
}

std::shared_ptr<Tvdp> ReplicaSet::Take(int r) {
  std::lock_guard<std::mutex> lock(members_mutex_);
  if (r < 0 || r >= static_cast<int>(replicas_.size())) return nullptr;
  std::shared_ptr<Tvdp> engine =
      std::move(replicas_[static_cast<size_t>(r)].engine);
  replicas_[static_cast<size_t>(r)].live = false;
  return engine;
}

void ReplicaSet::set_epoch(int64_t epoch) {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  epoch_ = std::max(epoch_, epoch);
}

int64_t ReplicaSet::epoch() const {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  return epoch_;
}

size_t ReplicaSet::rejected_stale_records() const {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  return rejected_stale_;
}

Json ReplicaSet::StatsJson() const {
  Json out = Json::MakeObject();
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    out["replicas"] = Json(static_cast<int64_t>(replicas_.size()));
    int live = 0;
    Json applied = Json::MakeArray();
    for (const Replica& r : replicas_) {
      if (r.live && r.engine) ++live;
      applied.Append(Json(static_cast<int64_t>(r.applied)));
    }
    out["live"] = Json(static_cast<int64_t>(live));
    out["applied"] = std::move(applied);
    out["shipped_wal_offset"] =
        Json(static_cast<int64_t>(shipped_wal_offset_));
  }
  {
    std::lock_guard<std::mutex> lock(channel_mutex_);
    out["lag_records"] = Json(static_cast<int64_t>(channel_.size()));
    out["epoch"] = Json(epoch_);
    out["rejected_stale_records"] =
        Json(static_cast<int64_t>(rejected_stale_));
  }
  return out;
}

}  // namespace tvdp::platform
