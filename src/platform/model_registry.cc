#include "platform/model_registry.h"

#include <algorithm>

namespace tvdp::platform {

Status ModelRegistry::Register(ModelSpec spec,
                               std::unique_ptr<ml::Classifier> model) {
  if (spec.name.empty()) return Status::InvalidArgument("empty model name");
  if (!model) return Status::InvalidArgument("null model");
  if (!model->trained()) {
    return Status::FailedPrecondition("model must be trained before sharing");
  }
  if (spec.labels.size() != static_cast<size_t>(model->num_classes())) {
    return Status::InvalidArgument(
        "label list must match the model's class count");
  }
  if (entries_.count(spec.name)) {
    return Status::AlreadyExists("model already registered: " + spec.name);
  }
  std::string name = spec.name;
  entries_.emplace(name, Entry{std::move(spec), std::move(model)});
  return Status::OK();
}

Result<ModelSpec> ModelRegistry::GetSpec(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no model: " + name);
  return it->second.spec;
}

Result<std::string> ModelRegistry::Predict(
    const std::string& name, const ml::FeatureVector& feature) const {
  TVDP_ASSIGN_OR_RETURN(auto result, PredictWithConfidence(name, feature));
  return result.first;
}

Result<std::pair<std::string, double>> ModelRegistry::PredictWithConfidence(
    const std::string& name, const ml::FeatureVector& feature) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no model: " + name);
  std::vector<double> proba = it->second.model->PredictProba(feature);
  size_t best = 0;
  for (size_t c = 1; c < proba.size(); ++c) {
    if (proba[c] > proba[best]) best = c;
  }
  if (best >= it->second.spec.labels.size()) {
    return Status::Internal("prediction outside label range");
  }
  return std::make_pair(it->second.spec.labels[best], proba[best]);
}

Result<Json> ModelRegistry::Download(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no model: " + name);
  TVDP_ASSIGN_OR_RETURN(Json payload, it->second.model->ToJson());
  Json out = Json::MakeObject();
  out["name"] = it->second.spec.name;
  out["feature_kind"] = it->second.spec.feature_kind;
  out["classification"] = it->second.spec.classification;
  Json labels = Json::MakeArray();
  for (const auto& l : it->second.spec.labels) labels.Append(l);
  out["labels"] = std::move(labels);
  out["model"] = std::move(payload);
  return out;
}

std::vector<std::string> ModelRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, _] : entries_) names.push_back(name);
  return names;
}

}  // namespace tvdp::platform
