#include "platform/admission.h"

#include <algorithm>
#include <chrono>

#include "common/retry.h"
#include "common/strings.h"

namespace tvdp::platform {
namespace {

/// Bounded per-endpoint latency reservoir size.
constexpr size_t kLatencyRingCap = 4096;

/// cv wait slice: cancellation tokens are flipped by foreign threads that
/// never touch our condition variable, so queued waiters poll in slices.
constexpr auto kWaitSlice = std::chrono::milliseconds(5);

double Percentile(std::vector<double> sorted_samples, double pct) {
  if (sorted_samples.empty()) return 0;
  std::sort(sorted_samples.begin(), sorted_samples.end());
  double rank = pct / 100.0 * static_cast<double>(sorted_samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_samples[lo] * (1 - frac) + sorted_samples[hi] * frac;
}

}  // namespace

const char* OverloadStateName(OverloadState s) {
  switch (s) {
    case OverloadState::kNormal:
      return "normal";
    case OverloadState::kDegraded:
      return "degraded";
    case OverloadState::kShedding:
      return "shedding";
  }
  return "unknown";
}

AdmissionTicket::AdmissionTicket(AdmissionTicket&& other) noexcept
    : controller_(other.controller_), degraded_(other.degraded_) {
  other.controller_ = nullptr;
}

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    degraded_ = other.degraded_;
    other.controller_ = nullptr;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() { Release(); }

void AdmissionTicket::Release() {
  if (controller_) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  options_.max_concurrent = std::max(options_.max_concurrent, 1);
}

double AdmissionController::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

OverloadState AdmissionController::StateLocked() const {
  if ((options_.max_queue_interactive > 0 &&
       interactive_.size() >= options_.max_queue_interactive) ||
      (options_.max_queue_batch > 0 &&
       batch_.size() >= options_.max_queue_batch)) {
    return OverloadState::kShedding;
  }
  size_t waiters = interactive_.size() + batch_.size();
  size_t capacity =
      std::max<size_t>(options_.max_queue_interactive + options_.max_queue_batch,
                       1);
  size_t degrade_at = std::max<size_t>(
      1, static_cast<size_t>(options_.degrade_occupancy *
                             static_cast<double>(capacity)));
  if (waiters >= degrade_at) return OverloadState::kDegraded;
  if (options_.degraded_hold_ms > 0 &&
      NowMs() - last_backlog_ms_ <= options_.degraded_hold_ms) {
    return OverloadState::kDegraded;
  }
  return OverloadState::kNormal;
}

void AdmissionController::GrantNextLocked() {
  while (in_flight_ < options_.max_concurrent) {
    // The state is taken BEFORE popping: having had to queue is itself the
    // overload signal, so a waiter granted from a backlog runs degraded
    // even when it was the last one waiting.
    OverloadState state_at_grant = StateLocked();
    // Newest-first (LIFO) service, interactive before batch: under
    // overload the most recent arrival is the one whose caller is most
    // likely still waiting for the answer.
    std::shared_ptr<Waiter> w;
    if (!interactive_.empty()) {
      w = interactive_.back();
      interactive_.pop_back();
    } else if (!batch_.empty()) {
      w = batch_.back();
      batch_.pop_back();
    } else {
      break;
    }
    w->outcome = Waiter::Outcome::kGranted;
    w->granted_degraded = state_at_grant >= OverloadState::kDegraded;
    ++in_flight_;
    ++counters_.admitted;
    if (w->granted_degraded) ++counters_.admitted_degraded;
  }
  cv_.notify_all();
}

void AdmissionController::ReleaseSlot() {
  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  ++counters_.completed;
  GrantNextLocked();
}

void AdmissionController::RemoveWaiterLocked(const std::shared_ptr<Waiter>& w) {
  auto& queue = QueueFor(w->priority);
  auto it = std::find(queue.begin(), queue.end(), w);
  if (it != queue.end()) queue.erase(it);
}

Result<AdmissionTicket> AdmissionController::Admit(const std::string& key,
                                                   Priority priority,
                                                   const RequestContext& ctx) {
  std::unique_lock<std::mutex> lock(mutex_);
  {
    Status s = ctx.Check();
    if (!s.ok()) {
      if (s.code() == StatusCode::kCancelled) {
        ++counters_.cancelled;
      } else {
        ++counters_.expired;
      }
      return s;
    }
  }

  if (options_.rate_per_sec > 0) {
    double now = NowMs();
    double burst =
        options_.burst > 0 ? options_.burst : std::max(options_.rate_per_sec, 1.0);
    Bucket& b = buckets_[key];
    if (!b.initialized) {
      b.tokens = burst;
      b.last_ms = now;
      b.initialized = true;
    }
    b.tokens = std::min(
        burst, b.tokens + (now - b.last_ms) * options_.rate_per_sec / 1000.0);
    b.last_ms = now;
    if (b.tokens < 1.0) {
      ++counters_.rate_limited;
      double wait_ms = (1.0 - b.tokens) / options_.rate_per_sec * 1000.0;
      return WithRetryAfterHint(
          Status::ResourceExhausted("rate limit exceeded for key " + key),
          wait_ms);
    }
    b.tokens -= 1.0;
  }

  if (in_flight_ < options_.max_concurrent) {
    ++in_flight_;
    ++counters_.admitted;
    bool degraded = StateLocked() >= OverloadState::kDegraded;
    if (degraded) ++counters_.admitted_degraded;
    return AdmissionTicket(this, degraded);
  }

  // All slots busy: queue, displacing the oldest waiter when full. The
  // displaced request has been waiting longest and is the most likely to
  // have outlived its caller's patience.
  auto& queue = QueueFor(priority);
  size_t cap = QueueCap(priority);
  if (cap == 0) {
    ++counters_.shed_queue_full;
    return WithRetryAfterHint(
        Status::ResourceExhausted("server overloaded (queue disabled)"),
        options_.max_queue_wait_ms);
  }
  if (queue.size() >= cap) {
    queue.front()->outcome = Waiter::Outcome::kShed;
    queue.pop_front();
    ++counters_.shed_queue_full;
    cv_.notify_all();
  }
  auto waiter = std::make_shared<Waiter>();
  waiter->priority = priority;
  queue.push_back(waiter);
  last_backlog_ms_ = NowMs();

  auto wait_start = std::chrono::steady_clock::now();
  for (;;) {
    if (waiter->outcome == Waiter::Outcome::kGranted) {
      return AdmissionTicket(this, waiter->granted_degraded);
    }
    if (waiter->outcome == Waiter::Outcome::kShed) {
      return WithRetryAfterHint(
          Status::ResourceExhausted(
              "server overloaded (shed from admission queue)"),
          options_.max_queue_wait_ms);
    }
    Status s = ctx.Check();
    if (!s.ok()) {
      RemoveWaiterLocked(waiter);
      if (s.code() == StatusCode::kCancelled) {
        ++counters_.cancelled;
        return Status::Cancelled("request cancelled while queued for admission");
      }
      ++counters_.expired;
      return Status::DeadlineExceeded(
          "request deadline expired while queued for admission");
    }
    double waited_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - wait_start)
                           .count();
    if (waited_ms >= options_.max_queue_wait_ms) {
      RemoveWaiterLocked(waiter);
      ++counters_.shed_stale;
      return WithRetryAfterHint(
          Status::ResourceExhausted(StrFormat(
              "server overloaded (stale after %.0f ms in admission queue)",
              waited_ms)),
          options_.max_queue_wait_ms);
    }
    cv_.wait_for(lock, kWaitSlice);
  }
}

void AdmissionController::RecordLatency(const std::string& endpoint,
                                        double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  LatencyRing& ring = latencies_[endpoint];
  if (ring.samples.size() < kLatencyRingCap) {
    ring.samples.push_back(ms);
  } else {
    ring.samples[ring.next] = ms;
    ring.next = (ring.next + 1) % kLatencyRingCap;
  }
  ++ring.count;
}

ServerStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out = counters_;
  out.queue_depth_interactive = interactive_.size();
  out.queue_depth_batch = batch_.size();
  out.in_flight = in_flight_;
  out.state = StateLocked();
  return out;
}

OverloadState AdmissionController::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return StateLocked();
}

Json AdmissionController::StatsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json out = Json::MakeObject();
  out["admitted"] = counters_.admitted;
  out["admitted_degraded"] = counters_.admitted_degraded;
  out["shed_queue_full"] = counters_.shed_queue_full;
  out["shed_stale"] = counters_.shed_stale;
  out["rate_limited"] = counters_.rate_limited;
  out["expired"] = counters_.expired;
  out["cancelled"] = counters_.cancelled;
  out["completed"] = counters_.completed;
  out["queue_depth_interactive"] = interactive_.size();
  out["queue_depth_batch"] = batch_.size();
  out["in_flight"] = in_flight_;
  out["state"] = OverloadStateName(StateLocked());
  Json endpoints = Json::MakeObject();
  for (const auto& [name, ring] : latencies_) {
    Json e = Json::MakeObject();
    e["count"] = ring.count;
    e["p50_ms"] = Percentile(ring.samples, 50);
    e["p99_ms"] = Percentile(ring.samples, 99);
    endpoints[name] = std::move(e);
  }
  out["endpoints"] = std::move(endpoints);
  return out;
}

}  // namespace tvdp::platform
