#ifndef TVDP_PLATFORM_EXPORT_H_
#define TVDP_PLATFORM_EXPORT_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "platform/tvdp.h"

namespace tvdp::platform {

/// Dataset export in "predefined forms" (paper Sec. V, API #3: searched
/// data can be downloaded "in their raw form or only metadata in
/// predefined forms"). Non-technical participants (city departments,
/// non-profits) consume these directly in spreadsheets and GIS tools.

/// Exports the metadata rows of `image_ids` as RFC-4180 CSV with a header
/// line: id,uri,lat,lon,captured_at,uploaded_at,source. Records end with
/// CRLF per RFC 4180. Fields containing commas/quotes/newlines are quoted
/// and escaped, and fields that a spreadsheet would evaluate as a formula
/// (leading `=`, `+`, `-` or `@`) are neutralized — see CsvEscape. Fails
/// with NotFound if any id is missing. Takes the platform's reader lock,
/// so it is safe to call concurrently with ingest.
Result<std::string> ExportMetadataCsv(const Tvdp& tvdp,
                                      const std::vector<int64_t>& image_ids);

/// Exports the camera locations of `image_ids` as a GeoJSON
/// FeatureCollection of Point features, each carrying id/uri/captured_at
/// properties — ready for any web map. Fails with NotFound on missing ids.
/// Takes the platform's reader lock.
Result<Json> ExportGeoJson(const Tvdp& tvdp,
                           const std::vector<int64_t>& image_ids);

/// Escapes one CSV field per RFC 4180 (quotes the field when it contains
/// a comma, quote, CR or LF; doubles embedded quotes). Additionally
/// defuses CSV injection: a field starting with `=`, `+`, `-` or `@`
/// would be interpreted as a formula by common spreadsheet software when
/// the export is opened, so it is quoted and prefixed with a single quote
/// (the OWASP-recommended neutralization). Exported URIs and sources come
/// from untrusted crowdsourced uploads, so this is load-bearing.
std::string CsvEscape(const std::string& field);

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_EXPORT_H_
