#include "platform/tvdp.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "common/strings.h"
#include "query/executor.h"
#include "storage/serializer.h"

namespace tvdp::platform {

using storage::Row;
using storage::Value;
namespace tables = storage::tables;

namespace {

/// Publishes a new MVCC snapshot when the guarded mutation scope ends —
/// success and error paths alike, so the published version never diverges
/// from the live catalog (partial writes were already observable under the
/// old locking scheme; now they become observable at publish). Declare it
/// AFTER the writer lock: destructors run in reverse order, so the publish
/// happens while the lock is still held.
class CommitScope {
 public:
  explicit CommitScope(query::QueryEngine* engine,
                       const query::ClassMap* class_map = nullptr)
      : engine_(engine), class_map_(class_map) {}
  CommitScope(const CommitScope&) = delete;
  CommitScope& operator=(const CommitScope&) = delete;
  ~CommitScope() {
    if (class_map_) engine_->SetClassMapLocked(*class_map_);
    engine_->PublishLocked();
  }

 private:
  query::QueryEngine* engine_;
  const query::ClassMap* class_map_;
};

}  // namespace

Tvdp::Tvdp(Tvdp&& other) noexcept
    : catalog_(std::move(other.catalog_)),
      durable_(std::move(other.durable_)),
      engine_(std::move(other.engine_)),
      classifications_(std::move(other.classifications_)),
      mutation_observer_(std::move(other.mutation_observer_)),
      epoch_(other.epoch_.load(std::memory_order_relaxed)),
      fenced_(other.fenced_.load(std::memory_order_relaxed)) {}

Tvdp& Tvdp::operator=(Tvdp&& other) noexcept {
  if (this != &other) {
    catalog_ = std::move(other.catalog_);
    durable_ = std::move(other.durable_);
    engine_ = std::move(other.engine_);
    classifications_ = std::move(other.classifications_);
    mutation_observer_ = std::move(other.mutation_observer_);
    epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    fenced_.store(other.fenced_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }
  return *this;
}

Result<Tvdp> Tvdp::Create() {
  Tvdp t;
  TVDP_ASSIGN_OR_RETURN(storage::Catalog catalog, storage::MakeTvdpCatalog());
  t.catalog_ = std::make_unique<storage::Catalog>(std::move(catalog));
  t.engine_ = std::make_unique<query::QueryEngine>(t.catalog_.get());
  t.engine_->EnableManagedSnapshots();
  return t;
}

Result<Tvdp> Tvdp::Open(const std::string& base_path,
                        storage::DurableCatalogOptions options) {
  Tvdp t;
  TVDP_ASSIGN_OR_RETURN(storage::DurableCatalog durable,
                        storage::DurableCatalog::Open(base_path, options));
  t.durable_ = std::make_unique<storage::DurableCatalog>(std::move(durable));
  if (!t.durable_->recovered_from_disk()) {
    TVDP_ASSIGN_OR_RETURN(storage::Catalog fresh, storage::MakeTvdpCatalog());
    TVDP_RETURN_IF_ERROR(t.durable_->Bootstrap(std::move(fresh)));
  }
  t.engine_ = std::make_unique<query::QueryEngine>(&t.durable_->catalog());
  t.engine_->EnableManagedSnapshots();
  TVDP_RETURN_IF_ERROR(t.RebuildFromCatalog());
  return t;
}

Status Tvdp::RebuildFromCatalog() {
  // Classification registry: name -> (id, label -> type id).
  TVDP_RETURN_IF_ERROR(RebuildClassificationsUnlocked());

  // Query indexes: every image, then every stored feature vector. The
  // rebuilt indexes, columnar columns and registry publish as one version.
  std::unique_lock lock(engine_->mutex());
  CommitScope commit(engine_.get(), &classifications_);
  return ReindexAllLocked();
}

Status Tvdp::RebuildClassificationsUnlocked() {
  storage::Catalog& cat = catalog();
  const storage::Table* cls = cat.GetTable(tables::kImageContentClassification);
  const storage::Table* types =
      cat.GetTable(tables::kImageContentClassificationTypes);
  if (!cls || !types) {
    return Status::Internal("recovered catalog is missing the TVDP schema");
  }
  classifications_.clear();
  std::map<int64_t, std::string> cls_name_of;
  cls->ForEach([&](const Row& r) {
    int64_t id = r[0].AsInt64();
    classifications_[r[1].AsString()] = {id, {}};
    cls_name_of[id] = r[1].AsString();
    return true;
  });
  types->ForEach([&](const Row& r) {
    auto name_it = cls_name_of.find(r[1].AsInt64());
    if (name_it != cls_name_of.end()) {
      classifications_[name_it->second].second[r[2].AsString()] = r[0].AsInt64();
    }
    return true;
  });
  return Status::OK();
}

Status Tvdp::ReindexAllLocked() {
  storage::Catalog& cat = catalog();
  Status index_status = Status::OK();
  const storage::Table* images = cat.GetTable(tables::kImages);
  images->ForEach([&](const Row& r) {
    index_status = engine_->IndexImageLocked(r[0].AsInt64());
    return index_status.ok();
  });
  TVDP_RETURN_IF_ERROR(index_status);
  const storage::Table* feats = cat.GetTable(tables::kImageVisualFeatures);
  const storage::Schema& fs = feats->schema();
  size_t img_idx = static_cast<size_t>(fs.ColumnIndex("image_id"));
  size_t kind_idx = static_cast<size_t>(fs.ColumnIndex("feature_kind"));
  size_t feat_idx = static_cast<size_t>(fs.ColumnIndex("feature"));
  feats->ForEach([&](const Row& r) {
    index_status = engine_->IndexFeatureLocked(r[img_idx].AsInt64(),
                                               r[kind_idx].AsString(),
                                               r[feat_idx].AsFloatVector());
    return index_status.ok();
  });
  TVDP_RETURN_IF_ERROR(index_status);
  // Columnar annotation hot columns (IndexImageLocked mirrors the images
  // table; annotations have no index, only the column mirror).
  const storage::Table* ann = cat.GetTable(tables::kImageContentAnnotation);
  if (ann) {
    const storage::Schema& as = ann->schema();
    size_t a_img = static_cast<size_t>(as.ColumnIndex("image_id"));
    size_t a_type = static_cast<size_t>(as.ColumnIndex("type_id"));
    size_t a_conf = static_cast<size_t>(as.ColumnIndex("confidence"));
    size_t a_src = static_cast<size_t>(as.ColumnIndex("annotation_source"));
    ann->ForEach([&](const Row& r) {
      engine_->NoteAnnotationLocked(r[a_img].AsInt64(), r[a_type].AsInt64(),
                                    r[a_conf].AsDouble(), r[a_src].AsString());
      return true;
    });
  }
  return Status::OK();
}

Result<int64_t> Tvdp::InsertRow(const std::string& table, storage::Row row) {
  if (fenced_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "engine is fenced (stale primary, epoch " +
        std::to_string(epoch_.load(std::memory_order_relaxed)) +
        "): write rejected");
  }
  storage::Row observed;
  if (mutation_observer_) observed = row;  // copy only when someone listens
  TVDP_ASSIGN_OR_RETURN(int64_t id,
                        durable_ ? durable_->Insert(table, std::move(row))
                                 : catalog_->Insert(table, std::move(row)));
  engine_->MarkTableDirtyLocked(table);
  if (mutation_observer_) {
    storage::WalRecord record{table, id, std::move(observed)};
    record.epoch = epoch_.load(std::memory_order_relaxed);
    mutation_observer_(record);
  }
  return id;
}

Status Tvdp::DeleteRow(const std::string& table, storage::RowId id) {
  if (fenced_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "engine is fenced (stale primary, epoch " +
        std::to_string(epoch_.load(std::memory_order_relaxed)) +
        "): write rejected");
  }
  if (durable_) {
    TVDP_RETURN_IF_ERROR(durable_->Delete(table, id));
  } else {
    storage::Table* t = catalog_->GetTable(table);
    if (!t) return Status::NotFound("no such table: " + table);
    TVDP_RETURN_IF_ERROR(t->Delete(id));
  }
  engine_->MarkTableDirtyLocked(table);
  if (mutation_observer_) {
    storage::WalRecord record = storage::WalRecord::Delete(table, id);
    record.epoch = epoch_.load(std::memory_order_relaxed);
    mutation_observer_(record);
  }
  return Status::OK();
}

Result<int64_t> Tvdp::IngestImage(const ImageRecord& record) {
  if (!geo::IsValid(record.location)) {
    return Status::InvalidArgument("invalid image location");
  }
  // Writer: the catalog rows and the index entries of one image publish as
  // one snapshot version — a concurrent query never sees a half-ingested
  // image. The durable catalog's own lock nests inside (engine -> durable;
  // never the reverse).
  std::unique_lock lock(engine_->mutex());
  CommitScope commit(engine_.get());
  Row image_row{
      Value(record.uri),
      Value(record.location.lat),
      Value(record.location.lon),
      Value(record.captured_at),
      Value(record.uploaded_at != 0 ? record.uploaded_at
                                    : record.captured_at),
      Value(record.source),
      Value(record.is_augmented),
      record.original_image_id ? Value(*record.original_image_id) : Value(),
  };
  TVDP_ASSIGN_OR_RETURN(int64_t image_id,
                        InsertRow(tables::kImages, std::move(image_row)));

  if (record.fov) {
    TVDP_RETURN_IF_ERROR(
        InsertRow(tables::kImageFov,
                  Row{Value(image_id), Value(record.fov->direction_deg),
                      Value(record.fov->angle_deg),
                      Value(record.fov->radius_m)})
            .status());
    geo::BoundingBox scene = record.fov->SceneLocation();
    TVDP_RETURN_IF_ERROR(
        InsertRow(tables::kImageSceneLocation,
                  Row{Value(image_id), Value(scene.min_lat),
                      Value(scene.min_lon), Value(scene.max_lat),
                      Value(scene.max_lon)})
            .status());
  }
  for (const std::string& kw : record.keywords) {
    TVDP_RETURN_IF_ERROR(
        InsertRow(tables::kImageManualKeywords,
                  Row{Value(image_id), Value(kw)})
            .status());
  }
  TVDP_RETURN_IF_ERROR(engine_->IndexImageLocked(image_id));
  return image_id;
}

Result<std::vector<int64_t>> Tvdp::IngestImages(
    const std::vector<ImageRecord>& records) {
  std::vector<int64_t> ids;
  ids.reserve(records.size());
  for (const auto& r : records) {
    TVDP_ASSIGN_OR_RETURN(int64_t id, IngestImage(r));
    ids.push_back(id);
  }
  return ids;
}

Result<int64_t> Tvdp::RegisterClassification(
    const std::string& name, const std::vector<std::string>& labels,
    const std::string& description) {
  if (name.empty()) return Status::InvalidArgument("empty task name");
  if (labels.empty()) return Status::InvalidArgument("no labels given");

  std::unique_lock lock(engine_->mutex());
  CommitScope commit(engine_.get(), &classifications_);
  auto it = classifications_.find(name);
  if (it == classifications_.end()) {
    TVDP_ASSIGN_OR_RETURN(
        int64_t cls_id,
        InsertRow(tables::kImageContentClassification,
                  Row{Value(name), description.empty()
                                       ? Value()
                                       : Value(description)}));
    it = classifications_
             .emplace(name, std::make_pair(cls_id,
                                           std::map<std::string, int64_t>()))
             .first;
  }
  for (const std::string& label : labels) {
    if (it->second.second.count(label)) continue;
    TVDP_ASSIGN_OR_RETURN(
        int64_t type_id,
        InsertRow(tables::kImageContentClassificationTypes,
                  Row{Value(it->second.first), Value(label)}));
    it->second.second[label] = type_id;
  }
  return it->second.first;
}

Result<int64_t> Tvdp::ClassificationId(const std::string& name) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  auto it = snap->classifications->find(name);
  if (it == snap->classifications->end()) {
    return Status::NotFound("unregistered classification: " + name);
  }
  return it->second.first;
}

Result<int64_t> Tvdp::PeekClassificationId(const std::string& name) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  auto it = snap->classifications->find(name);
  if (it != snap->classifications->end()) return it->second.first;
  const storage::Table* cls =
      snap->FindTable(tables::kImageContentClassification);
  if (!cls) return Status::Internal("catalog is missing the TVDP schema");
  return cls->next_id();
}

bool Tvdp::ClassificationApplied(
    const std::string& name, const std::vector<std::string>& labels) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  auto it = snap->classifications->find(name);
  if (it == snap->classifications->end()) return false;
  for (const std::string& label : labels) {
    if (!it->second.second.count(label)) return false;
  }
  return true;
}

Json Tvdp::ClassificationTableJson() const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  Json out = Json::MakeObject();
  for (const auto& [name, entry] : *snap->classifications) {
    Json cls = Json::MakeObject();
    cls["id"] = Json(entry.first);
    Json labels = Json::MakeObject();
    for (const auto& [label, type_id] : entry.second) {
      labels[label] = Json(type_id);
    }
    cls["labels"] = std::move(labels);
    out[name] = std::move(cls);
  }
  return out;
}

double Tvdp::MaxFovRadiusM() const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  const storage::Table* fov = snap->FindTable(tables::kImageFov);
  if (!fov) return 0;
  const storage::Schema& s = fov->schema();
  size_t radius_idx = static_cast<size_t>(s.ColumnIndex("radius_m"));
  double max_radius = 0;
  fov->ForEach([&](const Row& r) {
    max_radius = std::max(max_radius, r[radius_idx].AsDouble());
    return true;
  });
  return max_radius;
}

Result<int64_t> Tvdp::AnnotateImage(int64_t image_id,
                                    const AnnotationRecord& annotation) {
  std::unique_lock lock(engine_->mutex());
  CommitScope commit(engine_.get());
  auto cls_it = classifications_.find(annotation.classification);
  if (cls_it == classifications_.end()) {
    return Status::NotFound("unregistered classification: " +
                            annotation.classification);
  }
  auto label_it = cls_it->second.second.find(annotation.label);
  if (label_it == cls_it->second.second.end()) {
    return Status::NotFound(StrFormat("label %s not in classification %s",
                                      annotation.label.c_str(),
                                      annotation.classification.c_str()));
  }
  if (annotation.confidence < 0 || annotation.confidence > 1) {
    return Status::InvalidArgument("confidence must be in [0, 1]");
  }
  Row row{Value(image_id),
          Value(label_it->second),
          Value(annotation.confidence),
          Value(annotation.machine ? "machine" : "manual"),
          annotation.region ? Value(int64_t{(*annotation.region)[0]}) : Value(),
          annotation.region ? Value(int64_t{(*annotation.region)[1]}) : Value(),
          annotation.region ? Value(int64_t{(*annotation.region)[2]}) : Value(),
          annotation.region ? Value(int64_t{(*annotation.region)[3]}) : Value()};
  TVDP_ASSIGN_OR_RETURN(
      int64_t ann_id,
      InsertRow(tables::kImageContentAnnotation, std::move(row)));
  engine_->NoteAnnotationLocked(image_id, label_it->second,
                                annotation.confidence,
                                annotation.machine ? "machine" : "manual");
  return ann_id;
}

Status Tvdp::StoreFeature(int64_t image_id, const std::string& kind,
                          const ml::FeatureVector& feature) {
  if (feature.empty()) return Status::InvalidArgument("empty feature");
  std::unique_lock lock(engine_->mutex());
  CommitScope commit(engine_.get());
  TVDP_RETURN_IF_ERROR(
      InsertRow(tables::kImageVisualFeatures,
                Row{Value(image_id), Value(kind),
                    Value(std::vector<double>(feature))})
          .status());
  return engine_->IndexFeatureLocked(image_id, kind, feature);
}

Result<std::vector<query::QueryHit>> Tvdp::ExecuteQuery(
    const query::HybridQuery& q, const RequestContext* ctx,
    const query::QueryBudget& budget, query::QueryPlan* plan_out) const {
  return engine_->Execute(q, ctx, budget, plan_out);
}

Result<query::QueryPlan> Tvdp::ExplainQuery(
    const query::HybridQuery& q, const query::QueryBudget& budget) const {
  return engine_->Explain(q, budget);
}

Json Tvdp::MvccStats() const { return engine_->MvccStatsJson(); }

size_t Tvdp::image_count() const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  const storage::Table* t = snap->FindTable(tables::kImages);
  return t ? t->size() : 0;
}

Result<Json> Tvdp::ImageRowJson(int64_t image_id) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  const storage::Table* images = snap->FindTable(tables::kImages);
  const storage::Schema& s = images->schema();
  TVDP_ASSIGN_OR_RETURN(Row row, images->Get(image_id));
  Json r = Json::MakeObject();
  r["id"] = row[0].AsInt64();
  r["uri"] = row[static_cast<size_t>(s.ColumnIndex("uri"))].AsString();
  r["lat"] = row[static_cast<size_t>(s.ColumnIndex("lat"))].AsDouble();
  r["lon"] = row[static_cast<size_t>(s.ColumnIndex("lon"))].AsDouble();
  r["captured_at"] =
      row[static_cast<size_t>(s.ColumnIndex("timestamp_capturing"))].AsInt64();
  r["source"] = row[static_cast<size_t>(s.ColumnIndex("source"))].AsString();
  return r;
}

Result<std::string> Tvdp::GetLabel(int64_t image_id,
                                   const std::string& classification) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  auto cls_it = snap->classifications->find(classification);
  if (cls_it == snap->classifications->end()) {
    return Status::NotFound("unregistered classification: " + classification);
  }
  const storage::Table* ann =
      snap->FindTable(tables::kImageContentAnnotation);
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        ann->FindBy("image_id", Value(image_id)));
  const storage::Schema& s = ann->schema();
  size_t type_idx = static_cast<size_t>(s.ColumnIndex("type_id"));
  size_t conf_idx = static_cast<size_t>(s.ColumnIndex("confidence"));

  // type id -> label for this classification.
  std::map<int64_t, std::string> label_of;
  for (const auto& [label, type_id] : cls_it->second.second) {
    label_of[type_id] = label;
  }
  std::string best;
  double best_conf = -1;
  for (const Row& r : rows) {
    auto it = label_of.find(r[type_idx].AsInt64());
    if (it == label_of.end()) continue;
    if (r[conf_idx].AsDouble() > best_conf) {
      best_conf = r[conf_idx].AsDouble();
      best = it->second;
    }
  }
  if (best_conf < 0) {
    return Status::NotFound(StrFormat("image %lld has no %s annotation",
                                      static_cast<long long>(image_id),
                                      classification.c_str()));
  }
  return best;
}

Result<ml::FeatureVector> Tvdp::GetFeature(int64_t image_id,
                                           const std::string& kind) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  const storage::Table* feats =
      snap->FindTable(tables::kImageVisualFeatures);
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        feats->FindBy("image_id", Value(image_id)));
  const storage::Schema& s = feats->schema();
  size_t kind_idx = static_cast<size_t>(s.ColumnIndex("feature_kind"));
  size_t feat_idx = static_cast<size_t>(s.ColumnIndex("feature"));
  for (const Row& r : rows) {
    if (r[kind_idx].AsString() == kind) return r[feat_idx].AsFloatVector();
  }
  return Status::NotFound(StrFormat("image %lld has no %s feature",
                                    static_cast<long long>(image_id),
                                    kind.c_str()));
}

Result<std::vector<geo::GeoPoint>> Tvdp::LocationsWithLabel(
    const std::string& classification, const std::string& label,
    double min_confidence) const {
  query::CategoricalPredicate pred;
  pred.classification = classification;
  pred.label = label;
  pred.min_confidence = min_confidence;
  // One pinned snapshot covers both the categorical evaluation and the
  // location lookups, so the hit set and the rows cannot tear apart.
  query::SnapshotRef snap = engine_->PinSnapshot();
  TVDP_ASSIGN_OR_RETURN(
      std::vector<query::QueryHit> hits,
      query::EvalCategorical(engine_->SnapshotPaths(*snap), pred));
  const storage::Table* images = snap->FindTable(tables::kImages);
  const storage::Schema& s = images->schema();
  size_t lat_idx = static_cast<size_t>(s.ColumnIndex("lat"));
  size_t lon_idx = static_cast<size_t>(s.ColumnIndex("lon"));
  std::vector<geo::GeoPoint> out;
  out.reserve(hits.size());
  for (const auto& h : hits) {
    TVDP_ASSIGN_OR_RETURN(Row img, images->Get(h.image_id));
    out.push_back(
        geo::GeoPoint{img[lat_idx].AsDouble(), img[lon_idx].AsDouble()});
  }
  return out;
}

Result<ImageRecord> Tvdp::ExportImage(int64_t image_id) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  const storage::Table* images = snap->FindTable(tables::kImages);
  const storage::Schema& s = images->schema();
  TVDP_ASSIGN_OR_RETURN(Row row, images->Get(image_id));
  ImageRecord rec;
  rec.uri = row[static_cast<size_t>(s.ColumnIndex("uri"))].AsString();
  rec.location = geo::GeoPoint{
      row[static_cast<size_t>(s.ColumnIndex("lat"))].AsDouble(),
      row[static_cast<size_t>(s.ColumnIndex("lon"))].AsDouble()};
  rec.captured_at =
      row[static_cast<size_t>(s.ColumnIndex("timestamp_capturing"))].AsInt64();
  rec.uploaded_at =
      row[static_cast<size_t>(s.ColumnIndex("timestamp_uploading"))].AsInt64();
  rec.source = row[static_cast<size_t>(s.ColumnIndex("source"))].AsString();
  rec.is_augmented =
      row[static_cast<size_t>(s.ColumnIndex("is_augmented"))].AsBool();
  const Value& original =
      row[static_cast<size_t>(s.ColumnIndex("original_image_id"))];
  if (!original.is_null()) rec.original_image_id = original.AsInt64();

  const storage::Table* fov = snap->FindTable(tables::kImageFov);
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> fov_rows,
                        fov->FindBy("image_id", Value(image_id)));
  if (!fov_rows.empty()) {
    const storage::Schema& fsch = fov->schema();
    geo::FieldOfView f;
    f.camera = rec.location;
    f.direction_deg =
        fov_rows[0][static_cast<size_t>(fsch.ColumnIndex("direction_deg"))]
            .AsDouble();
    f.angle_deg =
        fov_rows[0][static_cast<size_t>(fsch.ColumnIndex("angle_deg"))]
            .AsDouble();
    f.radius_m =
        fov_rows[0][static_cast<size_t>(fsch.ColumnIndex("radius_m"))]
            .AsDouble();
    rec.fov = f;
  }

  const storage::Table* kw = snap->FindTable(tables::kImageManualKeywords);
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> kw_rows,
                        kw->FindBy("image_id", Value(image_id)));
  const storage::Schema& ksch = kw->schema();
  size_t kw_idx = static_cast<size_t>(ksch.ColumnIndex("keyword"));
  for (const Row& r : kw_rows) rec.keywords.push_back(r[kw_idx].AsString());
  return rec;
}

Result<geo::GeoPoint> Tvdp::ImageLocation(int64_t image_id) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  const storage::Table* images = snap->FindTable(tables::kImages);
  const storage::Schema& s = images->schema();
  TVDP_ASSIGN_OR_RETURN(Row row, images->Get(image_id));
  return geo::GeoPoint{
      row[static_cast<size_t>(s.ColumnIndex("lat"))].AsDouble(),
      row[static_cast<size_t>(s.ColumnIndex("lon"))].AsDouble()};
}

std::vector<int64_t> Tvdp::ImageIdsMatching(
    const std::function<bool(const geo::GeoPoint&)>& pred) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  const storage::Table* images = snap->FindTable(tables::kImages);
  const storage::Schema& s = images->schema();
  size_t lat_idx = static_cast<size_t>(s.ColumnIndex("lat"));
  size_t lon_idx = static_cast<size_t>(s.ColumnIndex("lon"));
  std::vector<int64_t> out;
  images->ForEach([&](const Row& r) {
    geo::GeoPoint p{r[lat_idx].AsDouble(), r[lon_idx].AsDouble()};
    if (pred(p)) out.push_back(r[0].AsInt64());
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<AnnotationRecord>> Tvdp::ListAnnotations(
    int64_t image_id) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  // type id -> (classification name, label) across the whole registry.
  std::map<int64_t, std::pair<std::string, std::string>> name_of;
  for (const auto& [name, entry] : *snap->classifications) {
    for (const auto& [label, type_id] : entry.second) {
      name_of[type_id] = {name, label};
    }
  }
  const storage::Table* ann =
      snap->FindTable(tables::kImageContentAnnotation);
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        ann->FindBy("image_id", Value(image_id)));
  const storage::Schema& s = ann->schema();
  size_t type_idx = static_cast<size_t>(s.ColumnIndex("type_id"));
  size_t conf_idx = static_cast<size_t>(s.ColumnIndex("confidence"));
  size_t src_idx = static_cast<size_t>(s.ColumnIndex("annotation_source"));
  size_t rx = static_cast<size_t>(s.ColumnIndex("region_x"));
  size_t ry = static_cast<size_t>(s.ColumnIndex("region_y"));
  size_t rw = static_cast<size_t>(s.ColumnIndex("region_w"));
  size_t rh = static_cast<size_t>(s.ColumnIndex("region_h"));
  std::vector<AnnotationRecord> out;
  for (const Row& r : rows) {
    auto it = name_of.find(r[type_idx].AsInt64());
    if (it == name_of.end()) continue;
    AnnotationRecord rec;
    rec.classification = it->second.first;
    rec.label = it->second.second;
    rec.confidence = r[conf_idx].AsDouble();
    rec.machine = r[src_idx].AsString() == "machine";
    if (!r[rx].is_null()) {
      rec.region = std::array<int, 4>{static_cast<int>(r[rx].AsInt64()),
                                      static_cast<int>(r[ry].AsInt64()),
                                      static_cast<int>(r[rw].AsInt64()),
                                      static_cast<int>(r[rh].AsInt64())};
    }
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::vector<std::pair<std::string, ml::FeatureVector>>>
Tvdp::ListFeatures(int64_t image_id) const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  const storage::Table* feats =
      snap->FindTable(tables::kImageVisualFeatures);
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        feats->FindBy("image_id", Value(image_id)));
  const storage::Schema& s = feats->schema();
  size_t kind_idx = static_cast<size_t>(s.ColumnIndex("feature_kind"));
  size_t feat_idx = static_cast<size_t>(s.ColumnIndex("feature"));
  std::vector<std::pair<std::string, ml::FeatureVector>> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    out.emplace_back(r[kind_idx].AsString(), r[feat_idx].AsFloatVector());
  }
  return out;
}

Status Tvdp::RemoveImages(const std::vector<int64_t>& ids) {
  if (ids.empty()) return Status::OK();
  // Writer: rows disappear and the rebuilt indexes appear as one published
  // version — a concurrent query sees either all of the images or none.
  std::unique_lock lock(engine_->mutex());
  CommitScope commit(engine_.get());
  std::unordered_set<int64_t> doomed_images(ids.begin(), ids.end());
  const char* dependents[] = {
      tables::kImageFov,          tables::kImageSceneLocation,
      tables::kImageManualKeywords, tables::kImageVisualFeatures,
      tables::kImageContentAnnotation};
  for (const char* tname : dependents) {
    storage::Table* t = catalog().GetTable(tname);
    if (!t) return Status::Internal("catalog is missing the TVDP schema");
    const storage::Schema& s = t->schema();
    size_t img_idx = static_cast<size_t>(s.ColumnIndex("image_id"));
    std::vector<storage::RowId> doomed_rows;
    t->ForEach([&](const Row& r) {
      if (doomed_images.count(r[img_idx].AsInt64())) {
        doomed_rows.push_back(r[0].AsInt64());
      }
      return true;
    });
    for (storage::RowId rid : doomed_rows) {
      TVDP_RETURN_IF_ERROR(DeleteRow(tname, rid));
    }
  }
  storage::Table* images = catalog().GetTable(tables::kImages);
  for (int64_t id : ids) {
    if (!images->Exists(id)) continue;
    TVDP_RETURN_IF_ERROR(DeleteRow(tables::kImages, id));
  }
  // The indexes have no per-record delete: reset and re-index survivors.
  engine_->ResetIndexesLocked();
  return ReindexAllLocked();
}

void Tvdp::SetMutationObserver(
    std::function<void(const storage::WalRecord&)> observer) {
  std::unique_lock lock(engine_->mutex());
  mutation_observer_ = std::move(observer);
}

Result<size_t> Tvdp::ApplyReplicated(
    const std::vector<storage::WalRecord>& records) {
  // Writer: the whole batch publishes as one snapshot version, mirroring
  // how the primary's writer lock made each source mutation visible.
  std::unique_lock lock(engine_->mutex());
  CommitScope commit(engine_.get(), &classifications_);
  size_t applied = 0;
  std::vector<int64_t> new_images;
  std::vector<const storage::WalRecord*> new_features;
  std::vector<const storage::WalRecord*> new_annotations;
  bool registry_dirty = false;
  bool saw_delete = false;
  for (const storage::WalRecord& rec : records) {
    if (rec.type == storage::WalRecordType::kDelete) {
      storage::Table* t = catalog().GetTable(rec.table);
      if (!t) {
        return Status::IOError("replicated delete references unknown table " +
                               rec.table);
      }
      if (!t->Exists(rec.row_id)) continue;  // already applied
      if (durable_) {
        TVDP_RETURN_IF_ERROR(durable_->Delete(rec.table, rec.row_id));
      } else {
        TVDP_RETURN_IF_ERROR(t->Delete(rec.row_id));
      }
      engine_->MarkTableDirtyLocked(rec.table);
      saw_delete = true;
      ++applied;
      continue;
    }
    if (rec.type != storage::WalRecordType::kInsert) continue;
    if (durable_) {
      Status s = durable_->RestoreInsert(rec.table, rec.row_id, rec.values);
      if (s.code() == StatusCode::kAlreadyExists) continue;
      TVDP_RETURN_IF_ERROR(s);
    } else {
      storage::Table* t = catalog().GetTable(rec.table);
      if (!t) {
        return Status::IOError("replicated insert references unknown table " +
                               rec.table);
      }
      if (t->Exists(rec.row_id)) continue;  // already applied
      Row full;
      full.reserve(rec.values.size() + 1);
      full.push_back(Value(rec.row_id));
      for (const Value& v : rec.values) full.push_back(v);
      TVDP_RETURN_IF_ERROR(t->RestoreRow(std::move(full)));
    }
    engine_->MarkTableDirtyLocked(rec.table);
    ++applied;
    if (rec.table == tables::kImages) {
      new_images.push_back(rec.row_id);
    } else if (rec.table == tables::kImageVisualFeatures) {
      new_features.push_back(&rec);
    } else if (rec.table == tables::kImageContentAnnotation) {
      new_annotations.push_back(&rec);
    } else if (rec.table == tables::kImageContentClassification ||
               rec.table == tables::kImageContentClassificationTypes) {
      registry_dirty = true;
    }
  }
  if (saw_delete) {
    // Deletes have no per-record index removal: rebuild from survivors
    // (this also repopulates the columnar annotation mirror).
    engine_->ResetIndexesLocked();
    TVDP_RETURN_IF_ERROR(ReindexAllLocked());
  } else {
    for (int64_t id : new_images) {
      TVDP_RETURN_IF_ERROR(engine_->IndexImageLocked(id));
    }
    if (!new_features.empty()) {
      const storage::Table* feats =
          catalog().GetTable(tables::kImageVisualFeatures);
      const storage::Schema& s = feats->schema();
      // rec.values holds the non-id columns: schema index minus the id slot.
      size_t img_idx = static_cast<size_t>(s.ColumnIndex("image_id")) - 1;
      size_t kind_idx = static_cast<size_t>(s.ColumnIndex("feature_kind")) - 1;
      size_t feat_idx = static_cast<size_t>(s.ColumnIndex("feature")) - 1;
      for (const storage::WalRecord* rec : new_features) {
        TVDP_RETURN_IF_ERROR(engine_->IndexFeatureLocked(
            rec->values[img_idx].AsInt64(), rec->values[kind_idx].AsString(),
            rec->values[feat_idx].AsFloatVector()));
      }
    }
    if (!new_annotations.empty()) {
      const storage::Table* ann =
          catalog().GetTable(tables::kImageContentAnnotation);
      const storage::Schema& s = ann->schema();
      size_t img_idx = static_cast<size_t>(s.ColumnIndex("image_id")) - 1;
      size_t type_idx = static_cast<size_t>(s.ColumnIndex("type_id")) - 1;
      size_t conf_idx = static_cast<size_t>(s.ColumnIndex("confidence")) - 1;
      size_t src_idx =
          static_cast<size_t>(s.ColumnIndex("annotation_source")) - 1;
      for (const storage::WalRecord* rec : new_annotations) {
        engine_->NoteAnnotationLocked(rec->values[img_idx].AsInt64(),
                                      rec->values[type_idx].AsInt64(),
                                      rec->values[conf_idx].AsDouble(),
                                      rec->values[src_idx].AsString());
      }
    }
  }
  if (registry_dirty) {
    TVDP_RETURN_IF_ERROR(RebuildClassificationsUnlocked());
  }
  return applied;
}

std::vector<storage::WalRecord> Tvdp::SnapshotRecords() const {
  query::SnapshotRef snap = engine_->PinSnapshot();
  int64_t epoch = epoch_.load(std::memory_order_acquire);
  // Registry tables first so a replica applying the stream rebuilds its
  // classification map from complete rows.
  static constexpr const char* kOrder[] = {
      tables::kImageContentClassification,
      tables::kImageContentClassificationTypes,
      tables::kImages,
      tables::kImageFov,
      tables::kImageSceneLocation,
      tables::kImageManualKeywords,
      tables::kImageVisualFeatures,
      tables::kImageContentAnnotation};
  std::vector<storage::WalRecord> out;
  for (const char* tname : kOrder) {
    const storage::Table* t = snap->FindTable(tname);
    if (!t) continue;
    t->ForEach([&](const Row& r) {
      storage::WalRecord rec;
      rec.type = storage::WalRecordType::kInsert;
      rec.table = tname;
      rec.row_id = r[0].AsInt64();
      rec.epoch = epoch;
      rec.values.assign(r.begin() + 1, r.end());
      out.push_back(std::move(rec));
      return true;
    });
  }
  return out;
}

void Tvdp::Fence(int64_t fenced_at_epoch) {
  // Writer lock: in-flight writers drain before the fence lands, so a
  // stale primary cannot ack a mutation sequenced after its demotion.
  std::unique_lock lock(engine_->mutex());
  epoch_.store(
      std::max(epoch_.load(std::memory_order_relaxed), fenced_at_epoch),
      std::memory_order_relaxed);
  fenced_.store(true, std::memory_order_release);
}

bool Tvdp::fenced() const { return fenced_.load(std::memory_order_acquire); }

void Tvdp::set_epoch(int64_t epoch) {
  std::unique_lock lock(engine_->mutex());
  epoch_.store(epoch, std::memory_order_release);
  if (durable_) durable_->set_epoch(epoch);
}

int64_t Tvdp::epoch() const {
  return epoch_.load(std::memory_order_acquire);
}

Status Tvdp::SaveToFile(const std::string& path) const {
  // Serialize the pinned snapshot's immutable table copies: byte-identical
  // to Catalog::SaveToFile (same format, same name order), no lock held.
  query::SnapshotRef snap = engine_->PinSnapshot();
  std::vector<const storage::Table*> snapshot_tables;
  snapshot_tables.reserve(snap->tables.size());
  for (const auto& [_, t] : snap->tables) snapshot_tables.push_back(t.get());
  return storage::WriteFile(
      path, storage::Catalog::SerializeTables(snapshot_tables));
}

Status Tvdp::Checkpoint() {
  return durable_ ? durable_->Checkpoint() : Status::OK();
}

}  // namespace tvdp::platform
