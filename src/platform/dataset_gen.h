#ifndef TVDP_PLATFORM_DATASET_GEN_H_
#define TVDP_PLATFORM_DATASET_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timeutil.h"
#include "geo/bbox.h"
#include "geo/polyline.h"
#include "image/scene_gen.h"
#include "platform/tvdp.h"

namespace tvdp::platform {

/// One synthetic geo-tagged labelled street image, as a LASAN collection
/// truck would have produced it: pixels, cleanliness ground truth, FOV
/// metadata along a street, capture time, and a few free-text keywords.
struct GeoImage {
  image::Image pixels;
  image::SceneClass label = image::SceneClass::kClean;
  ImageRecord record;  ///< everything IngestImage needs (uri, FOV, time...)
  std::vector<image::SceneObject> objects;  ///< ground-truth regions
};

/// Configuration of the synthetic LASAN-style corpus.
struct DatasetConfig {
  /// Total images (the paper's real corpus is 22K; benches scale down).
  int count = 1000;
  /// Region of interest (defaults to a downtown-LA-sized box).
  geo::BoundingBox region = geo::BoundingBox{33.99, -118.28, 34.07, -118.20};
  int streets_rows = 6;
  int streets_cols = 6;
  image::SceneGenConfig scene;
  /// Include graffiti as a 6th class (for the translational second task).
  bool include_graffiti = false;
  /// Class mixture: uniform over classes when empty.
  std::vector<double> class_weights;
  /// Problem classes cluster at hotspots (encampments and dumping are not
  /// uniform in a real city); 0 disables clustering.
  int hotspots_per_class = 3;
  Timestamp start_time = 1546300800;  // 2019-01-01
  Timestamp time_span_seconds = 90 * 86400;
  uint64_t seed = 2019;
};

/// Generates a deterministic labelled geo-tagged corpus: a street grid is
/// synthesized over the region, capture points are sampled along streets,
/// per-class spatial hotspots skew where problem classes appear, and each
/// image is rendered by StreetSceneGenerator. This is the reproduction's
/// stand-in for the LASAN 22K-image dataset (see DESIGN.md).
std::vector<GeoImage> GenerateStreetDataset(const DatasetConfig& config);

/// Keyword pool per class (used for the textual descriptors).
std::vector<std::string> KeywordsForClass(image::SceneClass label, Rng& rng);

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_DATASET_GEN_H_
