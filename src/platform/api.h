#ifndef TVDP_PLATFORM_API_H_
#define TVDP_PLATFORM_API_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "platform/model_registry.h"
#include "platform/tvdp.h"

namespace tvdp::platform {

/// The Restful-style API surface of TVDP (paper Sec. V). Requests and
/// responses are JSON envelopes; transport is in-process (an HTTP server
/// would be a thin wrapper around HandleRequest). Every call carries an
/// API key created via CreateApiKey — "users can create API keys to use
/// TVDP features".
///
/// Endpoints (the seven API families of Sec. V):
///   add_data         — ingest a new geo-tagged image (metadata).
///   search_datasets  — hybrid metadata search (spatial/temporal/textual/
///                      categorical filters).
///   download_datasets— fetch metadata rows for a list of image ids.
///   get_visual_features — fetch stored feature vectors of an image.
///   use_model        — run a registered model on a feature or image id.
///   download_model   — serialized model for edge deployment.
///   register_model   — share a model (serialized linear-family payload).
class ApiService {
 public:
  /// `platform` and `registry` must outlive the service.
  ApiService(Tvdp* platform, ModelRegistry* registry);

  /// Issues a new API key for `owner` (e.g. "lasan", "usc_research").
  std::string CreateApiKey(const std::string& owner);

  /// Revokes a key; NotFound if unknown.
  Status RevokeApiKey(const std::string& key);

  /// Dispatches one API call. PermissionDenied for bad keys, NotFound for
  /// unknown endpoints, InvalidArgument for malformed requests.
  Result<Json> HandleRequest(const std::string& api_key,
                             const std::string& endpoint,
                             const Json& request);

  /// Like HandleRequest but never fails: errors become
  /// {"status":"error","code":...,"message":...} envelopes, successes are
  /// wrapped as {"status":"ok","data":...}.
  Json HandleEnvelope(const std::string& api_key, const std::string& endpoint,
                      const Json& request);

  /// Owner of a key, or NotFound.
  Result<std::string> KeyOwner(const std::string& key) const;

  /// Endpoint names, sorted (for discovery / documentation endpoints).
  std::vector<std::string> Endpoints() const;

 private:
  Result<Json> AddData(const std::string& owner, const Json& request);
  Result<Json> SearchDatasets(const Json& request);
  Result<Json> DownloadDatasets(const Json& request);
  Result<Json> GetVisualFeatures(const Json& request);
  Result<Json> UseModel(const Json& request);
  Result<Json> DownloadModel(const Json& request);
  Result<Json> RegisterModel(const std::string& owner, const Json& request);

  Tvdp* platform_;
  ModelRegistry* registry_;
  std::map<std::string, std::string> keys_;  // key -> owner
  uint64_t key_counter_ = 0;
};

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_API_H_
