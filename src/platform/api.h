#ifndef TVDP_PLATFORM_API_H_
#define TVDP_PLATFORM_API_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/json.h"
#include "common/result.h"
#include "platform/admission.h"
#include "platform/model_registry.h"
#include "platform/sharding.h"
#include "platform/tvdp.h"

namespace tvdp::platform {

/// The Restful-style API surface of TVDP (paper Sec. V). Requests and
/// responses are JSON envelopes; transport is in-process (an HTTP server
/// would be a thin wrapper around HandleRequest). Every call carries an
/// API key created via CreateApiKey — "users can create API keys to use
/// TVDP features".
///
/// Endpoints (the seven API families of Sec. V):
///   add_data         — ingest a new geo-tagged image (metadata).
///   search_datasets  — hybrid search (spatial/temporal/textual/
///                      categorical filters plus a visual top-k or
///                      threshold seed via "feature"/"feature_kind").
///                      The response carries the executed "plan" object
///                      (operator tree, estimated vs actual rows).
///   explain_query    — plan a search_datasets request without running
///                      it; returns the deterministic plan object.
///   download_datasets— fetch metadata rows for a list of image ids.
///   get_visual_features — fetch stored feature vectors of an image.
///   use_model        — run a registered model on a feature or image id.
///   download_model   — serialized model for edge deployment.
///   register_model   — share a model (serialized linear-family payload).
///   platform_stats   — operational state: admission counters, latency
///                      digests, and (sharded deployments) per-shard
///                      breaker/WAL/latency state, including pending
///                      broadcast counts.
///   reconcile        — sharded deployments only: runs the broadcast
///                      reconciliation pass (completes or rolls back
///                      pending cross-shard writes) and reports whether
///                      the fleet's classification tables agree.
///   rebalance        — sharded deployments only: live-migrates grid
///                      cells between shards while both keep serving
///                      ({"cells":[...], "source":i, "target":j});
///                      returns the migration report.
///
/// The service fronts either a single engine (`Tvdp*`) or a sharded fleet
/// (`ShardManager*`). Sharded search_datasets responses additionally carry
/// a "coverage" object (probed/skipped/failed shards) — the partial-result
/// contract of scatter-gather execution.
class ApiService {
 public:
  /// `platform` and `registry` must outlive the service. `admission`
  /// (optional, must outlive the service when given) gates every
  /// HandleRequest through the overload controller: requests are
  /// rate-limited, queued, shed, or degraded before dispatch.
  ApiService(Tvdp* platform, ModelRegistry* registry,
             AdmissionController* admission = nullptr);

  /// Sharded deployment: requests are served through `shards`'s
  /// scatter-gather layer (`shards` must outlive the service).
  ApiService(ShardManager* shards, ModelRegistry* registry,
             AdmissionController* admission = nullptr);

  /// Issues a new API key for `owner` (e.g. "lasan", "usc_research").
  std::string CreateApiKey(const std::string& owner);

  /// Revokes a key; NotFound if unknown. Safe against in-flight
  /// HandleRequest calls: requests already past the key check complete,
  /// later requests see the revocation.
  Status RevokeApiKey(const std::string& key);

  /// Dispatches one API call. PermissionDenied for bad keys (checked
  /// before endpoint existence — authentication outranks routing),
  /// NotFound for unknown endpoints, InvalidArgument for malformed
  /// requests, kResourceExhausted (with retry-after hint) when shed by
  /// the admission controller, kDeadlineExceeded / kCancelled when `ctx`
  /// fails. A numeric "deadline_ms" request field tightens the deadline;
  /// "priority": "batch" selects the batch admission queue.
  Result<Json> HandleRequest(const std::string& api_key,
                             const std::string& endpoint, const Json& request,
                             const RequestContext& ctx = RequestContext());

  /// Like HandleRequest but never fails. Successes wrap as
  /// {"status":"ok","data":...} with "degraded": true when the admission
  /// controller forced a cheaper plan. Errors become
  /// {"status":"error","code":<name>,"error_code":<numeric>,
  ///  "message":...,"retryable":<bool>} envelopes, plus "retry_after_ms"
  /// when the status carries a hint (shed responses always do).
  Json HandleEnvelope(const std::string& api_key, const std::string& endpoint,
                      const Json& request,
                      const RequestContext& ctx = RequestContext());

  /// Owner of a key, or NotFound.
  Result<std::string> KeyOwner(const std::string& key) const;

  /// Endpoint names, sorted (for discovery / documentation endpoints).
  std::vector<std::string> Endpoints() const;

  /// Admission-controller counters and per-endpoint latency digests as a
  /// JSON object; an empty object when no controller is attached.
  Json ServerStatsJson() const;

 private:
  Result<Json> HandleRequestInternal(const std::string& api_key,
                                     const std::string& endpoint,
                                     const Json& request,
                                     const RequestContext& base_ctx,
                                     bool* degraded);
  Result<Json> Dispatch(const std::string& owner, const std::string& endpoint,
                        const Json& request, const RequestContext& ctx,
                        const query::QueryBudget& budget);

  Result<Json> AddData(const std::string& owner, const Json& request);
  Result<Json> SearchDatasets(const Json& request, const RequestContext& ctx,
                              const query::QueryBudget& budget);
  Result<Json> ExplainQuery(const Json& request,
                            const query::QueryBudget& budget);
  Result<Json> DownloadDatasets(const Json& request, const RequestContext& ctx);
  Result<Json> GetVisualFeatures(const Json& request);
  Result<Json> UseModel(const Json& request);
  Result<Json> DownloadModel(const Json& request);
  Result<Json> RegisterModel(const std::string& owner, const Json& request);
  Result<Json> PlatformStats(const Json& request) const;
  Result<Json> Reconcile(const Json& request);
  Result<Json> Rebalance(const Json& request);
  Result<Json> Promote(const Json& request);

  Tvdp* platform_;
  ShardManager* shards_ = nullptr;
  ModelRegistry* registry_;
  AdmissionController* admission_;

  /// Guards keys_ and key_counter_: HandleRequest reads the key table
  /// shared while CreateApiKey / RevokeApiKey mutate it exclusively, so a
  /// revocation racing an in-flight request is well-defined instead of a
  /// data race on the map.
  mutable std::shared_mutex keys_mutex_;
  std::map<std::string, std::string> keys_;  // key -> owner
  uint64_t key_counter_ = 0;
};

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_API_H_
