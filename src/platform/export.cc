#include "platform/export.h"

#include "common/strings.h"
#include "query/snapshot.h"

namespace tvdp::platform {
namespace {

struct ImageMeta {
  int64_t id;
  std::string uri;
  double lat;
  double lon;
  Timestamp captured_at;
  Timestamp uploaded_at;
  std::string source;
};

Result<ImageMeta> FetchMeta(const storage::Table* images, int64_t image_id) {
  if (!images) return Status::FailedPrecondition("images table missing");
  TVDP_ASSIGN_OR_RETURN(storage::Row row, images->Get(image_id));
  const storage::Schema& s = images->schema();
  auto col = [&](const char* name) {
    return static_cast<size_t>(s.ColumnIndex(name));
  };
  ImageMeta meta;
  meta.id = image_id;
  meta.uri = row[col("uri")].AsString();
  meta.lat = row[col("lat")].AsDouble();
  meta.lon = row[col("lon")].AsDouble();
  meta.captured_at = row[col("timestamp_capturing")].AsInt64();
  meta.uploaded_at = row[col("timestamp_uploading")].AsInt64();
  meta.source = row[col("source")].AsString();
  return meta;
}

}  // namespace

std::string CsvEscape(const std::string& field) {
  // A leading =, +, - or @ would be executed as a formula by spreadsheet
  // software opening the export; quote it and neutralize with a leading
  // single quote so the cell stays inert text.
  bool formula = !field.empty() && (field[0] == '=' || field[0] == '+' ||
                                    field[0] == '-' || field[0] == '@');
  bool needs_quoting =
      formula || field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  if (formula) out += '\'';
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

Result<std::string> ExportMetadataCsv(const Tvdp& tvdp,
                                      const std::vector<int64_t>& image_ids) {
  // Lock-free: one pinned MVCC snapshot gives every row of the export the
  // same consistent version.
  query::SnapshotRef snap = tvdp.query().PinSnapshot();
  const storage::Table* images = snap->FindTable(storage::tables::kImages);
  // RFC 4180 terminates every record (header included) with CRLF.
  std::string out = "id,uri,lat,lon,captured_at,uploaded_at,source\r\n";
  for (int64_t id : image_ids) {
    TVDP_ASSIGN_OR_RETURN(ImageMeta meta, FetchMeta(images, id));
    out += StrFormat("%lld,%s,%.6f,%.6f,%s,%s,%s\r\n",
                     static_cast<long long>(meta.id),
                     CsvEscape(meta.uri).c_str(), meta.lat, meta.lon,
                     CsvEscape(FormatTimestamp(meta.captured_at)).c_str(),
                     CsvEscape(FormatTimestamp(meta.uploaded_at)).c_str(),
                     CsvEscape(meta.source).c_str());
  }
  return out;
}

Result<Json> ExportGeoJson(const Tvdp& tvdp,
                           const std::vector<int64_t>& image_ids) {
  query::SnapshotRef snap = tvdp.query().PinSnapshot();
  const storage::Table* images = snap->FindTable(storage::tables::kImages);
  Json features = Json::MakeArray();
  for (int64_t id : image_ids) {
    TVDP_ASSIGN_OR_RETURN(ImageMeta meta, FetchMeta(images, id));
    Json geometry = Json::MakeObject();
    geometry["type"] = "Point";
    Json coords = Json::MakeArray();
    coords.Append(meta.lon);  // GeoJSON is [lon, lat]
    coords.Append(meta.lat);
    geometry["coordinates"] = std::move(coords);

    Json properties = Json::MakeObject();
    properties["id"] = meta.id;
    properties["uri"] = meta.uri;
    properties["captured_at"] = FormatTimestamp(meta.captured_at);
    properties["source"] = meta.source;

    Json feature = Json::MakeObject();
    feature["type"] = "Feature";
    feature["geometry"] = std::move(geometry);
    feature["properties"] = std::move(properties);
    features.Append(std::move(feature));
  }
  Json collection = Json::MakeObject();
  collection["type"] = "FeatureCollection";
  collection["features"] = std::move(features);
  return collection;
}

}  // namespace tvdp::platform
