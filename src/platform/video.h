#ifndef TVDP_PLATFORM_VIDEO_H_
#define TVDP_PLATFORM_VIDEO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geo/coverage.h"
#include "geo/fov.h"
#include "platform/tvdp.h"

namespace tvdp::platform {

/// One frame of a geo-tagged mobile video: MediaQ-style capture tags every
/// frame with its own FOV (paper Sec. III: "each frame of the collected
/// video is tagged with spatial metadata").
struct VideoFrame {
  geo::FieldOfView fov;
  Timestamp captured_at = 0;
  int frame_index = 0;
};

/// A geo-tagged video to ingest: TVDP stores a video as a sequence of key
/// frames, "where each one is tagged with various descriptors" (Sec. IV-B).
struct VideoRecord {
  std::string uri;
  std::string source = "mediaq";
  std::vector<VideoFrame> frames;
  std::vector<std::string> keywords;
};

/// Key-frame selection for geo-tagged video (after Kim et al., "Key Frame
/// Selection Algorithms for Automatic Generation of Panoramic Images from
/// Crowdsourced Geo-tagged Videos", W2GIS 2014): instead of sampling every
/// Nth frame, greedily pick the frames whose FOVs add the most *new*
/// spatial coverage, so a 30 fps drive-by collapses into a handful of
/// frames that still document the whole street.
class KeyframeSelector {
 public:
  struct Options {
    /// Maximum key frames to keep (0 = no cap; selection stops when no
    /// frame adds coverage).
    int max_keyframes = 16;
    /// Grid resolution of the coverage model used for marginal gain.
    int grid_rows = 24;
    int grid_cols = 24;
    int direction_sectors = 8;
    /// Frames adding fewer than this many newly covered (cell, sector)
    /// pairs are not worth keeping.
    int min_marginal_gain = 1;
  };

  KeyframeSelector() : KeyframeSelector(Options()) {}
  explicit KeyframeSelector(Options options) : options_(options) {}

  /// Returns the indices (into `frames`) of the selected key frames, in
  /// greedy selection order. Empty input yields an empty selection.
  Result<std::vector<size_t>> Select(
      const std::vector<VideoFrame>& frames) const;

 private:
  Options options_;
};

/// Ingests a geo-tagged video into the platform: key frames are selected
/// with `selector`, and each becomes an image row (frame-level FOV, the
/// video's keywords, source "video:<uri>", and a "#frame<n>" keyword so
/// textual queries can address individual frames). Returns the image ids
/// of the stored key frames, in frame order.
Result<std::vector<int64_t>> IngestVideo(Tvdp& tvdp, const VideoRecord& video,
                                         const KeyframeSelector& selector);

/// Synthesizes a drive-by video trajectory for tests/benches: `num_frames`
/// FOVs at `fps` along a straight street from `start` toward `bearing`,
/// with camera facing sideways (toward the curb), plus GPS/compass noise.
std::vector<VideoFrame> SimulateDriveVideo(const geo::GeoPoint& start,
                                           double bearing_deg, double speed_mps,
                                           int num_frames, double fps,
                                           Timestamp start_time, Rng& rng);

}  // namespace tvdp::platform

#endif  // TVDP_PLATFORM_VIDEO_H_
