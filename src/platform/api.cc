#include "platform/api.h"

#include <algorithm>
#include <chrono>

#include "common/retry.h"
#include "common/strings.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"

namespace tvdp::platform {
namespace {

/// Parses a JSON array of numbers into a feature vector.
Result<ml::FeatureVector> ParseFeature(const Json& j) {
  if (!j.is_array() || j.size() == 0) {
    return Status::InvalidArgument("feature must be a non-empty array");
  }
  ml::FeatureVector out;
  out.reserve(j.size());
  for (const Json& v : j.AsArray()) {
    if (!v.is_number()) {
      return Status::InvalidArgument("feature entries must be numbers");
    }
    out.push_back(v.AsDouble());
  }
  return out;
}

Json FeatureToJson(const ml::FeatureVector& v) {
  Json out = Json::MakeArray();
  for (double x : v) out.Append(x);
  return out;
}

/// Request → HybridQuery translation shared by search_datasets and
/// explain_query, so an explained plan always describes exactly the query
/// that a search with the same body would run.
Result<query::HybridQuery> ParseSearchQuery(const Json& request) {
  query::HybridQuery q;
  if (request.Has("bbox")) {
    const Json& b = request["bbox"];
    if (b.size() != 4) {
      return Status::InvalidArgument(
          "bbox must be [min_lat, min_lon, max_lat, max_lon]");
    }
    for (const Json& v : b.AsArray()) {
      if (!v.is_number()) {
        return Status::InvalidArgument("bbox entries must be numbers");
      }
    }
    query::SpatialPredicate sp;
    sp.kind = query::SpatialPredicate::Kind::kRange;
    sp.range.min_lat = b.AsArray()[0].AsDouble();
    sp.range.min_lon = b.AsArray()[1].AsDouble();
    sp.range.max_lat = b.AsArray()[2].AsDouble();
    sp.range.max_lon = b.AsArray()[3].AsDouble();
    q.spatial = sp;
  }
  if (request.Has("keywords")) {
    query::TextualPredicate tp;
    tp.mode = request["keyword_mode"].AsString() == "or"
                  ? query::TextualPredicate::Mode::kOr
                  : query::TextualPredicate::Mode::kAnd;
    for (const Json& kw : request["keywords"].AsArray()) {
      tp.keywords.push_back(kw.AsString());
    }
    q.textual = tp;
  }
  if (request.Has("time_begin") && request.Has("time_end")) {
    q.temporal = query::TemporalPredicate{request["time_begin"].AsInt(),
                                          request["time_end"].AsInt()};
  }
  if (request.Has("classification") && request.Has("label")) {
    query::CategoricalPredicate cp;
    cp.classification = request["classification"].AsString();
    cp.label = request["label"].AsString();
    if (request.Has("min_confidence")) {
      cp.min_confidence = request["min_confidence"].AsDouble();
    }
    q.categorical = cp;
  }
  if (request.Has("feature")) {
    if (!request.Has("feature_kind")) {
      return Status::InvalidArgument("feature requires feature_kind");
    }
    query::VisualPredicate vp;
    vp.feature_kind = request["feature_kind"].AsString();
    TVDP_ASSIGN_OR_RETURN(vp.feature, ParseFeature(request["feature"]));
    if (request.Has("threshold")) {
      vp.kind = query::VisualPredicate::Kind::kThreshold;
      vp.threshold = request["threshold"].AsDouble();
    } else {
      vp.kind = query::VisualPredicate::Kind::kTopK;
      vp.k = request.Has("k") ? static_cast<int>(request["k"].AsInt()) : 10;
      if (vp.k <= 0) return Status::InvalidArgument("k must be positive");
    }
    q.visual = vp;
  }
  if (request.Has("limit")) q.limit = static_cast<int>(request["limit"].AsInt());
  return q;
}

}  // namespace

ApiService::ApiService(Tvdp* platform, ModelRegistry* registry,
                       AdmissionController* admission)
    : platform_(platform), registry_(registry), admission_(admission) {}

ApiService::ApiService(ShardManager* shards, ModelRegistry* registry,
                       AdmissionController* admission)
    : platform_(nullptr),
      shards_(shards),
      registry_(registry),
      admission_(admission) {}

std::string ApiService::CreateApiKey(const std::string& owner) {
  std::unique_lock<std::shared_mutex> lock(keys_mutex_);
  // Deterministic but unguessable-looking keys: FNV over owner + counter.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (char c : owner) mix(static_cast<uint64_t>(c));
  mix(++key_counter_);
  std::string key = StrFormat("tvdp_%016llx", static_cast<unsigned long long>(h));
  keys_[key] = owner;
  return key;
}

Status ApiService::RevokeApiKey(const std::string& key) {
  std::unique_lock<std::shared_mutex> lock(keys_mutex_);
  if (keys_.erase(key) == 0) return Status::NotFound("unknown API key");
  return Status::OK();
}

Result<std::string> ApiService::KeyOwner(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(keys_mutex_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return Status::NotFound("unknown API key");
  return it->second;
}

std::vector<std::string> ApiService::Endpoints() const {
  return {"add_data",        "search_datasets", "explain_query",
          "download_datasets",   "get_visual_features",
          "use_model",       "download_model",  "register_model",
          "platform_stats",  "reconcile",       "rebalance",
          "promote"};
}

Result<Json> ApiService::HandleRequest(const std::string& api_key,
                                       const std::string& endpoint,
                                       const Json& request,
                                       const RequestContext& ctx) {
  bool degraded = false;
  return HandleRequestInternal(api_key, endpoint, request, ctx, &degraded);
}

Result<Json> ApiService::HandleRequestInternal(const std::string& api_key,
                                               const std::string& endpoint,
                                               const Json& request,
                                               const RequestContext& base_ctx,
                                               bool* degraded) {
  // Authentication first: a bad key is PermissionDenied no matter what
  // else is wrong with the request (including an unknown endpoint), and
  // unauthenticated callers must not reach the admission queue or consume
  // rate-limit tokens. The owner is copied out under the shared lock so a
  // concurrent RevokeApiKey cannot invalidate it mid-request.
  std::string owner;
  {
    std::shared_lock<std::shared_mutex> lock(keys_mutex_);
    auto key_it = keys_.find(api_key);
    if (key_it == keys_.end()) {
      return Status::PermissionDenied("invalid API key");
    }
    owner = key_it->second;
  }
  // Routing next, still before admission: an unknown endpoint must not
  // occupy a concurrency slot.
  std::vector<std::string> endpoints = Endpoints();
  if (std::find(endpoints.begin(), endpoints.end(), endpoint) ==
      endpoints.end()) {
    return Status::NotFound("unknown endpoint: " + endpoint);
  }

  RequestContext ctx = base_ctx;
  if (request.Has("deadline_ms") && request["deadline_ms"].is_number()) {
    ctx = ctx.WithDeadlineIn(request["deadline_ms"].AsDouble());
  }
  TVDP_RETURN_IF_ERROR(ctx.Check());

  AdmissionTicket ticket;
  query::QueryBudget budget;
  if (admission_) {
    Priority priority = request.Has("priority") &&
                                request["priority"].AsString() == "batch"
                            ? Priority::kBatch
                            : Priority::kInteractive;
    TVDP_ASSIGN_OR_RETURN(ticket, admission_->Admit(api_key, priority, ctx));
    if (ticket.degraded()) {
      // Degradation ladder (DESIGN.md): LSH probing cut to one probe per
      // table and a hard candidate cap — recall traded for survival. The
      // knobs are set so a degraded query costs roughly a quarter of a
      // full-fidelity one: cheap enough to survive overload, rich enough
      // that the degraded answer is still worth returning.
      *degraded = true;
      budget.lsh_probes = 1;
      budget.max_candidates = 512;
    }
  }
  auto start = std::chrono::steady_clock::now();
  Result<Json> result = Dispatch(owner, endpoint, request, ctx, budget);
  if (admission_) {
    admission_->RecordLatency(
        endpoint, std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  }
  return result;
}

Result<Json> ApiService::Dispatch(const std::string& owner,
                                  const std::string& endpoint,
                                  const Json& request,
                                  const RequestContext& ctx,
                                  const query::QueryBudget& budget) {
  if (endpoint == "add_data") return AddData(owner, request);
  if (endpoint == "search_datasets") return SearchDatasets(request, ctx, budget);
  if (endpoint == "explain_query") return ExplainQuery(request, budget);
  if (endpoint == "download_datasets") return DownloadDatasets(request, ctx);
  if (endpoint == "get_visual_features") return GetVisualFeatures(request);
  if (endpoint == "use_model") return UseModel(request);
  if (endpoint == "download_model") return DownloadModel(request);
  if (endpoint == "register_model") return RegisterModel(owner, request);
  if (endpoint == "platform_stats") return PlatformStats(request);
  if (endpoint == "reconcile") return Reconcile(request);
  if (endpoint == "rebalance") return Rebalance(request);
  if (endpoint == "promote") return Promote(request);
  return Status::NotFound("unknown endpoint: " + endpoint);
}

Json ApiService::HandleEnvelope(const std::string& api_key,
                                const std::string& endpoint,
                                const Json& request,
                                const RequestContext& ctx) {
  bool degraded = false;
  Result<Json> result =
      HandleRequestInternal(api_key, endpoint, request, ctx, &degraded);
  Json out = Json::MakeObject();
  if (result.ok()) {
    out["status"] = "ok";
    if (degraded) out["degraded"] = true;
    out["data"] = std::move(result).value();
  } else {
    const Status& s = result.status();
    out["status"] = "error";
    out["code"] = std::string(StatusCodeName(s.code()));
    // Numeric code alongside the name: clients branch on the number, and
    // the precedence contract (PermissionDenied before NotFound for
    // bad-key + unknown-endpoint) is part of the API surface.
    out["error_code"] = static_cast<int>(s.code());
    out["message"] = s.message();
    out["retryable"] = IsRetryableStatus(s);
    if (std::optional<double> hint = RetryAfterHintMs(s)) {
      out["retry_after_ms"] = *hint;
    }
  }
  return out;
}

Json ApiService::ServerStatsJson() const {
  return admission_ ? admission_->StatsJson() : Json::MakeObject();
}

Result<Json> ApiService::AddData(const std::string& owner,
                                 const Json& request) {
  if (!request["lat"].is_number() || !request["lon"].is_number()) {
    return Status::InvalidArgument("add_data requires numeric lat and lon");
  }
  if (request.Has("captured_at") && !request["captured_at"].is_number()) {
    return Status::InvalidArgument("captured_at must be a number");
  }
  ImageRecord record;
  record.location = geo::GeoPoint{request["lat"].AsDouble(),
                                  request["lon"].AsDouble()};
  record.uri = request.Has("uri") ? request["uri"].AsString()
                                  : "tvdp://images/api/unnamed";
  record.source = request.Has("source") ? request["source"].AsString() : owner;
  if (request.Has("captured_at")) {
    record.captured_at = request["captured_at"].AsInt();
  }
  if (request.Has("fov")) {
    const Json& f = request["fov"];
    TVDP_ASSIGN_OR_RETURN(
        geo::FieldOfView fov,
        geo::FieldOfView::Make(record.location, f["direction"].AsDouble(),
                               f["angle"].AsDouble(), f["radius"].AsDouble()));
    record.fov = fov;
  }
  if (request.Has("keywords")) {
    for (const Json& kw : request["keywords"].AsArray()) {
      record.keywords.push_back(kw.AsString());
    }
  }
  int64_t id = 0;
  if (shards_) {
    TVDP_ASSIGN_OR_RETURN(id, shards_->IngestImage(record));
  } else {
    TVDP_ASSIGN_OR_RETURN(id, platform_->IngestImage(record));
  }
  // Optional inline feature payloads: {"features": {"cnn": [...], ...}}.
  if (request.Has("features")) {
    for (const auto& [kind, vec] : request["features"].AsObject()) {
      TVDP_ASSIGN_OR_RETURN(ml::FeatureVector feature, ParseFeature(vec));
      TVDP_RETURN_IF_ERROR(shards_
                               ? shards_->StoreFeature(id, kind, feature)
                               : platform_->StoreFeature(id, kind, feature));
    }
  }
  Json out = Json::MakeObject();
  out["image_id"] = id;
  return out;
}

Result<Json> ApiService::SearchDatasets(const Json& request,
                                        const RequestContext& ctx,
                                        const query::QueryBudget& budget) {
  TVDP_ASSIGN_OR_RETURN(query::HybridQuery q, ParseSearchQuery(request));
  if (shards_) {
    // Sharded scatter-gather: a degraded admission budget sheds whole
    // shards (lowest estimated selectivity first) before queries are
    // shed, and the response carries the partial-result coverage object.
    TVDP_ASSIGN_OR_RETURN(
        ShardManager::ShardedQueryResult sharded,
        shards_->ExecuteQuery(q, &ctx, budget, budget.degraded()));
    Json ids = Json::MakeArray();
    for (const auto& h : sharded.hits) ids.Append(h.image_id);
    Json out = Json::MakeObject();
    out["image_ids"] = std::move(ids);
    out["count"] = sharded.hits.size();
    out["plan"] = std::move(sharded.plan);
    out["coverage"] = sharded.coverage.ToJson();
    if (budget.degraded()) out["degraded"] = true;
    return out;
  }
  query::QueryPlan plan;
  TVDP_ASSIGN_OR_RETURN(std::vector<query::QueryHit> hits,
                        platform_->ExecuteQuery(q, &ctx, budget, &plan));
  Json ids = Json::MakeArray();
  for (const auto& h : hits) ids.Append(h.image_id);
  Json out = Json::MakeObject();
  out["image_ids"] = std::move(ids);
  out["count"] = hits.size();
  out["plan"] = plan.ToJson();
  if (budget.degraded()) out["degraded"] = true;
  return out;
}

Result<Json> ApiService::ExplainQuery(const Json& request,
                                      const query::QueryBudget& budget) {
  TVDP_ASSIGN_OR_RETURN(query::HybridQuery q, ParseSearchQuery(request));
  Json plan_json;
  if (shards_) {
    TVDP_ASSIGN_OR_RETURN(plan_json, shards_->ExplainQuery(q, budget));
  } else {
    TVDP_ASSIGN_OR_RETURN(query::QueryPlan plan,
                          platform_->ExplainQuery(q, budget));
    plan_json = plan.ToJson();
  }
  Json out = Json::MakeObject();
  out["plan"] = std::move(plan_json);
  if (budget.degraded()) out["degraded"] = true;
  return out;
}

Result<Json> ApiService::DownloadDatasets(const Json& request,
                                          const RequestContext& ctx) {
  if (!request.Has("image_ids")) {
    return Status::InvalidArgument("download_datasets requires image_ids");
  }
  Json rows = Json::MakeArray();
  for (const Json& idj : request["image_ids"].AsArray()) {
    TVDP_RETURN_IF_ERROR(ctx.Check());
    TVDP_ASSIGN_OR_RETURN(Json r, shards_
                                      ? shards_->ImageRowJson(idj.AsInt())
                                      : platform_->ImageRowJson(idj.AsInt()));
    rows.Append(std::move(r));
  }
  Json out = Json::MakeObject();
  out["rows"] = std::move(rows);
  return out;
}

Result<Json> ApiService::GetVisualFeatures(const Json& request) {
  if (!request.Has("image_id") || !request.Has("kind")) {
    return Status::InvalidArgument(
        "get_visual_features requires image_id and kind");
  }
  TVDP_ASSIGN_OR_RETURN(
      ml::FeatureVector feature,
      shards_ ? shards_->GetFeature(request["image_id"].AsInt(),
                                    request["kind"].AsString())
              : platform_->GetFeature(request["image_id"].AsInt(),
                                      request["kind"].AsString()));
  Json out = Json::MakeObject();
  out["feature"] = FeatureToJson(feature);
  out["dim"] = feature.size();
  return out;
}

Result<Json> ApiService::UseModel(const Json& request) {
  if (!request.Has("model")) {
    return Status::InvalidArgument("use_model requires model");
  }
  std::string model = request["model"].AsString();
  ml::FeatureVector feature;
  if (request.Has("feature")) {
    TVDP_ASSIGN_OR_RETURN(feature, ParseFeature(request["feature"]));
  } else if (request.Has("image_id")) {
    TVDP_ASSIGN_OR_RETURN(ModelSpec spec, registry_->GetSpec(model));
    TVDP_ASSIGN_OR_RETURN(
        feature, shards_ ? shards_->GetFeature(request["image_id"].AsInt(),
                                               spec.feature_kind)
                         : platform_->GetFeature(request["image_id"].AsInt(),
                                                 spec.feature_kind));
  } else {
    return Status::InvalidArgument("use_model requires feature or image_id");
  }
  TVDP_ASSIGN_OR_RETURN(auto prediction,
                        registry_->PredictWithConfidence(model, feature));
  Json out = Json::MakeObject();
  out["label"] = prediction.first;
  out["confidence"] = prediction.second;
  // Augmented-knowledge write-back (Sec. VII-B): annotate the image with
  // the machine prediction so other analyses can reuse it.
  if (request.Has("image_id") && request["annotate"].AsBool()) {
    TVDP_ASSIGN_OR_RETURN(ModelSpec spec, registry_->GetSpec(model));
    AnnotationRecord ann;
    ann.classification = spec.classification;
    ann.label = prediction.first;
    ann.confidence = prediction.second;
    ann.machine = true;
    TVDP_ASSIGN_OR_RETURN(
        int64_t ann_id,
        shards_ ? shards_->AnnotateImage(request["image_id"].AsInt(), ann)
                : platform_->AnnotateImage(request["image_id"].AsInt(), ann));
    out["annotation_id"] = ann_id;
  }
  return out;
}

Result<Json> ApiService::DownloadModel(const Json& request) {
  if (!request.Has("model")) {
    return Status::InvalidArgument("download_model requires model");
  }
  return registry_->Download(request["model"].AsString());
}

Result<Json> ApiService::RegisterModel(const std::string& owner,
                                       const Json& request) {
  if (!request.Has("spec") || !request.Has("model")) {
    return Status::InvalidArgument("register_model requires spec and model");
  }
  const Json& spec_json = request["spec"];
  ModelSpec spec;
  spec.name = spec_json["name"].AsString();
  spec.feature_kind = spec_json["feature_kind"].AsString();
  spec.classification = spec_json["classification"].AsString();
  for (const Json& l : spec_json["labels"].AsArray()) {
    spec.labels.push_back(l.AsString());
  }
  spec.owner = owner;

  const Json& model_json = request["model"];
  std::unique_ptr<ml::Classifier> model;
  std::string type = model_json["type"].AsString();
  if (type == "svm") {
    TVDP_ASSIGN_OR_RETURN(auto svm,
                          ml::LinearSvmClassifier::FromJson(model_json));
    model = std::move(svm);
  } else if (type == "logistic_regression") {
    TVDP_ASSIGN_OR_RETURN(
        auto lr, ml::LogisticRegressionClassifier::FromJson(model_json));
    model = std::move(lr);
  } else {
    return Status::InvalidArgument(
        "register_model supports serialized linear-family models (svm, "
        "logistic_regression); got: " + type);
  }
  TVDP_RETURN_IF_ERROR(registry_->Register(std::move(spec), std::move(model)));
  Json out = Json::MakeObject();
  out["registered"] = true;
  return out;
}

Result<Json> ApiService::PlatformStats(const Json&) const {
  Json out = Json::MakeObject();
  out["server"] = ServerStatsJson();
  out["sharded"] = shards_ != nullptr;
  if (shards_) {
    out["images"] = shards_->image_count();
    out["shards"] = shards_->StatsJson();
  } else {
    out["images"] = platform_->image_count();
    out["mvcc"] = platform_->MvccStats();
  }
  return out;
}

Result<Json> ApiService::Reconcile(const Json&) {
  if (!shards_) {
    return Status::FailedPrecondition(
        "reconcile requires a sharded deployment");
  }
  return shards_->ReconcileBroadcasts();
}

Result<Json> ApiService::Rebalance(const Json& request) {
  if (!shards_) {
    return Status::FailedPrecondition(
        "rebalance requires a sharded deployment");
  }
  if (!request.Has("cells") || !request["cells"].is_array()) {
    return Status::InvalidArgument(
        "rebalance requires a \"cells\" array of grid cell indexes");
  }
  if (!request.Has("source") || !request["source"].is_number() ||
      !request.Has("target") || !request["target"].is_number()) {
    return Status::InvalidArgument(
        "rebalance requires numeric \"source\" and \"target\" shards");
  }
  std::vector<int> cells;
  for (const Json& c : request["cells"].AsArray()) {
    if (!c.is_number()) {
      return Status::InvalidArgument("\"cells\" entries must be numbers");
    }
    cells.push_back(static_cast<int>(c.AsInt()));
  }
  return shards_->RebalanceCells(cells,
                                 static_cast<int>(request["source"].AsInt()),
                                 static_cast<int>(request["target"].AsInt()));
}

Result<Json> ApiService::Promote(const Json& request) {
  if (!shards_) {
    return Status::FailedPrecondition(
        "promote requires a sharded deployment");
  }
  if (!request.Has("shard") || !request["shard"].is_number()) {
    return Status::InvalidArgument(
        "promote requires a numeric \"shard\" index");
  }
  return shards_->PromoteShard(static_cast<int>(request["shard"].AsInt()));
}

}  // namespace tvdp::platform
