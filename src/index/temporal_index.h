#ifndef TVDP_INDEX_TEMPORAL_INDEX_H_
#define TVDP_INDEX_TEMPORAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/timeutil.h"
#include "index/rtree.h"

namespace tvdp::index {

/// Ordered index over capture timestamps, supporting temporal range
/// queries ("all images captured in this window") and as-of scans. Backed
/// by a sorted array with binary search; inserts keep the array sorted
/// (bulk loads should use the batched constructor).
class TemporalIndex {
 public:
  TemporalIndex() = default;

  /// Bulk constructor from (timestamp, id) pairs in any order.
  explicit TemporalIndex(std::vector<std::pair<Timestamp, RecordId>> entries);

  /// Inserts one entry (O(n) worst case; fine for simulation-scale data).
  void Insert(Timestamp ts, RecordId id);

  /// Record ids with timestamp in the closed interval [begin, end] — both
  /// boundaries included — time-ordered. An inverted range (begin > end)
  /// yields no results here; the query engine rejects it as
  /// InvalidArgument before reaching the index, so callers can tell "empty
  /// window" from "nonsensical window".
  std::vector<RecordId> RangeSearch(Timestamp begin, Timestamp end) const;

  /// The `k` most recent records at or before `as_of`, newest first.
  std::vector<RecordId> MostRecent(Timestamp as_of, int k) const;

  /// Statistics hook for the query planner: number of entries in
  /// [begin, end]. Exact (two binary searches on the sorted array) and
  /// O(log n) — the temporal "estimate" is really a count.
  double CardinalityEstimate(Timestamp begin, Timestamp end) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Earliest/latest timestamps (undefined when empty).
  Timestamp min_timestamp() const { return entries_.front().first; }
  Timestamp max_timestamp() const { return entries_.back().first; }

 private:
  std::vector<std::pair<Timestamp, RecordId>> entries_;  // sorted by time
};

}  // namespace tvdp::index

#endif  // TVDP_INDEX_TEMPORAL_INDEX_H_
