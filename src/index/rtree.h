#ifndef TVDP_INDEX_RTREE_H_
#define TVDP_INDEX_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "geo/bbox.h"
#include "geo/geo_point.h"

namespace tvdp::index {

/// Identifier of an indexed record (the Images table primary key).
using RecordId = int64_t;

/// Dynamic R-tree over geographic bounding boxes with R*-style split
/// (axis chosen by minimum perimeter sum, distribution by minimum overlap).
/// Serves TVDP's spatial queries: point/range containment and k-nearest
/// neighbours (best-first with box min-distance).
class RTree {
 public:
  struct Options {
    /// Maximum entries per node (M). Minimum is 40% of M.
    int max_entries = 16;
  };

  RTree() : RTree(Options()) {}
  explicit RTree(Options options);

  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Deep copy for MVCC snapshot publication. Copying is deliberately
  /// spelled Clone() (the copy constructor stays deleted) so accidental
  /// pass-by-value of a live index cannot compile.
  RTree Clone() const { return RTree(*this); }

  /// Inserts a record with its (non-empty) bounding box.
  Status Insert(const geo::BoundingBox& box, RecordId id);

  /// Builds a packed tree from scratch with Sort-Tile-Recursive bulk
  /// loading (Leutenegger et al.): entries are tiled by longitude then
  /// latitude into full leaves, and parent levels are packed the same
  /// way. Produces near-100% node utilization — the right way to index a
  /// large static corpus. Fails on any empty box; the returned tree still
  /// accepts incremental Insert/Remove afterwards.
  static Result<RTree> BulkLoad(
      const std::vector<std::pair<geo::BoundingBox, RecordId>>& entries,
      Options options);
  static Result<RTree> BulkLoad(
      const std::vector<std::pair<geo::BoundingBox, RecordId>>& entries) {
    return BulkLoad(entries, Options());
  }

  /// Removes one entry matching (box, id); NotFound if absent.
  Status Remove(const geo::BoundingBox& box, RecordId id);

  /// All record ids whose boxes intersect `query`.
  std::vector<RecordId> RangeSearch(const geo::BoundingBox& query) const;

  /// Statistics hook for the query planner: estimated number of entries
  /// whose boxes intersect `query`, without materializing them. Descends
  /// two levels of the tree and assumes uniform density (and equal subtree
  /// sizes) below — O(fan-out^2), never O(result). Exact at leaf level.
  double CardinalityEstimate(const geo::BoundingBox& query) const;

  /// The `k` records whose boxes are nearest to `point` (by box
  /// min-distance in degree space, then insertion order for ties).
  std::vector<RecordId> KNearest(const geo::GeoPoint& point, int k) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;

  /// Internal consistency check (every child box inside its parent box);
  /// used by property tests.
  bool CheckInvariants() const;

 private:
  // Backs Clone() only; kept private so copies stay explicit.
  RTree(const RTree& other) = default;

  struct Entry {
    geo::BoundingBox box;
    RecordId id = 0;        // valid in leaves
    int child = -1;         // valid in internal nodes
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  int NewNode(bool leaf);
  geo::BoundingBox NodeBox(int node) const;
  double EstimateNode(int node, const geo::BoundingBox& query, double weight,
                      int levels_left) const;
  int ChooseLeaf(int node, const geo::BoundingBox& box, int target_level,
                 int level, std::vector<int>* path) const;
  /// Splits `node` in place; returns the new sibling node index.
  int SplitNode(int node);
  void AdjustTree(const std::vector<int>& path);

  Options options_;
  int min_entries_;
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t size_ = 0;
};

/// Minimum distance (degree space) from a point to a box; 0 when inside.
double MinDistDeg(const geo::GeoPoint& p, const geo::BoundingBox& box);

}  // namespace tvdp::index

#endif  // TVDP_INDEX_RTREE_H_
