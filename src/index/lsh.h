#ifndef TVDP_INDEX_LSH_H_
#define TVDP_INDEX_LSH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/rtree.h"
#include "ml/dataset.h"

namespace tvdp::index {

/// Locality-sensitive hashing for Euclidean distance, after Datar et al.
/// (SoCG 2004): each of L tables hashes a vector with k p-stable (Gaussian)
/// projections h(x) = floor((a.x + b) / w); candidates from matching
/// buckets are re-ranked by exact distance. This serves TVDP's visual
/// queries (top-k similar images, similarity threshold).
class LshIndex {
 public:
  struct Options {
    int num_tables = 8;        ///< L
    int hashes_per_table = 8;  ///< k
    double bucket_width = 1.0; ///< w, relative to feature scale
    uint64_t seed = 31;
    /// Number of neighbouring probes per table (multi-probe LSH); 0 means
    /// exact bucket only.
    int probes = 2;
    /// Pool for parallel multi-table probing and exact-distance re-ranking
    /// of large candidate sets; nullptr = sequential. Queries are safe to
    /// run concurrently; Insert needs external exclusion (the QueryEngine
    /// holds its writer lock).
    ThreadPool* pool = nullptr;
  };

  /// Creates an index for vectors of dimensionality `dim`.
  LshIndex(size_t dim, Options options);
  LshIndex(size_t dim) : LshIndex(dim, Options()) {}  // NOLINT

  /// Inserts a vector with its record id.
  Status Insert(const ml::FeatureVector& v, RecordId id);

  /// Deep copy for MVCC snapshot publication (the atomic counter makes the
  /// type non-copyable, so copies are explicit and heap-allocated — callers
  /// hold them by shared_ptr across snapshot versions). Requires the same
  /// external exclusion as Insert.
  std::shared_ptr<LshIndex> Clone() const;

  /// Approximate top-k by L2 distance. Results are (id, distance) sorted
  /// ascending; may return fewer than k when buckets are sparse.
  ///
  /// `ctx` (optional) is checked between per-table probes and candidate
  /// ranking chunks; a failed context returns the partial results ranked so
  /// far — the caller (QueryEngine) converts the failed context into a
  /// kDeadlineExceeded/kCancelled status. `probes_override` >= 0 substitutes
  /// the configured multi-probe budget for this query only (degraded plans
  /// probe fewer neighbouring buckets).
  std::vector<std::pair<RecordId, double>> KNearest(
      const ml::FeatureVector& query, int k,
      const RequestContext* ctx = nullptr, int probes_override = -1) const;

  /// All candidates within `threshold` L2 distance (approximate recall).
  /// `ctx` / `probes_override` as in KNearest.
  std::vector<std::pair<RecordId, double>> RangeSearch(
      const ml::FeatureVector& query, double threshold,
      const RequestContext* ctx = nullptr, int probes_override = -1) const;

  /// Statistics hook for the query planner: the number of distinct
  /// candidates the configured (or overridden) probe budget would surface
  /// for `query` — bucket lookups and a seen-bitmap only, no distance
  /// arithmetic. This is the exact candidate count the subsequent
  /// KNearest/RangeSearch would rank, so threshold-predicate selectivity
  /// estimates are as accurate as the hash family allows.
  double CardinalityEstimate(const ml::FeatureVector& query,
                             int probes_override = -1) const;

  size_t size() const { return vectors_.size(); }
  size_t dim() const { return dim_; }

  /// Candidates examined by the last query (ablation instrumentation).
  /// Under concurrent queries this is a point-in-time observation.
  int64_t last_candidates() const {
    return last_candidates_.load(std::memory_order_relaxed);
  }

 private:
  using BucketKey = uint64_t;

  /// Hash signature of `v` in `table`, with optional perturbation of the
  /// `perturb`-th hash by +-1 (multi-probe).
  BucketKey Signature(const ml::FeatureVector& v, int table, int perturb_index,
                      int perturb_delta) const;

  std::vector<RecordId> CollectCandidates(const ml::FeatureVector& query,
                                          const RequestContext* ctx,
                                          int probes) const;

  /// Exact L2 distances of `slots` against `query`, fanned out across the
  /// pool when the set is large.
  std::vector<std::pair<RecordId, double>> RankCandidates(
      const ml::FeatureVector& query, const std::vector<RecordId>& slots,
      const RequestContext* ctx) const;

  size_t dim_;
  Options options_;
  // projections_[table][hash] is a dim-vector; offsets_[table][hash] in [0,w).
  std::vector<std::vector<ml::FeatureVector>> projections_;
  std::vector<std::vector<double>> offsets_;
  std::vector<std::unordered_map<BucketKey, std::vector<RecordId>>> tables_;
  std::vector<ml::FeatureVector> vectors_;  // slot = insertion order
  std::vector<RecordId> ids_;
  mutable std::atomic<int64_t> last_candidates_ = 0;
};

}  // namespace tvdp::index

#endif  // TVDP_INDEX_LSH_H_
