#include "index/temporal_index.h"

#include <algorithm>

namespace tvdp::index {

TemporalIndex::TemporalIndex(
    std::vector<std::pair<Timestamp, RecordId>> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end());
}

void TemporalIndex::Insert(Timestamp ts, RecordId id) {
  auto it = std::upper_bound(entries_.begin(), entries_.end(),
                             std::make_pair(ts, id));
  entries_.insert(it, {ts, id});
}

std::vector<RecordId> TemporalIndex::RangeSearch(Timestamp begin,
                                                 Timestamp end) const {
  std::vector<RecordId> out;
  if (begin > end) return out;
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), begin,
      [](const auto& e, Timestamp t) { return e.first < t; });
  for (auto it = lo; it != entries_.end() && it->first <= end; ++it) {
    out.push_back(it->second);
  }
  return out;
}

double TemporalIndex::CardinalityEstimate(Timestamp begin,
                                          Timestamp end) const {
  if (begin > end) return 0;
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), begin,
      [](const auto& e, Timestamp t) { return e.first < t; });
  auto hi = std::upper_bound(
      entries_.begin(), entries_.end(), end,
      [](Timestamp t, const auto& e) { return t < e.first; });
  return static_cast<double>(hi - lo);
}

std::vector<RecordId> TemporalIndex::MostRecent(Timestamp as_of, int k) const {
  std::vector<RecordId> out;
  if (k <= 0) return out;
  auto hi = std::upper_bound(
      entries_.begin(), entries_.end(), as_of,
      [](Timestamp t, const auto& e) { return t < e.first; });
  for (auto it = hi; it != entries_.begin() && static_cast<int>(out.size()) < k;) {
    --it;
    out.push_back(it->second);
  }
  return out;
}

}  // namespace tvdp::index
