#ifndef TVDP_INDEX_ORIENTED_RTREE_H_
#define TVDP_INDEX_ORIENTED_RTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "geo/fov.h"
#include "index/rtree.h"

namespace tvdp::index {

/// A closed angular interval on the compass circle, used to prune by
/// viewing direction. Wraps across the 0°/360° seam: center 350° with
/// half-width 30° contains bearings in [320°, 20°].
struct DirectionRange {
  double center_deg = 0;  ///< target bearing
  double half_width_deg = 180;  ///< tolerance; 180 accepts everything

  /// True iff `bearing` lies within center +- half_width (mod 360).
  bool Contains(double bearing_deg) const;
};

/// Oriented R-tree over FOV descriptors (after Lu, Shahabi & Kim,
/// GeoInformatica 2016): the spatial hierarchy is an R-tree over scene
/// MBRs, and every node entry carries the union of its subtree's viewing-
/// direction intervals so direction predicates prune internal nodes too.
///
/// Supported queries:
///  * RangeSearch(box)              — FOVs whose sector intersects the box
///  * RangeSearchDirected(box, dir) — additionally filtered by direction
///  * PointQuery(p)                 — FOVs that actually see point p
///
/// Thread safety: concurrent queries are safe against each other; Insert
/// requires external exclusion against queries (the QueryEngine provides
/// it through its reader-writer lock). Exact sector refinement of large
/// candidate sets fans out across the optional pool.
class OrientedRTree {
 public:
  struct Options {
    int max_entries = 16;
    /// Pool for parallel candidate refinement; nullptr = sequential.
    ThreadPool* pool = nullptr;
  };

  OrientedRTree() : OrientedRTree(Options()) {}
  explicit OrientedRTree(Options options);

  /// Movable so the query engine can rebuild its FOV index in place after a
  /// bulk delete. The atomic candidate counter transfers as a plain
  /// load/store: a move requires the same external exclusion as Insert.
  OrientedRTree(OrientedRTree&& other) noexcept;
  OrientedRTree& operator=(OrientedRTree&& other) noexcept;

  /// Deep copy for MVCC snapshot publication; requires the same external
  /// exclusion as Insert (the engine clones under its writer lock).
  OrientedRTree Clone() const;

  /// Inserts an FOV with its record id.
  Status Insert(const geo::FieldOfView& fov, RecordId id);

  /// Record ids whose FOV sector intersects `box` (exact refinement).
  /// `ctx` (optional) is checked at refinement chunk boundaries; a failed
  /// context returns whatever refined so far — the engine converts the
  /// failed context into an error status, so partial lists never escape.
  std::vector<RecordId> RangeSearch(const geo::BoundingBox& box,
                                    const RequestContext* ctx = nullptr) const;

  /// Range search with an additional viewing-direction predicate.
  std::vector<RecordId> RangeSearchDirected(const geo::BoundingBox& box,
                                            const DirectionRange& dir) const;

  /// Record ids of FOVs containing the point `p`.
  std::vector<RecordId> PointQuery(const geo::GeoPoint& p,
                                   const RequestContext* ctx = nullptr) const;

  /// Statistics hook for the query planner: estimated number of FOVs
  /// whose scene MBR intersects `query` (the filter step; exact sector
  /// refinement typically keeps most of them). Delegates to the underlying
  /// R-tree estimate — never materializes candidates.
  double CardinalityEstimate(const geo::BoundingBox& query) const {
    return tree_.CardinalityEstimate(query);
  }

  size_t size() const { return fovs_.size(); }

  /// Candidate count examined by the last Range/Point query; exposes the
  /// filter-step selectivity for the index-ablation bench. Under
  /// concurrent queries this is a point-in-time observation.
  int64_t last_candidates() const {
    return last_candidates_.load(std::memory_order_relaxed);
  }

 private:
  struct Stored {
    geo::FieldOfView fov;
    RecordId id;
  };

  /// Runs `match(stored)` over every candidate slot — in parallel via the
  /// pool when the set is large — and returns matching record ids in
  /// candidate order.
  std::vector<RecordId> Refine(
      const std::vector<RecordId>& candidates,
      const std::function<bool(const Stored&)>& match,
      const RequestContext* ctx = nullptr) const;

  Options options_;
  // Filter structure: R-tree over scene MBRs keyed by position in fovs_.
  RTree tree_;
  std::vector<Stored> fovs_;
  mutable std::atomic<int64_t> last_candidates_ = 0;
};

}  // namespace tvdp::index

#endif  // TVDP_INDEX_ORIENTED_RTREE_H_
