#include "index/lsh.h"

#include <algorithm>
#include <cmath>

namespace tvdp::index {

LshIndex::LshIndex(size_t dim, Options options)
    : dim_(dim), options_(options) {
  options_.num_tables = std::max(options_.num_tables, 1);
  options_.hashes_per_table = std::max(options_.hashes_per_table, 1);
  if (options_.bucket_width <= 0) options_.bucket_width = 1.0;
  Rng rng(options_.seed);
  projections_.resize(static_cast<size_t>(options_.num_tables));
  offsets_.resize(static_cast<size_t>(options_.num_tables));
  tables_.resize(static_cast<size_t>(options_.num_tables));
  for (int t = 0; t < options_.num_tables; ++t) {
    for (int h = 0; h < options_.hashes_per_table; ++h) {
      ml::FeatureVector a(dim_);
      for (double& x : a) x = rng.Normal();
      projections_[static_cast<size_t>(t)].push_back(std::move(a));
      offsets_[static_cast<size_t>(t)].push_back(
          rng.Uniform(0, options_.bucket_width));
    }
  }
}

LshIndex::BucketKey LshIndex::Signature(const ml::FeatureVector& v, int table,
                                        int perturb_index,
                                        int perturb_delta) const {
  // FNV-1a over the per-hash integer codes.
  uint64_t key = 1469598103934665603ULL;
  const auto& projs = projections_[static_cast<size_t>(table)];
  const auto& offs = offsets_[static_cast<size_t>(table)];
  for (int h = 0; h < options_.hashes_per_table; ++h) {
    double proj = ml::Dot(projs[static_cast<size_t>(h)], v) +
                  offs[static_cast<size_t>(h)];
    int64_t code =
        static_cast<int64_t>(std::floor(proj / options_.bucket_width));
    if (h == perturb_index) code += perturb_delta;
    uint64_t u = static_cast<uint64_t>(code);
    for (int byte = 0; byte < 8; ++byte) {
      key ^= (u >> (8 * byte)) & 0xFF;
      key *= 1099511628211ULL;
    }
  }
  return key;
}

std::shared_ptr<LshIndex> LshIndex::Clone() const {
  auto out = std::make_shared<LshIndex>(dim_, options_);
  // The constructor derives projections_/offsets_ from the seed; copy them
  // anyway so a clone is bit-identical even if the derivation changes.
  out->projections_ = projections_;
  out->offsets_ = offsets_;
  out->tables_ = tables_;
  out->vectors_ = vectors_;
  out->ids_ = ids_;
  out->last_candidates_.store(last_candidates_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  return out;
}

Status LshIndex::Insert(const ml::FeatureVector& v, RecordId id) {
  if (v.size() != dim_) {
    return Status::InvalidArgument("vector dimensionality mismatch");
  }
  RecordId slot = static_cast<RecordId>(vectors_.size());
  vectors_.push_back(v);
  ids_.push_back(id);
  for (int t = 0; t < options_.num_tables; ++t) {
    tables_[static_cast<size_t>(t)][Signature(v, t, -1, 0)].push_back(slot);
  }
  return Status::OK();
}

namespace {

/// Work thresholds below which a query skips the pool: the fan-out only
/// pays off once signature or distance arithmetic dominates scheduling.
constexpr size_t kParallelProbeMinVectors = 1024;
constexpr size_t kParallelRankMinCandidates = 256;

}  // namespace

std::vector<RecordId> LshIndex::CollectCandidates(
    const ml::FeatureVector& query, const RequestContext* ctx,
    int probes) const {
  // Per-table probing is independent: each table's signatures (the k·dim
  // dot products, times 1 + 2·probes perturbations) can be computed on a
  // worker. Bucket contents are read-only during queries; the per-table
  // result lists are merged with a seen-bitmap on the calling thread.
  size_t num_tables = static_cast<size_t>(options_.num_tables);
  std::vector<std::vector<RecordId>> per_table(num_tables);
  auto probe_table = [&](size_t t) {
    std::vector<RecordId>& local = per_table[t];
    auto probe = [&](int perturb_index, int perturb_delta) {
      auto it = tables_[t].find(Signature(query, static_cast<int>(t),
                                          perturb_index, perturb_delta));
      if (it == tables_[t].end()) return;
      local.insert(local.end(), it->second.begin(), it->second.end());
    };
    probe(-1, 0);
    // Multi-probe: perturb the first few hash coordinates by +-1.
    for (int p = 0; p < probes && p < options_.hashes_per_table; ++p) {
      probe(p, +1);
      probe(p, -1);
    }
  };
  if (options_.pool && num_tables >= 2 &&
      vectors_.size() >= kParallelProbeMinVectors) {
    auto probe_span = [&](size_t begin, size_t end) {
      for (size_t t = begin; t < end; ++t) probe_table(t);
      return Status::OK();
    };
    if (ctx) {
      (void)options_.pool->ParallelFor(*ctx, num_tables, 1, probe_span);
    } else {
      (void)options_.pool->ParallelFor(num_tables, 1, probe_span);
    }
  } else {
    for (size_t t = 0; t < num_tables; ++t) {
      if (ctx && !ctx->Check().ok()) break;
      probe_table(t);
    }
  }

  std::vector<RecordId> slots;
  std::vector<bool> seen(vectors_.size(), false);
  for (const std::vector<RecordId>& local : per_table) {
    for (RecordId slot : local) {
      if (!seen[static_cast<size_t>(slot)]) {
        seen[static_cast<size_t>(slot)] = true;
        slots.push_back(slot);
      }
    }
  }
  last_candidates_.store(static_cast<int64_t>(slots.size()),
                         std::memory_order_relaxed);
  return slots;
}

std::vector<std::pair<RecordId, double>> LshIndex::RankCandidates(
    const ml::FeatureVector& query, const std::vector<RecordId>& slots,
    const RequestContext* ctx) const {
  // A failed context leaves the tail of `out` at distance 0 for slot 0;
  // callers detect the failed context and discard the partial ranking, so
  // the placeholder entries are never observed.
  std::vector<std::pair<RecordId, double>> out(slots.size());
  auto rank_span = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      size_t slot = static_cast<size_t>(slots[i]);
      out[i] = {ids_[slot], ml::L2Distance(query, vectors_[slot])};
    }
    return Status::OK();
  };
  if (options_.pool && slots.size() >= kParallelRankMinCandidates) {
    if (ctx) {
      (void)options_.pool->ParallelFor(*ctx, slots.size(), 64, rank_span);
    } else {
      (void)options_.pool->ParallelFor(slots.size(), 64, rank_span);
    }
  } else if (!ctx || ctx->Check().ok()) {
    (void)rank_span(0, slots.size());
  }
  return out;
}

double LshIndex::CardinalityEstimate(const ml::FeatureVector& query,
                                     int probes_override) const {
  if (query.size() != dim_ || vectors_.empty()) return 0;
  int probes = probes_override >= 0 ? probes_override : options_.probes;
  // Mirror CollectCandidates' bucket enumeration, but only count distinct
  // slots — no per-table lists, no ranking, no instrumentation update.
  std::vector<bool> seen(vectors_.size(), false);
  size_t distinct = 0;
  for (size_t t = 0; t < static_cast<size_t>(options_.num_tables); ++t) {
    auto count_bucket = [&](int perturb_index, int perturb_delta) {
      auto it = tables_[t].find(Signature(query, static_cast<int>(t),
                                          perturb_index, perturb_delta));
      if (it == tables_[t].end()) return;
      for (RecordId slot : it->second) {
        if (!seen[static_cast<size_t>(slot)]) {
          seen[static_cast<size_t>(slot)] = true;
          ++distinct;
        }
      }
    };
    count_bucket(-1, 0);
    for (int p = 0; p < probes && p < options_.hashes_per_table; ++p) {
      count_bucket(p, +1);
      count_bucket(p, -1);
    }
  }
  return static_cast<double>(distinct);
}

std::vector<std::pair<RecordId, double>> LshIndex::KNearest(
    const ml::FeatureVector& query, int k, const RequestContext* ctx,
    int probes_override) const {
  std::vector<std::pair<RecordId, double>> out;
  if (k <= 0 || query.size() != dim_) return out;
  int probes = probes_override >= 0 ? probes_override : options_.probes;
  out = RankCandidates(query, CollectCandidates(query, ctx, probes), ctx);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  if (out.size() > static_cast<size_t>(k)) out.resize(static_cast<size_t>(k));
  return out;
}

std::vector<std::pair<RecordId, double>> LshIndex::RangeSearch(
    const ml::FeatureVector& query, double threshold, const RequestContext* ctx,
    int probes_override) const {
  std::vector<std::pair<RecordId, double>> out;
  if (threshold < 0 || query.size() != dim_) return out;
  int probes = probes_override >= 0 ? probes_override : options_.probes;
  for (auto& [id, d] :
       RankCandidates(query, CollectCandidates(query, ctx, probes), ctx)) {
    if (d <= threshold) out.emplace_back(id, d);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace tvdp::index
