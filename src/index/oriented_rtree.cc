#include "index/oriented_rtree.h"

#include <cmath>

namespace tvdp::index {
namespace {

/// Below this many candidates the exact refinement runs inline.
constexpr size_t kParallelRefineMin = 128;

}  // namespace

bool DirectionRange::Contains(double bearing_deg) const {
  // AngularDifference wraps into (-180, 180], so the test is seam-safe:
  // a bearing of 5° against center 350° yields a 15° difference.
  double diff = std::abs(geo::AngularDifference(bearing_deg, center_deg));
  return diff <= half_width_deg + 1e-12;
}

OrientedRTree::OrientedRTree(Options options)
    : options_(options), tree_(RTree::Options{options.max_entries}) {}

OrientedRTree::OrientedRTree(OrientedRTree&& other) noexcept
    : options_(other.options_),
      tree_(std::move(other.tree_)),
      fovs_(std::move(other.fovs_)),
      last_candidates_(
          other.last_candidates_.load(std::memory_order_relaxed)) {}

OrientedRTree& OrientedRTree::operator=(OrientedRTree&& other) noexcept {
  options_ = other.options_;
  tree_ = std::move(other.tree_);
  fovs_ = std::move(other.fovs_);
  last_candidates_.store(other.last_candidates_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  return *this;
}

OrientedRTree OrientedRTree::Clone() const {
  OrientedRTree out(options_);
  out.tree_ = tree_.Clone();
  out.fovs_ = fovs_;
  out.last_candidates_.store(last_candidates_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  return out;
}

Status OrientedRTree::Insert(const geo::FieldOfView& fov, RecordId id) {
  geo::BoundingBox scene = fov.SceneLocation();
  if (scene.IsEmpty()) {
    return Status::InvalidArgument("FOV has an empty scene MBR");
  }
  RecordId slot = static_cast<RecordId>(fovs_.size());
  fovs_.push_back(Stored{fov, id});
  return tree_.Insert(scene, slot);
}

std::vector<RecordId> OrientedRTree::Refine(
    const std::vector<RecordId>& candidates,
    const std::function<bool(const Stored&)>& match,
    const RequestContext* ctx) const {
  last_candidates_.store(static_cast<int64_t>(candidates.size()),
                         std::memory_order_relaxed);
  if (options_.pool && candidates.size() >= kParallelRefineMin) {
    std::vector<char> hit(candidates.size(), 0);
    auto refine_span = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hit[i] = match(fovs_[static_cast<size_t>(candidates[i])]) ? 1 : 0;
      }
      return Status::OK();
    };
    if (ctx) {
      (void)options_.pool->ParallelFor(*ctx, candidates.size(), 32,
                                       refine_span);
    } else {
      (void)options_.pool->ParallelFor(candidates.size(), 32, refine_span);
    }
    std::vector<RecordId> out;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (hit[i]) out.push_back(fovs_[static_cast<size_t>(candidates[i])].id);
    }
    return out;
  }
  std::vector<RecordId> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (ctx && i % 64 == 0 && !ctx->Check().ok()) break;
    const Stored& s = fovs_[static_cast<size_t>(candidates[i])];
    if (match(s)) out.push_back(s.id);
  }
  return out;
}

std::vector<RecordId> OrientedRTree::RangeSearch(
    const geo::BoundingBox& box, const RequestContext* ctx) const {
  return Refine(
      tree_.RangeSearch(box),
      [&box](const Stored& s) { return s.fov.IntersectsBBox(box); }, ctx);
}

std::vector<RecordId> OrientedRTree::RangeSearchDirected(
    const geo::BoundingBox& box, const DirectionRange& dir) const {
  return Refine(tree_.RangeSearch(box), [&box, &dir](const Stored& s) {
    return dir.Contains(s.fov.direction_deg) && s.fov.IntersectsBBox(box);
  });
}

std::vector<RecordId> OrientedRTree::PointQuery(const geo::GeoPoint& p,
                                                const RequestContext* ctx) const {
  geo::BoundingBox probe;
  probe.min_lat = probe.max_lat = p.lat;
  probe.min_lon = probe.max_lon = p.lon;
  return Refine(
      tree_.RangeSearch(probe),
      [&p](const Stored& s) { return s.fov.ContainsPoint(p); }, ctx);
}

}  // namespace tvdp::index
