#include "index/oriented_rtree.h"

#include <cmath>

namespace tvdp::index {

bool DirectionRange::Contains(double bearing_deg) const {
  double diff = std::abs(geo::AngularDifference(bearing_deg, center_deg));
  return diff <= half_width_deg + 1e-12;
}

OrientedRTree::OrientedRTree(Options options)
    : options_(options), tree_(RTree::Options{options.max_entries}) {}

Status OrientedRTree::Insert(const geo::FieldOfView& fov, RecordId id) {
  geo::BoundingBox scene = fov.SceneLocation();
  if (scene.IsEmpty()) {
    return Status::InvalidArgument("FOV has an empty scene MBR");
  }
  RecordId slot = static_cast<RecordId>(fovs_.size());
  fovs_.push_back(Stored{fov, id});
  return tree_.Insert(scene, slot);
}

std::vector<RecordId> OrientedRTree::RangeSearch(
    const geo::BoundingBox& box) const {
  std::vector<RecordId> candidates = tree_.RangeSearch(box);
  last_candidates_ = static_cast<int64_t>(candidates.size());
  std::vector<RecordId> out;
  for (RecordId slot : candidates) {
    const Stored& s = fovs_[static_cast<size_t>(slot)];
    if (s.fov.IntersectsBBox(box)) out.push_back(s.id);
  }
  return out;
}

std::vector<RecordId> OrientedRTree::RangeSearchDirected(
    const geo::BoundingBox& box, const DirectionRange& dir) const {
  std::vector<RecordId> candidates = tree_.RangeSearch(box);
  last_candidates_ = static_cast<int64_t>(candidates.size());
  std::vector<RecordId> out;
  for (RecordId slot : candidates) {
    const Stored& s = fovs_[static_cast<size_t>(slot)];
    if (!dir.Contains(s.fov.direction_deg)) continue;
    if (s.fov.IntersectsBBox(box)) out.push_back(s.id);
  }
  return out;
}

std::vector<RecordId> OrientedRTree::PointQuery(const geo::GeoPoint& p) const {
  geo::BoundingBox probe;
  probe.min_lat = probe.max_lat = p.lat;
  probe.min_lon = probe.max_lon = p.lon;
  std::vector<RecordId> candidates = tree_.RangeSearch(probe);
  last_candidates_ = static_cast<int64_t>(candidates.size());
  std::vector<RecordId> out;
  for (RecordId slot : candidates) {
    const Stored& s = fovs_[static_cast<size_t>(slot)];
    if (s.fov.ContainsPoint(p)) out.push_back(s.id);
  }
  return out;
}

}  // namespace tvdp::index
