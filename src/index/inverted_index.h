#ifndef TVDP_INDEX_INVERTED_INDEX_H_
#define TVDP_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/rtree.h"

namespace tvdp::index {

/// Inverted keyword index (Zobel & Moffat, CSUR 2006) over the textual
/// descriptors (manual keywords) of the TVDP data model. Posting lists are
/// kept sorted by record id; ranked retrieval uses tf-idf with cosine-style
/// length normalization.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Indexes `terms` for document `id`. Terms are used as-is (callers
  /// normally pass TokenizeWords output). Re-adding the same id appends.
  Status AddDocument(RecordId id, const std::vector<std::string>& terms);

  /// Documents containing every query term (conjunctive boolean).
  std::vector<RecordId> QueryAnd(const std::vector<std::string>& terms) const;

  /// Documents containing at least one query term (disjunctive boolean).
  std::vector<RecordId> QueryOr(const std::vector<std::string>& terms) const;

  /// Top-k documents by accumulated tf-idf score.
  std::vector<std::pair<RecordId, double>> QueryRanked(
      const std::vector<std::string>& terms, int k) const;

  /// Number of distinct indexed terms.
  size_t vocabulary_size() const { return postings_.size(); }
  /// Number of distinct indexed documents.
  size_t document_count() const { return doc_lengths_.size(); }
  /// Documents containing `term`.
  size_t DocumentFrequency(const std::string& term) const;

  /// Statistics hook for the query planner: estimated result size of a
  /// boolean query over `terms`. Conjunctive: the rarest term's document
  /// frequency (an upper bound, exact for single terms). Disjunctive: the
  /// summed frequencies capped at the corpus size (an upper bound). Never
  /// touches posting-list contents.
  double CardinalityEstimate(const std::vector<std::string>& terms,
                             bool conjunctive) const;

 private:
  struct Posting {
    RecordId id;
    int32_t term_frequency;
  };

  // term -> postings sorted by id.
  std::map<std::string, std::vector<Posting>> postings_;
  // id -> number of term occurrences (for length normalization).
  std::map<RecordId, int64_t> doc_lengths_;
};

}  // namespace tvdp::index

#endif  // TVDP_INDEX_INVERTED_INDEX_H_
