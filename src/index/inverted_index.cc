#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace tvdp::index {

Status InvertedIndex::AddDocument(RecordId id,
                                  const std::vector<std::string>& terms) {
  if (terms.empty()) return Status::InvalidArgument("no terms to index");
  std::unordered_map<std::string, int32_t> counts;
  for (const auto& t : terms) {
    if (!t.empty()) ++counts[t];
  }
  for (const auto& [term, tf] : counts) {
    auto& list = postings_[term];
    auto it = std::lower_bound(
        list.begin(), list.end(), id,
        [](const Posting& p, RecordId v) { return p.id < v; });
    if (it != list.end() && it->id == id) {
      it->term_frequency += tf;
    } else {
      list.insert(it, Posting{id, tf});
    }
  }
  doc_lengths_[id] += static_cast<int64_t>(terms.size());
  return Status::OK();
}

size_t InvertedIndex::DocumentFrequency(const std::string& term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? 0 : it->second.size();
}

double InvertedIndex::CardinalityEstimate(
    const std::vector<std::string>& terms, bool conjunctive) const {
  if (terms.empty()) return 0;
  double est = conjunctive ? static_cast<double>(document_count()) : 0;
  for (const std::string& t : terms) {
    double df = static_cast<double>(DocumentFrequency(t));
    if (conjunctive) {
      est = std::min(est, df);
    } else {
      est += df;
    }
  }
  return std::min(est, static_cast<double>(document_count()));
}

std::vector<RecordId> InvertedIndex::QueryAnd(
    const std::vector<std::string>& terms) const {
  if (terms.empty()) return {};
  // Intersect posting lists, shortest first.
  std::vector<const std::vector<Posting>*> lists;
  for (const auto& t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) return {};
    lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<RecordId> result;
  for (const Posting& p : *lists[0]) result.push_back(p.id);
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    std::vector<RecordId> next;
    const auto& list = *lists[i];
    size_t a = 0, b = 0;
    while (a < result.size() && b < list.size()) {
      if (result[a] == list[b].id) {
        next.push_back(result[a]);
        ++a;
        ++b;
      } else if (result[a] < list[b].id) {
        ++a;
      } else {
        ++b;
      }
    }
    result = std::move(next);
  }
  return result;
}

std::vector<RecordId> InvertedIndex::QueryOr(
    const std::vector<std::string>& terms) const {
  std::vector<RecordId> result;
  for (const auto& t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) continue;
    std::vector<RecordId> merged;
    merged.reserve(result.size() + it->second.size());
    size_t a = 0, b = 0;
    while (a < result.size() || b < it->second.size()) {
      if (a >= result.size()) {
        merged.push_back(it->second[b++].id);
      } else if (b >= it->second.size()) {
        merged.push_back(result[a++]);
      } else if (result[a] == it->second[b].id) {
        merged.push_back(result[a]);
        ++a;
        ++b;
      } else if (result[a] < it->second[b].id) {
        merged.push_back(result[a++]);
      } else {
        merged.push_back(it->second[b++].id);
      }
    }
    result = std::move(merged);
  }
  return result;
}

std::vector<std::pair<RecordId, double>> InvertedIndex::QueryRanked(
    const std::vector<std::string>& terms, int k) const {
  std::vector<std::pair<RecordId, double>> out;
  if (k <= 0 || doc_lengths_.empty()) return out;
  double n_docs = static_cast<double>(doc_lengths_.size());
  std::unordered_map<RecordId, double> scores;
  for (const auto& t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) continue;
    double idf = std::log((1.0 + n_docs) / (1.0 + it->second.size())) + 1.0;
    for (const Posting& p : it->second) {
      double tf = 1.0 + std::log(static_cast<double>(p.term_frequency));
      scores[p.id] += tf * idf;
    }
  }
  out.reserve(scores.size());
  for (const auto& [id, score] : scores) {
    auto len_it = doc_lengths_.find(id);
    double norm = len_it != doc_lengths_.end() && len_it->second > 0
                      ? std::sqrt(static_cast<double>(len_it->second))
                      : 1.0;
    out.emplace_back(id, score / norm);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > static_cast<size_t>(k)) out.resize(static_cast<size_t>(k));
  return out;
}

}  // namespace tvdp::index
