#include "index/visual_rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace tvdp::index {

void VisualRTree::FeatureRect::Extend(const ml::FeatureVector& v) {
  if (lo.empty()) {
    lo = v;
    hi = v;
    return;
  }
  for (size_t d = 0; d < lo.size() && d < v.size(); ++d) {
    lo[d] = std::min(lo[d], v[d]);
    hi[d] = std::max(hi[d], v[d]);
  }
}

void VisualRTree::FeatureRect::Extend(const FeatureRect& o) {
  if (o.IsEmpty()) return;
  Extend(o.lo);
  Extend(o.hi);
}

double VisualRTree::FeatureRect::MinDist(const ml::FeatureVector& v) const {
  if (IsEmpty()) return std::numeric_limits<double>::max();
  double sum = 0;
  for (size_t d = 0; d < lo.size() && d < v.size(); ++d) {
    double diff = 0;
    if (v[d] < lo[d]) diff = lo[d] - v[d];
    else if (v[d] > hi[d]) diff = v[d] - hi[d];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

VisualRTree::VisualRTree(size_t feature_dim, Options options)
    : dim_(feature_dim), options_(options) {
  options_.max_entries = std::max(options_.max_entries, 4);
  if (options_.spatial_norm_deg <= 0) options_.spatial_norm_deg = 1.0;
  if (options_.visual_norm <= 0) options_.visual_norm = 1.0;
  root_ = NewNode(true);
}

int VisualRTree::NewNode(bool leaf) {
  nodes_.emplace_back();
  nodes_.back().leaf = leaf;
  return static_cast<int>(nodes_.size()) - 1;
}

geo::BoundingBox VisualRTree::NodeBox(int node) const {
  geo::BoundingBox box = geo::BoundingBox::Empty();
  for (const Entry& e : nodes_[static_cast<size_t>(node)].entries) {
    box.Extend(e.box);
  }
  return box;
}

VisualRTree::FeatureRect VisualRTree::NodeRect(int node) const {
  FeatureRect rect;
  for (const Entry& e : nodes_[static_cast<size_t>(node)].entries) {
    rect.Extend(e.rect);
  }
  return rect;
}

int VisualRTree::SplitNode(int node) {
  // Spatial quadratic-ish split: sort on the longer spatial axis, split at
  // the median. (The feature rects simply follow the chosen halves; the
  // spatial dimension dominates locality for geo-tagged street imagery.)
  std::vector<Entry> entries =
      std::move(nodes_[static_cast<size_t>(node)].entries);
  nodes_[static_cast<size_t>(node)].entries.clear();

  geo::BoundingBox all = geo::BoundingBox::Empty();
  for (const Entry& e : entries) all.Extend(e.box);
  bool by_lat = (all.max_lat - all.min_lat) >= (all.max_lon - all.min_lon);
  std::sort(entries.begin(), entries.end(),
            [&](const Entry& a, const Entry& b) {
              double ca = by_lat ? (a.box.min_lat + a.box.max_lat)
                                 : (a.box.min_lon + a.box.max_lon);
              double cb = by_lat ? (b.box.min_lat + b.box.max_lat)
                                 : (b.box.min_lon + b.box.max_lon);
              return ca < cb;
            });
  int sibling = NewNode(nodes_[static_cast<size_t>(node)].leaf);
  Node& n = nodes_[static_cast<size_t>(node)];
  Node& s = nodes_[static_cast<size_t>(sibling)];
  size_t half = entries.size() / 2;
  for (size_t i = 0; i < entries.size(); ++i) {
    (i < half ? n : s).entries.push_back(std::move(entries[i]));
  }
  return sibling;
}

std::shared_ptr<VisualRTree> VisualRTree::Clone() const {
  auto out = std::make_shared<VisualRTree>(dim_, options_);
  out->nodes_ = nodes_;
  out->root_ = root_;
  out->size_ = size_;
  out->features_ = features_;
  out->locations_ = locations_;
  out->ids_ = ids_;
  out->last_nodes_visited_.store(
      last_nodes_visited_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return out;
}

Status VisualRTree::Insert(const geo::GeoPoint& location,
                           const ml::FeatureVector& feature, RecordId id) {
  if (feature.size() != dim_) {
    return Status::InvalidArgument("feature dimensionality mismatch");
  }
  if (!geo::IsValid(location)) {
    return Status::InvalidArgument("invalid location");
  }
  RecordId slot = static_cast<RecordId>(features_.size());
  features_.push_back(feature);
  locations_.push_back(location);
  ids_.push_back(id);

  geo::BoundingBox box;
  box.min_lat = box.max_lat = location.lat;
  box.min_lon = box.max_lon = location.lon;
  FeatureRect rect;
  rect.Extend(feature);

  // Descend by least spatial enlargement.
  std::vector<int> path;
  int cur = root_;
  while (true) {
    path.push_back(cur);
    Node& n = nodes_[static_cast<size_t>(cur)];
    if (n.leaf) break;
    int best = -1;
    double best_enl = std::numeric_limits<double>::max();
    for (const Entry& e : n.entries) {
      geo::BoundingBox merged = e.box;
      merged.Extend(box);
      double enl = merged.AreaDeg2() - e.box.AreaDeg2();
      if (enl < best_enl) {
        best_enl = enl;
        best = e.child;
      }
    }
    cur = best;
  }
  nodes_[static_cast<size_t>(cur)].entries.push_back(Entry{box, rect, slot, -1});
  ++size_;

  for (int i = static_cast<int>(path.size()) - 1; i >= 0; --i) {
    int node = path[static_cast<size_t>(i)];
    if (static_cast<int>(nodes_[static_cast<size_t>(node)].entries.size()) <=
        options_.max_entries) {
      break;
    }
    int sibling = SplitNode(node);
    if (i == 0) {
      int new_root = NewNode(false);
      nodes_[static_cast<size_t>(new_root)].entries.push_back(
          Entry{NodeBox(node), NodeRect(node), 0, node});
      nodes_[static_cast<size_t>(new_root)].entries.push_back(
          Entry{NodeBox(sibling), NodeRect(sibling), 0, sibling});
      root_ = new_root;
    } else {
      int parent = path[static_cast<size_t>(i) - 1];
      nodes_[static_cast<size_t>(parent)].entries.push_back(
          Entry{NodeBox(sibling), NodeRect(sibling), 0, sibling});
    }
  }
  // Refresh bounds along the path.
  for (int i = static_cast<int>(path.size()) - 2; i >= 0; --i) {
    Node& parent = nodes_[static_cast<size_t>(path[static_cast<size_t>(i)])];
    for (Entry& e : parent.entries) {
      if (e.child >= 0) {
        e.box = NodeBox(e.child);
        e.rect = NodeRect(e.child);
      }
    }
  }
  return Status::OK();
}

double VisualRTree::EstimateNode(int node, const geo::BoundingBox& query,
                                 double weight, int levels_left) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.entries.empty()) return 0;
  double share = weight / static_cast<double>(n.entries.size());
  if (n.leaf) {
    size_t count = 0;
    for (const Entry& e : n.entries) {
      if (e.box.Intersects(query)) ++count;
    }
    return share * static_cast<double>(count);
  }
  double est = 0;
  for (const Entry& e : n.entries) {
    if (!e.box.Intersects(query)) continue;
    if (levels_left > 0) {
      est += EstimateNode(e.child, query, share, levels_left - 1);
    } else {
      double area = e.box.AreaDeg2();
      if (area <= 0) {
        est += share;
      } else {
        geo::BoundingBox overlap = e.box.Intersection(query);
        est += share * (overlap.IsEmpty()
                            ? 0.0
                            : std::min(1.0, overlap.AreaDeg2() / area));
      }
    }
  }
  return est;
}

double VisualRTree::CardinalityEstimate(const geo::BoundingBox& box) const {
  if (root_ < 0 || size_ == 0 || box.IsEmpty()) return 0;
  return EstimateNode(root_, box, static_cast<double>(size_), 2);
}

std::vector<VisualRTree::Hit> VisualRTree::TopK(
    const geo::GeoPoint& location, const ml::FeatureVector& feature, int k,
    double alpha) const {
  std::vector<Hit> out;
  if (k <= 0 || feature.size() != dim_) return out;
  alpha = std::clamp(alpha, 0.0, 1.0);
  int64_t nodes_visited = 0;

  auto blend = [&](double spatial_deg, double visual) {
    return alpha * spatial_deg / options_.spatial_norm_deg +
           (1.0 - alpha) * visual / options_.visual_norm;
  };

  struct Item {
    double score;
    bool is_record;
    int node;
    Hit hit;
    bool operator>(const Item& o) const { return score > o.score; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.push({0.0, false, root_, {}});
  while (!pq.empty() && static_cast<int>(out.size()) < k) {
    Item item = pq.top();
    pq.pop();
    if (item.is_record) {
      out.push_back(item.hit);
      continue;
    }
    ++nodes_visited;
    const Node& n = nodes_[static_cast<size_t>(item.node)];
    for (const Entry& e : n.entries) {
      if (n.leaf) {
        size_t slot = static_cast<size_t>(e.id);
        Hit hit;
        hit.id = ids_[slot];
        hit.spatial_deg = MinDistDeg(location, e.box);
        hit.visual = ml::L2Distance(feature, features_[slot]);
        hit.score = blend(hit.spatial_deg, hit.visual);
        pq.push({hit.score, true, -1, hit});
      } else {
        double lb = blend(MinDistDeg(location, e.box), e.rect.MinDist(feature));
        pq.push({lb, false, e.child, {}});
      }
    }
  }
  last_nodes_visited_.store(nodes_visited, std::memory_order_relaxed);
  return out;
}

std::vector<VisualRTree::Hit> VisualRTree::RangeSearch(
    const geo::BoundingBox& box, const ml::FeatureVector& feature,
    double threshold) const {
  std::vector<Hit> out;
  if (box.IsEmpty() || feature.size() != dim_) return out;
  int64_t nodes_visited = 0;
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    ++nodes_visited;
    const Node& n = nodes_[static_cast<size_t>(node)];
    for (const Entry& e : n.entries) {
      if (!e.box.Intersects(box)) continue;
      if (e.rect.MinDist(feature) > threshold) continue;
      if (n.leaf) {
        size_t slot = static_cast<size_t>(e.id);
        double vd = ml::L2Distance(feature, features_[slot]);
        if (vd <= threshold && box.Contains(locations_[slot])) {
          Hit hit;
          hit.id = ids_[slot];
          hit.visual = vd;
          hit.spatial_deg = 0;
          hit.score = vd;
          out.push_back(hit);
        }
      } else {
        stack.push_back(e.child);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Hit& a, const Hit& b) {
    if (a.visual != b.visual) return a.visual < b.visual;
    return a.id < b.id;
  });
  last_nodes_visited_.store(nodes_visited, std::memory_order_relaxed);
  return out;
}

}  // namespace tvdp::index
