#ifndef TVDP_INDEX_VISUAL_RTREE_H_
#define TVDP_INDEX_VISUAL_RTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "geo/bbox.h"
#include "geo/geo_point.h"
#include "index/rtree.h"
#include "ml/dataset.h"

namespace tvdp::index {

/// Hybrid spatial-visual index (after Alfarrarjeh, Shahabi & Kim,
/// "Hybrid indexes for spatial-visual search", ACM MM Workshops 2017):
/// an R-tree in geographic space whose every node additionally maintains
/// a feature-space minimum bounding hyper-rectangle of its subtree. Both
/// bounds prune during a best-first search, so a spatial-visual top-k
/// query ("images near X that look like Y") touches only the relevant
/// fringe of the tree.
///
/// The ranking function is the convex combination used in that line of
/// work:  score = alpha * d_spatial / s_norm + (1-alpha) * d_visual / v_norm,
/// and the search is exact with respect to this score.
class VisualRTree {
 public:
  struct Options {
    int max_entries = 16;
    /// Normalizers mapping raw distances into comparable [0,1]-ish ranges.
    double spatial_norm_deg = 0.1;
    double visual_norm = 1.0;
  };

  VisualRTree(size_t feature_dim, Options options);
  explicit VisualRTree(size_t feature_dim)
      : VisualRTree(feature_dim, Options()) {}

  /// Inserts a record with camera location and visual feature.
  Status Insert(const geo::GeoPoint& location, const ml::FeatureVector& feature,
                RecordId id);

  /// Deep copy for MVCC snapshot publication (the atomic counter makes the
  /// type non-copyable, so copies are explicit and heap-allocated). Requires
  /// the same external exclusion as Insert.
  std::shared_ptr<VisualRTree> Clone() const;

  /// A scored result.
  struct Hit {
    RecordId id = 0;
    double score = 0;
    double spatial_deg = 0;
    double visual = 0;
  };

  /// Exact top-k under the alpha-blended score from (location, feature).
  std::vector<Hit> TopK(const geo::GeoPoint& location,
                        const ml::FeatureVector& feature, int k,
                        double alpha) const;

  /// All records inside `box` whose feature distance is <= `threshold`.
  std::vector<Hit> RangeSearch(const geo::BoundingBox& box,
                               const ml::FeatureVector& feature,
                               double threshold) const;

  /// Statistics hook for the query planner: estimated number of records
  /// whose location falls inside `box`, from the spatial half of the
  /// hybrid tree (two-level descent, uniform assumption below — same
  /// scheme as RTree::CardinalityEstimate). Feature-space selectivity is
  /// not modelled; callers combine this with an LSH estimate when both
  /// predicates are present.
  double CardinalityEstimate(const geo::BoundingBox& box) const;

  size_t size() const { return size_; }
  size_t feature_dim() const { return dim_; }

  /// Nodes visited by the last query (ablation instrumentation). Under
  /// concurrent queries this is a point-in-time observation.
  int64_t last_nodes_visited() const {
    return last_nodes_visited_.load(std::memory_order_relaxed);
  }

 private:
  struct FeatureRect {
    ml::FeatureVector lo;
    ml::FeatureVector hi;

    void Extend(const ml::FeatureVector& v);
    void Extend(const FeatureRect& o);
    bool IsEmpty() const { return lo.empty(); }
    /// Min L2 distance from `v` to the rectangle (0 when inside).
    double MinDist(const ml::FeatureVector& v) const;
  };
  struct Entry {
    geo::BoundingBox box;
    FeatureRect rect;
    RecordId id = 0;   // leaves: slot into features_/ids_
    int child = -1;    // internal nodes
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  int NewNode(bool leaf);
  geo::BoundingBox NodeBox(int node) const;
  FeatureRect NodeRect(int node) const;
  int SplitNode(int node);
  double EstimateNode(int node, const geo::BoundingBox& query, double weight,
                      int levels_left) const;

  size_t dim_;
  Options options_;
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t size_ = 0;
  std::vector<ml::FeatureVector> features_;
  std::vector<geo::GeoPoint> locations_;
  std::vector<RecordId> ids_;
  mutable std::atomic<int64_t> last_nodes_visited_ = 0;
};

}  // namespace tvdp::index

#endif  // TVDP_INDEX_VISUAL_RTREE_H_
