#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace tvdp::index {

double MinDistDeg(const geo::GeoPoint& p, const geo::BoundingBox& box) {
  if (box.IsEmpty()) return std::numeric_limits<double>::max();
  double dlat = 0, dlon = 0;
  if (p.lat < box.min_lat) dlat = box.min_lat - p.lat;
  else if (p.lat > box.max_lat) dlat = p.lat - box.max_lat;
  if (p.lon < box.min_lon) dlon = box.min_lon - p.lon;
  else if (p.lon > box.max_lon) dlon = p.lon - box.max_lon;
  return std::sqrt(dlat * dlat + dlon * dlon);
}

RTree::RTree(Options options) : options_(options) {
  options_.max_entries = std::max(options_.max_entries, 4);
  min_entries_ = std::max(2, options_.max_entries * 2 / 5);
  root_ = NewNode(/*leaf=*/true);
}

int RTree::NewNode(bool leaf) {
  nodes_.emplace_back();
  nodes_.back().leaf = leaf;
  return static_cast<int>(nodes_.size()) - 1;
}

geo::BoundingBox RTree::NodeBox(int node) const {
  geo::BoundingBox box = geo::BoundingBox::Empty();
  for (const Entry& e : nodes_[static_cast<size_t>(node)].entries) {
    box.Extend(e.box);
  }
  return box;
}

int RTree::ChooseLeaf(int node, const geo::BoundingBox& box,
                      int /*target_level*/, int /*level*/,
                      std::vector<int>* path) const {
  int cur = node;
  while (true) {
    path->push_back(cur);
    const Node& n = nodes_[static_cast<size_t>(cur)];
    if (n.leaf) return cur;
    // Least area enlargement, ties by smallest area.
    int best = -1;
    double best_enlargement = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();
    for (const Entry& e : n.entries) {
      geo::BoundingBox merged = e.box;
      merged.Extend(box);
      double enlargement = merged.AreaDeg2() - e.box.AreaDeg2();
      double area = e.box.AreaDeg2();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best = e.child;
      }
    }
    cur = best;
  }
}

int RTree::SplitNode(int node) {
  Node& n = nodes_[static_cast<size_t>(node)];
  std::vector<Entry> entries = std::move(n.entries);
  n.entries.clear();

  // R*-style split: pick the axis with the smaller total perimeter over
  // candidate distributions, then the distribution with minimum overlap
  // (ties: minimum total area).
  auto evaluate_axis = [&](bool by_lat, double* out_perimeter) {
    std::sort(entries.begin(), entries.end(),
              [&](const Entry& a, const Entry& b) {
                if (by_lat) {
                  if (a.box.min_lat != b.box.min_lat)
                    return a.box.min_lat < b.box.min_lat;
                  return a.box.max_lat < b.box.max_lat;
                }
                if (a.box.min_lon != b.box.min_lon)
                  return a.box.min_lon < b.box.min_lon;
                return a.box.max_lon < b.box.max_lon;
              });
    double total = 0;
    int n_entries = static_cast<int>(entries.size());
    for (int split = min_entries_; split <= n_entries - min_entries_;
         ++split) {
      geo::BoundingBox left = geo::BoundingBox::Empty();
      geo::BoundingBox right = geo::BoundingBox::Empty();
      for (int i = 0; i < split; ++i) left.Extend(entries[static_cast<size_t>(i)].box);
      for (int i = split; i < n_entries; ++i) right.Extend(entries[static_cast<size_t>(i)].box);
      total += left.PerimeterDeg() + right.PerimeterDeg();
    }
    *out_perimeter = total;
  };

  double perim_lat = 0, perim_lon = 0;
  evaluate_axis(true, &perim_lat);
  evaluate_axis(false, &perim_lon);
  bool by_lat = perim_lat <= perim_lon;
  double dummy;
  evaluate_axis(by_lat, &dummy);  // re-sort on the chosen axis

  int n_entries = static_cast<int>(entries.size());
  int best_split = min_entries_;
  double best_overlap = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (int split = min_entries_; split <= n_entries - min_entries_; ++split) {
    geo::BoundingBox left = geo::BoundingBox::Empty();
    geo::BoundingBox right = geo::BoundingBox::Empty();
    for (int i = 0; i < split; ++i) left.Extend(entries[static_cast<size_t>(i)].box);
    for (int i = split; i < n_entries; ++i) right.Extend(entries[static_cast<size_t>(i)].box);
    double overlap = left.Intersection(right).AreaDeg2();
    double area = left.AreaDeg2() + right.AreaDeg2();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split;
    }
  }

  int sibling = NewNode(nodes_[static_cast<size_t>(node)].leaf);
  Node& n2 = nodes_[static_cast<size_t>(node)];  // re-resolve after push_back
  Node& s = nodes_[static_cast<size_t>(sibling)];
  for (int i = 0; i < n_entries; ++i) {
    (i < best_split ? n2 : s).entries.push_back(std::move(entries[static_cast<size_t>(i)]));
  }
  return sibling;
}

Result<RTree> RTree::BulkLoad(
    const std::vector<std::pair<geo::BoundingBox, RecordId>>& entries,
    Options options) {
  RTree tree(options);
  if (entries.empty()) return tree;
  for (const auto& [box, id] : entries) {
    if (box.IsEmpty()) {
      return Status::InvalidArgument("bulk load: empty bounding box");
    }
  }
  const int capacity = tree.options_.max_entries;

  // Level 0: sort by longitude, tile into sqrt(n/capacity) slices, sort
  // each slice by latitude, pack runs of `capacity` into leaves.
  struct Pending {
    geo::BoundingBox box;
    RecordId id;   // leaf payload
    int child;     // internal payload (-1 for leaf level)
  };
  std::vector<Pending> level;
  level.reserve(entries.size());
  for (const auto& [box, id] : entries) level.push_back({box, id, -1});

  bool leaf_level = true;
  tree.nodes_.clear();
  while (true) {
    size_t n = level.size();
    size_t num_nodes = (n + capacity - 1) / static_cast<size_t>(capacity);
    size_t num_slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    size_t slice_size = (n + num_slices - 1) / num_slices;

    std::sort(level.begin(), level.end(), [](const Pending& a, const Pending& b) {
      double ca = a.box.min_lon + a.box.max_lon;
      double cb = b.box.min_lon + b.box.max_lon;
      if (ca != cb) return ca < cb;
      return a.box.min_lat < b.box.min_lat;
    });
    std::vector<Pending> next_level;
    for (size_t start = 0; start < n; start += slice_size) {
      size_t end = std::min(n, start + slice_size);
      std::sort(level.begin() + static_cast<long>(start),
                level.begin() + static_cast<long>(end),
                [](const Pending& a, const Pending& b) {
                  double ca = a.box.min_lat + a.box.max_lat;
                  double cb = b.box.min_lat + b.box.max_lat;
                  if (ca != cb) return ca < cb;
                  return a.box.min_lon < b.box.min_lon;
                });
      for (size_t i = start; i < end; i += static_cast<size_t>(capacity)) {
        size_t node_end = std::min(end, i + static_cast<size_t>(capacity));
        int node = tree.NewNode(leaf_level);
        geo::BoundingBox node_box = geo::BoundingBox::Empty();
        for (size_t j = i; j < node_end; ++j) {
          if (leaf_level) {
            tree.nodes_[static_cast<size_t>(node)].entries.push_back(
                Entry{level[j].box, level[j].id, -1});
          } else {
            tree.nodes_[static_cast<size_t>(node)].entries.push_back(
                Entry{level[j].box, 0, level[j].child});
          }
          node_box.Extend(level[j].box);
        }
        next_level.push_back({node_box, 0, node});
      }
    }
    if (leaf_level) tree.size_ = entries.size();
    leaf_level = false;
    if (next_level.size() == 1) {
      tree.root_ = next_level[0].child;
      break;
    }
    level = std::move(next_level);
  }
  return tree;
}

Status RTree::Insert(const geo::BoundingBox& box, RecordId id) {
  if (box.IsEmpty()) {
    return Status::InvalidArgument("cannot index an empty bounding box");
  }
  std::vector<int> path;
  int leaf = ChooseLeaf(root_, box, 0, 0, &path);
  nodes_[static_cast<size_t>(leaf)].entries.push_back(Entry{box, id, -1});
  ++size_;

  // Walk the path upward, splitting overflowing nodes.
  for (int i = static_cast<int>(path.size()) - 1; i >= 0; --i) {
    int node = path[static_cast<size_t>(i)];
    if (static_cast<int>(nodes_[static_cast<size_t>(node)].entries.size()) <=
        options_.max_entries) {
      break;
    }
    int sibling = SplitNode(node);
    if (i == 0) {
      // Node was the root: grow the tree.
      int new_root = NewNode(/*leaf=*/false);
      nodes_[static_cast<size_t>(new_root)].entries.push_back(
          Entry{NodeBox(node), 0, node});
      nodes_[static_cast<size_t>(new_root)].entries.push_back(
          Entry{NodeBox(sibling), 0, sibling});
      root_ = new_root;
    } else {
      int parent = path[static_cast<size_t>(i) - 1];
      nodes_[static_cast<size_t>(parent)].entries.push_back(
          Entry{NodeBox(sibling), 0, sibling});
    }
  }
  AdjustTree(path);
  return Status::OK();
}

void RTree::AdjustTree(const std::vector<int>& path) {
  // Refresh parent entry boxes bottom-up.
  for (int i = static_cast<int>(path.size()) - 2; i >= 0; --i) {
    Node& parent = nodes_[static_cast<size_t>(path[static_cast<size_t>(i)])];
    for (Entry& e : parent.entries) {
      if (e.child >= 0) e.box = NodeBox(e.child);
    }
  }
}

Status RTree::Remove(const geo::BoundingBox& box, RecordId id) {
  // Find the leaf containing the entry via range search on the exact box.
  struct Frame {
    int node;
    int parent;
  };
  std::vector<Frame> stack{{root_, -1}};
  std::vector<int> parent_of(nodes_.size(), -1);
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    Node& n = nodes_[static_cast<size_t>(f.node)];
    if (n.leaf) {
      for (size_t i = 0; i < n.entries.size(); ++i) {
        if (n.entries[i].id == id && n.entries[i].box == box) {
          n.entries.erase(n.entries.begin() + static_cast<long>(i));
          --size_;
          // Refresh ancestor boxes (underflow handling: entries are kept
          // in place; the tree stays valid, just possibly less tight).
          int cur = f.node;
          while (parent_of[static_cast<size_t>(cur)] >= 0) {
            int parent = parent_of[static_cast<size_t>(cur)];
            for (Entry& e :
                 nodes_[static_cast<size_t>(parent)].entries) {
              if (e.child == cur) e.box = NodeBox(cur);
            }
            cur = parent;
          }
          return Status::OK();
        }
      }
      continue;
    }
    for (const Entry& e : n.entries) {
      if (e.box.Intersects(box) || e.box.Contains(box)) {
        parent_of[static_cast<size_t>(e.child)] = f.node;
        stack.push_back({e.child, f.node});
      }
    }
  }
  return Status::NotFound("entry not present in R-tree");
}

std::vector<RecordId> RTree::RangeSearch(
    const geo::BoundingBox& query) const {
  std::vector<RecordId> out;
  if (query.IsEmpty()) return out;
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(node)];
    for (const Entry& e : n.entries) {
      if (!e.box.Intersects(query)) continue;
      if (n.leaf) {
        out.push_back(e.id);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  return out;
}

namespace {

/// Fraction of `box` covered by `query` under a uniform-density
/// assumption. Degenerate boxes (points, lines) are all-or-nothing.
double OverlapFraction(const geo::BoundingBox& box,
                       const geo::BoundingBox& query) {
  if (!box.Intersects(query)) return 0;
  double area = box.AreaDeg2();
  if (area <= 0) return 1;
  geo::BoundingBox overlap = box.Intersection(query);
  if (overlap.IsEmpty()) return 0;
  return std::min(1.0, overlap.AreaDeg2() / area);
}

}  // namespace

double RTree::EstimateNode(int node, const geo::BoundingBox& query,
                           double weight, int levels_left) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.entries.empty()) return 0;
  double share = weight / static_cast<double>(n.entries.size());
  double est = 0;
  if (n.leaf) {
    // Leaf level is exact: count intersecting entries.
    size_t count = 0;
    for (const Entry& e : n.entries) {
      if (e.box.Intersects(query)) ++count;
    }
    return share * static_cast<double>(count);
  }
  for (const Entry& e : n.entries) {
    if (!e.box.Intersects(query)) continue;
    if (levels_left > 0) {
      est += EstimateNode(e.child, query, share, levels_left - 1);
    } else {
      est += share * OverlapFraction(e.box, query);
    }
  }
  return est;
}

double RTree::CardinalityEstimate(const geo::BoundingBox& query) const {
  if (root_ < 0 || size_ == 0 || query.IsEmpty()) return 0;
  // `weight` apportions the total entry count down the tree assuming equal
  // subtree sizes per entry — cheap, and close enough for seed ordering.
  return EstimateNode(root_, query, static_cast<double>(size_), 2);
}

std::vector<RecordId> RTree::KNearest(const geo::GeoPoint& point,
                                      int k) const {
  std::vector<RecordId> out;
  if (k <= 0) return out;
  // Best-first search over (min-dist, is_leaf_entry, node/id).
  struct Item {
    double dist;
    bool is_record;
    int node;
    RecordId id;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.push({0.0, false, root_, 0});
  while (!pq.empty() && static_cast<int>(out.size()) < k) {
    Item item = pq.top();
    pq.pop();
    if (item.is_record) {
      out.push_back(item.id);
      continue;
    }
    const Node& n = nodes_[static_cast<size_t>(item.node)];
    for (const Entry& e : n.entries) {
      double d = MinDistDeg(point, e.box);
      if (n.leaf) {
        pq.push({d, true, -1, e.id});
      } else {
        pq.push({d, false, e.child, 0});
      }
    }
  }
  return out;
}

int RTree::height() const {
  int h = 1;
  int cur = root_;
  while (!nodes_[static_cast<size_t>(cur)].leaf) {
    cur = nodes_[static_cast<size_t>(cur)].entries.front().child;
    ++h;
  }
  return h;
}

bool RTree::CheckInvariants() const {
  std::vector<int> stack{root_};
  size_t records = 0;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(node)];
    if (static_cast<int>(n.entries.size()) > options_.max_entries) {
      return false;
    }
    for (const Entry& e : n.entries) {
      if (n.leaf) {
        ++records;
        continue;
      }
      if (!NodeBox(e.child).IsEmpty() && !e.box.Contains(NodeBox(e.child))) {
        return false;
      }
      stack.push_back(e.child);
    }
  }
  return records == size_;
}

}  // namespace tvdp::index
