#include "storage/schema.h"

#include "common/strings.h"

namespace tvdp::storage {

Schema::Schema(std::vector<Column> columns) {
  columns_.push_back(Column{"id", ValueType::kInt64, false, std::nullopt});
  for (auto& c : columns) columns_.push_back(std::move(c));
}

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::ValidateRow(const Row& row) const {
  // Caller provides all columns except the implicit id.
  if (row.size() + 1 != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema expects %zu", row.size(),
                  columns_.size() - 1));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i + 1];
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("null in non-nullable column " +
                                       col.name);
      }
      continue;
    }
    ValueType t = row[i].type();
    // Ints are acceptable where doubles are expected.
    if (t != col.type &&
        !(col.type == ValueType::kDouble && t == ValueType::kInt64)) {
      return Status::InvalidArgument(
          StrFormat("column %s expects %s, got %s", col.name.c_str(),
                    ValueTypeName(col.type).c_str(), ValueTypeName(t).c_str()));
    }
  }
  return Status::OK();
}

}  // namespace tvdp::storage
