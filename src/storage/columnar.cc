#include "storage/columnar.h"

#include <algorithm>

namespace tvdp::storage {

namespace {

/// Reads the `off`-th `width`-bit slot. Widths are powers of two up to 64,
/// so a slot never spans a word boundary.
uint64_t GetBits(const std::vector<uint64_t>& words, size_t off,
                 uint8_t width) {
  if (width == 0) return 0;
  size_t bitpos = off * width;
  uint64_t word = words[bitpos >> 6];
  uint64_t v = word >> (bitpos & 63);
  return width == 64 ? v : v & ((uint64_t{1} << width) - 1);
}

}  // namespace

int64_t PackedInt64Column::Chunk::At(size_t off) const {
  return base + static_cast<int64_t>(GetBits(words, off, width));
}

uint8_t PackedInt64Column::WidthFor(uint64_t delta) {
  if (delta == 0) return 0;
  if (delta < (uint64_t{1} << 1)) return 1;
  if (delta < (uint64_t{1} << 2)) return 2;
  if (delta < (uint64_t{1} << 4)) return 4;
  if (delta < (uint64_t{1} << 8)) return 8;
  if (delta < (uint64_t{1} << 16)) return 16;
  if (delta < (uint64_t{1} << 32)) return 32;
  return 64;
}

void PackedInt64Column::SetBits(std::vector<uint64_t>* words, size_t off,
                                uint8_t width, uint64_t value) {
  if (width == 0) return;
  size_t bitpos = off * width;
  size_t word = bitpos >> 6;
  if (word >= words->size()) words->resize(word + 1, 0);
  size_t shift = bitpos & 63;
  uint64_t mask = width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  (*words)[word] = ((*words)[word] & ~(mask << shift)) | (value << shift);
}

void PackedInt64Column::Repack(Chunk* c, int64_t new_base, uint8_t new_width) {
  std::vector<uint64_t> repacked;
  for (size_t i = 0; i < c->count; ++i) {
    // Two's-complement subtraction yields the correct unsigned delta for
    // any base <= value, even across the int64 range.
    uint64_t delta = static_cast<uint64_t>(c->At(i)) -
                     static_cast<uint64_t>(new_base);
    SetBits(&repacked, i, new_width, delta);
  }
  c->base = new_base;
  c->width = new_width;
  c->words = std::move(repacked);
}

PackedInt64Column::Chunk* PackedInt64Column::MutableTail() {
  std::shared_ptr<Chunk>& tail = chunks_.back();
  // use_count > 1 means a frozen snapshot still references this chunk:
  // copy-on-write so pinned readers keep seeing the committed bytes.
  if (tail.use_count() > 1) tail = std::make_shared<Chunk>(*tail);
  return tail.get();
}

void PackedInt64Column::Append(int64_t v) {
  if (chunks_.empty() || chunks_.back()->count == kChunkCapacity) {
    auto c = std::make_shared<Chunk>();
    c->base = v;
    c->width = 0;
    c->count = 1;
    chunks_.push_back(std::move(c));
    ++size_;
    return;
  }
  Chunk* tail = MutableTail();
  uint64_t delta = static_cast<uint64_t>(v) - static_cast<uint64_t>(tail->base);
  if (v >= tail->base && WidthFor(delta) <= tail->width) {
    SetBits(&tail->words, tail->count, tail->width, delta);
  } else {
    // The value falls outside the chunk's frame: lower the base and/or
    // widen, re-encoding the existing deltas first.
    int64_t new_base = std::min(tail->base, v);
    uint64_t max_delta = static_cast<uint64_t>(v) -
                         static_cast<uint64_t>(new_base);
    for (size_t i = 0; i < tail->count; ++i) {
      max_delta = std::max(max_delta, static_cast<uint64_t>(tail->At(i)) -
                                          static_cast<uint64_t>(new_base));
    }
    Repack(tail, new_base, WidthFor(max_delta));
    SetBits(&tail->words, tail->count,
            tail->width, static_cast<uint64_t>(v) -
                             static_cast<uint64_t>(tail->base));
  }
  ++tail->count;
  ++size_;
}

int64_t PackedInt64Column::Get(size_t i) const {
  return chunks_[i / kChunkCapacity]->At(i % kChunkCapacity);
}

void PackedInt64Column::Clear() {
  chunks_.clear();
  size_ = 0;
}

size_t PackedInt64Column::ApproxBytes() const {
  size_t total = sizeof(*this) + chunks_.size() * sizeof(chunks_[0]);
  for (const auto& c : chunks_) total += c->Bytes();
  return total;
}

void PackedInt64Column::AccountShared(const PackedInt64Column* prev,
                                      size_t* shared, size_t* copied) const {
  for (size_t i = 0; i < chunks_.size(); ++i) {
    bool is_shared = prev && i < prev->chunks_.size() &&
                     prev->chunks_[i] == chunks_[i];
    *(is_shared ? shared : copied) += chunks_[i]->Bytes();
  }
}

void ColumnarImages::Append(int64_t id, double lat, double lon,
                            int64_t captured_at) {
  if (size() > 0 && id < ids_.Get(size() - 1)) sorted_ = false;
  ids_.Append(id);
  lat_bits_.Append(DoubleToBits(lat));
  lon_bits_.Append(DoubleToBits(lon));
  captured_.Append(captured_at);
}

void ColumnarImages::Clear() {
  ids_.Clear();
  lat_bits_.Clear();
  lon_bits_.Clear();
  captured_.Clear();
  sorted_ = true;
}

ptrdiff_t ColumnarImages::Find(int64_t id) const {
  size_t n = ids_.size();
  if (sorted_) {
    size_t lo = 0, hi = n;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (ids_.Get(mid) < id) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return (lo < n && ids_.Get(lo) == id) ? static_cast<ptrdiff_t>(lo) : -1;
  }
  for (size_t i = 0; i < n; ++i) {
    if (ids_.Get(i) == id) return static_cast<ptrdiff_t>(i);
  }
  return -1;
}

size_t ColumnarImages::ApproxBytes() const {
  return ids_.ApproxBytes() + lat_bits_.ApproxBytes() +
         lon_bits_.ApproxBytes() + captured_.ApproxBytes();
}

void ColumnarImages::AccountShared(const ColumnarImages* prev, size_t* shared,
                                   size_t* copied) const {
  ids_.AccountShared(prev ? &prev->ids_ : nullptr, shared, copied);
  lat_bits_.AccountShared(prev ? &prev->lat_bits_ : nullptr, shared, copied);
  lon_bits_.AccountShared(prev ? &prev->lon_bits_ : nullptr, shared, copied);
  captured_.AccountShared(prev ? &prev->captured_ : nullptr, shared, copied);
}

void ColumnarAnnotations::Append(int64_t image_id, int64_t type_id,
                                 double confidence, const std::string& source) {
  image_ids_.Append(image_id);
  type_ids_.Append(type_id);
  conf_bits_.Append(DoubleToBits(confidence));
  size_t code = 0;
  while (code < source_dict_.size() && source_dict_[code] != source) ++code;
  if (code == source_dict_.size()) source_dict_.push_back(source);
  source_codes_.Append(static_cast<int64_t>(code));
}

void ColumnarAnnotations::Clear() {
  image_ids_.Clear();
  type_ids_.Clear();
  conf_bits_.Clear();
  source_codes_.Clear();
  source_dict_.clear();
}

size_t ColumnarAnnotations::ApproxBytes() const {
  return image_ids_.ApproxBytes() + type_ids_.ApproxBytes() +
         conf_bits_.ApproxBytes() + source_codes_.ApproxBytes();
}

void ColumnarAnnotations::AccountShared(const ColumnarAnnotations* prev,
                                        size_t* shared, size_t* copied) const {
  image_ids_.AccountShared(prev ? &prev->image_ids_ : nullptr, shared, copied);
  type_ids_.AccountShared(prev ? &prev->type_ids_ : nullptr, shared, copied);
  conf_bits_.AccountShared(prev ? &prev->conf_bits_ : nullptr, shared, copied);
  source_codes_.AccountShared(prev ? &prev->source_codes_ : nullptr, shared,
                              copied);
}

}  // namespace tvdp::storage
