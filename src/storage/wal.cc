#include "storage/wal.h"

#include "common/crc32.h"
#include "storage/serializer.h"

namespace tvdp::storage {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

uint32_t ReadU32At(const std::vector<uint8_t>& b, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[pos + i]) << (8 * i);
  return v;
}

}  // namespace

WalRecord WalRecord::BroadcastIntent(int64_t broadcast_id, std::string op,
                                     std::string payload,
                                     std::vector<int64_t> target_ids) {
  WalRecord rec;
  rec.type = WalRecordType::kBroadcastIntent;
  rec.broadcast_id = broadcast_id;
  rec.op = std::move(op);
  rec.payload = std::move(payload);
  rec.target_ids = std::move(target_ids);
  return rec;
}

WalRecord WalRecord::BroadcastCommit(int64_t broadcast_id) {
  WalRecord rec;
  rec.type = WalRecordType::kBroadcastCommit;
  rec.broadcast_id = broadcast_id;
  return rec;
}

WalRecord WalRecord::BroadcastAbort(int64_t broadcast_id) {
  WalRecord rec;
  rec.type = WalRecordType::kBroadcastAbort;
  rec.broadcast_id = broadcast_id;
  return rec;
}

WalRecord WalRecord::Delete(std::string table, RowId row_id) {
  WalRecord rec;
  rec.type = WalRecordType::kDelete;
  rec.table = std::move(table);
  rec.row_id = row_id;
  return rec;
}

WalRecord WalRecord::MigrationIntent(int64_t migration_id, std::string op,
                                     std::string payload,
                                     std::vector<int64_t> target_ids) {
  WalRecord rec;
  rec.type = WalRecordType::kMigrationIntent;
  rec.broadcast_id = migration_id;
  rec.op = std::move(op);
  rec.payload = std::move(payload);
  rec.target_ids = std::move(target_ids);
  return rec;
}

WalRecord WalRecord::MigrationCommit(int64_t migration_id) {
  WalRecord rec;
  rec.type = WalRecordType::kMigrationCommit;
  rec.broadcast_id = migration_id;
  return rec;
}

WalRecord WalRecord::MigrationAbort(int64_t migration_id) {
  WalRecord rec;
  rec.type = WalRecordType::kMigrationAbort;
  rec.broadcast_id = migration_id;
  return rec;
}

std::vector<uint8_t> WalRecord::Encode() const {
  BinaryWriter w;
  // The tag doubles as the format version: mutations stamped with a
  // non-zero fencing epoch take the kEpoch* tags (legacy layout + trailing
  // epoch), epoch-0 mutations keep the pre-replication tags and layout so
  // old and new logs interleave freely.
  WalRecordType wire = type;
  if (epoch != 0 && type == WalRecordType::kInsert) {
    wire = WalRecordType::kEpochInsert;
  } else if (epoch != 0 && type == WalRecordType::kDelete) {
    wire = WalRecordType::kEpochDelete;
  }
  w.WriteU8(static_cast<uint8_t>(wire));
  switch (wire) {
    case WalRecordType::kInsert:
    case WalRecordType::kEpochInsert:
      w.WriteString(table);
      w.WriteI64(row_id);
      if (wire == WalRecordType::kEpochInsert) w.WriteI64(epoch);
      w.WriteU32(static_cast<uint32_t>(values.size()));
      for (const Value& v : values) w.WriteValue(v);
      break;
    case WalRecordType::kDelete:
    case WalRecordType::kEpochDelete:
      w.WriteString(table);
      w.WriteI64(row_id);
      if (wire == WalRecordType::kEpochDelete) w.WriteI64(epoch);
      break;
    case WalRecordType::kBroadcastIntent:
    case WalRecordType::kMigrationIntent:
      w.WriteI64(broadcast_id);
      w.WriteString(op);
      w.WriteString(payload);
      w.WriteU32(static_cast<uint32_t>(target_ids.size()));
      for (int64_t id : target_ids) w.WriteI64(id);
      break;
    case WalRecordType::kBroadcastCommit:
    case WalRecordType::kBroadcastAbort:
    case WalRecordType::kMigrationCommit:
    case WalRecordType::kMigrationAbort:
      w.WriteI64(broadcast_id);
      break;
  }
  return std::move(w.Take());
}

Result<WalRecord> WalRecord::Decode(const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  WalRecord rec;
  TVDP_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
  if (tag > static_cast<uint8_t>(WalRecordType::kEpochDelete)) {
    return Status::IOError("unknown WAL record type " + std::to_string(tag));
  }
  const WalRecordType wire = static_cast<WalRecordType>(tag);
  rec.type = wire;
  switch (wire) {
    case WalRecordType::kInsert:
    case WalRecordType::kEpochInsert: {
      // Legacy tag 0 has no epoch bytes (rec.epoch stays 0); the stamped
      // tag normalizes back to kInsert so consumers see one record kind.
      rec.type = WalRecordType::kInsert;
      TVDP_ASSIGN_OR_RETURN(rec.table, r.ReadString());
      TVDP_ASSIGN_OR_RETURN(rec.row_id, r.ReadI64());
      if (wire == WalRecordType::kEpochInsert) {
        TVDP_ASSIGN_OR_RETURN(rec.epoch, r.ReadI64());
      }
      TVDP_ASSIGN_OR_RETURN(uint32_t arity, r.ReadU32());
      TVDP_RETURN_IF_ERROR(r.Need(arity));  // each value is >= 1 tag byte
      rec.values.reserve(arity);
      for (uint32_t i = 0; i < arity; ++i) {
        TVDP_ASSIGN_OR_RETURN(Value v, r.ReadValue());
        rec.values.push_back(std::move(v));
      }
      break;
    }
    case WalRecordType::kDelete:
    case WalRecordType::kEpochDelete: {
      rec.type = WalRecordType::kDelete;
      TVDP_ASSIGN_OR_RETURN(rec.table, r.ReadString());
      TVDP_ASSIGN_OR_RETURN(rec.row_id, r.ReadI64());
      if (wire == WalRecordType::kEpochDelete) {
        TVDP_ASSIGN_OR_RETURN(rec.epoch, r.ReadI64());
      }
      break;
    }
    case WalRecordType::kBroadcastIntent:
    case WalRecordType::kMigrationIntent: {
      TVDP_ASSIGN_OR_RETURN(rec.broadcast_id, r.ReadI64());
      TVDP_ASSIGN_OR_RETURN(rec.op, r.ReadString());
      TVDP_ASSIGN_OR_RETURN(rec.payload, r.ReadString());
      TVDP_ASSIGN_OR_RETURN(uint32_t targets, r.ReadU32());
      TVDP_RETURN_IF_ERROR(r.Need(targets));  // each target is 8 bytes
      rec.target_ids.reserve(targets);
      for (uint32_t i = 0; i < targets; ++i) {
        TVDP_ASSIGN_OR_RETURN(int64_t id, r.ReadI64());
        rec.target_ids.push_back(id);
      }
      break;
    }
    case WalRecordType::kBroadcastCommit:
    case WalRecordType::kBroadcastAbort:
    case WalRecordType::kMigrationCommit:
    case WalRecordType::kMigrationAbort: {
      TVDP_ASSIGN_OR_RETURN(rec.broadcast_id, r.ReadI64());
      break;
    }
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes in WAL record payload");
  }
  return rec;
}

Result<Wal> Wal::Open(Fs* fs, const std::string& path) {
  uint64_t size = 0;
  if (fs->Exists(path)) {
    TVDP_ASSIGN_OR_RETURN(size, fs->FileSize(path));
  }
  TVDP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        fs->OpenWritable(path, /*truncate=*/false));
  return Wal(fs, path, std::move(file), size);
}

Status Wal::Append(const WalRecord& record, bool sync) {
  std::vector<uint8_t> payload = record.Encode();
  BinaryWriter frame;
  frame.WriteU32(static_cast<uint32_t>(payload.size()));
  frame.WriteU32(Crc32c(payload));
  Status s = file_->Append(frame.buffer());
  if (s.ok()) s = file_->Append(payload);
  if (s.ok() && sync) s = file_->Sync();
  if (!s.ok()) {
    // Roll the file back to the last record boundary: a half-written (or
    // written-but-unsynced) frame must not linger, or it would shadow the
    // commits appended after it. If the repair itself fails the handle is
    // left closed, so later appends fail loudly instead of corrupting.
    (void)file_->Close();
    Status repaired = fs_->Truncate(path_, size_bytes_);
    if (repaired.ok()) {
      auto reopened = fs_->OpenWritable(path_, /*truncate=*/false);
      if (reopened.ok()) file_ = std::move(*reopened);
    }
    return s;
  }
  size_bytes_ += kFrameHeaderBytes + payload.size();
  return Status::OK();
}

Status Wal::Sync() { return file_->Sync(); }

Status Wal::Reset() {
  TVDP_RETURN_IF_ERROR(file_->Close());
  TVDP_ASSIGN_OR_RETURN(file_, fs_->OpenWritable(path_, /*truncate=*/true));
  TVDP_RETURN_IF_ERROR(file_->Sync());
  size_bytes_ = 0;
  return fs_->SyncDirOf(path_);
}

namespace {

/// Shared scan: decodes the longest valid record run starting at `start`.
Result<WalRecovery> ScanFrom(Fs* fs, const std::string& path, size_t start) {
  WalRecovery out;
  out.valid_bytes = start;
  if (!fs->Exists(path)) return out;
  TVDP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, fs->ReadAll(path));
  if (start > bytes.size()) {
    return Status::IOError("WAL tail offset " + std::to_string(start) +
                           " past end of " + path);
  }
  size_t pos = start;
  while (bytes.size() - pos >= kFrameHeaderBytes) {
    uint32_t len = ReadU32At(bytes, pos);
    uint32_t crc = ReadU32At(bytes, pos + 4);
    if (bytes.size() - pos - kFrameHeaderBytes < len) break;  // torn tail
    const uint8_t* payload = bytes.data() + pos + kFrameHeaderBytes;
    if (Crc32c(payload, len) != crc) break;  // corrupt frame
    auto record =
        WalRecord::Decode(std::vector<uint8_t>(payload, payload + len));
    if (!record.ok()) break;  // checksummed garbage (should not happen)
    out.records.push_back(std::move(*record));
    pos += kFrameHeaderBytes + len;
  }
  out.valid_bytes = pos;
  out.dropped_bytes = bytes.size() - pos;
  return out;
}

}  // namespace

Result<WalRecovery> Wal::Recover(Fs* fs, const std::string& path) {
  TVDP_ASSIGN_OR_RETURN(WalRecovery out, ScanFrom(fs, path, 0));
  if (out.dropped_bytes > 0) {
    TVDP_RETURN_IF_ERROR(fs->Truncate(path, out.valid_bytes));
  }
  return out;
}

Result<WalRecovery> Wal::TailFrom(Fs* fs, const std::string& path,
                                  uint64_t offset) {
  // No truncation: the log may be live under a writer, so an incomplete
  // tail frame just has not committed yet from the tailer's point of view.
  return ScanFrom(fs, path, static_cast<size_t>(offset));
}

}  // namespace tvdp::storage
