#ifndef TVDP_STORAGE_WAL_H_
#define TVDP_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/result.h"
#include "storage/table.h"
#include "storage/value.h"

namespace tvdp::storage {

/// Kind of a logged record. `kInsert` is the classic catalog mutation; the
/// broadcast types implement the two-phase intent/commit protocol for
/// fleet-wide operations (DESIGN.md "Cross-shard write consistency"): an
/// intent is written to every shard's broadcast log before the operation is
/// applied, a commit marker after every shard acknowledged, and an abort
/// marker when the coordinator rolls the operation back. `kDelete` is the
/// inverse catalog mutation (row removal by id, used by rebalancing GC); the
/// migration types reuse the intent/commit/abort encoding to trace the online
/// cell-migration state machine (DESIGN.md "Online shard rebalancing") in the
/// same per-shard broadcast log.
enum class WalRecordType : uint8_t {
  kInsert = 0,
  kBroadcastIntent = 1,
  kBroadcastCommit = 2,
  kBroadcastAbort = 3,
  kDelete = 4,
  kMigrationIntent = 5,
  kMigrationCommit = 6,
  kMigrationAbort = 7,
  /// Epoch-stamped variants of kInsert/kDelete: identical layout plus a
  /// trailing i64 fencing epoch. The record-type tag doubles as the format
  /// version, so logs written before replication existed (tags 0/4, no
  /// epoch field) keep decoding byte-for-byte: Encode emits the stamped tag
  /// only when epoch != 0, and Decode normalizes it back to kInsert/kDelete
  /// with `epoch` set — consumers never see these tags.
  kEpochInsert = 8,
  kEpochDelete = 9,
};

/// One logged record. For `kInsert`: a row inserted into `table` with its
/// already assigned primary key — replaying records in order reproduces the
/// exact post-crash row set, ids included. For the broadcast types: the
/// shard-local trace of a fleet-wide operation (`broadcast_id` names the
/// operation; an intent additionally carries the op name, its payload, and
/// the per-shard ids the coordinator expects the apply to produce).
struct WalRecord {
  std::string table;
  RowId row_id = 0;
  Row values;  ///< non-id columns, in schema order

  /// Fencing epoch of the primary that produced this mutation (kInsert /
  /// kDelete only; 0 = unreplicated). A replica applying shipped records
  /// rejects any record stamped with an epoch older than its own — the
  /// split-brain guard after a failover (DESIGN.md "Replication, failover,
  /// and fencing"). Epoch 0 records use the legacy tag-0/tag-4 encoding
  /// (no epoch bytes), so a log written before replication — or by a
  /// never-promoted fleet — is byte-identical and decodes unchanged.
  int64_t epoch = 0;

  WalRecordType type = WalRecordType::kInsert;
  int64_t broadcast_id = 0;          ///< broadcast types only
  std::string op;                    ///< intent only, e.g. "register_classification"
  std::string payload;               ///< intent only, op arguments (JSON)
  std::vector<int64_t> target_ids;   ///< intent only, expected id per shard

  static WalRecord BroadcastIntent(int64_t broadcast_id, std::string op,
                                   std::string payload,
                                   std::vector<int64_t> target_ids);
  static WalRecord BroadcastCommit(int64_t broadcast_id);
  static WalRecord BroadcastAbort(int64_t broadcast_id);
  static WalRecord Delete(std::string table, RowId row_id);
  static WalRecord MigrationIntent(int64_t migration_id, std::string op,
                                   std::string payload,
                                   std::vector<int64_t> target_ids);
  static WalRecord MigrationCommit(int64_t migration_id);
  static WalRecord MigrationAbort(int64_t migration_id);

  std::vector<uint8_t> Encode() const;
  static Result<WalRecord> Decode(const std::vector<uint8_t>& payload);
};

/// What `Wal::Recover` found on disk.
struct WalRecovery {
  std::vector<WalRecord> records;  ///< the longest valid prefix, in order
  uint64_t valid_bytes = 0;        ///< prefix length kept
  uint64_t dropped_bytes = 0;      ///< garbage tail truncated away
};

/// An append-only write-ahead log of catalog mutations.
///
/// On-disk framing per record:
///
///   [u32 payload_len][u32 crc32c(payload)][payload bytes]
///
/// all little-endian; the payload leads with a one-byte `WalRecordType`
/// tag. A record is committed once `Append(..., sync=true)`
/// returns OK. Recovery scans from the start and keeps the longest prefix of
/// records whose length fits the file and whose checksum verifies; anything
/// after the first bad frame (torn write, power-cut truncation, bit rot) is
/// truncated away, matching the recovery discipline of log-structured stores.
class Wal {
 public:
  /// Opens (creating if needed) `path` for appending. Run `Recover` first:
  /// opening does not validate existing contents.
  static Result<Wal> Open(Fs* fs, const std::string& path);

  Wal(Wal&&) = default;
  Wal& operator=(Wal&&) = default;

  /// Appends one record; with `sync` the record is fsynced (committed)
  /// before returning.
  Status Append(const WalRecord& record, bool sync);

  /// fsyncs any unsynced appends.
  Status Sync();

  /// Truncates the log to empty (after a snapshot made its contents
  /// redundant) and syncs the truncation.
  Status Reset();

  /// Bytes appended so far (current log length).
  uint64_t size_bytes() const { return size_bytes_; }

  const std::string& path() const { return path_; }

  /// Reads `path`, returning the longest valid record prefix and truncating
  /// the file down to it so a subsequent Open appends after valid data.
  /// A missing file is an empty recovery, not an error.
  static Result<WalRecovery> Recover(Fs* fs, const std::string& path);

  /// Reads the records appended after byte `offset` (which must be a record
  /// boundary — e.g. a `size_bytes()` observed earlier). Never truncates:
  /// the log may still be live under a writer, so a torn tail is simply not
  /// returned yet. Used by replication to tail a primary's log.
  static Result<WalRecovery> TailFrom(Fs* fs, const std::string& path,
                                      uint64_t offset);

 private:
  Wal(Fs* fs, std::string path, std::unique_ptr<WritableFile> file,
      uint64_t size)
      : fs_(fs), path_(std::move(path)), file_(std::move(file)),
        size_bytes_(size) {}

  Fs* fs_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint64_t size_bytes_;
};

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_WAL_H_
