#ifndef TVDP_STORAGE_WAL_H_
#define TVDP_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/result.h"
#include "storage/table.h"
#include "storage/value.h"

namespace tvdp::storage {

/// One logged catalog mutation: a row inserted into `table` with its already
/// assigned primary key. Replaying records in order reproduces the exact
/// post-crash row set, ids included.
struct WalRecord {
  std::string table;
  RowId row_id = 0;
  Row values;  ///< non-id columns, in schema order

  std::vector<uint8_t> Encode() const;
  static Result<WalRecord> Decode(const std::vector<uint8_t>& payload);
};

/// What `Wal::Recover` found on disk.
struct WalRecovery {
  std::vector<WalRecord> records;  ///< the longest valid prefix, in order
  uint64_t valid_bytes = 0;        ///< prefix length kept
  uint64_t dropped_bytes = 0;      ///< garbage tail truncated away
};

/// An append-only write-ahead log of catalog mutations.
///
/// On-disk framing per record:
///
///   [u32 payload_len][u32 crc32c(payload)][payload bytes]
///
/// all little-endian. A record is committed once `Append(..., sync=true)`
/// returns OK. Recovery scans from the start and keeps the longest prefix of
/// records whose length fits the file and whose checksum verifies; anything
/// after the first bad frame (torn write, power-cut truncation, bit rot) is
/// truncated away, matching the recovery discipline of log-structured stores.
class Wal {
 public:
  /// Opens (creating if needed) `path` for appending. Run `Recover` first:
  /// opening does not validate existing contents.
  static Result<Wal> Open(Fs* fs, const std::string& path);

  Wal(Wal&&) = default;
  Wal& operator=(Wal&&) = default;

  /// Appends one record; with `sync` the record is fsynced (committed)
  /// before returning.
  Status Append(const WalRecord& record, bool sync);

  /// fsyncs any unsynced appends.
  Status Sync();

  /// Truncates the log to empty (after a snapshot made its contents
  /// redundant) and syncs the truncation.
  Status Reset();

  /// Bytes appended so far (current log length).
  uint64_t size_bytes() const { return size_bytes_; }

  const std::string& path() const { return path_; }

  /// Reads `path`, returning the longest valid record prefix and truncating
  /// the file down to it so a subsequent Open appends after valid data.
  /// A missing file is an empty recovery, not an error.
  static Result<WalRecovery> Recover(Fs* fs, const std::string& path);

 private:
  Wal(Fs* fs, std::string path, std::unique_ptr<WritableFile> file,
      uint64_t size)
      : fs_(fs), path_(std::move(path)), file_(std::move(file)),
        size_bytes_(size) {}

  Fs* fs_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint64_t size_bytes_;
};

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_WAL_H_
