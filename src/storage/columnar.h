#ifndef TVDP_STORAGE_COLUMNAR_H_
#define TVDP_STORAGE_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace tvdp::storage {

/// Bit-width-adaptive packed integer column (realm-core array style):
/// values are stored in fixed-size chunks, each frame-of-reference encoded
/// against the chunk's minimum with the narrowest power-of-two bit width
/// that fits every delta (0, 1, 2, 4, 8, 16, 32 or 64 bits). Chunks are
/// refcounted and immutable once shared: freezing a column for an MVCC
/// snapshot copies only the chunk pointer vector, and the writer clones a
/// chunk before mutating it whenever a snapshot still references it — so
/// consecutive catalog versions share all but the tail chunk structurally.
///
/// Thread safety: mutation requires external exclusion (the engine writer
/// lock); frozen copies are immutable and safe to read concurrently.
class PackedInt64Column {
 public:
  /// Values per chunk. Chunks fill completely before a new one starts, so
  /// position -> (chunk, offset) is pure arithmetic.
  static constexpr size_t kChunkCapacity = 256;

  void Append(int64_t v);
  int64_t Get(size_t i) const;
  size_t size() const { return size_; }
  void Clear();

  /// Heap footprint of the packed chunks (the point of the encoding: a
  /// column of small deltas costs bits, not 8 bytes, per value).
  size_t ApproxBytes() const;

  /// Commit accounting: splits this column's chunk bytes into those shared
  /// with `prev` (same chunk object, by pointer) and those newly copied.
  void AccountShared(const PackedInt64Column* prev, size_t* shared,
                     size_t* copied) const;

 private:
  struct Chunk {
    int64_t base = 0;    ///< frame of reference (minimum value in chunk)
    uint8_t width = 0;   ///< bits per delta: 0, 1, 2, 4, 8, 16, 32, 64
    uint16_t count = 0;
    std::vector<uint64_t> words;  ///< bit-packed deltas, LSB first

    int64_t At(size_t off) const;
    size_t Bytes() const { return sizeof(Chunk) + words.size() * 8; }
  };

  /// The tail chunk, cloned first if a frozen snapshot still shares it.
  Chunk* MutableTail();
  static uint8_t WidthFor(uint64_t delta);
  /// Re-encodes `c` with a (possibly lower) base and wider width.
  static void Repack(Chunk* c, int64_t new_base, uint8_t new_width);
  static void SetBits(std::vector<uint64_t>* words, size_t off, uint8_t width,
                      uint64_t value);

  std::vector<std::shared_ptr<Chunk>> chunks_;
  size_t size_ = 0;
};

/// Exact bit-level transport of doubles through an integer column: the
/// query envelopes report raw coordinate-derived scores, so the columnar
/// representation must be bit-identical to the row values, not quantized.
inline int64_t DoubleToBits(double d) {
  int64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}
inline double BitsToDouble(int64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

/// The hot read columns of the images table (id, lat, lon, captured_at) in
/// columnar form, maintained by the query engine's index-image path and
/// frozen into every published MVCC snapshot. The executor's kNN re-rank
/// and verify stages read these instead of materializing catalog rows.
class ColumnarImages {
 public:
  void Append(int64_t id, double lat, double lon, int64_t captured_at);
  void Clear();

  size_t size() const { return ids_.size(); }
  int64_t id(size_t i) const { return ids_.Get(i); }
  double lat(size_t i) const { return BitsToDouble(lat_bits_.Get(i)); }
  double lon(size_t i) const { return BitsToDouble(lon_bits_.Get(i)); }
  int64_t captured_at(size_t i) const { return captured_.Get(i); }

  /// Position of image `id`, or -1 when absent. Binary search while the
  /// append order stayed id-sorted (the common case: ids are allocated
  /// monotonically), linear scan otherwise.
  ptrdiff_t Find(int64_t id) const;

  /// Immutable copy for an MVCC snapshot; shares every chunk with this
  /// builder until the builder next mutates the tail.
  std::shared_ptr<const ColumnarImages> Freeze() const {
    return std::make_shared<const ColumnarImages>(*this);
  }

  size_t ApproxBytes() const;
  void AccountShared(const ColumnarImages* prev, size_t* shared,
                     size_t* copied) const;

 private:
  PackedInt64Column ids_, lat_bits_, lon_bits_, captured_;
  bool sorted_ = true;  ///< ids nondecreasing so far
};

/// Hot columns of the annotation table (image id, type id, confidence,
/// source), serving the categorical scan without touching row storage.
/// The source column is dictionary-encoded ("machine"/"manual" in
/// practice, so codes pack into 1 bit).
class ColumnarAnnotations {
 public:
  void Append(int64_t image_id, int64_t type_id, double confidence,
              const std::string& source);
  void Clear();

  size_t size() const { return image_ids_.size(); }
  int64_t image_id(size_t i) const { return image_ids_.Get(i); }
  int64_t type_id(size_t i) const { return type_ids_.Get(i); }
  double confidence(size_t i) const {
    return BitsToDouble(conf_bits_.Get(i));
  }
  const std::string& source(size_t i) const {
    return source_dict_[static_cast<size_t>(source_codes_.Get(i))];
  }

  std::shared_ptr<const ColumnarAnnotations> Freeze() const {
    return std::make_shared<const ColumnarAnnotations>(*this);
  }

  size_t ApproxBytes() const;
  void AccountShared(const ColumnarAnnotations* prev, size_t* shared,
                     size_t* copied) const;

 private:
  PackedInt64Column image_ids_, type_ids_, conf_bits_, source_codes_;
  std::vector<std::string> source_dict_;
};

/// An immutable table set: the per-version view of the catalog published
/// in an MVCC snapshot. Clean tables are shared (same shared_ptr) across
/// consecutive versions; only tables touched by a commit are copied.
using TableSet = std::map<std::string, std::shared_ptr<const Table>>;

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_COLUMNAR_H_
