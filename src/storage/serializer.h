#ifndef TVDP_STORAGE_SERIALIZER_H_
#define TVDP_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace tvdp::storage {

/// Little-endian binary writer used by the catalog persistence format.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteBytes(const std::vector<uint8_t>& b);
  void WriteValue(const Value& v);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t>&& Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader for the same format.
class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<uint8_t>& buf) : buf_(buf) {}
  // The reader only borrows the buffer; a temporary would dangle.
  explicit BinaryReader(std::vector<uint8_t>&&) = delete;

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<uint8_t>> ReadBytes();
  Result<Value> ReadValue();

  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t position() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }

  /// Fails unless at least `n` more bytes are available (public so that
  /// callers can validate counts before reserving memory).
  Status Need(size_t n) const;

 private:

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

/// Writes `bytes` to `path` atomically-ish (tmp file + rename).
Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes);

/// Reads all of `path`.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_SERIALIZER_H_
