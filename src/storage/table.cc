#include "storage/table.h"

#include "common/strings.h"

namespace tvdp::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Result<RowId> Table::Insert(Row row) {
  TVDP_RETURN_IF_ERROR(schema_.ValidateRow(row));
  RowId id = next_id_++;
  Row full;
  full.reserve(row.size() + 1);
  full.emplace_back(id);
  for (auto& v : row) full.push_back(std::move(v));
  pk_index_[id] = rows_.size();
  rows_.push_back(std::move(full));
  live_.push_back(true);
  return id;
}

Result<Row> Table::Get(RowId id) const {
  auto it = pk_index_.find(id);
  if (it == pk_index_.end()) {
    return Status::NotFound(StrFormat("%s: no row %lld", name_.c_str(),
                                      static_cast<long long>(id)));
  }
  return rows_[it->second];
}

Status Table::Update(RowId id, Row row) {
  auto it = pk_index_.find(id);
  if (it == pk_index_.end()) {
    return Status::NotFound(StrFormat("%s: no row %lld", name_.c_str(),
                                      static_cast<long long>(id)));
  }
  TVDP_RETURN_IF_ERROR(schema_.ValidateRow(row));
  Row full;
  full.reserve(row.size() + 1);
  full.emplace_back(id);
  for (auto& v : row) full.push_back(std::move(v));
  rows_[it->second] = std::move(full);
  return Status::OK();
}

Status Table::Delete(RowId id) {
  auto it = pk_index_.find(id);
  if (it == pk_index_.end()) {
    return Status::NotFound(StrFormat("%s: no row %lld", name_.c_str(),
                                      static_cast<long long>(id)));
  }
  live_[it->second] = false;
  pk_index_.erase(it);
  return Status::OK();
}

std::vector<Row> Table::Scan(
    const std::function<bool(const Row&)>& predicate) const {
  std::vector<Row> out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i] && predicate(rows_[i])) out.push_back(rows_[i]);
  }
  return out;
}

Result<std::vector<Row>> Table::FindBy(const std::string& column,
                                       const Value& v) const {
  int idx = schema_.ColumnIndex(column);
  if (idx < 0) {
    return Status::InvalidArgument(name_ + ": no column " + column);
  }
  std::vector<Row> out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i] && rows_[i][static_cast<size_t>(idx)] == v) {
      out.push_back(rows_[i]);
    }
  }
  return out;
}

void Table::ForEach(const std::function<bool(const Row&)>& fn) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i] && !fn(rows_[i])) return;
  }
}

Status Table::RestoreRow(Row row_with_id) {
  if (row_with_id.empty() || row_with_id[0].type() != ValueType::kInt64) {
    return Status::InvalidArgument("restored row missing id");
  }
  RowId id = row_with_id[0].AsInt64();
  if (pk_index_.count(id)) {
    return Status::AlreadyExists(StrFormat("%s: duplicate id %lld",
                                           name_.c_str(),
                                           static_cast<long long>(id)));
  }
  pk_index_[id] = rows_.size();
  rows_.push_back(std::move(row_with_id));
  live_.push_back(true);
  if (id >= next_id_) next_id_ = id + 1;
  return Status::OK();
}

}  // namespace tvdp::storage
