#ifndef TVDP_STORAGE_SCHEMA_H_
#define TVDP_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace tvdp::storage {

/// A foreign-key declaration: this column references `table`.id.
struct ForeignKey {
  std::string table;
};

/// One column of a table schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = false;
  std::optional<ForeignKey> references;
};

/// A table schema. Every table has an implicit auto-increment primary key
/// column "id" (int64) at position 0, added by Schema itself.
class Schema {
 public:
  Schema() = default;
  /// Builds a schema with the implicit id column followed by `columns`.
  explicit Schema(std::vector<Column> columns);

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Validates that `row` (excluding id, which the table assigns) matches
  /// the schema: arity, types, nullability.
  Status ValidateRow(const Row& row) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_SCHEMA_H_
