#ifndef TVDP_STORAGE_CATALOG_H_
#define TVDP_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace tvdp::storage {

/// The database catalog: named tables plus foreign-key enforcement on
/// insert, and whole-database binary persistence.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Creates a table; AlreadyExists if the name is taken.
  Status CreateTable(const std::string& name, Schema schema);

  /// Looks up a table (nullptr when absent).
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Inserts with foreign-key validation: any column declared with a
  /// ForeignKey must reference an existing live row (or be null).
  Result<RowId> Insert(const std::string& table, Row row);

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  /// Serializes every table (schema + rows) into one buffer.
  std::vector<uint8_t> Serialize() const;

  /// Serializes an arbitrary table list in the same on-disk format.
  /// Lets an MVCC snapshot (immutable table copies outside any Catalog)
  /// persist itself byte-compatibly with Serialize(); tables must be
  /// pre-sorted by name to match.
  static std::vector<uint8_t> SerializeTables(
      const std::vector<const Table*>& tables);

  /// Restores a catalog from Serialize() output.
  static Result<Catalog> Deserialize(const std::vector<uint8_t>& bytes);

  /// Convenience: Serialize to / Deserialize from a file.
  Status SaveToFile(const std::string& path) const;
  static Result<Catalog> LoadFromFile(const std::string& path);

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_CATALOG_H_
