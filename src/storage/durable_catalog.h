#ifndef TVDP_STORAGE_DURABLE_CATALOG_H_
#define TVDP_STORAGE_DURABLE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/file.h"
#include "common/result.h"
#include "common/retry.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace tvdp::storage {

/// Tuning knobs for `DurableCatalog`.
struct DurableCatalogOptions {
  /// fsync the WAL on every committed insert. Turning this off trades the
  /// last few records after a power cut for throughput (data is still safe
  /// against process crashes thanks to the OS page cache).
  bool sync_on_commit = true;

  /// Once the WAL grows past this many bytes, the next insert triggers a
  /// compaction: snapshot the catalog and reset the log.
  uint64_t compaction_threshold_bytes = 4u << 20;

  /// Retry budget for the best-effort WAL compaction that Insert triggers
  /// at the threshold crossing. Transient IO errors (a busy disk, a full
  /// page cache flush) are retried with jittered backoff inside the same
  /// insert; if the budget runs out the compaction waits for the next
  /// threshold cross, exactly as before.
  RetryPolicy compaction_retry{/*max_attempts=*/3, /*initial_backoff_ms=*/1,
                               /*max_backoff_ms=*/16};

  /// Filesystem to operate on; nullptr means `Fs::Default()`. Tests pass a
  /// `FaultInjectingFs` here.
  Fs* fs = nullptr;
};

/// An unresolved fleet-wide operation recovered from (or appended to) the
/// shard-local broadcast log: an intent without a matching commit or abort
/// marker. The reconciliation pass (platform::ShardManager) either
/// completes it forward or rolls it back.
struct PendingBroadcast {
  int64_t broadcast_id = 0;
  std::string op;
  std::string payload;              ///< op arguments (JSON)
  std::vector<int64_t> target_ids;  ///< expected id per shard
  /// kBroadcastIntent for fleet-wide two-phase ops, kMigrationIntent for the
  /// online cell-migration state machine — preserved across compaction so a
  /// rewritten log keeps the same record kinds.
  WalRecordType type = WalRecordType::kBroadcastIntent;
};

/// Crash-safe persistence for `Catalog`: a checksummed snapshot plus a
/// write-ahead log of inserts since that snapshot, plus a separate
/// broadcast log tracing fleet-wide two-phase operations.
///
/// Thread safety: `Insert`, `Checkpoint`, `Flush` and `Bootstrap` are
/// serialized by an internal writer lock, so WAL commit ordering always
/// matches in-memory apply ordering. Reading `catalog()` concurrently with
/// writers is NOT synchronized here — the owning facade (platform::Tvdp)
/// holds its reader-writer lock around catalog reads; standalone users
/// doing concurrent reads should do the same via `mutex()`.
///
/// Disk layout for base path `p`:
///   p.snapshot — `Catalog::Serialize()` output (magic, version, body CRC),
///                always replaced atomically (tmp + fsync + rename + dirsync)
///   p.wal      — length-framed, CRC'd insert records since the snapshot
///   p.broadcast— intent/commit/abort markers of fleet-wide operations.
///                Unlike p.wal it is NOT reset by checkpoints: a pending
///                intent must survive any number of compactions until the
///                coordinator resolves it. Open drops resolved markers and
///                rewrites the file atomically, keeping only a high-water
///                commit marker (so broadcast ids never regress) plus the
///                still-pending intents.
///
/// Lifecycle: `Open` loads the snapshot (if any), replays the longest valid
/// WAL prefix, and truncates any garbage tail. `Insert` applies the row to
/// the in-memory catalog, then commits it to the WAL (rolling the row back
/// if the log write fails, so memory never runs ahead of what a reopen would
/// reconstruct... plus the commit record, which is the durability point).
/// When the WAL exceeds the compaction threshold the catalog is
/// re-snapshotted and the log reset; the snapshot is made durable before the
/// log is dropped, so a crash between the two steps only replays redundant
/// records onto the new snapshot — which recovery tolerates by id dedup.
class DurableCatalog {
 public:
  /// Opens (or creates) the store rooted at `base_path`.
  static Result<DurableCatalog> Open(const std::string& base_path,
                                     DurableCatalogOptions options = {});

  DurableCatalog(DurableCatalog&&) = default;
  DurableCatalog& operator=(DurableCatalog&&) = default;

  /// True when Open found existing on-disk state (snapshot or WAL records).
  bool recovered_from_disk() const { return recovered_from_disk_; }

  /// Number of WAL records replayed by Open.
  size_t replayed_records() const { return replayed_records_; }

  /// Installs the initial catalog (schema + any seed rows) of a freshly
  /// created store and snapshots it durably. Only valid while the catalog
  /// is still empty and nothing was recovered.
  Status Bootstrap(Catalog initial);

  /// Durable insert: validates and applies via `Catalog::Insert`, then
  /// commits the record to the WAL. On a log failure the in-memory row is
  /// rolled back and the error returned, leaving memory and disk agreeing.
  Result<RowId> Insert(const std::string& table, Row row);

  /// Durable delete: removes the row from the in-memory catalog, then
  /// commits a kDelete record to the WAL. On a log failure the row is
  /// restored, leaving memory and disk agreeing. Deleting a missing row is
  /// kNotFound. Used by rebalancing GC to drop migrated rows from a source
  /// shard without rewriting the snapshot.
  Status Delete(const std::string& table, RowId id);

  /// Idempotent forced-id insert used by replication: applies a shipped
  /// primary record (row id already assigned by the primary) and commits it
  /// to this replica's own WAL, so the replica recovers independently. A row
  /// that already exists is kAlreadyExists — the caller treats it as an
  /// already-applied record, which makes re-shipping safe.
  Status RestoreInsert(const std::string& table, RowId id, Row values);

  /// Fencing epoch stamped onto every kInsert / kDelete record this catalog
  /// commits from now on (see WalRecord::epoch). 0 = unreplicated.
  void set_epoch(int64_t epoch);
  int64_t epoch() const;

  /// Forces a snapshot now and resets the WAL.
  Status Checkpoint();

  /// The reader-writer lock serializing mutations. Writers (Insert,
  /// Checkpoint, ...) take it exclusively; external readers of `catalog()`
  /// may take it shared when no higher-level lock already excludes writers.
  std::shared_mutex& mutex() const { return *mutex_; }

  /// fsyncs outstanding WAL appends (useful with sync_on_commit=false).
  Status Flush();

  // --- Broadcast log (fleet-wide two-phase operations) ---

  /// Appends one broadcast record (intent/commit/abort) to the broadcast
  /// log, fsynced before returning — an intent is durable before the
  /// coordinator applies anything. Commit/abort markers resolve the
  /// matching pending intent; a marker for an unknown id is legal (it only
  /// advances the high-water mark).
  Status AppendBroadcast(const WalRecord& record);

  /// Unresolved intents, in broadcast-id order.
  std::vector<PendingBroadcast> PendingBroadcasts() const;

  /// Largest broadcast id ever seen by this shard (survives compaction via
  /// the high-water marker), 0 when none.
  int64_t max_broadcast_id() const;

  /// The in-memory catalog. Reads are free; direct mutation bypasses the
  /// log — use `Insert` for anything that must survive a crash.
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }

  uint64_t wal_size_bytes() const { return wal_->size_bytes(); }
  size_t checkpoints_taken() const { return checkpoints_taken_; }

  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& wal_path() const { return wal_path_; }
  const std::string& broadcast_path() const { return broadcast_path_; }

 private:
  DurableCatalog() = default;

  Status CheckpointLocked();

  Fs* fs_ = nullptr;
  DurableCatalogOptions options_;
  /// Owned through a pointer so the catalog stays movable.
  std::unique_ptr<std::shared_mutex> mutex_ =
      std::make_unique<std::shared_mutex>();
  std::string snapshot_path_;
  std::string wal_path_;
  std::string broadcast_path_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<Wal> broadcast_log_;
  std::map<int64_t, PendingBroadcast> pending_broadcasts_;
  int64_t epoch_ = 0;  ///< guarded by mutex_
  int64_t max_broadcast_id_ = 0;
  bool recovered_from_disk_ = false;
  size_t replayed_records_ = 0;
  size_t checkpoints_taken_ = 0;
};

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_DURABLE_CATALOG_H_
