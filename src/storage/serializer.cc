#include "storage/serializer.h"

#include <cstdio>
#include <cstring>

#include "common/file.h"

namespace tvdp::storage {

void BinaryWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::WriteI64(int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(u >> (8 * i)));
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t u;
  std::memcpy(&u, &v, 8);
  WriteI64(static_cast<int64_t>(u));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& b) {
  WriteU32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void BinaryWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      WriteI64(v.AsInt64());
      break;
    case ValueType::kDouble:
      WriteDouble(v.AsDouble());
      break;
    case ValueType::kBool:
      WriteU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kString:
      WriteString(v.AsString());
      break;
    case ValueType::kBlob:
      WriteBytes(v.AsBlob());
      break;
    case ValueType::kFloatVector: {
      const auto& vec = v.AsFloatVector();
      WriteU32(static_cast<uint32_t>(vec.size()));
      for (double d : vec) WriteDouble(d);
      break;
    }
  }
}

Status BinaryReader::Need(size_t n) const {
  if (pos_ + n > buf_.size()) {
    return Status::IOError("unexpected end of serialized data");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  TVDP_RETURN_IF_ERROR(Need(1));
  return buf_[pos_++];
}

Result<uint32_t> BinaryReader::ReadU32() {
  TVDP_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  TVDP_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::ReadDouble() {
  TVDP_ASSIGN_OR_RETURN(int64_t bits, ReadI64());
  double d;
  uint64_t u = static_cast<uint64_t>(bits);
  std::memcpy(&d, &u, 8);
  return d;
}

Result<std::string> BinaryReader::ReadString() {
  TVDP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  TVDP_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(&buf_[pos_]), n);
  pos_ += n;
  return s;
}

Result<std::vector<uint8_t>> BinaryReader::ReadBytes() {
  TVDP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  TVDP_RETURN_IF_ERROR(Need(n));
  std::vector<uint8_t> b(buf_.begin() + static_cast<long>(pos_),
                         buf_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return b;
}

Result<Value> BinaryReader::ReadValue() {
  TVDP_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt64: {
      TVDP_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      TVDP_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value(v);
    }
    case ValueType::kBool: {
      TVDP_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
      return Value(v != 0);
    }
    case ValueType::kString: {
      TVDP_ASSIGN_OR_RETURN(std::string v, ReadString());
      return Value(std::move(v));
    }
    case ValueType::kBlob: {
      TVDP_ASSIGN_OR_RETURN(std::vector<uint8_t> v, ReadBytes());
      return Value(std::move(v));
    }
    case ValueType::kFloatVector: {
      TVDP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
      // Guard against corrupted counts before reserving memory.
      TVDP_RETURN_IF_ERROR(Need(static_cast<size_t>(n) * 8));
      std::vector<double> v;
      v.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        TVDP_ASSIGN_OR_RETURN(double d, ReadDouble());
        v.push_back(d);
      }
      return Value(std::move(v));
    }
  }
  return Status::IOError("unknown value tag in serialized data");
}

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  // Crash-safe replace: tmp + fsync + rename + directory fsync, with the
  // tmp file unlinked on every failure path (see common/file.cc).
  return AtomicWriteFile(*Fs::Default(), path, bytes);
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size > 0 ? size : 0));
  size_t read = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) return Status::IOError("short read from " + path);
  return bytes;
}

}  // namespace tvdp::storage
