#include "storage/tvdp_schema.h"

namespace tvdp::storage {

Status CreateTvdpSchema(Catalog& catalog) {
  using VT = ValueType;
  auto fk = [](const char* table) {
    return std::optional<ForeignKey>(ForeignKey{table});
  };

  TVDP_RETURN_IF_ERROR(catalog.CreateTable(
      tables::kImages,
      Schema({
          {"uri", VT::kString, false, std::nullopt},
          {"lat", VT::kDouble, false, std::nullopt},
          {"lon", VT::kDouble, false, std::nullopt},
          {"timestamp_capturing", VT::kInt64, false, std::nullopt},
          {"timestamp_uploading", VT::kInt64, false, std::nullopt},
          {"source", VT::kString, false, std::nullopt},
          {"is_augmented", VT::kBool, false, std::nullopt},
          // Augmented images point back at their original.
          {"original_image_id", VT::kInt64, true, fk(tables::kImages)},
      })));

  TVDP_RETURN_IF_ERROR(catalog.CreateTable(
      tables::kImageFov,
      Schema({
          {"image_id", VT::kInt64, false, fk(tables::kImages)},
          {"direction_deg", VT::kDouble, false, std::nullopt},
          {"angle_deg", VT::kDouble, false, std::nullopt},
          {"radius_m", VT::kDouble, false, std::nullopt},
      })));

  TVDP_RETURN_IF_ERROR(catalog.CreateTable(
      tables::kImageSceneLocation,
      Schema({
          {"image_id", VT::kInt64, false, fk(tables::kImages)},
          {"min_lat", VT::kDouble, false, std::nullopt},
          {"min_lon", VT::kDouble, false, std::nullopt},
          {"max_lat", VT::kDouble, false, std::nullopt},
          {"max_lon", VT::kDouble, false, std::nullopt},
      })));

  TVDP_RETURN_IF_ERROR(catalog.CreateTable(
      tables::kImageVisualFeatures,
      Schema({
          {"image_id", VT::kInt64, false, fk(tables::kImages)},
          {"feature_kind", VT::kString, false, std::nullopt},
          {"feature", VT::kFloatVector, false, std::nullopt},
      })));

  TVDP_RETURN_IF_ERROR(catalog.CreateTable(
      tables::kImageContentClassification,
      Schema({
          {"name", VT::kString, false, std::nullopt},
          {"description", VT::kString, true, std::nullopt},
      })));

  TVDP_RETURN_IF_ERROR(catalog.CreateTable(
      tables::kImageContentClassificationTypes,
      Schema({
          {"classification_id", VT::kInt64, false,
           fk(tables::kImageContentClassification)},
          {"label", VT::kString, false, std::nullopt},
      })));

  TVDP_RETURN_IF_ERROR(catalog.CreateTable(
      tables::kImageContentAnnotation,
      Schema({
          {"image_id", VT::kInt64, false, fk(tables::kImages)},
          {"type_id", VT::kInt64, false,
           fk(tables::kImageContentClassificationTypes)},
          {"confidence", VT::kDouble, false, std::nullopt},
          // "manual" or "machine" (Sec. IV-A annotation descriptors).
          {"annotation_source", VT::kString, false, std::nullopt},
          // Optional region for part-of-image labels.
          {"region_x", VT::kInt64, true, std::nullopt},
          {"region_y", VT::kInt64, true, std::nullopt},
          {"region_w", VT::kInt64, true, std::nullopt},
          {"region_h", VT::kInt64, true, std::nullopt},
      })));

  TVDP_RETURN_IF_ERROR(catalog.CreateTable(
      tables::kImageManualKeywords,
      Schema({
          {"image_id", VT::kInt64, false, fk(tables::kImages)},
          {"keyword", VT::kString, false, std::nullopt},
      })));

  return Status::OK();
}

Result<Catalog> MakeTvdpCatalog() {
  Catalog catalog;
  TVDP_RETURN_IF_ERROR(CreateTvdpSchema(catalog));
  return catalog;
}

}  // namespace tvdp::storage
