#include "storage/durable_catalog.h"

#include <algorithm>
#include <utility>

#include "common/crc32.h"
#include "common/logging.h"
#include "storage/serializer.h"

namespace tvdp::storage {

namespace {

/// Frames `record` exactly as `Wal::Append` would ([len][crc][payload]) and
/// appends the bytes to `out` — used to rebuild a compacted broadcast log
/// as one atomic file replacement.
void AppendFramed(const WalRecord& record, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload = record.Encode();
  BinaryWriter frame;
  frame.WriteU32(static_cast<uint32_t>(payload.size()));
  frame.WriteU32(Crc32c(payload));
  out.insert(out.end(), frame.buffer().begin(), frame.buffer().end());
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

Result<DurableCatalog> DurableCatalog::Open(const std::string& base_path,
                                            DurableCatalogOptions options) {
  DurableCatalog dc;
  dc.fs_ = options.fs ? options.fs : Fs::Default();
  dc.options_ = options;
  dc.snapshot_path_ = base_path + ".snapshot";
  dc.wal_path_ = base_path + ".wal";
  dc.broadcast_path_ = base_path + ".broadcast";

  // 1. Snapshot. The file is only ever replaced atomically, so either it is
  // absent (fresh store) or it must verify; a checksum failure means real
  // corruption and is surfaced, not papered over.
  if (dc.fs_->Exists(dc.snapshot_path_)) {
    TVDP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          dc.fs_->ReadAll(dc.snapshot_path_));
    TVDP_ASSIGN_OR_RETURN(Catalog snapshot, Catalog::Deserialize(bytes));
    dc.catalog_ = std::make_unique<Catalog>(std::move(snapshot));
    dc.recovered_from_disk_ = true;
  } else {
    dc.catalog_ = std::make_unique<Catalog>();
  }

  // 2. WAL replay: longest valid prefix, garbage tail truncated on disk.
  TVDP_ASSIGN_OR_RETURN(WalRecovery recovery,
                        Wal::Recover(dc.fs_, dc.wal_path_));
  for (const WalRecord& rec : recovery.records) {
    if (rec.type != WalRecordType::kInsert &&
        rec.type != WalRecordType::kDelete) {
      return Status::IOError("non-row-mutation record in the catalog WAL");
    }
    Table* table = dc.catalog_->GetTable(rec.table);
    if (!table) {
      return Status::IOError("WAL references unknown table " + rec.table);
    }
    if (rec.type == WalRecordType::kDelete) {
      // A delete of a row the snapshot already dropped (crash between
      // checkpoint-snapshot and log-reset) is redundant, not an error.
      if (table->Exists(rec.row_id)) {
        TVDP_RETURN_IF_ERROR(table->Delete(rec.row_id));
      }
      ++dc.replayed_records_;
      continue;
    }
    // A crash between checkpoint-snapshot and log-reset leaves records that
    // are already in the snapshot; their ids collide and they are skipped.
    if (table->Exists(rec.row_id)) continue;
    Row full;
    full.reserve(rec.values.size() + 1);
    full.push_back(Value(rec.row_id));
    for (const Value& v : rec.values) full.push_back(v);
    TVDP_RETURN_IF_ERROR(table->RestoreRow(std::move(full)));
    ++dc.replayed_records_;
  }
  if (!recovery.records.empty()) dc.recovered_from_disk_ = true;
  if (recovery.dropped_bytes > 0) {
    TVDP_LOG(Warning) << "WAL " << dc.wal_path_ << ": dropped "
                      << recovery.dropped_bytes
                      << " bytes of torn/corrupt tail, kept "
                      << recovery.records.size() << " records";
  }

  // 3. Reopen the log for appending after the valid prefix.
  TVDP_ASSIGN_OR_RETURN(Wal wal, Wal::Open(dc.fs_, dc.wal_path_));
  dc.wal_ = std::make_unique<Wal>(std::move(wal));

  // 4. Broadcast-log replay: fold intents and their commit/abort markers,
  // in order, into the pending set; anything resolved is dropped. The file
  // is then compacted to [high-water commit marker] + pending intents via
  // an atomic replace, so a crash during compaction can never lose an
  // unresolved intent.
  TVDP_ASSIGN_OR_RETURN(WalRecovery broadcasts,
                        Wal::Recover(dc.fs_, dc.broadcast_path_));
  for (const WalRecord& rec : broadcasts.records) {
    switch (rec.type) {
      case WalRecordType::kBroadcastIntent:
      case WalRecordType::kMigrationIntent:
        dc.pending_broadcasts_[rec.broadcast_id] =
            PendingBroadcast{rec.broadcast_id, rec.op, rec.payload,
                             rec.target_ids, rec.type};
        break;
      case WalRecordType::kBroadcastCommit:
      case WalRecordType::kBroadcastAbort:
      case WalRecordType::kMigrationCommit:
      case WalRecordType::kMigrationAbort:
        dc.pending_broadcasts_.erase(rec.broadcast_id);
        break;
      case WalRecordType::kInsert:
      case WalRecordType::kDelete:
      case WalRecordType::kEpochInsert:  // Decode normalizes; unreachable
      case WalRecordType::kEpochDelete:
        return Status::IOError("row-mutation record in the broadcast log");
    }
    dc.max_broadcast_id_ = std::max(dc.max_broadcast_id_, rec.broadcast_id);
  }
  const size_t kept =
      dc.pending_broadcasts_.size() + (dc.max_broadcast_id_ > 0 ? 1u : 0u);
  if (broadcasts.records.size() > kept) {
    std::vector<uint8_t> compacted;
    // High-water first: a commit marker for an id with no following intent
    // is a pure watermark, and fold order guarantees it cannot resolve the
    // re-appended pending intents behind it.
    AppendFramed(WalRecord::BroadcastCommit(dc.max_broadcast_id_), compacted);
    for (const auto& [id, pending] : dc.pending_broadcasts_) {
      WalRecord intent =
          pending.type == WalRecordType::kMigrationIntent
              ? WalRecord::MigrationIntent(id, pending.op, pending.payload,
                                           pending.target_ids)
              : WalRecord::BroadcastIntent(id, pending.op, pending.payload,
                                           pending.target_ids);
      AppendFramed(intent, compacted);
    }
    TVDP_RETURN_IF_ERROR(AtomicWriteFile(*dc.fs_, dc.broadcast_path_,
                                         compacted));
  }
  TVDP_ASSIGN_OR_RETURN(Wal blog, Wal::Open(dc.fs_, dc.broadcast_path_));
  dc.broadcast_log_ = std::make_unique<Wal>(std::move(blog));
  return dc;
}

Status DurableCatalog::Bootstrap(Catalog initial) {
  std::unique_lock<std::shared_mutex> lock(*mutex_);
  if (recovered_from_disk_ || !catalog_->TableNames().empty()) {
    return Status::FailedPrecondition(
        "Bootstrap on a non-empty durable catalog");
  }
  *catalog_ = std::move(initial);
  return CheckpointLocked();
}

Result<RowId> DurableCatalog::Insert(const std::string& table, Row row) {
  // The writer lock spans apply + WAL append + (possible) compaction, so
  // the commit order in the log always matches the in-memory apply order.
  std::unique_lock<std::shared_mutex> lock(*mutex_);
  Row logged = row;  // keep a copy for the WAL record
  TVDP_ASSIGN_OR_RETURN(RowId id, catalog_->Insert(table, std::move(row)));
  WalRecord record{table, id, std::move(logged)};
  record.epoch = epoch_;
  Status committed = wal_->Append(record, options_.sync_on_commit);
  if (!committed.ok()) {
    // Undo the in-memory apply so state matches what a reopen reconstructs.
    Table* t = catalog_->GetTable(table);
    Status undone = t->Delete(id);
    if (undone.ok()) t->SetNextId(id);
    return committed;
  }
  if (wal_->size_bytes() > options_.compaction_threshold_bytes) {
    // Best-effort: the record is already durable in the WAL, so a failed
    // compaction loses nothing. Transient IO errors are retried with
    // bounded jittered backoff inside this insert; if the budget runs out
    // the next threshold cross tries again.
    Status compacted = RunWithRetries(
        options_.compaction_retry,
        /*seed=*/0x7e7u + static_cast<uint64_t>(checkpoints_taken_), [&] {
          Status s = CheckpointLocked();
          if (!s.ok()) {
            TVDP_LOG(Warning) << "WAL compaction failed (will retry): "
                              << s.ToString();
          }
          return s;
        });
    (void)compacted;
  }
  return id;
}

Status DurableCatalog::Delete(const std::string& table, RowId id) {
  std::unique_lock<std::shared_mutex> lock(*mutex_);
  Table* t = catalog_->GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  // Keep a copy so a failed log append can restore the exact row.
  TVDP_ASSIGN_OR_RETURN(Row saved, t->Get(id));
  TVDP_RETURN_IF_ERROR(t->Delete(id));
  WalRecord record = WalRecord::Delete(table, id);
  record.epoch = epoch_;
  Status committed = wal_->Append(record, options_.sync_on_commit);
  if (!committed.ok()) {
    // Undo the in-memory delete so state matches what a reopen reconstructs.
    (void)t->RestoreRow(std::move(saved));
    return committed;
  }
  return Status::OK();
}

Status DurableCatalog::RestoreInsert(const std::string& table, RowId id,
                                     Row values) {
  std::unique_lock<std::shared_mutex> lock(*mutex_);
  Table* t = catalog_->GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  if (t->Exists(id)) {
    return Status::AlreadyExists("row " + std::to_string(id) +
                                 " already applied to " + table);
  }
  Row full;
  full.reserve(values.size() + 1);
  full.push_back(Value(id));
  for (const Value& v : values) full.push_back(v);
  TVDP_RETURN_IF_ERROR(t->RestoreRow(std::move(full)));
  WalRecord record{table, id, std::move(values)};
  record.epoch = epoch_;
  Status committed = wal_->Append(record, options_.sync_on_commit);
  if (!committed.ok()) {
    // Undo the apply so memory never runs ahead of the replica's own log
    // (next_id may stay bumped — ids merely skip, which is harmless).
    (void)t->Delete(id);
    return committed;
  }
  return Status::OK();
}

void DurableCatalog::set_epoch(int64_t epoch) {
  std::unique_lock<std::shared_mutex> lock(*mutex_);
  epoch_ = epoch;
}

int64_t DurableCatalog::epoch() const {
  std::shared_lock<std::shared_mutex> lock(*mutex_);
  return epoch_;
}

Status DurableCatalog::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(*mutex_);
  return CheckpointLocked();
}

Status DurableCatalog::CheckpointLocked() {
  TVDP_RETURN_IF_ERROR(AtomicWriteFile(*fs_, snapshot_path_,
                                       catalog_->Serialize()));
  TVDP_RETURN_IF_ERROR(wal_->Reset());
  ++checkpoints_taken_;
  return Status::OK();
}

Status DurableCatalog::Flush() {
  std::unique_lock<std::shared_mutex> lock(*mutex_);
  return wal_->Sync();
}

Status DurableCatalog::AppendBroadcast(const WalRecord& record) {
  if (record.type == WalRecordType::kInsert ||
      record.type == WalRecordType::kDelete) {
    return Status::InvalidArgument(
        "row-mutation records do not belong in the broadcast log");
  }
  std::unique_lock<std::shared_mutex> lock(*mutex_);
  // Always synced: an intent must be durable before the coordinator applies
  // the operation anywhere, and a commit marker before the coordinator
  // reports the broadcast resolved.
  TVDP_RETURN_IF_ERROR(broadcast_log_->Append(record, /*sync=*/true));
  switch (record.type) {
    case WalRecordType::kBroadcastIntent:
    case WalRecordType::kMigrationIntent:
      pending_broadcasts_[record.broadcast_id] =
          PendingBroadcast{record.broadcast_id, record.op, record.payload,
                           record.target_ids, record.type};
      break;
    case WalRecordType::kBroadcastCommit:
    case WalRecordType::kBroadcastAbort:
    case WalRecordType::kMigrationCommit:
    case WalRecordType::kMigrationAbort:
      pending_broadcasts_.erase(record.broadcast_id);
      break;
    case WalRecordType::kInsert:
    case WalRecordType::kDelete:
    case WalRecordType::kEpochInsert:
    case WalRecordType::kEpochDelete:
      break;  // rejected above
  }
  max_broadcast_id_ = std::max(max_broadcast_id_, record.broadcast_id);
  return Status::OK();
}

std::vector<PendingBroadcast> DurableCatalog::PendingBroadcasts() const {
  std::shared_lock<std::shared_mutex> lock(*mutex_);
  std::vector<PendingBroadcast> out;
  out.reserve(pending_broadcasts_.size());
  for (const auto& [id, pending] : pending_broadcasts_) out.push_back(pending);
  return out;
}

int64_t DurableCatalog::max_broadcast_id() const {
  std::shared_lock<std::shared_mutex> lock(*mutex_);
  return max_broadcast_id_;
}

}  // namespace tvdp::storage
