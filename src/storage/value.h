#ifndef TVDP_STORAGE_VALUE_H_
#define TVDP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace tvdp::storage {

/// Column value types supported by the embedded store. kFloatVector exists
/// because visual feature vectors are first-class data in TVDP's schema
/// (the Image_Visual_Features entity).
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kBool,
  kString,
  kBlob,
  kFloatVector,
};

/// Stable type name, e.g. "int64".
std::string ValueTypeName(ValueType type);

/// A dynamically typed cell value.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}                       // NOLINT
  Value(int v) : v_(static_cast<int64_t>(v)) {}     // NOLINT
  Value(double v) : v_(v) {}                        // NOLINT
  Value(bool v) : v_(v) {}                          // NOLINT
  Value(const char* v) : v_(std::string(v)) {}      // NOLINT
  Value(std::string v) : v_(std::move(v)) {}        // NOLINT
  Value(std::vector<uint8_t> v) : v_(std::move(v)) {}  // NOLINT
  Value(std::vector<double> v) : v_(std::move(v)) {}   // NOLINT

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; behaviour defined only for matching type.
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const;
  bool AsBool() const { return std::get<bool>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const std::vector<uint8_t>& AsBlob() const {
    return std::get<std::vector<uint8_t>>(v_);
  }
  const std::vector<double>& AsFloatVector() const {
    return std::get<std::vector<double>>(v_);
  }

  /// Render for debugging (blobs/vectors abbreviated).
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }

  /// Ordering for index/sort use; values of different types order by type.
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string,
               std::vector<uint8_t>, std::vector<double>>
      v_;
};

/// A tuple of cell values (one per schema column).
using Row = std::vector<Value>;

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_VALUE_H_
