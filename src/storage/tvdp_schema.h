#ifndef TVDP_STORAGE_TVDP_SCHEMA_H_
#define TVDP_STORAGE_TVDP_SCHEMA_H_

#include <string>

#include "common/result.h"
#include "storage/catalog.h"

namespace tvdp::storage {

/// Table names of the TVDP database schema (paper Fig. 2).
namespace tables {
inline constexpr char kImages[] = "images";
inline constexpr char kImageFov[] = "image_fov";
inline constexpr char kImageSceneLocation[] = "image_scene_location";
inline constexpr char kImageVisualFeatures[] = "image_visual_features";
inline constexpr char kImageContentClassification[] =
    "image_content_classification";
inline constexpr char kImageContentClassificationTypes[] =
    "image_content_classification_types";
inline constexpr char kImageContentAnnotation[] = "image_content_annotation";
inline constexpr char kImageManualKeywords[] = "image_manual_keywords";
}  // namespace tables

/// Creates all tables of the TVDP data model in `catalog`:
///
///  * images — the core entity: URI, GPS location (spatial descriptor #1),
///    capture/upload timestamps (temporal descriptor), source, and the
///    original/augmented distinction of Sec. IV-B.
///  * image_fov — the FOV descriptor (L via images.lat/lon, theta, alpha, R).
///  * image_scene_location — the scene-location MBR descriptor.
///  * image_visual_features — one row per (image, feature kind): the
///    visual descriptors (color histogram / SIFT-BoW / CNN).
///  * image_content_classification — a classification task, e.g.
///    "street_cleanliness" or "graffiti".
///  * image_content_classification_types — the labels of each task.
///  * image_content_annotation — image (or region) annotations referencing
///    a label, with confidence and manual/machine provenance.
///  * image_manual_keywords — the textual descriptor.
Status CreateTvdpSchema(Catalog& catalog);

/// A catalog pre-populated with the TVDP schema.
Result<Catalog> MakeTvdpCatalog();

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_TVDP_SCHEMA_H_
