#include "storage/catalog.h"

#include "common/crc32.h"
#include "common/strings.h"
#include "storage/serializer.h"

namespace tvdp::storage {
namespace {

constexpr uint32_t kMagic = 0x54564450;  // "TVDP"
// v2 added the whole-body CRC32C; v1 (unchecksummed) files are rejected.
constexpr uint32_t kVersion = 2;

}  // namespace

Status Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  // Validate FK targets exist (self-references allowed).
  for (const Column& c : schema.columns()) {
    if (c.references && c.references->table != name &&
        !tables_.count(c.references->table)) {
      return Status::InvalidArgument(
          StrFormat("table %s: FK column %s references unknown table %s",
                    name.c_str(), c.name.c_str(),
                    c.references->table.c_str()));
    }
  }
  tables_[name] = std::make_unique<Table>(name, std::move(schema));
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<RowId> Catalog::Insert(const std::string& table, Row row) {
  Table* t = GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  const auto& cols = t->schema().columns();
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = cols[i + 1];
    if (!col.references || row[i].is_null()) continue;
    if (row[i].type() != ValueType::kInt64) {
      return Status::InvalidArgument("FK column " + col.name +
                                     " must hold an int64 id");
    }
    const Table* target = col.references->table == table
                              ? t
                              : GetTable(col.references->table);
    if (!target || !target->Exists(row[i].AsInt64())) {
      return Status::FailedPrecondition(
          StrFormat("FK violation: %s.%s -> %s(%lld)", table.c_str(),
                    col.name.c_str(), col.references->table.c_str(),
                    static_cast<long long>(row[i].AsInt64())));
    }
  }
  return t->Insert(std::move(row));
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::vector<uint8_t> Catalog::Serialize() const {
  std::vector<const Table*> tables;
  tables.reserve(tables_.size());
  for (const auto& [_, table] : tables_) tables.push_back(table.get());
  return SerializeTables(tables);
}

std::vector<uint8_t> Catalog::SerializeTables(
    const std::vector<const Table*>& tables) {
  // Body first, so the header can carry its checksum: any single corrupted
  // byte anywhere in the output is detected on load (magic/version flips by
  // the field checks, everything else by the CRC).
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(tables.size()));
  for (const Table* table : tables) {
    w.WriteString(table->name());
    // Schema (excluding the implicit id column, re-added on load).
    const auto& cols = table->schema().columns();
    w.WriteU32(static_cast<uint32_t>(cols.size() - 1));
    for (size_t i = 1; i < cols.size(); ++i) {
      w.WriteString(cols[i].name);
      w.WriteU8(static_cast<uint8_t>(cols[i].type));
      w.WriteU8(cols[i].nullable ? 1 : 0);
      w.WriteString(cols[i].references ? cols[i].references->table : "");
    }
    w.WriteI64(table->next_id());
    // Rows.
    std::vector<Row> rows = table->Scan([](const Row&) { return true; });
    w.WriteU32(static_cast<uint32_t>(rows.size()));
    for (const Row& row : rows) {
      w.WriteU32(static_cast<uint32_t>(row.size()));
      for (const Value& v : row) w.WriteValue(v);
    }
  }
  std::vector<uint8_t> body = std::move(w.Take());

  BinaryWriter out;
  out.WriteU32(kMagic);
  out.WriteU32(kVersion);
  out.WriteU32(Crc32c(body));
  std::vector<uint8_t> framed = std::move(out.Take());
  framed.insert(framed.end(), body.begin(), body.end());
  return framed;
}

Result<Catalog> Catalog::Deserialize(const std::vector<uint8_t>& bytes) {
  BinaryReader r(bytes);
  TVDP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) return Status::IOError("bad catalog magic");
  TVDP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return Status::IOError(StrFormat("unsupported catalog version %u", version));
  }
  TVDP_ASSIGN_OR_RETURN(uint32_t body_crc, r.ReadU32());
  if (Crc32c(bytes.data() + r.position(), bytes.size() - r.position()) !=
      body_crc) {
    return Status::IOError("catalog snapshot checksum mismatch");
  }
  TVDP_ASSIGN_OR_RETURN(uint32_t n_tables, r.ReadU32());
  Catalog catalog;
  for (uint32_t t = 0; t < n_tables; ++t) {
    TVDP_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    TVDP_ASSIGN_OR_RETURN(uint32_t n_cols, r.ReadU32());
    std::vector<Column> cols;
    for (uint32_t c = 0; c < n_cols; ++c) {
      Column col;
      TVDP_ASSIGN_OR_RETURN(col.name, r.ReadString());
      TVDP_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
      col.type = static_cast<ValueType>(type);
      TVDP_ASSIGN_OR_RETURN(uint8_t nullable, r.ReadU8());
      col.nullable = nullable != 0;
      TVDP_ASSIGN_OR_RETURN(std::string fk, r.ReadString());
      if (!fk.empty()) col.references = ForeignKey{fk};
      cols.push_back(std::move(col));
    }
    // Create without FK target validation (tables may arrive out of
    // dependency order in the sorted map).
    catalog.tables_[name] =
        std::make_unique<Table>(name, Schema(std::move(cols)));
    Table* table = catalog.tables_[name].get();
    TVDP_ASSIGN_OR_RETURN(int64_t next_id, r.ReadI64());
    TVDP_ASSIGN_OR_RETURN(uint32_t n_rows, r.ReadU32());
    for (uint32_t i = 0; i < n_rows; ++i) {
      TVDP_ASSIGN_OR_RETURN(uint32_t arity, r.ReadU32());
      // Each value needs at least its 1-byte tag; reject corrupted counts
      // before reserving.
      TVDP_RETURN_IF_ERROR(r.Need(arity));
      Row row;
      row.reserve(arity);
      for (uint32_t j = 0; j < arity; ++j) {
        TVDP_ASSIGN_OR_RETURN(Value v, r.ReadValue());
        row.push_back(std::move(v));
      }
      TVDP_RETURN_IF_ERROR(table->RestoreRow(std::move(row)));
    }
    table->SetNextId(next_id);
  }
  return catalog;
}

Status Catalog::SaveToFile(const std::string& path) const {
  return WriteFile(path, Serialize());
}

Result<Catalog> Catalog::LoadFromFile(const std::string& path) {
  TVDP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return Deserialize(bytes);
}

}  // namespace tvdp::storage
