#ifndef TVDP_STORAGE_TABLE_H_
#define TVDP_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace tvdp::storage {

/// Primary key type (matches index::RecordId).
using RowId = int64_t;

/// An in-memory heap table with an auto-increment primary key, schema
/// validation, predicate scans, and point lookups via a pk hash map.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return pk_index_.size(); }

  /// Inserts a row (all columns except id); returns the assigned id.
  Result<RowId> Insert(Row row);

  /// The full row (including id at position 0) for `id`.
  Result<Row> Get(RowId id) const;

  /// Replaces the non-id columns of row `id`.
  Status Update(RowId id, Row row);

  /// Deletes row `id` (tombstone; space is reused on save/load).
  Status Delete(RowId id);

  /// True iff a live row with `id` exists.
  bool Exists(RowId id) const { return pk_index_.count(id) > 0; }

  /// All rows matching `predicate` (full scan, storage order).
  std::vector<Row> Scan(
      const std::function<bool(const Row&)>& predicate) const;

  /// All rows where column `column` equals `v` (scan with equality).
  Result<std::vector<Row>> FindBy(const std::string& column,
                                  const Value& v) const;

  /// Calls `fn` for every live row; stops early if `fn` returns false.
  void ForEach(const std::function<bool(const Row&)>& fn) const;

  /// The next id that would be assigned (for tests/serialization).
  RowId next_id() const { return next_id_; }

  /// Internal: appends a fully formed row with explicit id (load path).
  Status RestoreRow(Row row_with_id);
  void SetNextId(RowId id) { next_id_ = id; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;                       // includes id column
  std::vector<bool> live_;
  std::unordered_map<RowId, size_t> pk_index_;  // id -> slot
  RowId next_id_ = 1;
};

}  // namespace tvdp::storage

#endif  // TVDP_STORAGE_TABLE_H_
