#include "storage/value.h"

#include "common/strings.h"

namespace tvdp::storage {

std::string ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kBool: return "bool";
    case ValueType::kString: return "string";
    case ValueType::kBlob: return "blob";
    case ValueType::kFloatVector: return "float_vector";
  }
  return "unknown";
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index());
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(v_)) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  return std::get<double>(v_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return StrFormat("%lld", static_cast<long long>(AsInt64()));
    case ValueType::kDouble: return StrFormat("%.6g", std::get<double>(v_));
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kString: return AsString();
    case ValueType::kBlob: return StrFormat("<blob:%zu>", AsBlob().size());
    case ValueType::kFloatVector:
      return StrFormat("<vec:%zu>", AsFloatVector().size());
  }
  return "?";
}

bool operator<(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
  return a.v_ < b.v_;
}

}  // namespace tvdp::storage
