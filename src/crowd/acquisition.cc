#include "crowd/acquisition.h"

#include <map>

namespace tvdp::crowd {

IterativeAcquisition::IterativeAcquisition(const Campaign& campaign,
                                           geo::CoverageGrid grid,
                                           WorkerPool pool, Options options,
                                           uint64_t seed)
    : campaign_(campaign),
      grid_(std::move(grid)),
      pool_(std::move(pool)),
      options_(options),
      rng_(seed),
      clock_(campaign.created_at > 0 ? campaign.created_at : 1546300800) {}

std::vector<RoundStats> IterativeAcquisition::Run(
    const std::function<void(const Capture&)>& on_capture) {
  std::vector<RoundStats> history;
  for (int round = 1; round <= options_.max_rounds; ++round) {
    if (grid_.CoverageRatio() >= campaign_.target_coverage) break;

    RoundStats stats;
    stats.round = round;

    std::vector<Task> tasks = TasksFromGaps(
        grid_, campaign_.id, next_task_id_, options_.max_tasks_per_round);
    next_task_id_ += static_cast<int64_t>(tasks.size());
    stats.tasks_issued = static_cast<int>(tasks.size());

    std::vector<Assignment> assignments =
        AssignTasks(tasks, pool_.workers(), options_.policy);
    ApplyAssignments(assignments, tasks);
    stats.tasks_assigned = static_cast<int>(assignments.size());
    stats.travel_m = TotalTravelMeters(assignments);

    // Execute: each assigned worker accepts with their probability, walks
    // to the task location, and captures facing the required bearing with
    // small GPS/compass noise (real captures are imperfect).
    std::map<int64_t, const Worker*> worker_by_id;
    for (const Worker& w : pool_.workers()) worker_by_id[w.id] = &w;
    std::map<int64_t, Task*> task_by_id;
    for (Task& t : tasks) task_by_id[t.id] = &t;

    for (const Assignment& a : assignments) {
      const Worker* w = worker_by_id[a.worker_id];
      Task* t = task_by_id[a.task_id];
      if (!w || !t) continue;
      if (!rng_.Bernoulli(w->acceptance_prob)) {
        t->state = Task::State::kExpired;
        continue;
      }
      geo::GeoPoint capture_point = geo::Destination(
          t->location, rng_.Uniform(0, 360),
          rng_.Uniform(0, t->tolerance_m));
      double bearing = t->bearing_deg + rng_.Normal(0, 6.0);
      auto fov = geo::FieldOfView::Make(capture_point, bearing,
                                        w->camera_angle_deg,
                                        w->camera_radius_m);
      if (!fov.ok()) {
        t->state = Task::State::kExpired;
        continue;
      }
      t->state = Task::State::kCompleted;
      ++stats.tasks_completed;
      grid_.AddFov(*fov);
      if (on_capture) {
        Capture c;
        c.worker_id = w->id;
        c.task_id = t->id;
        c.fov = *fov;
        c.captured_at = clock_.Now() + rng_.UniformInt(
            0, options_.seconds_per_round - 1);
        on_capture(c);
      }
    }

    stats.coverage_after = grid_.CoverageRatio();
    stats.cell_coverage_after = grid_.CellCoverageRatio();
    history.push_back(stats);

    pool_.Drift(campaign_.region, options_.drift_m, rng_);
    clock_.Advance(options_.seconds_per_round);
  }
  return history;
}

}  // namespace tvdp::crowd
