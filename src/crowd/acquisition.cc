#include "crowd/acquisition.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

namespace tvdp::crowd {

IterativeAcquisition::IterativeAcquisition(const Campaign& campaign,
                                           geo::CoverageGrid grid,
                                           WorkerPool pool, Options options,
                                           uint64_t seed)
    : campaign_(campaign),
      grid_(std::move(grid)),
      pool_(std::move(pool)),
      options_(options),
      rng_(seed),
      clock_(campaign.created_at > 0 ? campaign.created_at : 1546300800) {}

std::vector<RoundStats> IterativeAcquisition::Run(
    const std::function<void(const Capture&)>& on_capture) {
  std::vector<RoundStats> history;
  std::vector<Task> requeued;  // expired tasks carried into the next round
  for (int round = 1; round <= options_.max_rounds; ++round) {
    if (grid_.CoverageRatio() >= campaign_.target_coverage) break;

    RoundStats stats;
    stats.round = round;

    // Re-open expired tasks from earlier rounds first; they keep their id
    // and retry count. Fresh gap-derived tasks fill the rest of the round's
    // budget, skipping gaps a requeued task already targets.
    std::vector<Task> tasks = std::move(requeued);
    requeued.clear();
    stats.tasks_requeued = static_cast<int>(tasks.size());
    for (Task& t : tasks) {
      t.state = Task::State::kOpen;
      t.assigned_worker = -1;
    }
    std::set<std::tuple<double, double, double>> requeued_gaps;
    for (const Task& t : tasks) {
      requeued_gaps.insert({t.location.lat, t.location.lon,
                            t.bearing_deg});
    }
    std::vector<Task> fresh = TasksFromGaps(
        grid_, campaign_.id, next_task_id_, options_.max_tasks_per_round);
    int64_t fresh_issued = 0;
    for (Task& t : fresh) {
      if (options_.max_tasks_per_round > 0 &&
          static_cast<int>(tasks.size()) >= options_.max_tasks_per_round) {
        break;
      }
      if (requeued_gaps.count({t.location.lat, t.location.lon,
                               t.bearing_deg})) {
        continue;  // a requeued task already covers this gap
      }
      t.id = next_task_id_ + fresh_issued++;
      tasks.push_back(std::move(t));
    }
    next_task_id_ += fresh_issued;
    stats.tasks_issued = static_cast<int>(tasks.size());

    std::vector<Assignment> assignments =
        AssignTasks(tasks, pool_.workers(), options_.policy);
    ApplyAssignments(assignments, tasks);
    stats.tasks_assigned = static_cast<int>(assignments.size());
    stats.travel_m = TotalTravelMeters(assignments);

    // Execute: each assigned worker accepts with their probability, walks
    // to the task location, and captures facing the required bearing with
    // small GPS/compass noise (real captures are imperfect).
    std::map<int64_t, const Worker*> worker_by_id;
    for (const Worker& w : pool_.workers()) worker_by_id[w.id] = &w;
    std::map<int64_t, Task*> task_by_id;
    for (Task& t : tasks) task_by_id[t.id] = &t;

    for (const Assignment& a : assignments) {
      const Worker* w = worker_by_id[a.worker_id];
      Task* t = task_by_id[a.task_id];
      if (!w || !t) continue;
      if (!rng_.Bernoulli(w->acceptance_prob)) {
        t->state = Task::State::kExpired;
        continue;
      }
      geo::GeoPoint capture_point = geo::Destination(
          t->location, rng_.Uniform(0, 360),
          rng_.Uniform(0, t->tolerance_m));
      double bearing = t->bearing_deg + rng_.Normal(0, 6.0);
      auto fov = geo::FieldOfView::Make(capture_point, bearing,
                                        w->camera_angle_deg,
                                        w->camera_radius_m);
      if (!fov.ok()) {
        t->state = Task::State::kExpired;
        continue;
      }
      t->state = Task::State::kCompleted;
      ++stats.tasks_completed;
      grid_.AddFov(*fov);
      if (on_capture) {
        Capture c;
        c.worker_id = w->id;
        c.task_id = t->id;
        c.fov = *fov;
        c.captured_at = clock_.Now() + rng_.UniformInt(
            0, options_.seconds_per_round - 1);
        on_capture(c);
      }
    }

    // Expired tasks get re-opened next round until their retry budget is
    // spent; after that their gap may still produce a fresh task.
    for (Task& t : tasks) {
      if (t.state == Task::State::kExpired &&
          t.retries < options_.max_task_retries) {
        ++t.retries;
        requeued.push_back(t);
      }
    }

    stats.coverage_after = grid_.CoverageRatio();
    stats.cell_coverage_after = grid_.CellCoverageRatio();
    history.push_back(stats);

    pool_.Drift(campaign_.region, options_.drift_m, rng_);
    clock_.Advance(options_.seconds_per_round);
  }
  return history;
}

}  // namespace tvdp::crowd
