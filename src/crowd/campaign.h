#ifndef TVDP_CROWD_CAMPAIGN_H_
#define TVDP_CROWD_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/timeutil.h"
#include "geo/bbox.h"
#include "geo/coverage.h"

namespace tvdp::crowd {

/// A spatial-crowdsourcing task: capture an image at (near) a location,
/// looking along a required bearing (paper Sec. III: proactive collection
/// driven by coverage gaps).
struct Task {
  int64_t id = 0;
  int64_t campaign_id = 0;
  geo::GeoPoint location;       ///< target cell center
  double bearing_deg = 0;       ///< required viewing direction
  double tolerance_m = 60;      ///< how close the worker must get
  enum class State { kOpen, kAssigned, kCompleted, kExpired };
  State state = State::kOpen;
  int64_t assigned_worker = -1;
  /// Times this task has been re-opened after expiring (worker declined or
  /// produced an unusable capture). Bounded by the acquisition loop.
  int retries = 0;
};

/// A data-collection campaign over a region: a participant (government,
/// researcher) requests imagery of a region until a coverage target is met.
struct Campaign {
  int64_t id = 0;
  std::string name;
  geo::BoundingBox region;
  double target_coverage = 0.8;  ///< CoverageRatio goal in [0,1]
  Timestamp created_at = 0;
  /// Reward per completed task (drives worker acceptance).
  double reward = 1.0;
};

/// Derives open tasks from the coverage gaps of `grid`, one task per
/// missing (cell, direction); `max_tasks` caps the batch (0 = unlimited).
/// Task ids are assigned sequentially starting at `first_task_id`.
std::vector<Task> TasksFromGaps(const geo::CoverageGrid& grid,
                                int64_t campaign_id, int64_t first_task_id,
                                int max_tasks = 0);

}  // namespace tvdp::crowd

#endif  // TVDP_CROWD_CAMPAIGN_H_
