#include "crowd/worker.h"

#include <algorithm>

namespace tvdp::crowd {

WorkerPool WorkerPool::MakeUniform(const geo::BoundingBox& region, int count,
                                   Rng& rng) {
  WorkerPool pool;
  for (int i = 0; i < count; ++i) {
    Worker w;
    w.id = i + 1;
    w.location = geo::GeoPoint{
        rng.Uniform(region.min_lat, region.max_lat),
        rng.Uniform(region.min_lon, region.max_lon)};
    w.speed_mps = rng.Uniform(1.0, 2.0);
    w.max_travel_m = rng.Uniform(600, 2000);
    w.acceptance_prob = rng.Uniform(0.55, 0.95);
    w.capacity = static_cast<int>(rng.UniformInt(1, 4));
    w.camera_angle_deg = rng.Uniform(50, 75);
    w.camera_radius_m = rng.Uniform(80, 160);
    pool.workers_.push_back(w);
  }
  return pool;
}

void WorkerPool::Drift(const geo::BoundingBox& region, double max_step_m,
                       Rng& rng) {
  for (Worker& w : workers_) {
    double bearing = rng.Uniform(0, 360);
    double step = rng.Uniform(0, max_step_m);
    geo::GeoPoint next = geo::Destination(w.location, bearing, step);
    next.lat = std::clamp(next.lat, region.min_lat, region.max_lat);
    next.lon = std::clamp(next.lon, region.min_lon, region.max_lon);
    w.location = next;
  }
}

}  // namespace tvdp::crowd
