#ifndef TVDP_CROWD_WORKER_H_
#define TVDP_CROWD_WORKER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/timeutil.h"
#include "geo/bbox.h"
#include "geo/fov.h"

namespace tvdp::crowd {

/// A simulated crowdsourcing participant (a MediaQ-style mobile user):
/// position, travel speed, a maximum range they will travel for a task,
/// an acceptance probability, and the camera parameters of their device.
struct Worker {
  int64_t id = 0;
  geo::GeoPoint location;
  double speed_mps = 1.4;          ///< walking speed
  double max_travel_m = 1200;      ///< beyond this they decline
  double acceptance_prob = 0.8;    ///< chance of accepting a feasible task
  int capacity = 3;                ///< tasks per round
  // Camera model for the captures this worker produces.
  double camera_angle_deg = 60;
  double camera_radius_m = 120;
};

/// One produced geo-tagged capture.
struct Capture {
  int64_t worker_id = 0;
  int64_t task_id = -1;  ///< -1 for opportunistic (passive) captures
  geo::FieldOfView fov;
  Timestamp captured_at = 0;
};

/// A pool of simulated workers scattered over a region.
class WorkerPool {
 public:
  /// Creates `count` workers uniformly placed in `region`, with per-worker
  /// speed/acceptance variation drawn from `rng`.
  static WorkerPool MakeUniform(const geo::BoundingBox& region, int count,
                                Rng& rng);

  std::vector<Worker>& workers() { return workers_; }
  const std::vector<Worker>& workers() const { return workers_; }
  size_t size() const { return workers_.size(); }

  /// Moves every worker a random step (drift within the region).
  void Drift(const geo::BoundingBox& region, double max_step_m, Rng& rng);

 private:
  std::vector<Worker> workers_;
};

}  // namespace tvdp::crowd

#endif  // TVDP_CROWD_WORKER_H_
