#include "crowd/campaign.h"

namespace tvdp::crowd {

std::vector<Task> TasksFromGaps(const geo::CoverageGrid& grid,
                                int64_t campaign_id, int64_t first_task_id,
                                int max_tasks) {
  std::vector<Task> tasks;
  int64_t next_id = first_task_id;
  for (const auto& gap : grid.FindGaps()) {
    for (double bearing : gap.missing_bearings_deg) {
      if (max_tasks > 0 && static_cast<int>(tasks.size()) >= max_tasks) {
        return tasks;
      }
      Task t;
      t.id = next_id++;
      t.campaign_id = campaign_id;
      t.location = gap.cell_center;
      t.bearing_deg = bearing;
      tasks.push_back(t);
    }
  }
  return tasks;
}

}  // namespace tvdp::crowd
