#include "crowd/assignment.h"

#include <algorithm>
#include <map>

namespace tvdp::crowd {
namespace {

std::vector<Assignment> GreedyNearest(const std::vector<Task>& tasks,
                                      const std::vector<Worker>& workers) {
  std::vector<Assignment> out;
  std::vector<int> remaining_capacity;
  remaining_capacity.reserve(workers.size());
  for (const Worker& w : workers) remaining_capacity.push_back(w.capacity);

  for (const Task& t : tasks) {
    if (t.state != Task::State::kOpen) continue;
    int best = -1;
    double best_d = 0;
    for (size_t i = 0; i < workers.size(); ++i) {
      if (remaining_capacity[i] <= 0) continue;
      double d = geo::HaversineMeters(workers[i].location, t.location);
      if (d > workers[i].max_travel_m) continue;
      if (best < 0 || d < best_d) {
        best = static_cast<int>(i);
        best_d = d;
      }
    }
    if (best >= 0) {
      --remaining_capacity[static_cast<size_t>(best)];
      out.push_back(Assignment{t.id, workers[static_cast<size_t>(best)].id,
                               best_d});
    }
  }
  return out;
}

std::vector<Assignment> BatchedMatching(const std::vector<Task>& tasks,
                                        const std::vector<Worker>& workers) {
  struct Edge {
    double dist;
    size_t task_idx;
    size_t worker_idx;
  };
  std::vector<Edge> edges;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    if (tasks[ti].state != Task::State::kOpen) continue;
    for (size_t wi = 0; wi < workers.size(); ++wi) {
      double d = geo::HaversineMeters(workers[wi].location,
                                      tasks[ti].location);
      if (d <= workers[wi].max_travel_m) edges.push_back({d, ti, wi});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    if (a.task_idx != b.task_idx) return a.task_idx < b.task_idx;
    return a.worker_idx < b.worker_idx;
  });
  std::vector<bool> task_taken(tasks.size(), false);
  std::vector<int> remaining_capacity;
  remaining_capacity.reserve(workers.size());
  for (const Worker& w : workers) remaining_capacity.push_back(w.capacity);

  std::vector<Assignment> out;
  for (const Edge& e : edges) {
    if (task_taken[e.task_idx] || remaining_capacity[e.worker_idx] <= 0) {
      continue;
    }
    task_taken[e.task_idx] = true;
    --remaining_capacity[e.worker_idx];
    out.push_back(Assignment{tasks[e.task_idx].id, workers[e.worker_idx].id,
                             e.dist});
  }
  return out;
}

}  // namespace

std::vector<Assignment> AssignTasks(const std::vector<Task>& tasks,
                                    const std::vector<Worker>& workers,
                                    AssignmentPolicy policy) {
  switch (policy) {
    case AssignmentPolicy::kGreedyNearest:
      return GreedyNearest(tasks, workers);
    case AssignmentPolicy::kBatchedMatching:
      return BatchedMatching(tasks, workers);
  }
  return {};
}

void ApplyAssignments(const std::vector<Assignment>& assignments,
                      std::vector<Task>& tasks) {
  std::map<int64_t, const Assignment*> by_task;
  for (const Assignment& a : assignments) by_task[a.task_id] = &a;
  for (Task& t : tasks) {
    auto it = by_task.find(t.id);
    if (it != by_task.end() && t.state == Task::State::kOpen) {
      t.state = Task::State::kAssigned;
      t.assigned_worker = it->second->worker_id;
    }
  }
}

double TotalTravelMeters(const std::vector<Assignment>& assignments) {
  double total = 0;
  for (const Assignment& a : assignments) total += a.travel_m;
  return total;
}

}  // namespace tvdp::crowd
