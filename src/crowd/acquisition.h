#ifndef TVDP_CROWD_ACQUISITION_H_
#define TVDP_CROWD_ACQUISITION_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/timeutil.h"
#include "crowd/assignment.h"
#include "crowd/campaign.h"
#include "crowd/worker.h"
#include "geo/coverage.h"

namespace tvdp::crowd {

/// Per-round statistics of an iterative acquisition campaign.
struct RoundStats {
  int round = 0;
  int tasks_issued = 0;
  int tasks_assigned = 0;
  int tasks_completed = 0;
  /// Expired tasks from earlier rounds re-opened this round (bounded by
  /// Options::max_task_retries per task).
  int tasks_requeued = 0;
  double travel_m = 0;
  double coverage_after = 0;       ///< direction-aware coverage ratio
  double cell_coverage_after = 0;  ///< direction-blind coverage ratio
};

/// The iterative spatial-crowdsourcing loop of paper Sec. III:
///   measure coverage -> derive tasks from gaps -> assign -> execute ->
///   fold new FOVs back into the coverage model -> repeat
/// until the campaign's coverage target is met or `max_rounds` elapse.
class IterativeAcquisition {
 public:
  struct Options {
    int max_rounds = 20;
    int max_tasks_per_round = 200;
    AssignmentPolicy policy = AssignmentPolicy::kBatchedMatching;
    /// Workers drift this far between rounds.
    double drift_m = 300;
    /// Simulated seconds per round (timestamps of captures).
    int64_t seconds_per_round = 3600;
    /// Expired tasks are re-opened in later rounds at most this many times
    /// before the loop stops carrying them (their gap may still produce a
    /// fresh task). 0 makes expiry terminal, the pre-retry behaviour.
    int max_task_retries = 2;
  };

  IterativeAcquisition(const Campaign& campaign, geo::CoverageGrid grid,
                       WorkerPool pool, Options options, uint64_t seed);

  /// Runs the loop. `on_capture`, if set, receives every produced capture
  /// (the platform uses this to ingest images).
  std::vector<RoundStats> Run(
      const std::function<void(const Capture&)>& on_capture = nullptr);

  const geo::CoverageGrid& grid() const { return grid_; }
  const Campaign& campaign() const { return campaign_; }

 private:
  Campaign campaign_;
  geo::CoverageGrid grid_;
  WorkerPool pool_;
  Options options_;
  Rng rng_;
  SimClock clock_;
  int64_t next_task_id_ = 1;
};

}  // namespace tvdp::crowd

#endif  // TVDP_CROWD_ACQUISITION_H_
