#ifndef TVDP_CROWD_ASSIGNMENT_H_
#define TVDP_CROWD_ASSIGNMENT_H_

#include <vector>

#include "crowd/campaign.h"
#include "crowd/worker.h"

namespace tvdp::crowd {

/// One (task, worker) pairing produced by an assignment algorithm.
struct Assignment {
  int64_t task_id = 0;
  int64_t worker_id = 0;
  double travel_m = 0;
};

/// Spatial task-assignment policies (after Kazemi & Shahabi, GeoCrowd,
/// SIGSPATIAL 2012). Both respect worker capacity and max-travel range.
enum class AssignmentPolicy {
  /// Tasks greedily grab their nearest available worker, task order.
  kGreedyNearest,
  /// All feasible (task, worker) edges sorted by distance globally, then
  /// matched shortest-first — a 2-approximation of the maximum-cardinality
  /// minimum-cost matching that GeoCrowd's MTA computes exactly.
  kBatchedMatching,
};

/// Computes assignments of open `tasks` to `workers` under `policy`.
/// Neither input is mutated; apply the result via ApplyAssignments.
std::vector<Assignment> AssignTasks(const std::vector<Task>& tasks,
                                    const std::vector<Worker>& workers,
                                    AssignmentPolicy policy);

/// Marks assigned tasks in `tasks` (state + assigned_worker).
void ApplyAssignments(const std::vector<Assignment>& assignments,
                      std::vector<Task>& tasks);

/// Total travel distance of an assignment set.
double TotalTravelMeters(const std::vector<Assignment>& assignments);

}  // namespace tvdp::crowd

#endif  // TVDP_CROWD_ASSIGNMENT_H_
