#ifndef TVDP_COMMON_STATUS_H_
#define TVDP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tvdp {

/// Canonical error codes used across the TVDP platform. Modelled after the
/// usual database-system status conventions (no exceptions cross API
/// boundaries; every fallible operation returns a Status or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kPermissionDenied,
  kUnimplemented,
  kIOError,
  kInternal,
  kUnavailable,        ///< endpoint unreachable / crashed; usually transient
  kDeadlineExceeded,   ///< attempt or budget timed out
  kResourceExhausted,  ///< capacity gone (battery, quota, queue slots)
  kCancelled,          ///< caller abandoned the request; never retried
  kDataLoss,           ///< unrecoverable divergence/corruption of stored data
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. `Status::OK()` carries no message
/// and is cheap to copy; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// The canonical OK status.
  static Status OK() { return Status(); }

  // Factory helpers for each error code.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The diagnostic message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define TVDP_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::tvdp::Status _tvdp_status = (expr);         \
    if (!_tvdp_status.ok()) return _tvdp_status;  \
  } while (0)

}  // namespace tvdp

#endif  // TVDP_COMMON_STATUS_H_
