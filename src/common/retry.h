#ifndef TVDP_COMMON_RETRY_H_
#define TVDP_COMMON_RETRY_H_

#include <functional>
#include <optional>

#include "common/rng.h"
#include "common/status.h"

namespace tvdp {

/// Declarative retry policy shared by every subsystem that re-attempts
/// fallible work (edge inference dispatch, WAL compaction, crowd rounds).
/// All times are milliseconds; a zero limit means "unlimited".
struct RetryPolicy {
  /// Total attempts including the first; <= 1 disables retries.
  int max_attempts = 3;
  /// First backoff; also the lower bound of every jittered draw.
  double initial_backoff_ms = 10;
  /// Upper bound on any single backoff.
  double max_backoff_ms = 1000;
  /// Budget for a single attempt, enforced by the caller (the edge
  /// orchestrator passes it to the fault model as the attempt timeout).
  double per_attempt_timeout_ms = 0;
  /// Overall budget across attempts and backoffs.
  double deadline_ms = 0;
};

/// True for failures worth re-attempting: the same call may succeed on a
/// later try or a different replica — kUnavailable (crash, partition),
/// kDeadlineExceeded (straggler, timeout), kIOError (transient disk), and
/// kResourceExhausted (capacity that may free up or exist elsewhere).
/// Semantic errors (kInvalidArgument, kNotFound, kFailedPrecondition, ...)
/// are deterministic and never retried, and kCancelled is the caller's own
/// decision to stop — retrying it would defeat the cancellation.
bool IsRetryableStatus(StatusCode code);

/// Status-aware classification. Same as the code overload except for
/// kResourceExhausted: a shed response (admission queue full, rate limit)
/// is retryable only when the server attached a retry-after hint — a bare
/// kResourceExhausted (exhausted battery, quota gone for good) signals
/// capacity that will not come back, and hammering it makes overload worse.
bool IsRetryableStatus(const Status& status);

/// Attaches a machine-readable retry-after hint to an error status. The
/// hint survives message concatenation and is recovered by
/// RetryAfterHintMs; the admission controller attaches it to every shed
/// response so well-behaved clients back off by the suggested amount.
Status WithRetryAfterHint(Status status, double retry_after_ms);

/// The retry-after hint carried by `status`, if any.
std::optional<double> RetryAfterHintMs(const Status& status);

/// Per-operation retry bookkeeping: counts failures against the policy and
/// produces decorrelated-jitter backoffs — each wait is drawn uniformly
/// from [initial_backoff, 3 * previous wait], capped at max_backoff. The
/// jitter decorrelates retry storms across clients better than plain
/// exponential backoff while keeping the same expected growth.
class RetryState {
 public:
  RetryState(RetryPolicy policy, uint64_t seed);

  /// Call after a failed attempt: true when another attempt may run —
  /// `status` is retryable, attempts remain, and `elapsed_ms` (total time
  /// spent so far, including backoffs) is still inside the deadline.
  bool ShouldRetry(const Status& status, double elapsed_ms = 0);

  /// The wait before the next attempt; advances the jitter state.
  double NextBackoffMs();

  /// Failed attempts recorded so far via ShouldRetry.
  int failures() const { return failures_; }

  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  double backoff_ms_ = 0;  ///< last wait; 0 until the first NextBackoffMs
  int failures_ = 0;
};

/// Runs `op` under `policy`, waiting the jittered backoff between attempts
/// via `sleep_ms` (defaults to a real std::this_thread sleep; tests inject
/// a recorder). Deadline accounting uses the sum of backoffs, not the wall
/// clock, so behaviour is deterministic for a given seed. Returns OK as
/// soon as an attempt succeeds, otherwise the last attempt's error.
Status RunWithRetries(const RetryPolicy& policy, uint64_t seed,
                      const std::function<Status()>& op,
                      const std::function<void(double)>& sleep_ms = {});

}  // namespace tvdp

#endif  // TVDP_COMMON_RETRY_H_
