#ifndef TVDP_COMMON_TIMEUTIL_H_
#define TVDP_COMMON_TIMEUTIL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace tvdp {

/// TVDP's temporal descriptor uses Unix timestamps (seconds). The platform
/// is deterministic: "now" in simulations comes from a SimClock, never from
/// the wall clock.
using Timestamp = int64_t;

/// Formats a Unix timestamp as "YYYY-MM-DD HH:MM:SS" (UTC).
std::string FormatTimestamp(Timestamp ts);

/// Parses "YYYY-MM-DD HH:MM:SS" (UTC) back into a Unix timestamp.
Result<Timestamp> ParseTimestamp(const std::string& text);

/// A manually advanced simulation clock shared by simulator components
/// (crowdsourcing rounds, edge learning rounds, upload timestamps).
class SimClock {
 public:
  /// Starts the clock at `start` seconds since the epoch.
  explicit SimClock(Timestamp start = 1546300800 /* 2019-01-01 00:00:00 */)
      : now_(start) {}

  /// Current simulated time.
  Timestamp Now() const { return now_; }

  /// Advances the clock by `seconds` (>= 0) and returns the new time.
  Timestamp Advance(int64_t seconds) {
    if (seconds > 0) now_ += seconds;
    return now_;
  }

 private:
  Timestamp now_;
};

}  // namespace tvdp

#endif  // TVDP_COMMON_TIMEUTIL_H_
