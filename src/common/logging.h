#ifndef TVDP_COMMON_LOGGING_H_
#define TVDP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace tvdp {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Sets the global minimum severity emitted to stderr (default: kInfo).
void SetLogLevel(LogLevel level);

/// Current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

}  // namespace internal

#define TVDP_LOG(level)                                             \
  if (::tvdp::LogLevel::k##level < ::tvdp::GetLogLevel()) {         \
  } else                                                            \
    ::tvdp::internal::LogMessage(::tvdp::LogLevel::k##level,        \
                                 __FILE__, __LINE__)                \
        .stream()

}  // namespace tvdp

#endif  // TVDP_COMMON_LOGGING_H_
