#ifndef TVDP_COMMON_CONTEXT_H_
#define TVDP_COMMON_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <utility>

#include "common/status.h"

namespace tvdp {

/// A shared cancellation handle. Copies refer to the same flag: the client
/// thread keeps one copy and calls Cancel(); the serving thread polls
/// cancelled() (through RequestContext::Check) at loop boundaries. Safe to
/// cancel from any thread at any time.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent; never blocks.
  void Cancel() { flag_->store(true, std::memory_order_relaxed); }

  /// True once Cancel() has been called on any copy.
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-request lifecycle state threaded from the API boundary down through
/// the query engine and thread pool: an optional absolute deadline and an
/// optional cancellation token. Long loops (hybrid verify, LSH probe/rank,
/// OR-tree refine, kNN re-rank, ParallelFor chunk boundaries) call Check()
/// cooperatively so an expired or abandoned request stops burning CPU.
///
/// Cheap to copy (a time point and a shared_ptr); pass by const reference
/// on hot paths. The default-constructed context never expires and cannot
/// be cancelled — equivalent to Background().
class RequestContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline, no cancellation — for internal and legacy callers.
  RequestContext() = default;

  static RequestContext Background() { return RequestContext(); }

  /// A context that expires `ms` milliseconds from now. Zero or negative
  /// yields an already-expired context (used by tests and by callers whose
  /// budget was consumed upstream).
  static RequestContext WithDeadlineMs(double ms) {
    RequestContext ctx;
    ctx.has_deadline_ = true;
    ctx.deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double, std::milli>(ms));
    return ctx;
  }

  /// A cancellable context with no deadline.
  static RequestContext WithCancel(CancelToken token) {
    RequestContext ctx;
    ctx.token_ = std::move(token);
    ctx.has_token_ = true;
    return ctx;
  }

  /// A copy of this context whose deadline is at most `ms` from now:
  /// tightens an existing deadline, never loosens it, and keeps any
  /// cancellation token. Used by the API layer to apply a per-request
  /// "deadline_ms" field on top of a transport-level context.
  RequestContext WithDeadlineIn(double ms) const {
    RequestContext ctx = *this;
    Clock::time_point d =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(ms));
    if (!ctx.has_deadline_ || d < ctx.deadline_) ctx.deadline_ = d;
    ctx.has_deadline_ = true;
    return ctx;
  }

  /// Attaches a cancellation token to this context (keeps the deadline).
  RequestContext WithCancelToken(CancelToken token) const {
    RequestContext ctx = *this;
    ctx.token_ = std::move(token);
    ctx.has_token_ = true;
    return ctx;
  }

  bool has_deadline() const { return has_deadline_; }

  /// Milliseconds until the deadline (negative once expired); +infinity
  /// when the context has no deadline.
  double remaining_ms() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
        .count();
  }

  bool expired() const { return has_deadline_ && Clock::now() >= deadline_; }

  bool cancelled() const { return has_token_ && token_.cancelled(); }

  /// OK while the request should keep running. Cancellation wins over the
  /// deadline (the caller explicitly walked away; report that, not the
  /// coincidental timeout).
  Status Check() const {
    if (cancelled()) return Status::Cancelled("request cancelled by caller");
    if (expired()) return Status::DeadlineExceeded("request deadline exceeded");
    return Status::OK();
  }

 private:
  bool has_deadline_ = false;
  bool has_token_ = false;
  Clock::time_point deadline_{};
  CancelToken token_;
};

}  // namespace tvdp

#endif  // TVDP_COMMON_CONTEXT_H_
