#ifndef TVDP_COMMON_STRINGS_H_
#define TVDP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tvdp {

/// Splits `text` on `sep`, omitting empty pieces when `skip_empty` is true.
std::vector<std::string> StrSplit(std::string_view text, char sep,
                                  bool skip_empty = false);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Returns `text` with ASCII letters lowercased.
std::string ToLower(std::string_view text);

/// Returns `text` without leading/trailing ASCII whitespace.
std::string StrTrim(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True iff `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Tokenizes free text into lowercase alphanumeric terms (used by the
/// textual descriptor pipeline and the inverted index).
std::vector<std::string> TokenizeWords(std::string_view text);

}  // namespace tvdp

#endif  // TVDP_COMMON_STRINGS_H_
