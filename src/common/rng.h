#ifndef TVDP_COMMON_RNG_H_
#define TVDP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tvdp {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component in TVDP draws from an explicitly
/// seeded Rng so that experiments, tests, and benchmarks are reproducible
/// bit-for-bit across runs and platforms.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal (mean 0, stddev 1) via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw: true with probability `p`.
  bool Bernoulli(double p);

  /// Exponential with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to the (non-negative) weights. Returns 0 if all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap(items[i], items[j]);
    }
  }

  /// Returns a derived generator whose stream is independent of (but
  /// deterministically related to) this one. Useful for giving each worker
  /// or fold its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tvdp

#endif  // TVDP_COMMON_RNG_H_
