#ifndef TVDP_COMMON_CRC32_H_
#define TVDP_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tvdp {

/// CRC32C (Castagnoli polynomial, reflected 0x82F63B78) — the checksum used
/// by the durable-storage layer for WAL records and catalog snapshots.
/// Table-driven (slice-by-4), no hardware dependency.
///
/// `Crc32c(data, n)` computes the checksum of a buffer from scratch;
/// `Crc32cExtend(crc, data, n)` continues a running checksum so that framed
/// records can checksum header and payload without concatenating them.
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n);

inline uint32_t Crc32c(const uint8_t* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(const std::vector<uint8_t>& bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

inline uint32_t Crc32c(const std::string& s) {
  return Crc32c(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

}  // namespace tvdp

#endif  // TVDP_COMMON_CRC32_H_
