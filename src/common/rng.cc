#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace tvdp {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  if (hi < lo) std::swap(lo, hi);  // robust in release builds
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0 || weights.empty()) return 0;
  double pick = Uniform() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0);
    if (pick < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa02b'dbf7'bb3c'0a7ULL); }

}  // namespace tvdp
