#ifndef TVDP_COMMON_FILE_H_
#define TVDP_COMMON_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace tvdp {

/// A sequential output file handle produced by an `Fs`. Durability contract:
/// bytes are guaranteed on stable storage only after a successful `Sync()`;
/// `Close()` flushes userspace buffers but does not imply persistence.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const uint8_t* data, size_t n) = 0;
  Status Append(const std::vector<uint8_t>& bytes) {
    return Append(bytes.data(), bytes.size());
  }

  /// Forces written data to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the handle; further calls are errors. Idempotent.
  virtual Status Close() = 0;
};

/// Minimal filesystem abstraction: everything the durability layer touches
/// goes through an `Fs` so that tests can interpose fault injection between
/// the storage engine and the real disk.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens `path` for writing; truncates when `truncate`, else appends
  /// (creating the file if missing in both modes).
  virtual Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) = 0;

  /// Reads the entire file.
  virtual Result<std::vector<uint8_t>> ReadAll(const std::string& path) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// fsyncs the directory containing `path` so that renames/creates of that
  /// entry survive a power cut.
  virtual Status SyncDirOf(const std::string& path) = 0;

  /// The process-wide POSIX filesystem.
  static Fs* Default();
};

/// Writes `bytes` to `path` crash-safely: tmp file, fsync, rename over the
/// target, fsync of the containing directory. The tmp file is unlinked on
/// every failure path.
Status AtomicWriteFile(Fs& fs, const std::string& path,
                       const std::vector<uint8_t>& bytes);

/// An `Fs` decorator that injects storage faults for robustness tests:
///
///  * transient errors — the next `n` mutating operations (appends/syncs)
///    fail with kIOError, then behave normally;
///  * short writes — the next append persists only a prefix and reports
///    kIOError, modelling ENOSPC / partial write() returns;
///  * power cut — once total appended bytes reach a chosen offset, all
///    further appended bytes are silently dropped and syncs become no-ops,
///    modelling a crash where the log tail never reached the platter.
///
/// Reads and metadata ops pass through unmodified so that tests can inspect
/// the "disk" state after the fault.
class FaultInjectingFs : public Fs {
 public:
  explicit FaultInjectingFs(Fs* base) : base_(base) {}

  // --- fault configuration ---

  /// The next `n` Append/Sync calls fail with kIOError (state unchanged).
  void InjectErrors(int n) {
    errors_skip_ = 0;
    errors_to_inject_ = n;
  }

  /// Like `InjectErrors`, but lets the next `skip` mutating calls through
  /// unharmed first. Lets a test fault a specific later operation, e.g. the
  /// compaction triggered by an otherwise healthy insert.
  void InjectErrorsAfter(int skip, int n) {
    errors_skip_ = skip;
    errors_to_inject_ = n;
  }

  /// The next Append persists only `prefix_bytes` of its payload, then
  /// returns kIOError.
  void InjectShortWrite(size_t prefix_bytes) {
    short_write_prefix_ = static_cast<int64_t>(prefix_bytes);
  }

  /// Silently drops every appended byte past `offset` (counted across all
  /// files opened through this Fs from now on). Pass a negative value to
  /// disarm.
  void SetPowerCutAfter(int64_t offset) {
    power_cut_offset_ = offset;
    appended_bytes_ = 0;
  }

  /// True once a power cut actually swallowed bytes.
  bool power_cut_hit() const { return power_cut_hit_; }

  // --- counters (for tests/benches) ---
  int64_t append_calls() const { return append_calls_; }
  int64_t sync_calls() const { return sync_calls_; }
  int64_t injected_faults() const { return injected_faults_; }

  // --- Fs interface ---
  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     bool truncate) override;
  Result<std::vector<uint8_t>> ReadAll(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDirOf(const std::string& path) override;

 private:
  friend class FaultInjectingFile;

  /// Returns true (and counts) when the current mutating call must fail.
  bool ShouldFail();

  Fs* base_;
  int errors_skip_ = 0;
  int errors_to_inject_ = 0;
  int64_t short_write_prefix_ = -1;
  int64_t power_cut_offset_ = -1;
  int64_t appended_bytes_ = 0;
  bool power_cut_hit_ = false;
  int64_t append_calls_ = 0;
  int64_t sync_calls_ = 0;
  int64_t injected_faults_ = 0;
};

}  // namespace tvdp

#endif  // TVDP_COMMON_FILE_H_
