#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/strings.h"

namespace tvdp {
namespace {

/// Marker embedded in status messages carrying a retry-after hint. Chosen
/// to be greppable and unlikely to occur in organic diagnostics.
constexpr char kRetryAfterMarker[] = "[retry_after_ms=";

}  // namespace

bool IsRetryableStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

bool IsRetryableStatus(const Status& status) {
  if (status.code() == StatusCode::kResourceExhausted) {
    return RetryAfterHintMs(status).has_value();
  }
  return IsRetryableStatus(status.code());
}

Status WithRetryAfterHint(Status status, double retry_after_ms) {
  if (status.ok()) return status;
  return Status(status.code(),
                StrFormat("%s %s%.0f]", status.message().c_str(),
                          kRetryAfterMarker, std::max(retry_after_ms, 0.0)));
}

std::optional<double> RetryAfterHintMs(const Status& status) {
  const std::string& msg = status.message();
  size_t pos = msg.find(kRetryAfterMarker);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = msg.c_str() + pos + sizeof(kRetryAfterMarker) - 1;
  char* end = nullptr;
  double ms = std::strtod(start, &end);
  if (end == start || *end != ']') return std::nullopt;
  return ms;
}

RetryState::RetryState(RetryPolicy policy, uint64_t seed)
    : policy_(policy), rng_(seed) {}

bool RetryState::ShouldRetry(const Status& status, double elapsed_ms) {
  ++failures_;
  if (status.ok() || !IsRetryableStatus(status)) return false;
  if (policy_.max_attempts > 0 && failures_ >= policy_.max_attempts) {
    return false;
  }
  if (policy_.deadline_ms > 0 && elapsed_ms >= policy_.deadline_ms) {
    return false;
  }
  return true;
}

double RetryState::NextBackoffMs() {
  double hi = backoff_ms_ <= 0 ? policy_.initial_backoff_ms : backoff_ms_ * 3;
  hi = std::min(hi, policy_.max_backoff_ms);
  double lo = std::min(policy_.initial_backoff_ms, hi);
  backoff_ms_ = hi > lo ? rng_.Uniform(lo, hi) : lo;
  return backoff_ms_;
}

Status RunWithRetries(const RetryPolicy& policy, uint64_t seed,
                      const std::function<Status()>& op,
                      const std::function<void(double)>& sleep_ms) {
  RetryState state(policy, seed);
  double elapsed_ms = 0;
  while (true) {
    Status s = op();
    if (s.ok()) return s;
    if (!state.ShouldRetry(s, elapsed_ms)) return s;
    double wait = state.NextBackoffMs();
    elapsed_ms += wait;
    if (sleep_ms) {
      sleep_ms(wait);
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait));
    }
  }
}

}  // namespace tvdp
