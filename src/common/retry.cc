#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace tvdp {

bool IsRetryableStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

bool IsRetryableStatus(const Status& status) {
  return IsRetryableStatus(status.code());
}

RetryState::RetryState(RetryPolicy policy, uint64_t seed)
    : policy_(policy), rng_(seed) {}

bool RetryState::ShouldRetry(const Status& status, double elapsed_ms) {
  ++failures_;
  if (status.ok() || !IsRetryableStatus(status)) return false;
  if (policy_.max_attempts > 0 && failures_ >= policy_.max_attempts) {
    return false;
  }
  if (policy_.deadline_ms > 0 && elapsed_ms >= policy_.deadline_ms) {
    return false;
  }
  return true;
}

double RetryState::NextBackoffMs() {
  double hi = backoff_ms_ <= 0 ? policy_.initial_backoff_ms : backoff_ms_ * 3;
  hi = std::min(hi, policy_.max_backoff_ms);
  double lo = std::min(policy_.initial_backoff_ms, hi);
  backoff_ms_ = hi > lo ? rng_.Uniform(lo, hi) : lo;
  return backoff_ms_;
}

Status RunWithRetries(const RetryPolicy& policy, uint64_t seed,
                      const std::function<Status()>& op,
                      const std::function<void(double)>& sleep_ms) {
  RetryState state(policy, seed);
  double elapsed_ms = 0;
  while (true) {
    Status s = op();
    if (s.ok()) return s;
    if (!state.ShouldRetry(s, elapsed_ms)) return s;
    double wait = state.NextBackoffMs();
    elapsed_ms += wait;
    if (sleep_ms) {
      sleep_ms(wait);
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait));
    }
  }
}

}  // namespace tvdp
