#include "common/crc32.h"

#include <array>

namespace tvdp {
namespace {

constexpr uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli polynomial

/// Builds the 4 slice tables at static-init time (4 KiB total).
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n) {
  const Tables& tb = GetTables();
  crc = ~crc;
  // Slice-by-4 over the aligned middle, byte-at-a-time for the tail.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(data[0]) |
           (static_cast<uint32_t>(data[1]) << 8) |
           (static_cast<uint32_t>(data[2]) << 16) |
           (static_cast<uint32_t>(data[3]) << 24);
    crc = tb.t[3][crc & 0xFF] ^ tb.t[2][(crc >> 8) & 0xFF] ^
          tb.t[1][(crc >> 16) & 0xFF] ^ tb.t[0][crc >> 24];
    data += 4;
    n -= 4;
  }
  while (n--) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *data++) & 0xFF];
  }
  return ~crc;
}

}  // namespace tvdp
