#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace tvdp {
namespace {

const Json& NullJson() {
  static const Json* kNull = new Json();
  return *kNull;
}

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double v) {
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWs();
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Result<Json> ParseValue() {
    if (depth_ > 256) return Status::InvalidArgument("JSON nesting too deep");
    if (Eof()) return Status::InvalidArgument("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return Json(std::move(s).value());
      }
      case 't': return ParseLiteral("true", Json(true));
      case 'f': return ParseLiteral("false", Json(false));
      case 'n': return ParseLiteral("null", Json());
      default: return ParseNumber();
    }
  }

  Result<Json> ParseLiteral(std::string_view lit, Json value) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Status::InvalidArgument("invalid literal in JSON");
    }
    pos_ += lit.size();
    return value;
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (!Eof() && (Peek() == '-' || Peek() == '+')) ++pos_;
    while (!Eof() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                      Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                      Peek() == '-' || Peek() == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("invalid JSON number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument("invalid JSON number: " + token);
    }
    return Json(v);
  }

  Result<std::string> ParseString() {
    if (Eof() || Peek() != '"') {
      return Status::InvalidArgument("expected string");
    }
    ++pos_;
    std::string out;
    while (true) {
      if (Eof()) return Status::InvalidArgument("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (Eof()) return Status::InvalidArgument("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Status::InvalidArgument("bad \\u escape digit");
            }
            // Encode BMP code point as UTF-8 (surrogate pairs unsupported;
            // sufficient for the platform's metadata payloads).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Status::InvalidArgument("unknown escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Result<Json> ParseArray() {
    ++pos_;  // consume '['
    ++depth_;
    Json::Array arr;
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(arr));
    }
    while (true) {
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      arr.push_back(std::move(v).value());
      SkipWs();
      if (Eof()) return Status::InvalidArgument("unterminated array");
      char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') return Status::InvalidArgument("expected ',' in array");
    }
    --depth_;
    return Json(std::move(arr));
  }

  Result<Json> ParseObject() {
    ++pos_;  // consume '{'
    ++depth_;
    Json::Object obj;
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(obj));
    }
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (Eof() || text_[pos_++] != ':') {
        return Status::InvalidArgument("expected ':' in object");
      }
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      obj[std::move(key).value()] = std::move(v).value();
      SkipWs();
      if (Eof()) return Status::InvalidArgument("unterminated object");
      char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') return Status::InvalidArgument("expected ',' in object");
    }
    --depth_;
    return Json(std::move(obj));
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Json& Json::operator[](const std::string& key) const {
  if (type_ != Type::kObject) return NullJson();
  auto it = obj_.find(key);
  if (it == obj_.end()) return NullJson();
  return it->second;
}

Json& Json::operator[](const std::string& key) {
  if (type_ != Type::kObject) {
    type_ = Type::kObject;
    obj_.clear();
  }
  return obj_[key];
}

bool Json::Has(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) > 0;
}

void Json::Append(Json v) {
  if (type_ != Type::kArray) {
    type_ = Type::kArray;
    arr_.clear();
  }
  arr_.push_back(std::move(v));
}

size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: AppendNumber(out, num_); break;
    case Type::kString: AppendEscaped(out, str_); break;
    case Type::kArray: {
      out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        AppendEscaped(out, k);
        out += ':';
        if (indent > 0) out += ' ';
        v.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0, 0);
  return out;
}

std::string Json::Pretty() const {
  std::string out;
  DumpTo(out, 2, 0);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  Parser p(text);
  return p.ParseDocument();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kNumber: return a.num_ == b.num_;
    case Json::Type::kString: return a.str_ == b.str_;
    case Json::Type::kArray: return a.arr_ == b.arr_;
    case Json::Type::kObject: return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace tvdp
