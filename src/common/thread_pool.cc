#include "common/thread_pool.h"

#include <algorithm>

namespace tvdp {
namespace {

/// True on threads currently executing pool work; nested ParallelFor calls
/// detect this and run inline rather than waiting on their own pool.
thread_local bool t_inside_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(
    size_t n, size_t min_per_chunk,
    const std::function<Status(size_t, size_t)>& body) {
  if (n == 0) return Status::OK();
  min_per_chunk = std::max<size_t>(min_per_chunk, 1);
  // Caller participates, so up to size()+1 chunks; never more than the
  // range supports at min_per_chunk granularity.
  size_t max_chunks = std::min(threads_.size() + 1, n / min_per_chunk);
  if (max_chunks <= 1 || t_inside_pool_worker) {
    return body(0, n);
  }
  size_t chunk = (n + max_chunks - 1) / max_chunks;
  std::vector<std::future<Status>> pending;
  pending.reserve(max_chunks - 1);
  size_t begin = chunk;  // chunk [0, chunk) runs on the caller below
  for (; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    pending.push_back(Submit([&body, begin, end] { return body(begin, end); }));
  }
  Status status = body(0, std::min(chunk, n));
  for (std::future<Status>& f : pending) {
    Status s = f.get();
    if (status.ok() && !s.ok()) status = s;
  }
  return status;
}

Status ThreadPool::ParallelFor(
    const RequestContext& ctx, size_t n, size_t min_per_chunk,
    const std::function<Status(size_t, size_t)>& body) {
  TVDP_RETURN_IF_ERROR(ctx.Check());
  if (n == 0) return Status::OK();
  min_per_chunk = std::max<size_t>(min_per_chunk, 1);
  size_t participants = threads_.size() + 1;
  // Chunks stay small (close to min_per_chunk) so the context is re-checked
  // often, but never so small that a big range schedules thousands of them.
  size_t chunk = std::max(min_per_chunk, n / (4 * participants));
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  auto run = [&ctx, &body, cursor, n, chunk]() -> Status {
    for (;;) {
      size_t begin = cursor->fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return Status::OK();
      TVDP_RETURN_IF_ERROR(ctx.Check());
      TVDP_RETURN_IF_ERROR(body(begin, std::min(begin + chunk, n)));
    }
  };
  size_t max_helpers = std::min(threads_.size(), n / chunk);
  if (max_helpers == 0 || t_inside_pool_worker) return run();
  std::vector<std::future<Status>> pending;
  pending.reserve(max_helpers);
  for (size_t i = 0; i < max_helpers; ++i) pending.push_back(Submit(run));
  Status status = run();
  for (std::future<Status>& f : pending) {
    Status s = f.get();
    if (status.ok() && !s.ok()) status = s;
  }
  return status;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw > 1 ? hw - 1 : 0);
  }();
  return *pool;
}

}  // namespace tvdp
