#ifndef TVDP_COMMON_JSON_H_
#define TVDP_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tvdp {

/// A JSON document value. TVDP's API layer (Sec. V of the paper: Restful
/// API web services) exchanges requests and responses as JSON envelopes;
/// this is a small self-contained value model + parser + serializer.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps object keys ordered, which makes serialization (and
  // therefore golden tests) deterministic.
  using Object = std::map<std::string, Json>;

  /// Constructs null.
  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}          // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}        // NOLINT
  Json(int v) : type_(Type::kNumber), num_(v) {}        // NOLINT
  Json(int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(size_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}   // NOLINT
  Json(double v) : type_(Type::kNumber), num_(v) {}     // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}         // NOLINT
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}       // NOLINT

  /// Factory helpers.
  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; behaviour is defined only for the matching type.
  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  int64_t AsInt() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }
  const Array& AsArray() const { return arr_; }
  Array& AsArray() { return arr_; }
  const Object& AsObject() const { return obj_; }
  Object& AsObject() { return obj_; }

  /// Object field access; returns a shared null instance when missing or
  /// when this value is not an object.
  const Json& operator[](const std::string& key) const;
  /// Mutable object field access (creates the field; converts to object).
  Json& operator[](const std::string& key);

  /// True iff this is an object containing `key`.
  bool Has(const std::string& key) const;

  /// Appends to an array value (converts null to array first).
  void Append(Json v);

  /// Number of elements (array) / fields (object) / 0 otherwise.
  size_t size() const;

  /// Serializes to a compact JSON string.
  std::string Dump() const;
  /// Serializes with 2-space indentation.
  std::string Pretty() const;

  /// Parses a JSON document; returns InvalidArgument on malformed input.
  static Result<Json> Parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace tvdp

#endif  // TVDP_COMMON_JSON_H_
