#include "common/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tvdp {
namespace {

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const uint8_t* data, size_t n) override {
    if (fd_ < 0) return Status::Internal("append to closed file " + path_);
    while (n > 0) {
      ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("sync of closed file " + path_);
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                     bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open", path);
    return {std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path))};
  }

  Result<std::vector<uint8_t>> ReadAll(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    for (;;) {
      ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        Status s = Errno("read", path);
        ::close(fd);
        return s;
      }
      if (r == 0) break;
      bytes.insert(bytes.end(), buf, buf + r);
    }
    ::close(fd);
    return bytes;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status SyncDirOf(const std::string& path) override {
    std::string dir = DirOf(path);
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("open dir", dir);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Errno("fsync dir", dir);
    return Status::OK();
  }
};

}  // namespace

Fs* Fs::Default() {
  static PosixFs* fs = new PosixFs();
  return fs;
}

Status AtomicWriteFile(Fs& fs, const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  std::string tmp = path + ".tmp";
  auto file = fs.OpenWritable(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status s = (*file)->Append(bytes);
  if (s.ok()) s = (*file)->Sync();
  Status close_status = (*file)->Close();
  if (s.ok()) s = close_status;
  if (s.ok()) s = fs.Rename(tmp, path);
  if (!s.ok()) {
    if (fs.Exists(tmp)) fs.Remove(tmp);
    return s.code() == StatusCode::kIOError
               ? s
               : Status::IOError("atomic write of " + path + " failed: " +
                                 s.message());
  }
  return fs.SyncDirOf(path);
}

// ---------------------------------------------------------------------------
// FaultInjectingFs
// ---------------------------------------------------------------------------

class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(std::unique_ptr<WritableFile> base, FaultInjectingFs* fs)
      : base_(std::move(base)), fs_(fs) {}

  Status Append(const uint8_t* data, size_t n) override;
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingFs* fs_;
};

bool FaultInjectingFs::ShouldFail() {
  if (errors_skip_ > 0) {
    --errors_skip_;
    return false;
  }
  if (errors_to_inject_ > 0) {
    --errors_to_inject_;
    ++injected_faults_;
    return true;
  }
  return false;
}

Status FaultInjectingFile::Append(const uint8_t* data, size_t n) {
  ++fs_->append_calls_;
  if (fs_->ShouldFail()) {
    return Status::IOError("injected transient write error");
  }
  if (fs_->short_write_prefix_ >= 0) {
    size_t prefix = static_cast<size_t>(fs_->short_write_prefix_);
    fs_->short_write_prefix_ = -1;
    ++fs_->injected_faults_;
    if (prefix > n) prefix = n;
    Status s = base_->Append(data, prefix);
    if (!s.ok()) return s;
    fs_->appended_bytes_ += static_cast<int64_t>(prefix);
    return Status::IOError("injected short write");
  }
  if (fs_->power_cut_offset_ >= 0) {
    int64_t room = fs_->power_cut_offset_ - fs_->appended_bytes_;
    if (room < 0) room = 0;
    size_t keep = room < static_cast<int64_t>(n) ? static_cast<size_t>(room) : n;
    if (keep < n) fs_->power_cut_hit_ = true;
    fs_->appended_bytes_ += static_cast<int64_t>(n);
    // The dropped suffix "succeeds" from the writer's point of view: that is
    // exactly what a power cut before the data reached the platter looks like.
    return keep > 0 ? base_->Append(data, keep) : Status::OK();
  }
  fs_->appended_bytes_ += static_cast<int64_t>(n);
  return base_->Append(data, n);
}

Status FaultInjectingFile::Sync() {
  ++fs_->sync_calls_;
  if (fs_->ShouldFail()) {
    return Status::IOError("injected transient sync error");
  }
  if (fs_->power_cut_hit_) return Status::OK();  // the machine is "off"
  return base_->Sync();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::OpenWritable(
    const std::string& path, bool truncate) {
  auto base = base_->OpenWritable(path, truncate);
  if (!base.ok()) return base.status();
  return {std::unique_ptr<WritableFile>(std::make_unique<FaultInjectingFile>(
      std::move(*base), this))};
}

Result<std::vector<uint8_t>> FaultInjectingFs::ReadAll(const std::string& path) {
  return base_->ReadAll(path);
}

Result<uint64_t> FaultInjectingFs::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectingFs::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status FaultInjectingFs::Rename(const std::string& from, const std::string& to) {
  if (ShouldFail()) return Status::IOError("injected rename error");
  return base_->Rename(from, to);
}

Status FaultInjectingFs::Remove(const std::string& path) {
  return base_->Remove(path);
}

Status FaultInjectingFs::Truncate(const std::string& path, uint64_t size) {
  return base_->Truncate(path, size);
}

Status FaultInjectingFs::SyncDirOf(const std::string& path) {
  if (power_cut_hit_) return Status::OK();
  return base_->SyncDirOf(path);
}

}  // namespace tvdp
