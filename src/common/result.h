#ifndef TVDP_COMMON_RESULT_H_
#define TVDP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tvdp {

/// A value-or-error holder: either an OK Status together with a `T`, or a
/// non-OK Status and no value. Follows the Arrow/absl StatusOr idiom.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = r.value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Constructs a failed result from a non-OK `status`. Passing an OK status
  /// here is a programming error (asserted in debug builds).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value; must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define TVDP_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  TVDP_ASSIGN_OR_RETURN_IMPL_(                             \
      TVDP_CONCAT_(_tvdp_result_, __LINE__), lhs, rexpr)

#define TVDP_CONCAT_INNER_(a, b) a##b
#define TVDP_CONCAT_(a, b) TVDP_CONCAT_INNER_(a, b)
#define TVDP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace tvdp

#endif  // TVDP_COMMON_RESULT_H_
