#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace tvdp {

std::vector<std::string> StrSplit(std::string_view text, char sep,
                                  bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) pos = text.size();
    std::string_view piece = text.substr(start, pos - start);
    if (!skip_empty || !piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrTrim(std::string_view text) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace tvdp
