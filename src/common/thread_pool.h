#ifndef TVDP_COMMON_THREAD_POOL_H_
#define TVDP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/context.h"
#include "common/result.h"

namespace tvdp {

/// A fixed-size worker pool for fan-out on read-heavy paths (LSH probing,
/// hybrid-query candidate verification, concurrent benchmark drivers).
///
/// Design points:
///  * `Submit` hands back a `std::future` of the callable's result, so a
///    `Status`-returning task naturally propagates its error to the waiter.
///  * `ParallelFor` statically partitions an index range into chunks, runs
///    them on the workers with the calling thread participating, and joins
///    before returning the first non-OK chunk status. With zero workers
///    (single-core machines) it degrades to an inline sequential loop.
///  * Nested `ParallelFor` from inside a worker runs inline instead of
///    re-submitting, so a pool can never deadlock on its own tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Zero is valid: all work then runs on the
  /// calling thread at ParallelFor/Submit time (Submit still returns a
  /// future; it is satisfied synchronously).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (not counting callers participating in
  /// ParallelFor).
  size_t size() const { return threads_.size(); }

  /// Schedules `fn` and returns a future for its result. When the pool has
  /// no workers the callable runs immediately on the calling thread.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (threads_.empty()) {
      (*task)();
      return future;
    }
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs `body(begin, end)` over a static partition of [0, n), with the
  /// calling thread executing its own share. Chunks hold at least
  /// `min_per_chunk` indices, so tiny ranges never pay scheduling overhead.
  /// Returns the first non-OK status any chunk produced (all chunks still
  /// run to completion — no partial joins).
  Status ParallelFor(size_t n, size_t min_per_chunk,
                     const std::function<Status(size_t, size_t)>& body);

  /// Cooperative variant: chunks are pulled from a shared cursor and `ctx`
  /// is checked before every chunk, so a cancelled or expired request stops
  /// within one chunk per participating thread — no new chunk starts after
  /// the context fails, and the loop returns kCancelled/kDeadlineExceeded.
  /// Unlike the static overload, chunk sizes stay near `min_per_chunk`
  /// (capped so a run schedules at most ~4 chunks per thread), keeping the
  /// cancellation latency bound tight even for large ranges.
  Status ParallelFor(const RequestContext& ctx, size_t n, size_t min_per_chunk,
                     const std::function<Status(size_t, size_t)>& body);

  /// A process-wide pool sized to the hardware (hardware_concurrency - 1
  /// workers, so ParallelFor saturates the machine including the caller).
  /// Intended for query-serving read paths; long-running exclusive jobs
  /// should bring their own pool.
  static ThreadPool& Shared();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tvdp

#endif  // TVDP_COMMON_THREAD_POOL_H_
