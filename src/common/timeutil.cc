#include "common/timeutil.h"

#include <cstdio>

namespace tvdp {
namespace {

constexpr int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month /* 1-12 */) {
  if (month == 2 && IsLeap(year)) return 29;
  return kDaysPerMonth[month - 1];
}

}  // namespace

std::string FormatTimestamp(Timestamp ts) {
  // Civil-time conversion without <ctime> to stay deterministic and
  // timezone-independent.
  int64_t days = ts / 86400;
  int64_t secs = ts % 86400;
  if (secs < 0) {
    secs += 86400;
    days -= 1;
  }
  int year = 1970;
  while (true) {
    int ydays = IsLeap(year) ? 366 : 365;
    if (days >= ydays) {
      days -= ydays;
      ++year;
    } else if (days < 0) {
      --year;
      days += IsLeap(year) ? 366 : 365;
    } else {
      break;
    }
  }
  int month = 1;
  while (days >= DaysInMonth(year, month)) {
    days -= DaysInMonth(year, month);
    ++month;
  }
  int day = static_cast<int>(days) + 1;
  int hh = static_cast<int>(secs / 3600);
  int mm = static_cast<int>((secs % 3600) / 60);
  int ss = static_cast<int>(secs % 60);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", year, month,
                day, hh, mm, ss);
  return buf;
}

Result<Timestamp> ParseTimestamp(const std::string& text) {
  int year, month, day, hh, mm, ss;
  if (std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &year, &month, &day, &hh,
                  &mm, &ss) != 6) {
    return Status::InvalidArgument("bad timestamp: " + text);
  }
  if (month < 1 || month > 12 || day < 1 || day > DaysInMonth(year, month) ||
      hh < 0 || hh > 23 || mm < 0 || mm > 59 || ss < 0 || ss > 59) {
    return Status::InvalidArgument("timestamp out of range: " + text);
  }
  int64_t days = 0;
  if (year >= 1970) {
    for (int y = 1970; y < year; ++y) days += IsLeap(y) ? 366 : 365;
  } else {
    for (int y = year; y < 1970; ++y) days -= IsLeap(y) ? 366 : 365;
  }
  for (int m = 1; m < month; ++m) days += DaysInMonth(year, m);
  days += day - 1;
  return days * 86400 + hh * 3600 + mm * 60 + ss;
}

}  // namespace tvdp
