#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

namespace tvdp::ml {

Status RandomForestClassifier::Train(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options_.num_trees < 1) {
    return Status::InvalidArgument("need at least one tree");
  }
  num_classes_ = data.NumClasses();
  trees_.clear();
  Rng rng(options_.seed);

  int max_features = options_.max_features;
  if (max_features <= 0) {
    max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(data.dim()))));
  }

  for (int t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample (with replacement) of the full training set size.
    std::vector<size_t> bootstrap(data.size());
    for (auto& idx : bootstrap) {
      idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(data.size()) - 1));
    }
    Dataset sample = data.Subset(bootstrap);
    DecisionTreeClassifier::Options tree_opts;
    tree_opts.max_depth = options_.max_depth;
    tree_opts.min_samples_split = options_.min_samples_split;
    tree_opts.max_features = max_features;
    tree_opts.seed = rng.NextU64();
    DecisionTreeClassifier tree(tree_opts);
    TVDP_RETURN_IF_ERROR(tree.Train(sample));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> RandomForestClassifier::PredictProba(
    const FeatureVector& x) const {
  std::vector<double> proba(static_cast<size_t>(num_classes_), 0.0);
  if (trees_.empty()) return proba;
  for (const auto& tree : trees_) {
    std::vector<double> p = tree.PredictProba(x);
    for (size_t c = 0; c < proba.size() && c < p.size(); ++c) proba[c] += p[c];
  }
  for (double& v : proba) v /= static_cast<double>(trees_.size());
  return proba;
}

int RandomForestClassifier::Predict(const FeatureVector& x) const {
  std::vector<double> proba = PredictProba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

}  // namespace tvdp::ml
