#ifndef TVDP_ML_CROSS_VALIDATION_H_
#define TVDP_ML_CROSS_VALIDATION_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/metrics.h"

namespace tvdp::ml {

/// Result of a k-fold cross-validation run.
struct CrossValidationResult {
  std::vector<double> fold_macro_f1;
  std::vector<double> fold_accuracy;
  double mean_macro_f1 = 0;
  double mean_accuracy = 0;
  /// Pooled confusion matrix over all validation folds.
  ConfusionMatrix pooled{1};
};

/// Runs k-fold cross validation of `prototype` (cloned per fold) over
/// `data`. Folds are stratified by label. Mirrors the paper's protocol:
/// "all classifiers were trained on 80% of the dataset using 10-fold
/// cross-validation."
Result<CrossValidationResult> KFoldCrossValidate(const Classifier& prototype,
                                                 const Dataset& data,
                                                 int folds, Rng& rng);

/// Trains `model` on `train` and evaluates it on `test`, returning the
/// confusion matrix over `test`.
Result<ConfusionMatrix> TrainAndEvaluate(Classifier& model,
                                         const Dataset& train,
                                         const Dataset& test);

}  // namespace tvdp::ml

#endif  // TVDP_ML_CROSS_VALIDATION_H_
