#ifndef TVDP_ML_LINEAR_SVM_H_
#define TVDP_ML_LINEAR_SVM_H_

#include <memory>

#include "ml/classifier.h"

namespace tvdp::ml {

/// Linear support vector machine trained one-vs-rest with the Pegasos
/// stochastic sub-gradient algorithm on the hinge loss. This is the "SVM"
/// of the paper's Fig. 6 — the best-performing classifier with both
/// SIFT-BoW and CNN features.
class LinearSvmClassifier : public Classifier {
 public:
  struct Options {
    int epochs = 80;
    /// Pegasos regularization parameter (lambda).
    double lambda = 1e-4;
    uint64_t seed = 42;
  };

  LinearSvmClassifier() : LinearSvmClassifier(Options()) {}
  explicit LinearSvmClassifier(Options options) : options_(options) {}

  Status Train(const Dataset& data) override;
  int Predict(const FeatureVector& x) const override;
  std::vector<double> PredictProba(const FeatureVector& x) const override;
  std::string name() const override { return "svm"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<LinearSvmClassifier>(options_);
  }
  Result<Json> ToJson() const override;

  /// Restores a trained model from ToJson output.
  static Result<std::unique_ptr<LinearSvmClassifier>> FromJson(const Json& j);

  /// Raw per-class margins w_c . x + b_c.
  std::vector<double> DecisionFunction(const FeatureVector& x) const;

 private:
  Options options_;
  size_t dim_ = 0;
  std::vector<std::vector<double>> weights_;  // [class][dim]
  std::vector<double> bias_;                  // [class]
};

}  // namespace tvdp::ml

#endif  // TVDP_ML_LINEAR_SVM_H_
