#ifndef TVDP_ML_METRICS_H_
#define TVDP_ML_METRICS_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace tvdp::ml {

/// A k x k confusion matrix over integer class labels 0..k-1.
/// Rows are true labels, columns are predicted labels.
class ConfusionMatrix {
 public:
  /// Creates an empty matrix over `num_classes` classes (>= 1).
  explicit ConfusionMatrix(int num_classes);

  /// Records one (truth, prediction) pair; out-of-range labels are counted
  /// in the overflow bucket and ignored by metric computations.
  void Add(int truth, int predicted);

  int num_classes() const { return num_classes_; }
  int64_t total() const { return total_; }

  /// Count at (truth, predicted).
  int64_t At(int truth, int predicted) const;

  /// Overall accuracy in [0,1]; 0 when empty.
  double Accuracy() const;

  /// Per-class precision: tp / (tp + fp); 0 when the class was never
  /// predicted.
  double Precision(int cls) const;

  /// Per-class recall: tp / (tp + fn); 0 when the class never occurs.
  double Recall(int cls) const;

  /// Per-class F1 (harmonic mean of precision and recall).
  double F1(int cls) const;

  /// Unweighted mean of per-class F1 ("macro F1" — the score reported in
  /// the paper's Figs. 6 and 7).
  double MacroF1() const;

  /// Micro F1 == accuracy for single-label multi-class problems.
  double MicroF1() const { return Accuracy(); }

  /// Human-readable rendering with optional class names.
  std::string ToString(const std::vector<std::string>& class_names = {}) const;

 private:
  int num_classes_;
  int64_t total_ = 0;
  int64_t overflow_ = 0;
  std::vector<int64_t> cells_;  // row-major num_classes x num_classes
};

/// Builds a confusion matrix from parallel truth/prediction arrays.
Result<ConfusionMatrix> BuildConfusion(const std::vector<int>& truth,
                                       const std::vector<int>& predicted,
                                       int num_classes);

}  // namespace tvdp::ml

#endif  // TVDP_ML_METRICS_H_
