#include "ml/classifier.h"

#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace tvdp::ml {

std::vector<double> Classifier::PredictProba(const FeatureVector& x) const {
  std::vector<double> proba(static_cast<size_t>(std::max(num_classes_, 1)),
                            0.0);
  int p = Predict(x);
  if (p >= 0 && p < static_cast<int>(proba.size())) {
    proba[static_cast<size_t>(p)] = 1.0;
  }
  return proba;
}

std::string ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kKnn: return "knn";
    case ClassifierKind::kNaiveBayes: return "naive_bayes";
    case ClassifierKind::kDecisionTree: return "decision_tree";
    case ClassifierKind::kRandomForest: return "random_forest";
    case ClassifierKind::kLogisticRegression: return "logistic_regression";
    case ClassifierKind::kLinearSvm: return "svm";
    case ClassifierKind::kMlp: return "mlp";
  }
  return "unknown";
}

std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind,
                                           uint64_t seed) {
  switch (kind) {
    case ClassifierKind::kKnn:
      return std::make_unique<KnnClassifier>(5);
    case ClassifierKind::kNaiveBayes:
      return std::make_unique<NaiveBayesClassifier>();
    case ClassifierKind::kDecisionTree: {
      DecisionTreeClassifier::Options o;
      o.seed = seed;
      return std::make_unique<DecisionTreeClassifier>(o);
    }
    case ClassifierKind::kRandomForest: {
      RandomForestClassifier::Options o;
      o.seed = seed;
      return std::make_unique<RandomForestClassifier>(o);
    }
    case ClassifierKind::kLogisticRegression: {
      LogisticRegressionClassifier::Options o;
      o.seed = seed;
      return std::make_unique<LogisticRegressionClassifier>(o);
    }
    case ClassifierKind::kLinearSvm: {
      LinearSvmClassifier::Options o;
      o.seed = seed;
      return std::make_unique<LinearSvmClassifier>(o);
    }
    case ClassifierKind::kMlp: {
      MlpClassifier::Options o;
      o.seed = seed;
      return std::make_unique<MlpClassifier>(o);
    }
  }
  return nullptr;
}

std::vector<ClassifierKind> AllClassifierKinds() {
  return {ClassifierKind::kKnn,
          ClassifierKind::kNaiveBayes,
          ClassifierKind::kDecisionTree,
          ClassifierKind::kRandomForest,
          ClassifierKind::kLogisticRegression,
          ClassifierKind::kMlp,
          ClassifierKind::kLinearSvm};
}

std::vector<int> PredictAll(const Classifier& model, const Dataset& data) {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& s : data.samples()) out.push_back(model.Predict(s.x));
  return out;
}

}  // namespace tvdp::ml
