#include "ml/kmeans.h"

#include <algorithm>
#include <limits>

namespace tvdp::ml {

Result<KMeans> KMeans::Fit(const std::vector<FeatureVector>& points,
                           const Options& options, Rng& rng) {
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (points.size() < static_cast<size_t>(options.k)) {
    return Status::InvalidArgument("need at least k points");
  }
  size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("inconsistent point dimensionality");
    }
  }

  KMeans model;
  // k-means++ seeding.
  std::vector<double> min_dist2(points.size(),
                                std::numeric_limits<double>::max());
  size_t first =
      static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(points.size()) - 1));
  model.centroids_.push_back(points[first]);
  while (model.centroids_.size() < static_cast<size_t>(options.k)) {
    const FeatureVector& last = model.centroids_.back();
    for (size_t i = 0; i < points.size(); ++i) {
      min_dist2[i] = std::min(min_dist2[i], L2DistanceSquared(points[i], last));
    }
    size_t next = rng.WeightedIndex(min_dist2);
    model.centroids_.push_back(points[next]);
  }

  // Lloyd iterations.
  std::vector<size_t> assignment(points.size(), 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    model.iterations_run_ = iter + 1;
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      size_t a = model.Assign(points[i]);
      if (a != assignment[i]) {
        assignment[i] = a;
        changed = true;
      }
    }
    if (!changed && options.early_stop && iter > 0) break;
    // Recompute centroids.
    std::vector<FeatureVector> sums(model.centroids_.size(),
                                    FeatureVector(dim, 0.0));
    std::vector<int64_t> counts(model.centroids_.size(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      ++counts[assignment[i]];
      for (size_t d = 0; d < dim; ++d) sums[assignment[i]][d] += points[i][d];
    }
    for (size_t c = 0; c < sums.size(); ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed at the point farthest from its centroid.
        size_t worst = 0;
        double worst_d = -1;
        for (size_t i = 0; i < points.size(); ++i) {
          double d = L2DistanceSquared(points[i],
                                       model.centroids_[assignment[i]]);
          if (d > worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        model.centroids_[c] = points[worst];
        continue;
      }
      for (size_t d = 0; d < dim; ++d) sums[c][d] /= counts[c];
      model.centroids_[c] = std::move(sums[c]);
    }
    if (!changed && !options.early_stop) break;
  }
  return model;
}

size_t KMeans::Assign(const FeatureVector& x) const {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    double d = L2DistanceSquared(x, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

double KMeans::Inertia(const std::vector<FeatureVector>& points) const {
  if (points.empty()) return 0;
  double sum = 0;
  for (const auto& p : points) {
    sum += L2DistanceSquared(p, centroids_[Assign(p)]);
  }
  return sum / points.size();
}

}  // namespace tvdp::ml
