#ifndef TVDP_ML_DECISION_TREE_H_
#define TVDP_ML_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace tvdp::ml {

/// CART-style decision tree with Gini impurity, axis-aligned threshold
/// splits, and depth / leaf-size stopping rules. Supports optional feature
/// subsampling per split (used by RandomForestClassifier).
class DecisionTreeClassifier : public Classifier {
 public:
  struct Options {
    int max_depth = 12;
    int min_samples_split = 4;
    /// When > 0, consider only this many randomly chosen features per
    /// split (random-forest mode). 0 means all features.
    int max_features = 0;
    uint64_t seed = 42;
  };

  DecisionTreeClassifier() : DecisionTreeClassifier(Options()) {}
  explicit DecisionTreeClassifier(Options options) : options_(options) {}

  Status Train(const Dataset& data) override;
  int Predict(const FeatureVector& x) const override;
  std::vector<double> PredictProba(const FeatureVector& x) const override;
  std::string name() const override { return "decision_tree"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<DecisionTreeClassifier>(options_);
  }

  /// Number of nodes in the fitted tree (0 before Train).
  size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;       // -1 => leaf
    double threshold = 0;
    int left = -1;           // child indices into nodes_
    int right = -1;
    std::vector<double> class_distribution;  // leaf posterior
  };

  int BuildNode(const Dataset& data, std::vector<size_t>& indices, int depth,
                Rng& rng);
  const Node& Descend(const FeatureVector& x) const;

  Options options_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace tvdp::ml

#endif  // TVDP_ML_DECISION_TREE_H_
