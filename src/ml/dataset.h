#ifndef TVDP_ML_DATASET_H_
#define TVDP_ML_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace tvdp::ml {

/// A dense feature vector. All TVDP visual descriptors (color histogram,
/// SIFT-BoW, CNN features) are represented this way.
using FeatureVector = std::vector<double>;

/// A labelled training/evaluation example.
struct Sample {
  FeatureVector x;
  int label = 0;
};

/// An in-memory labelled dataset with a fixed feature dimensionality.
class Dataset {
 public:
  Dataset() = default;

  /// Appends a sample; the first sample fixes the dimensionality and later
  /// mismatching samples are rejected.
  Status Add(FeatureVector x, int label);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  size_t dim() const { return dim_; }

  const Sample& operator[](size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Number of distinct labels assuming labels are 0..k-1 (max label + 1).
  int NumClasses() const;

  /// Per-class sample counts (index = label).
  std::vector<int> ClassCounts() const;

  /// Shuffles sample order in place.
  void Shuffle(Rng& rng);

  /// Splits into (train, test) with `train_fraction` of samples in train,
  /// preserving current order (call Shuffle first for a random split).
  std::pair<Dataset, Dataset> Split(double train_fraction) const;

  /// Stratified split: preserves per-class proportions in both halves.
  std::pair<Dataset, Dataset> StratifiedSplit(double train_fraction,
                                              Rng& rng) const;

  /// Returns a dataset containing the samples at `indices`.
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Mean and standard deviation per dimension (for standardization).
  struct Moments {
    FeatureVector mean;
    FeatureVector stddev;
  };
  Moments ComputeMoments() const;

  /// Standardizes all samples in place with the given moments
  /// (x := (x - mean) / stddev, guarding stddev == 0).
  void Standardize(const Moments& m);

 private:
  std::vector<Sample> samples_;
  size_t dim_ = 0;
};

/// Euclidean (L2) distance between equal-length vectors.
double L2Distance(const FeatureVector& a, const FeatureVector& b);

/// Squared Euclidean distance.
double L2DistanceSquared(const FeatureVector& a, const FeatureVector& b);

/// Dot product.
double Dot(const FeatureVector& a, const FeatureVector& b);

/// L2 norm.
double L2Norm(const FeatureVector& a);

/// Normalizes `v` to unit L2 norm in place (no-op on the zero vector).
void L2NormalizeInPlace(FeatureVector& v);

/// Cosine similarity in [-1, 1]; 0 when either vector is zero.
double CosineSimilarity(const FeatureVector& a, const FeatureVector& b);

}  // namespace tvdp::ml

#endif  // TVDP_ML_DATASET_H_
