#ifndef TVDP_ML_RANDOM_FOREST_H_
#define TVDP_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace tvdp::ml {

/// Random forest: bootstrap-aggregated CART trees with per-split feature
/// subsampling (sqrt(dim) features per split by default).
class RandomForestClassifier : public Classifier {
 public:
  struct Options {
    int num_trees = 40;
    int max_depth = 12;
    int min_samples_split = 4;
    /// 0 => sqrt(dim), chosen at train time.
    int max_features = 0;
    uint64_t seed = 42;
  };

  RandomForestClassifier() : RandomForestClassifier(Options()) {}
  explicit RandomForestClassifier(Options options) : options_(options) {}

  Status Train(const Dataset& data) override;
  int Predict(const FeatureVector& x) const override;
  std::vector<double> PredictProba(const FeatureVector& x) const override;
  std::string name() const override { return "random_forest"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<RandomForestClassifier>(options_);
  }

  size_t tree_count() const { return trees_.size(); }

 private:
  Options options_;
  std::vector<DecisionTreeClassifier> trees_;
};

}  // namespace tvdp::ml

#endif  // TVDP_ML_RANDOM_FOREST_H_
