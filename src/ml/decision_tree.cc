#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tvdp::ml {
namespace {

/// Gini impurity from class counts.
double Gini(const std::vector<int64_t>& counts, int64_t total) {
  if (total <= 0) return 0.0;
  double g = 1.0;
  for (int64_t c : counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

Status DecisionTreeClassifier::Train(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  num_classes_ = data.NumClasses();
  nodes_.clear();
  depth_ = 0;
  std::vector<size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(options_.seed);
  BuildNode(data, indices, 0, rng);
  return Status::OK();
}

int DecisionTreeClassifier::BuildNode(const Dataset& data,
                                      std::vector<size_t>& indices, int depth,
                                      Rng& rng) {
  depth_ = std::max(depth_, depth);
  size_t k = static_cast<size_t>(num_classes_);
  std::vector<int64_t> counts(k, 0);
  for (size_t i : indices) ++counts[static_cast<size_t>(data[i].label)];
  int64_t total = static_cast<int64_t>(indices.size());

  int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  auto make_leaf = [&]() {
    Node& node = nodes_[static_cast<size_t>(node_index)];
    node.class_distribution.assign(k, 0.0);
    for (size_t c = 0; c < k; ++c) {
      node.class_distribution[c] =
          total > 0 ? static_cast<double>(counts[c]) / total : 0.0;
    }
    return node_index;
  };

  double parent_gini = Gini(counts, total);
  bool pure = false;
  for (int64_t c : counts) {
    if (c == total) pure = true;
  }
  if (pure || depth >= options_.max_depth ||
      total < options_.min_samples_split) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset in forest mode.
  size_t dim = data.dim();
  std::vector<size_t> features(dim);
  std::iota(features.begin(), features.end(), 0);
  if (options_.max_features > 0 &&
      static_cast<size_t>(options_.max_features) < dim) {
    rng.Shuffle(features);
    features.resize(static_cast<size_t>(options_.max_features));
  }

  int best_feature = -1;
  double best_threshold = 0;
  double best_impurity = parent_gini - 1e-9;  // require strict improvement

  std::vector<std::pair<double, int>> column(indices.size());
  for (size_t f : features) {
    for (size_t i = 0; i < indices.size(); ++i) {
      column[i] = {data[indices[i]].x[f], data[indices[i]].label};
    }
    std::sort(column.begin(), column.end());
    // Sweep thresholds between distinct consecutive values.
    std::vector<int64_t> left_counts(k, 0);
    std::vector<int64_t> right_counts = counts;
    for (size_t i = 0; i + 1 < column.size(); ++i) {
      size_t lbl = static_cast<size_t>(column[i].second);
      ++left_counts[lbl];
      --right_counts[lbl];
      if (column[i].first == column[i + 1].first) continue;
      int64_t nl = static_cast<int64_t>(i) + 1;
      int64_t nr = total - nl;
      double weighted = (nl * Gini(left_counts, nl) +
                         nr * Gini(right_counts, nr)) /
                        static_cast<double>(total);
      if (weighted < best_impurity) {
        best_impurity = weighted;
        best_feature = static_cast<int>(f);
        best_threshold = (column[i].first + column[i + 1].first) / 2.0;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    if (data[i].x[static_cast<size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return make_leaf();

  // Free the parent's index list before recursing to bound memory.
  indices.clear();
  indices.shrink_to_fit();

  int left_child = BuildNode(data, left_idx, depth + 1, rng);
  int right_child = BuildNode(data, right_idx, depth + 1, rng);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left_child;
  node.right = right_child;
  return node_index;
}

const DecisionTreeClassifier::Node& DecisionTreeClassifier::Descend(
    const FeatureVector& x) const {
  size_t cur = 0;
  while (true) {
    const Node& node = nodes_[cur];
    if (node.feature < 0) return node;
    size_t f = static_cast<size_t>(node.feature);
    double v = f < x.size() ? x[f] : 0.0;
    cur = static_cast<size_t>(v <= node.threshold ? node.left : node.right);
  }
}

int DecisionTreeClassifier::Predict(const FeatureVector& x) const {
  const Node& leaf = Descend(x);
  return static_cast<int>(
      std::max_element(leaf.class_distribution.begin(),
                       leaf.class_distribution.end()) -
      leaf.class_distribution.begin());
}

std::vector<double> DecisionTreeClassifier::PredictProba(
    const FeatureVector& x) const {
  return Descend(x).class_distribution;
}

}  // namespace tvdp::ml
