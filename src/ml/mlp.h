#ifndef TVDP_ML_MLP_H_
#define TVDP_ML_MLP_H_

#include <memory>

#include "ml/classifier.h"

namespace tvdp::ml {

/// One-hidden-layer multilayer perceptron (ReLU hidden units, softmax
/// output, mini-batch SGD with momentum). Doubles as the "fine-tuning"
/// head of the CNN feature extractor: after training, HiddenActivations()
/// exposes the learned representation.
class MlpClassifier : public Classifier {
 public:
  struct Options {
    int hidden_units = 64;
    int epochs = 80;
    double learning_rate = 0.05;
    double momentum = 0.9;
    double l2 = 1e-5;
    int batch_size = 32;
    uint64_t seed = 42;
  };

  MlpClassifier() : MlpClassifier(Options()) {}
  explicit MlpClassifier(Options options) : options_(options) {}

  Status Train(const Dataset& data) override;
  int Predict(const FeatureVector& x) const override;
  std::vector<double> PredictProba(const FeatureVector& x) const override;
  std::string name() const override { return "mlp"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<MlpClassifier>(options_);
  }
  Result<Json> ToJson() const override;

  /// The hidden-layer (post-ReLU) activations for `x` — the fine-tuned
  /// feature embedding used by the CNN feature pipeline.
  FeatureVector HiddenActivations(const FeatureVector& x) const;

  int hidden_units() const { return options_.hidden_units; }

 private:
  std::vector<double> Forward(const FeatureVector& x,
                              std::vector<double>* hidden_out) const;

  Options options_;
  size_t dim_ = 0;
  // Layer 1: hidden x dim (+ hidden bias). Layer 2: classes x hidden.
  std::vector<double> w1_, b1_, w2_, b2_;
};

}  // namespace tvdp::ml

#endif  // TVDP_ML_MLP_H_
