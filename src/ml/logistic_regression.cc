#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tvdp::ml {

void SoftmaxInPlace(std::vector<double>& logits) {
  if (logits.empty()) return;
  double mx = *std::max_element(logits.begin(), logits.end());
  double total = 0;
  for (double& v : logits) {
    v = std::exp(v - mx);
    total += v;
  }
  if (total > 0) {
    for (double& v : logits) v /= total;
  }
}

Status LogisticRegressionClassifier::Train(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  num_classes_ = data.NumClasses();
  dim_ = data.dim();
  size_t k = static_cast<size_t>(num_classes_);
  weights_.assign(k, std::vector<double>(dim_, 0.0));
  bias_.assign(k, 0.0);

  Rng rng(options_.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  int batch = std::max(options_.batch_size, 1);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    // 1/sqrt decay keeps early progress fast and the tail stable.
    double lr = options_.learning_rate / std::sqrt(1.0 + epoch);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(batch)) {
      size_t end = std::min(order.size(), start + static_cast<size_t>(batch));
      // Accumulate gradient over the mini-batch.
      std::vector<std::vector<double>> gw(k, std::vector<double>(dim_, 0.0));
      std::vector<double> gb(k, 0.0);
      for (size_t i = start; i < end; ++i) {
        const Sample& s = data[order[i]];
        std::vector<double> p = Logits(s.x);
        SoftmaxInPlace(p);
        for (size_t c = 0; c < k; ++c) {
          double err = p[c] - (static_cast<int>(c) == s.label ? 1.0 : 0.0);
          gb[c] += err;
          for (size_t d = 0; d < dim_; ++d) gw[c][d] += err * s.x[d];
        }
      }
      double inv = 1.0 / static_cast<double>(end - start);
      for (size_t c = 0; c < k; ++c) {
        bias_[c] -= lr * gb[c] * inv;
        for (size_t d = 0; d < dim_; ++d) {
          weights_[c][d] -=
              lr * (gw[c][d] * inv + options_.l2 * weights_[c][d]);
        }
      }
    }
  }
  return Status::OK();
}

std::vector<double> LogisticRegressionClassifier::Logits(
    const FeatureVector& x) const {
  size_t k = static_cast<size_t>(num_classes_);
  std::vector<double> out(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    double s = bias_[c];
    size_t n = std::min(x.size(), dim_);
    for (size_t d = 0; d < n; ++d) s += weights_[c][d] * x[d];
    out[c] = s;
  }
  return out;
}

int LogisticRegressionClassifier::Predict(const FeatureVector& x) const {
  std::vector<double> l = Logits(x);
  return static_cast<int>(std::max_element(l.begin(), l.end()) - l.begin());
}

std::vector<double> LogisticRegressionClassifier::PredictProba(
    const FeatureVector& x) const {
  std::vector<double> l = Logits(x);
  SoftmaxInPlace(l);
  return l;
}

Result<Json> LogisticRegressionClassifier::ToJson() const {
  if (!trained()) return Status::FailedPrecondition("model not trained");
  Json j = Json::MakeObject();
  j["type"] = name();
  j["num_classes"] = num_classes_;
  j["dim"] = dim_;
  Json w = Json::MakeArray();
  for (const auto& row : weights_) {
    Json r = Json::MakeArray();
    for (double v : row) r.Append(v);
    w.Append(std::move(r));
  }
  j["weights"] = std::move(w);
  Json b = Json::MakeArray();
  for (double v : bias_) b.Append(v);
  j["bias"] = std::move(b);
  return j;
}

Result<std::unique_ptr<LogisticRegressionClassifier>>
LogisticRegressionClassifier::FromJson(const Json& j) {
  if (j["type"].AsString() != "logistic_regression") {
    return Status::InvalidArgument("not a logistic_regression model");
  }
  auto model = std::make_unique<LogisticRegressionClassifier>();
  model->num_classes_ = static_cast<int>(j["num_classes"].AsInt());
  model->dim_ = static_cast<size_t>(j["dim"].AsInt());
  if (model->num_classes_ < 1 ||
      j["weights"].size() != static_cast<size_t>(model->num_classes_) ||
      j["bias"].size() != static_cast<size_t>(model->num_classes_)) {
    return Status::InvalidArgument("malformed logistic_regression payload");
  }
  for (const Json& row : j["weights"].AsArray()) {
    std::vector<double> w;
    for (const Json& v : row.AsArray()) w.push_back(v.AsDouble());
    if (w.size() != model->dim_) {
      return Status::InvalidArgument("weight row dimension mismatch");
    }
    model->weights_.push_back(std::move(w));
  }
  for (const Json& v : j["bias"].AsArray()) {
    model->bias_.push_back(v.AsDouble());
  }
  return model;
}

}  // namespace tvdp::ml
