#ifndef TVDP_ML_NAIVE_BAYES_H_
#define TVDP_ML_NAIVE_BAYES_H_

#include <memory>

#include "ml/classifier.h"

namespace tvdp::ml {

/// Gaussian naive Bayes: per-class, per-dimension normal likelihoods with
/// variance smoothing, plus class log-priors.
class NaiveBayesClassifier : public Classifier {
 public:
  explicit NaiveBayesClassifier(double var_smoothing = 1e-9)
      : var_smoothing_(var_smoothing) {}

  Status Train(const Dataset& data) override;
  int Predict(const FeatureVector& x) const override;
  std::vector<double> PredictProba(const FeatureVector& x) const override;
  std::string name() const override { return "naive_bayes"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<NaiveBayesClassifier>(var_smoothing_);
  }

 private:
  std::vector<double> ClassLogScores(const FeatureVector& x) const;

  double var_smoothing_;
  std::vector<double> log_prior_;                // [class]
  std::vector<std::vector<double>> mean_;        // [class][dim]
  std::vector<std::vector<double>> variance_;    // [class][dim]
};

}  // namespace tvdp::ml

#endif  // TVDP_ML_NAIVE_BAYES_H_
