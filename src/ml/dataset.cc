#include "ml/dataset.h"

#include <algorithm>
#include <cmath>

namespace tvdp::ml {

Status Dataset::Add(FeatureVector x, int label) {
  if (label < 0) return Status::InvalidArgument("labels must be >= 0");
  if (samples_.empty()) {
    dim_ = x.size();
  } else if (x.size() != dim_) {
    return Status::InvalidArgument("feature dimensionality mismatch");
  }
  samples_.push_back(Sample{std::move(x), label});
  return Status::OK();
}

int Dataset::NumClasses() const {
  int max_label = -1;
  for (const auto& s : samples_) max_label = std::max(max_label, s.label);
  return max_label + 1;
}

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(static_cast<size_t>(std::max(NumClasses(), 0)), 0);
  for (const auto& s : samples_) ++counts[static_cast<size_t>(s.label)];
  return counts;
}

void Dataset::Shuffle(Rng& rng) { rng.Shuffle(samples_); }

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction) const {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  size_t n_train = static_cast<size_t>(samples_.size() * train_fraction);
  Dataset train, test;
  for (size_t i = 0; i < samples_.size(); ++i) {
    (i < n_train ? train : test).Add(samples_[i].x, samples_[i].label).ok();
  }
  return {std::move(train), std::move(test)};
}

std::pair<Dataset, Dataset> Dataset::StratifiedSplit(double train_fraction,
                                                     Rng& rng) const {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  int k = NumClasses();
  std::vector<std::vector<size_t>> by_class(static_cast<size_t>(std::max(k, 0)));
  for (size_t i = 0; i < samples_.size(); ++i) {
    by_class[static_cast<size_t>(samples_[i].label)].push_back(i);
  }
  std::vector<size_t> train_idx, test_idx;
  for (auto& idxs : by_class) {
    rng.Shuffle(idxs);
    size_t n_train = static_cast<size_t>(idxs.size() * train_fraction);
    for (size_t j = 0; j < idxs.size(); ++j) {
      (j < n_train ? train_idx : test_idx).push_back(idxs[j]);
    }
  }
  rng.Shuffle(train_idx);
  rng.Shuffle(test_idx);
  return {Subset(train_idx), Subset(test_idx)};
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  for (size_t i : indices) {
    if (i < samples_.size()) out.Add(samples_[i].x, samples_[i].label).ok();
  }
  return out;
}

Dataset::Moments Dataset::ComputeMoments() const {
  Moments m;
  m.mean.assign(dim_, 0.0);
  m.stddev.assign(dim_, 0.0);
  if (samples_.empty()) return m;
  for (const auto& s : samples_) {
    for (size_t d = 0; d < dim_; ++d) m.mean[d] += s.x[d];
  }
  for (size_t d = 0; d < dim_; ++d) m.mean[d] /= samples_.size();
  for (const auto& s : samples_) {
    for (size_t d = 0; d < dim_; ++d) {
      double diff = s.x[d] - m.mean[d];
      m.stddev[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dim_; ++d) {
    m.stddev[d] = std::sqrt(m.stddev[d] / samples_.size());
  }
  return m;
}

void Dataset::Standardize(const Moments& m) {
  for (auto& s : samples_) {
    for (size_t d = 0; d < dim_ && d < m.mean.size(); ++d) {
      double sd = m.stddev[d] > 1e-12 ? m.stddev[d] : 1.0;
      s.x[d] = (s.x[d] - m.mean[d]) / sd;
    }
  }
}

double L2DistanceSquared(const FeatureVector& a, const FeatureVector& b) {
  double sum = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double L2Distance(const FeatureVector& a, const FeatureVector& b) {
  return std::sqrt(L2DistanceSquared(a, b));
}

double Dot(const FeatureVector& a, const FeatureVector& b) {
  double sum = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double L2Norm(const FeatureVector& a) { return std::sqrt(Dot(a, a)); }

void L2NormalizeInPlace(FeatureVector& v) {
  double n = L2Norm(v);
  if (n > 1e-12) {
    for (double& x : v) x /= n;
  }
}

double CosineSimilarity(const FeatureVector& a, const FeatureVector& b) {
  double na = L2Norm(a), nb = L2Norm(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace tvdp::ml
