#include "ml/cross_validation.h"

#include <algorithm>

namespace tvdp::ml {

Result<CrossValidationResult> KFoldCrossValidate(const Classifier& prototype,
                                                 const Dataset& data,
                                                 int folds, Rng& rng) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  if (data.size() < static_cast<size_t>(folds)) {
    return Status::InvalidArgument("fewer samples than folds");
  }
  int num_classes = data.NumClasses();

  // Stratified fold assignment: round-robin within each class.
  std::vector<std::vector<size_t>> by_class(
      static_cast<size_t>(std::max(num_classes, 1)));
  for (size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<size_t>(data[i].label)].push_back(i);
  }
  std::vector<int> fold_of(data.size(), 0);
  int next_fold = 0;
  for (auto& idxs : by_class) {
    rng.Shuffle(idxs);
    for (size_t i : idxs) {
      fold_of[i] = next_fold;
      next_fold = (next_fold + 1) % folds;
    }
  }

  CrossValidationResult result;
  result.pooled = ConfusionMatrix(num_classes);
  for (int f = 0; f < folds; ++f) {
    std::vector<size_t> train_idx, val_idx;
    for (size_t i = 0; i < data.size(); ++i) {
      (fold_of[i] == f ? val_idx : train_idx).push_back(i);
    }
    Dataset train = data.Subset(train_idx);
    Dataset val = data.Subset(val_idx);
    std::unique_ptr<Classifier> model = prototype.Clone();
    TVDP_RETURN_IF_ERROR(model->Train(train));
    ConfusionMatrix cm(num_classes);
    for (const auto& s : val.samples()) {
      int pred = model->Predict(s.x);
      cm.Add(s.label, pred);
      result.pooled.Add(s.label, pred);
    }
    result.fold_macro_f1.push_back(cm.MacroF1());
    result.fold_accuracy.push_back(cm.Accuracy());
  }
  for (double v : result.fold_macro_f1) result.mean_macro_f1 += v;
  for (double v : result.fold_accuracy) result.mean_accuracy += v;
  result.mean_macro_f1 /= folds;
  result.mean_accuracy /= folds;
  return result;
}

Result<ConfusionMatrix> TrainAndEvaluate(Classifier& model,
                                         const Dataset& train,
                                         const Dataset& test) {
  TVDP_RETURN_IF_ERROR(model.Train(train));
  int num_classes = std::max(train.NumClasses(), test.NumClasses());
  ConfusionMatrix cm(num_classes);
  for (const auto& s : test.samples()) cm.Add(s.label, model.Predict(s.x));
  return cm;
}

}  // namespace tvdp::ml
