#ifndef TVDP_ML_LOGISTIC_REGRESSION_H_
#define TVDP_ML_LOGISTIC_REGRESSION_H_

#include <memory>

#include "ml/classifier.h"

namespace tvdp::ml {

/// Multinomial (softmax) logistic regression trained with mini-batch SGD
/// and L2 regularization.
class LogisticRegressionClassifier : public Classifier {
 public:
  struct Options {
    int epochs = 60;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    int batch_size = 32;
    uint64_t seed = 42;
  };

  LogisticRegressionClassifier() : LogisticRegressionClassifier(Options()) {}
  explicit LogisticRegressionClassifier(Options options)
      : options_(options) {}

  Status Train(const Dataset& data) override;
  int Predict(const FeatureVector& x) const override;
  std::vector<double> PredictProba(const FeatureVector& x) const override;
  std::string name() const override { return "logistic_regression"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<LogisticRegressionClassifier>(options_);
  }
  Result<Json> ToJson() const override;

  /// Restores a trained model from ToJson output.
  static Result<std::unique_ptr<LogisticRegressionClassifier>> FromJson(
      const Json& j);

 private:
  std::vector<double> Logits(const FeatureVector& x) const;

  Options options_;
  size_t dim_ = 0;
  std::vector<std::vector<double>> weights_;  // [class][dim]
  std::vector<double> bias_;                  // [class]
};

/// Numerically stable softmax of `logits` (in place).
void SoftmaxInPlace(std::vector<double>& logits);

}  // namespace tvdp::ml

#endif  // TVDP_ML_LOGISTIC_REGRESSION_H_
