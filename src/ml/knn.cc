#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace tvdp::ml {

Status KnnClassifier::Train(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (k_ < 1) return Status::InvalidArgument("k must be >= 1");
  train_ = data;
  num_classes_ = data.NumClasses();
  return Status::OK();
}

std::vector<double> KnnClassifier::Votes(const FeatureVector& x) const {
  // Partial sort of (distance, label) pairs for the k nearest.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(train_.size());
  for (const auto& s : train_.samples()) {
    dist.emplace_back(L2DistanceSquared(x, s.x), s.label);
  }
  size_t k = std::min<size_t>(static_cast<size_t>(k_), dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  for (size_t i = 0; i < k; ++i) {
    // Inverse-distance weighting; epsilon guards exact matches.
    double w = 1.0 / (std::sqrt(dist[i].first) + 1e-6);
    votes[static_cast<size_t>(dist[i].second)] += w;
  }
  return votes;
}

int KnnClassifier::Predict(const FeatureVector& x) const {
  std::vector<double> votes = Votes(x);
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

std::vector<double> KnnClassifier::PredictProba(const FeatureVector& x) const {
  std::vector<double> votes = Votes(x);
  double total = 0;
  for (double v : votes) total += v;
  if (total > 0) {
    for (double& v : votes) v /= total;
  }
  return votes;
}

}  // namespace tvdp::ml
