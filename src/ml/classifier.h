#ifndef TVDP_ML_CLASSIFIER_H_
#define TVDP_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "ml/dataset.h"

namespace tvdp::ml {

/// Abstract multi-class classifier. Implementations mirror the classifier
/// grid explored in the paper's Fig. 6 (all trained from scratch here, in
/// place of scikit-learn).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model to `data`. Labels must be 0..k-1.
  virtual Status Train(const Dataset& data) = 0;

  /// Predicted label for `x`; must only be called after a successful Train.
  virtual int Predict(const FeatureVector& x) const = 0;

  /// Per-class scores summing to ~1. The default implementation returns a
  /// one-hot distribution at the Predict result.
  virtual std::vector<double> PredictProba(const FeatureVector& x) const;

  /// Short stable name, e.g. "svm" (used in experiment tables).
  virtual std::string name() const = 0;

  /// A fresh untrained classifier with identical hyper-parameters.
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  /// Serializes the trained model; Unimplemented for non-parametric models
  /// (kNN keeps the training set, trees are structural). The edge-computing
  /// "download model" API uses this for dispatchable model families.
  virtual Result<Json> ToJson() const {
    return Status::Unimplemented("serialization not supported for " + name());
  }

  /// Number of classes seen at training time (0 before Train).
  int num_classes() const { return num_classes_; }
  bool trained() const { return num_classes_ > 0; }

 protected:
  int num_classes_ = 0;
};

/// The classifier families evaluated in Fig. 6.
enum class ClassifierKind {
  kKnn,
  kNaiveBayes,
  kDecisionTree,
  kRandomForest,
  kLogisticRegression,
  kLinearSvm,
  kMlp,
};

/// Stable display name, e.g. "random_forest".
std::string ClassifierKindName(ClassifierKind kind);

/// Creates a classifier of the given kind with library-default
/// hyper-parameters and a deterministic seed.
std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind,
                                           uint64_t seed = 42);

/// All kinds, in the order they appear in experiment tables.
std::vector<ClassifierKind> AllClassifierKinds();

/// Convenience: predicts every sample of `data` and returns the labels.
std::vector<int> PredictAll(const Classifier& model, const Dataset& data);

}  // namespace tvdp::ml

#endif  // TVDP_ML_CLASSIFIER_H_
