#include "ml/metrics.h"

#include <algorithm>

#include "common/strings.h"

namespace tvdp::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(std::max(num_classes, 1)),
      cells_(static_cast<size_t>(num_classes_) * num_classes_, 0) {}

void ConfusionMatrix::Add(int truth, int predicted) {
  ++total_;
  if (truth < 0 || truth >= num_classes_ || predicted < 0 ||
      predicted >= num_classes_) {
    ++overflow_;
    return;
  }
  ++cells_[static_cast<size_t>(truth) * num_classes_ + predicted];
}

int64_t ConfusionMatrix::At(int truth, int predicted) const {
  if (truth < 0 || truth >= num_classes_ || predicted < 0 ||
      predicted >= num_classes_) {
    return 0;
  }
  return cells_[static_cast<size_t>(truth) * num_classes_ + predicted];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == overflow_) return 0.0;
  int64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += At(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_ - overflow_);
}

double ConfusionMatrix::Precision(int cls) const {
  int64_t tp = At(cls, cls);
  int64_t predicted = 0;
  for (int t = 0; t < num_classes_; ++t) predicted += At(t, cls);
  return predicted > 0 ? static_cast<double>(tp) / predicted : 0.0;
}

double ConfusionMatrix::Recall(int cls) const {
  int64_t tp = At(cls, cls);
  int64_t actual = 0;
  for (int p = 0; p < num_classes_; ++p) actual += At(cls, p);
  return actual > 0 ? static_cast<double>(tp) / actual : 0.0;
}

double ConfusionMatrix::F1(int cls) const {
  double p = Precision(cls), r = Recall(cls);
  return (p + r) > 1e-12 ? 2 * p * r / (p + r) : 0.0;
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0;
  for (int c = 0; c < num_classes_; ++c) sum += F1(c);
  return sum / num_classes_;
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& class_names) const {
  std::string out = "truth\\pred";
  auto name = [&](int c) {
    return c < static_cast<int>(class_names.size())
               ? class_names[static_cast<size_t>(c)]
               : StrFormat("c%d", c);
  };
  for (int c = 0; c < num_classes_; ++c) out += StrFormat("\t%s", name(c).c_str());
  out += "\n";
  for (int t = 0; t < num_classes_; ++t) {
    out += name(t);
    for (int p = 0; p < num_classes_; ++p) {
      out += StrFormat("\t%lld", static_cast<long long>(At(t, p)));
    }
    out += "\n";
  }
  out += StrFormat("accuracy=%.4f macroF1=%.4f\n", Accuracy(), MacroF1());
  return out;
}

Result<ConfusionMatrix> BuildConfusion(const std::vector<int>& truth,
                                       const std::vector<int>& predicted,
                                       int num_classes) {
  if (truth.size() != predicted.size()) {
    return Status::InvalidArgument("truth/prediction size mismatch");
  }
  if (num_classes < 1) {
    return Status::InvalidArgument("num_classes must be >= 1");
  }
  ConfusionMatrix cm(num_classes);
  for (size_t i = 0; i < truth.size(); ++i) cm.Add(truth[i], predicted[i]);
  return cm;
}

}  // namespace tvdp::ml
