#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tvdp::ml {

Status NaiveBayesClassifier::Train(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  num_classes_ = data.NumClasses();
  size_t dim = data.dim();
  size_t k = static_cast<size_t>(num_classes_);

  std::vector<int64_t> counts(k, 0);
  mean_.assign(k, std::vector<double>(dim, 0.0));
  variance_.assign(k, std::vector<double>(dim, 0.0));
  for (const auto& s : data.samples()) {
    size_t c = static_cast<size_t>(s.label);
    ++counts[c];
    for (size_t d = 0; d < dim; ++d) mean_[c][d] += s.x[d];
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (size_t d = 0; d < dim; ++d) mean_[c][d] /= counts[c];
  }
  // Global max variance scales the smoothing term (sklearn-style).
  double max_var = 0.0;
  for (const auto& s : data.samples()) {
    size_t c = static_cast<size_t>(s.label);
    for (size_t d = 0; d < dim; ++d) {
      double diff = s.x[d] - mean_[c][d];
      variance_[c][d] += diff * diff;
    }
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (size_t d = 0; d < dim; ++d) {
      variance_[c][d] /= counts[c];
      max_var = std::max(max_var, variance_[c][d]);
    }
  }
  double eps = var_smoothing_ * std::max(max_var, 1e-12);
  for (size_t c = 0; c < k; ++c) {
    for (size_t d = 0; d < dim; ++d) variance_[c][d] += eps;
  }
  log_prior_.assign(k, -std::numeric_limits<double>::infinity());
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      log_prior_[c] = std::log(static_cast<double>(counts[c]) /
                               static_cast<double>(data.size()));
    }
  }
  return Status::OK();
}

std::vector<double> NaiveBayesClassifier::ClassLogScores(
    const FeatureVector& x) const {
  size_t k = static_cast<size_t>(num_classes_);
  std::vector<double> scores(k, -std::numeric_limits<double>::infinity());
  for (size_t c = 0; c < k; ++c) {
    if (std::isinf(log_prior_[c])) continue;
    double s = log_prior_[c];
    size_t dim = std::min(x.size(), mean_[c].size());
    for (size_t d = 0; d < dim; ++d) {
      double var = variance_[c][d];
      double diff = x[d] - mean_[c][d];
      s += -0.5 * (std::log(2 * M_PI * var) + diff * diff / var);
    }
    scores[c] = s;
  }
  return scores;
}

int NaiveBayesClassifier::Predict(const FeatureVector& x) const {
  std::vector<double> scores = ClassLogScores(x);
  return static_cast<int>(std::max_element(scores.begin(), scores.end()) -
                          scores.begin());
}

std::vector<double> NaiveBayesClassifier::PredictProba(
    const FeatureVector& x) const {
  std::vector<double> scores = ClassLogScores(x);
  double mx = *std::max_element(scores.begin(), scores.end());
  double total = 0;
  for (double& s : scores) {
    s = std::isinf(s) ? 0.0 : std::exp(s - mx);
    total += s;
  }
  if (total > 0) {
    for (double& s : scores) s /= total;
  }
  return scores;
}

}  // namespace tvdp::ml
