#ifndef TVDP_ML_KNN_H_
#define TVDP_ML_KNN_H_

#include <memory>

#include "ml/classifier.h"

namespace tvdp::ml {

/// k-nearest-neighbours classifier (brute force, Euclidean metric, ties
/// broken toward the nearer neighbour's class).
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  Status Train(const Dataset& data) override;
  int Predict(const FeatureVector& x) const override;
  std::vector<double> PredictProba(const FeatureVector& x) const override;
  std::string name() const override { return "knn"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<KnnClassifier>(k_);
  }

  int k() const { return k_; }

 private:
  /// Returns per-class vote weights among the k nearest training samples.
  std::vector<double> Votes(const FeatureVector& x) const;

  int k_;
  Dataset train_;
};

}  // namespace tvdp::ml

#endif  // TVDP_ML_KNN_H_
