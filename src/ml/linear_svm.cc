#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/logistic_regression.h"

namespace tvdp::ml {

Status LinearSvmClassifier::Train(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  num_classes_ = data.NumClasses();
  dim_ = data.dim();
  size_t k = static_cast<size_t>(num_classes_);
  weights_.assign(k, std::vector<double>(dim_, 0.0));
  bias_.assign(k, 0.0);

  Rng rng(options_.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  // Pegasos: eta_t = 1 / (lambda * t); one binary problem per class,
  // trained jointly over the same sample stream.
  int64_t t = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      ++t;
      const Sample& s = data[idx];
      double eta = 1.0 / (options_.lambda * static_cast<double>(t));
      for (size_t c = 0; c < k; ++c) {
        double y = (static_cast<int>(c) == s.label) ? 1.0 : -1.0;
        double margin = bias_[c];
        for (size_t d = 0; d < dim_; ++d) margin += weights_[c][d] * s.x[d];
        margin *= y;
        // w := (1 - eta*lambda) w [+ eta y x when margin violated].
        double shrink = 1.0 - eta * options_.lambda;
        if (shrink < 0) shrink = 0;
        for (size_t d = 0; d < dim_; ++d) weights_[c][d] *= shrink;
        if (margin < 1.0) {
          for (size_t d = 0; d < dim_; ++d) {
            weights_[c][d] += eta * y * s.x[d];
          }
          bias_[c] += eta * y * 0.1;  // unregularized, damped bias update
        }
      }
    }
  }
  return Status::OK();
}

std::vector<double> LinearSvmClassifier::DecisionFunction(
    const FeatureVector& x) const {
  size_t k = static_cast<size_t>(num_classes_);
  std::vector<double> out(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    double s = bias_[c];
    size_t n = std::min(x.size(), dim_);
    for (size_t d = 0; d < n; ++d) s += weights_[c][d] * x[d];
    out[c] = s;
  }
  return out;
}

int LinearSvmClassifier::Predict(const FeatureVector& x) const {
  std::vector<double> m = DecisionFunction(x);
  return static_cast<int>(std::max_element(m.begin(), m.end()) - m.begin());
}

std::vector<double> LinearSvmClassifier::PredictProba(
    const FeatureVector& x) const {
  // Softmax over margins: not calibrated probabilities, but a usable
  // confidence signal for the edge-learning selection policy.
  std::vector<double> m = DecisionFunction(x);
  SoftmaxInPlace(m);
  return m;
}

Result<Json> LinearSvmClassifier::ToJson() const {
  if (!trained()) return Status::FailedPrecondition("model not trained");
  Json j = Json::MakeObject();
  j["type"] = name();
  j["num_classes"] = num_classes_;
  j["dim"] = dim_;
  Json w = Json::MakeArray();
  for (const auto& row : weights_) {
    Json r = Json::MakeArray();
    for (double v : row) r.Append(v);
    w.Append(std::move(r));
  }
  j["weights"] = std::move(w);
  Json b = Json::MakeArray();
  for (double v : bias_) b.Append(v);
  j["bias"] = std::move(b);
  return j;
}

Result<std::unique_ptr<LinearSvmClassifier>> LinearSvmClassifier::FromJson(
    const Json& j) {
  if (j["type"].AsString() != "svm") {
    return Status::InvalidArgument("not an svm model");
  }
  auto model = std::make_unique<LinearSvmClassifier>();
  model->num_classes_ = static_cast<int>(j["num_classes"].AsInt());
  model->dim_ = static_cast<size_t>(j["dim"].AsInt());
  if (model->num_classes_ < 1 ||
      j["weights"].size() != static_cast<size_t>(model->num_classes_) ||
      j["bias"].size() != static_cast<size_t>(model->num_classes_)) {
    return Status::InvalidArgument("malformed svm payload");
  }
  for (const Json& row : j["weights"].AsArray()) {
    std::vector<double> w;
    for (const Json& v : row.AsArray()) w.push_back(v.AsDouble());
    if (w.size() != model->dim_) {
      return Status::InvalidArgument("weight row dimension mismatch");
    }
    model->weights_.push_back(std::move(w));
  }
  for (const Json& v : j["bias"].AsArray()) {
    model->bias_.push_back(v.AsDouble());
  }
  return model;
}

}  // namespace tvdp::ml
