#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/logistic_regression.h"

namespace tvdp::ml {

Status MlpClassifier::Train(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  if (options_.hidden_units < 1) {
    return Status::InvalidArgument("hidden_units must be >= 1");
  }
  num_classes_ = data.NumClasses();
  dim_ = data.dim();
  size_t h = static_cast<size_t>(options_.hidden_units);
  size_t k = static_cast<size_t>(num_classes_);

  Rng rng(options_.seed);
  // He initialization for the ReLU layer; Xavier-ish for the head.
  double s1 = std::sqrt(2.0 / std::max<size_t>(dim_, 1));
  double s2 = std::sqrt(1.0 / h);
  w1_.assign(h * dim_, 0.0);
  b1_.assign(h, 0.0);
  w2_.assign(k * h, 0.0);
  b2_.assign(k, 0.0);
  for (double& w : w1_) w = rng.Normal(0, s1);
  for (double& w : w2_) w = rng.Normal(0, s2);

  std::vector<double> vw1(w1_.size(), 0.0), vb1(b1_.size(), 0.0);
  std::vector<double> vw2(w2_.size(), 0.0), vb2(b2_.size(), 0.0);

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  size_t batch = static_cast<size_t>(std::max(options_.batch_size, 1));

  std::vector<double> hidden(h), delta_h(h);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    double lr = options_.learning_rate / std::sqrt(1.0 + 0.3 * epoch);
    for (size_t start = 0; start < order.size(); start += batch) {
      size_t end = std::min(order.size(), start + batch);
      std::vector<double> gw1(w1_.size(), 0.0), gb1(b1_.size(), 0.0);
      std::vector<double> gw2(w2_.size(), 0.0), gb2(b2_.size(), 0.0);
      for (size_t i = start; i < end; ++i) {
        const Sample& s = data[order[i]];
        std::vector<double> probs = Forward(s.x, &hidden);
        SoftmaxInPlace(probs);
        // Output layer gradient.
        for (size_t c = 0; c < k; ++c) {
          double err = probs[c] - (static_cast<int>(c) == s.label ? 1.0 : 0.0);
          gb2[c] += err;
          for (size_t j = 0; j < h; ++j) gw2[c * h + j] += err * hidden[j];
        }
        // Backprop into hidden layer.
        for (size_t j = 0; j < h; ++j) {
          double grad = 0;
          if (hidden[j] > 0) {
            for (size_t c = 0; c < k; ++c) {
              double err =
                  probs[c] - (static_cast<int>(c) == s.label ? 1.0 : 0.0);
              grad += err * w2_[c * h + j];
            }
          }
          delta_h[j] = grad;
        }
        for (size_t j = 0; j < h; ++j) {
          if (delta_h[j] == 0) continue;
          gb1[j] += delta_h[j];
          size_t n = std::min(s.x.size(), dim_);
          for (size_t d = 0; d < n; ++d) {
            gw1[j * dim_ + d] += delta_h[j] * s.x[d];
          }
        }
      }
      double inv = 1.0 / static_cast<double>(end - start);
      auto apply = [&](std::vector<double>& w, std::vector<double>& v,
                       const std::vector<double>& g) {
        for (size_t i = 0; i < w.size(); ++i) {
          v[i] = options_.momentum * v[i] -
                 lr * (g[i] * inv + options_.l2 * w[i]);
          w[i] += v[i];
        }
      };
      apply(w1_, vw1, gw1);
      apply(b1_, vb1, gb1);
      apply(w2_, vw2, gw2);
      apply(b2_, vb2, gb2);
    }
  }
  return Status::OK();
}

std::vector<double> MlpClassifier::Forward(
    const FeatureVector& x, std::vector<double>* hidden_out) const {
  size_t h = b1_.size();
  size_t k = b2_.size();
  std::vector<double> hidden(h, 0.0);
  size_t n = std::min(x.size(), dim_);
  for (size_t j = 0; j < h; ++j) {
    double a = b1_[j];
    const double* row = &w1_[j * dim_];
    for (size_t d = 0; d < n; ++d) a += row[d] * x[d];
    hidden[j] = a > 0 ? a : 0;  // ReLU
  }
  std::vector<double> logits(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    double a = b2_[c];
    const double* row = &w2_[c * h];
    for (size_t j = 0; j < h; ++j) a += row[j] * hidden[j];
    logits[c] = a;
  }
  if (hidden_out) *hidden_out = std::move(hidden);
  return logits;
}

int MlpClassifier::Predict(const FeatureVector& x) const {
  std::vector<double> logits = Forward(x, nullptr);
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                          logits.begin());
}

std::vector<double> MlpClassifier::PredictProba(const FeatureVector& x) const {
  std::vector<double> logits = Forward(x, nullptr);
  SoftmaxInPlace(logits);
  return logits;
}

FeatureVector MlpClassifier::HiddenActivations(const FeatureVector& x) const {
  std::vector<double> hidden;
  Forward(x, &hidden);
  return hidden;
}

Result<Json> MlpClassifier::ToJson() const {
  if (!trained()) return Status::FailedPrecondition("model not trained");
  Json j = Json::MakeObject();
  j["type"] = name();
  j["num_classes"] = num_classes_;
  j["dim"] = dim_;
  j["hidden_units"] = options_.hidden_units;
  auto dump = [](const std::vector<double>& v) {
    Json a = Json::MakeArray();
    for (double x : v) a.Append(x);
    return a;
  };
  j["w1"] = dump(w1_);
  j["b1"] = dump(b1_);
  j["w2"] = dump(w2_);
  j["b2"] = dump(b2_);
  return j;
}

}  // namespace tvdp::ml
