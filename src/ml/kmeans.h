#ifndef TVDP_ML_KMEANS_H_
#define TVDP_ML_KMEANS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/dataset.h"

namespace tvdp::ml {

/// Lloyd's k-means with k-means++ initialization. Used to build the
/// SIFT-BoW visual-word dictionary (paper Sec. VII-A: SIFT key points
/// "clustered into 1000 clusters (using kMeans)").
class KMeans {
 public:
  struct Options {
    int k = 8;
    int max_iterations = 50;
    /// Stop early when no assignment changes.
    bool early_stop = true;
  };

  /// Fits `options.k` centroids to `points`. Requires points.size() >= k
  /// and consistent dimensionality.
  static Result<KMeans> Fit(const std::vector<FeatureVector>& points,
                            const Options& options, Rng& rng);

  /// Index of the nearest centroid to `x`.
  size_t Assign(const FeatureVector& x) const;

  /// Mean squared distance of points to their assigned centroid.
  double Inertia(const std::vector<FeatureVector>& points) const;

  const std::vector<FeatureVector>& centroids() const { return centroids_; }
  int iterations_run() const { return iterations_run_; }

 private:
  KMeans() = default;

  std::vector<FeatureVector> centroids_;
  int iterations_run_ = 0;
};

}  // namespace tvdp::ml

#endif  // TVDP_ML_KMEANS_H_
