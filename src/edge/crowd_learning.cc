#include "edge/crowd_learning.h"

#include <algorithm>
#include <cmath>

#include "ml/metrics.h"

namespace tvdp::edge {

std::string SelectionPolicyName(SelectionPolicy p) {
  switch (p) {
    case SelectionPolicy::kRandom: return "random";
    case SelectionPolicy::kLowConfidence: return "low_confidence";
    case SelectionPolicy::kMargin: return "margin";
  }
  return "unknown";
}

CrowdLearningLoop::CrowdLearningLoop(const ml::Classifier& prototype,
                                     ml::Dataset seed_train, ml::Dataset test,
                                     std::vector<EdgeNode> nodes,
                                     Options options)
    : prototype_(prototype.Clone()),
      train_(std::move(seed_train)),
      test_(std::move(test)),
      nodes_(std::move(nodes)),
      options_(options),
      dispatcher_(ModelComplexityLadder()) {}

Result<std::vector<LearningRound>> CrowdLearningLoop::Run() {
  if (train_.empty()) return Status::InvalidArgument("empty seed train set");
  if (test_.empty()) return Status::InvalidArgument("empty test set");

  Rng rng(options_.seed);
  InferenceSimulator::Options sim_opts;
  sim_opts.seed = options_.seed ^ 0x5151;
  InferenceSimulator sim(sim_opts);

  std::vector<LearningRound> history;
  std::unique_ptr<ml::Classifier> model = prototype_->Clone();
  TVDP_RETURN_IF_ERROR(model->Train(train_));

  auto evaluate = [&]() {
    ml::ConfusionMatrix cm(std::max(train_.NumClasses(), test_.NumClasses()));
    for (const auto& s : test_.samples()) cm.Add(s.label, model->Predict(s.x));
    return cm.MacroF1();
  };

  LearningRound seed_round;
  seed_round.round = 0;
  seed_round.train_size = train_.size();
  seed_round.test_macro_f1 = evaluate();
  history.push_back(seed_round);

  // Track which local samples each node has already uploaded.
  std::vector<std::vector<bool>> uploaded(nodes_.size());
  for (size_t n = 0; n < nodes_.size(); ++n) {
    uploaded[n].assign(nodes_[n].local_data.size(), false);
  }

  for (int round = 1; round <= options_.rounds; ++round) {
    LearningRound lr;
    lr.round = round;
    double total_inference_ms = 0;
    double total_upload_ms = 0;
    int64_t inference_count = 0;
    int uploads = 0;

    // Dispatch a model variant to each device for this round.
    last_dispatch_.clear();
    for (const EdgeNode& node : nodes_) {
      TVDP_ASSIGN_OR_RETURN(
          ModelProfile m,
          dispatcher_.Dispatch(node.device, options_.latency_budget_ms));
      last_dispatch_.push_back(m);
    }

    for (size_t n = 0; n < nodes_.size(); ++n) {
      EdgeNode& node = nodes_[n];
      const ModelProfile& deployed = last_dispatch_[n];
      // Fault model: a node may drop mid-round (crash, network loss). Its
      // work this round is lost; the samples stay local and are retried
      // next round — the round itself is never stalled by the loss.
      if (options_.node_dropout_prob > 0 &&
          rng.Bernoulli(options_.node_dropout_prob)) {
        ++lr.nodes_dropped;
        continue;
      }
      // Local inference over not-yet-uploaded captures. The node's round
      // time (inference + upload) is accumulated and compared against the
      // aggregation wait budget below; nothing is committed until the node
      // is known to have finished in time.
      double node_inference_ms = 0;
      int64_t node_inference_count = 0;
      struct Scored {
        size_t idx;
        double priority;  // higher = more valuable to upload
      };
      std::vector<Scored> scored;
      for (size_t i = 0; i < node.local_data.size(); ++i) {
        if (uploaded[n][i]) continue;
        node_inference_ms += sim.SimulateInferenceMs(node.device, deployed);
        ++node_inference_count;
        std::vector<double> proba = model->PredictProba(node.local_data[i].x);
        double priority = 0;
        switch (options_.policy) {
          case SelectionPolicy::kRandom:
            priority = rng.Uniform();
            break;
          case SelectionPolicy::kLowConfidence: {
            double top = *std::max_element(proba.begin(), proba.end());
            priority = 1.0 - top;
            break;
          }
          case SelectionPolicy::kMargin: {
            double top1 = 0, top2 = 0;
            for (double p : proba) {
              if (p > top1) {
                top2 = top1;
                top1 = p;
              } else if (p > top2) {
                top2 = p;
              }
            }
            priority = 1.0 - (top1 - top2);
            break;
          }
        }
        scored.push_back({i, priority});
      }
      std::sort(scored.begin(), scored.end(),
                [](const Scored& a, const Scored& b) {
                  if (a.priority != b.priority) return a.priority > b.priority;
                  return a.idx < b.idx;
                });

      // Stage the prioritised prefix under the bandwidth budget; commit
      // only if the node finishes inside the aggregation wait budget.
      double per_sample_bytes =
          options_.upload_features
              ? options_.bytes_per_feature_dim *
                    static_cast<double>(train_.dim())
              : options_.image_bytes;
      double budget = options_.upload_budget_bytes;
      double node_upload_ms = 0;
      std::vector<size_t> staged;
      for (const Scored& s : scored) {
        if (budget < per_sample_bytes) break;
        budget -= per_sample_bytes;
        node_upload_ms += InferenceSimulator::TransferMs(node.device,
                                                         per_sample_bytes);
        staged.push_back(s.idx);
      }

      // Bounded-wait aggregation: a straggler past the budget is cut off
      // and its uploads deferred to the next round (uploaded[] stays
      // false), so one slow Raspberry Pi delays its own contribution
      // instead of deadlocking the whole round.
      double node_time_ms = node_inference_ms + node_upload_ms;
      if (options_.round_wait_budget_ms > 0 &&
          node_time_ms > options_.round_wait_budget_ms) {
        ++lr.nodes_dropped;
        continue;
      }

      ++lr.nodes_participated;
      total_inference_ms += node_inference_ms;
      inference_count += node_inference_count;
      total_upload_ms += node_upload_ms;
      for (size_t idx : staged) {
        uploaded[n][idx] = true;
        lr.bytes_uploaded += per_sample_bytes;
        ++uploads;
        // Oracle labelling (Fig. 4's automatic/manual labeling step).
        const ml::Sample& sample = node.local_data[idx];
        TVDP_RETURN_IF_ERROR(train_.Add(sample.x, sample.label));
      }
    }

    // Server-side retrain on the grown corpus.
    model = prototype_->Clone();
    TVDP_RETURN_IF_ERROR(model->Train(train_));

    lr.train_size = train_.size();
    lr.test_macro_f1 = evaluate();
    lr.mean_inference_ms =
        inference_count > 0 ? total_inference_ms / inference_count : 0;
    lr.mean_upload_ms = uploads > 0 ? total_upload_ms / uploads : 0;
    history.push_back(lr);
  }
  return history;
}

}  // namespace tvdp::edge
