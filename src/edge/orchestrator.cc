#include "edge/orchestrator.h"

#include <algorithm>

#include "edge/simulator.h"

namespace tvdp::edge {
namespace {

/// Termination backstop for pathological policies (max_attempts == 0 and
/// deadline == 0 would otherwise loop forever against a persistent fault).
constexpr int kAttemptHardCap = 64;

}  // namespace

EdgeOrchestrator::EdgeOrchestrator(std::vector<DeviceProfile> fleet,
                                   std::vector<ModelProfile> ladder,
                                   FaultModelOptions faults,
                                   OrchestratorOptions options)
    : dispatcher_(std::move(ladder)),
      faults_(std::move(fleet), faults),
      options_(options),
      health_(faults_.fleet_size(), options.health),
      rng_(options.seed) {}

int EdgeOrchestrator::PickDevice(const std::vector<char>& failed_on,
                                 double now_ms) {
  int best = -1;
  double best_key = -1;
  for (size_t i = 0; i < faults_.fleet_size(); ++i) {
    if (health_.suspect(i, now_ms)) continue;
    if (!health_.WouldAllowRequest(i, now_ms)) continue;
    // Untried devices dominate; among them the healthiest wins, with a
    // little jitter so equally healthy devices share the load.
    double key = health_.health_score(i) + (failed_on[i] ? 0.0 : 2.0) +
                 rng_.Uniform() * 0.05;
    if (key > best_key) {
      best_key = key;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) health_.AllowRequest(static_cast<size_t>(best), now_ms);
  return best;
}

void EdgeOrchestrator::RoundMaintenance() {
  faults_.AdvanceRound();
  for (size_t i = 0; i < faults_.fleet_size(); ++i) {
    // A failed ping is a missed heartbeat: silence accumulates until the
    // failure detector marks the device suspect.
    if (faults_.Ping(i).ok()) health_.RecordHeartbeat(i, now_ms_);
  }
}

JobResult EdgeOrchestrator::RunJob(int job_id) {
  JobResult r;
  r.job_id = job_id;
  RetryState retry(options_.retry,
                   options_.seed ^ (0x9E3779B9ULL * (job_id + 1)));
  std::vector<char> failed_on(faults_.fleet_size(), 0);
  double elapsed = 0;
  bool degraded = false;
  int dispatch_misses = 0;

  while (r.attempts < kAttemptHardCap) {
    int dev = PickDevice(failed_on, now_ms_);
    if (dev < 0) {
      if (r.final_status.ok()) {
        r.final_status = Status::Unavailable("no healthy device available");
      }
      break;
    }
    Result<ModelProfile> model = dispatcher_.Dispatch(
        faults_.device(dev), degraded ? 0.0 : options_.latency_budget_ms);
    if (!model.ok()) {
      // Nothing in the ladder fits this device at all; skip it for this job.
      failed_on[dev] = 1;
      r.final_status = model.status();
      if (++dispatch_misses >= static_cast<int>(faults_.fleet_size())) break;
      continue;
    }

    ++r.attempts;
    EdgeFaultModel::Attempt att = faults_.RunInference(
        dev, *model, options_.retry.per_attempt_timeout_ms);
    elapsed += att.latency_ms;

    if (att.status.ok()) {
      health_.RecordSuccess(dev, now_ms_);
      int final_dev = dev;
      std::string final_model = model->name;
      // Hedge the long tail: when this attempt ran far past the device's
      // expected latency, a duplicate request raced on another healthy
      // device would already have been launched; the earlier finish wins.
      double expected =
          InferenceSimulator::ExpectedLatencyMs(faults_.device(dev), *model);
      double hedge_trigger = options_.hedge_multiplier * expected;
      if (options_.enable_hedging && att.latency_ms > hedge_trigger) {
        std::vector<char> exclude = failed_on;
        exclude[dev] = 1;
        int hedge_dev = PickDevice(exclude, now_ms_);
        if (hedge_dev >= 0 && hedge_dev != dev) {
          Result<ModelProfile> hedge_model = dispatcher_.Dispatch(
              faults_.device(hedge_dev),
              degraded ? 0.0 : options_.latency_budget_ms);
          if (hedge_model.ok()) {
            r.hedged = true;
            ++r.attempts;
            EdgeFaultModel::Attempt hatt = faults_.RunInference(
                hedge_dev, *hedge_model, options_.retry.per_attempt_timeout_ms);
            if (hatt.status.ok()) {
              health_.RecordSuccess(hedge_dev, now_ms_);
              double hedge_total = hedge_trigger + hatt.latency_ms;
              if (hedge_total < att.latency_ms) {
                elapsed += hedge_total - att.latency_ms;  // the hedge won
                final_dev = hedge_dev;
                final_model = hedge_model->name;
              }
            } else {
              health_.RecordFailure(hedge_dev, now_ms_);
            }
          }
        }
      }
      r.completed = true;
      r.device_index = final_dev;
      r.model_name = std::move(final_model);
      r.degraded = degraded;
      r.final_status = Status::OK();
      break;
    }

    health_.RecordFailure(dev, now_ms_);
    failed_on[dev] = 1;
    r.final_status = att.status;
    if (!options_.enable_retries) break;
    if (!retry.ShouldRetry(att.status, elapsed)) break;
    elapsed += retry.NextBackoffMs();
    if (options_.enable_degradation &&
        retry.failures() >= options_.degrade_after_failures) {
      degraded = true;
    }
  }

  if (!r.completed && options_.enable_server_fallback) {
    // Graceful degradation's last rung: serve the job on the TVDP server.
    elapsed += options_.server_latency_ms;
    r.completed = true;
    r.server_fallback = true;
    r.device_index = -1;
    r.model_name = "server";
    r.degraded = degraded;
    r.final_status = Status::OK();
  }
  r.latency_ms = elapsed;
  return r;
}

Result<BatchReport> EdgeOrchestrator::RunBatch(int num_jobs) {
  if (num_jobs <= 0) {
    return Status::InvalidArgument("num_jobs must be positive");
  }
  if (faults_.fleet_size() == 0) {
    return Status::InvalidArgument("empty device fleet");
  }
  if (dispatcher_.ladder().empty()) {
    return Status::InvalidArgument("empty model ladder");
  }

  BatchReport report;
  report.jobs.reserve(static_cast<size_t>(num_jobs));
  size_t opened_before = health_.circuits_opened_total();
  RoundMaintenance();  // initial heartbeat sweep
  for (int j = 0; j < num_jobs; ++j) {
    if (jobs_since_round_ >= options_.jobs_per_round) {
      jobs_since_round_ = 0;
      RoundMaintenance();
    }
    JobResult r = RunJob(j);
    report.total_attempts += r.attempts;
    if (r.completed) ++report.completed;
    report.retries += std::max(0, r.attempts - 1 - (r.hedged ? 1 : 0));
    if (r.hedged) ++report.hedges;
    if (r.degraded && r.completed && !r.server_fallback) ++report.degradations;
    if (r.server_fallback) ++report.server_fallbacks;
    report.jobs.push_back(std::move(r));
    now_ms_ += options_.job_interarrival_ms;
    ++jobs_since_round_;
  }
  report.completion_rate =
      static_cast<double>(report.completed) / static_cast<double>(num_jobs);
  report.circuits_opened = health_.circuits_opened_total() - opened_before;

  std::vector<double> latencies;
  latencies.reserve(report.jobs.size());
  for (const JobResult& r : report.jobs) {
    if (r.completed) latencies.push_back(r.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    report.p50_latency_ms = latencies[(latencies.size() - 1) * 50 / 100];
    report.p99_latency_ms = latencies[(latencies.size() - 1) * 99 / 100];
  }
  return report;
}

}  // namespace tvdp::edge
