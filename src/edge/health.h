#ifndef TVDP_EDGE_HEALTH_H_
#define TVDP_EDGE_HEALTH_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tvdp::edge {

/// Circuit-breaker state of one device's dispatch path.
///   closed    — healthy, requests flow;
///   open      — tripped after consecutive failures, requests blocked;
///   half-open — cooldown elapsed, a single probe request is admitted; its
///               outcome either closes the circuit or re-opens it.
enum class CircuitState { kClosed, kOpen, kHalfOpen };

/// Stable display name, e.g. "half_open".
std::string CircuitStateName(CircuitState s);

/// Tuning knobs of the failure detector. Times are simulated milliseconds
/// on whatever clock the caller advances.
struct HealthOptions {
  /// Consecutive failures that trip the breaker closed -> open.
  int failure_threshold = 3;
  /// How long an open circuit blocks before admitting a half-open probe.
  double open_cooldown_ms = 500;
  /// EWMA weight of the newest success/failure observation in the health
  /// score (score in [0,1], 1 = perfectly healthy).
  double ewma_alpha = 0.3;
  /// Heartbeat silence beyond this marks the device suspect; suspects are
  /// skipped by dispatch until they are heard from again.
  double heartbeat_timeout_ms = 5000;
};

/// Heartbeat-driven failure detector over a fixed fleet: per-device EWMA
/// health scores, last-heard-from tracking, and a circuit breaker per
/// device that the orchestrator consults before handing a device work.
/// Not thread-safe; the orchestrator serializes access.
class DeviceHealthTracker {
 public:
  explicit DeviceHealthTracker(size_t fleet_size, HealthOptions options = {});

  /// Records an attempt outcome at simulated time `now_ms`. A success also
  /// counts as a heartbeat (the device evidently answered).
  void RecordSuccess(size_t i, double now_ms);
  void RecordFailure(size_t i, double now_ms);

  /// Records a liveness probe answer (the orchestrator pings each round).
  void RecordHeartbeat(size_t i, double now_ms);

  /// Admission gate: true when device `i` may receive a request now. An
  /// open circuit whose cooldown has elapsed transitions to half-open and
  /// admits exactly one probe request until its outcome is recorded.
  bool AllowRequest(size_t i, double now_ms);

  /// Same admission decision without the open -> half-open side effect,
  /// for scanning candidates before committing to one.
  bool WouldAllowRequest(size_t i, double now_ms) const;

  /// Milliseconds until an open circuit's cooldown elapses and a half-open
  /// probe would be admitted — 0 when the circuit is not open or the
  /// cooldown already passed. The scatter stage derives its retry-after
  /// hint from this instead of a static constant.
  double RemainingCooldownMs(size_t i, double now_ms) const;

  /// Force-closes the circuit and clears its failure streak. Used when the
  /// tracked instance is replaced wholesale (a shard failover promoted a
  /// replica): the old instance's failures say nothing about the new one.
  void Reset(size_t i);

  CircuitState state(size_t i) const { return devices_[i].state; }
  double health_score(size_t i) const { return devices_[i].score; }

  /// True when the device has been silent past the heartbeat timeout.
  bool suspect(size_t i, double now_ms) const;

  /// Devices currently dispatchable (admissible and not suspect).
  std::vector<size_t> HealthyDevices(double now_ms) const;

  size_t fleet_size() const { return devices_.size(); }
  /// Circuits currently open.
  size_t open_circuits() const;
  /// Total closed/half-open -> open transitions since construction.
  size_t circuits_opened_total() const { return circuits_opened_total_; }

 private:
  struct Device {
    CircuitState state = CircuitState::kClosed;
    int consecutive_failures = 0;
    double score = 1.0;
    double opened_at_ms = 0;
    bool probe_in_flight = false;
    double last_heartbeat_ms = 0;
  };

  void Open(Device& d, double now_ms);

  HealthOptions options_;
  std::vector<Device> devices_;
  size_t circuits_opened_total_ = 0;
};

}  // namespace tvdp::edge

#endif  // TVDP_EDGE_HEALTH_H_
