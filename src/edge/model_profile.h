#ifndef TVDP_EDGE_MODEL_PROFILE_H_
#define TVDP_EDGE_MODEL_PROFILE_H_

#include <string>
#include <vector>

namespace tvdp::edge {

/// Cost/quality profile of a deployable analysis model. FLOPs and
/// parameter counts for the three named models are the published numbers
/// for 224x224 inputs (MobileNetV1 1.0: ~569 MFLOPs / 4.2M params;
/// MobileNetV2 1.0: ~300 MFLOPs / 3.4M; InceptionV3: ~5.7 GFLOPs / 23.8M).
/// `accuracy` is the relative transfer-learning quality tier used by the
/// dispatcher (higher-capacity models score higher, per Sec. VII-A).
struct ModelProfile {
  std::string name;
  double gflops_per_inference = 0.5;
  double params_millions = 4.0;
  double size_mb = 16.0;
  double accuracy = 0.8;
};

/// The three transfer-learned models of the paper's Fig. 8.
ModelProfile MakeMobileNetV1Profile();
ModelProfile MakeMobileNetV2Profile();
ModelProfile MakeInceptionV3Profile();

/// All three, in Fig. 8 order.
std::vector<ModelProfile> PaperModelProfiles();

/// A complexity ladder of model variants for dispatching (paper Fig. 4:
/// "trains models on the server with diverse complexities"): from a tiny
/// quantized student to the full-capacity model.
std::vector<ModelProfile> ModelComplexityLadder();

}  // namespace tvdp::edge

#endif  // TVDP_EDGE_MODEL_PROFILE_H_
