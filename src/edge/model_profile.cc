#include "edge/model_profile.h"

namespace tvdp::edge {

ModelProfile MakeMobileNetV1Profile() {
  return ModelProfile{"mobilenet_v1", 0.569, 4.2, 16.9, 0.78};
}

ModelProfile MakeMobileNetV2Profile() {
  return ModelProfile{"mobilenet_v2", 0.300, 3.4, 13.6, 0.80};
}

ModelProfile MakeInceptionV3Profile() {
  return ModelProfile{"inception_v3", 5.70, 23.8, 95.3, 0.86};
}

std::vector<ModelProfile> PaperModelProfiles() {
  return {MakeMobileNetV1Profile(), MakeMobileNetV2Profile(),
          MakeInceptionV3Profile()};
}

std::vector<ModelProfile> ModelComplexityLadder() {
  return {
      ModelProfile{"mobilenet_v2_0.35_q", 0.060, 1.7, 1.7, 0.70},
      ModelProfile{"mobilenet_v2_0.5", 0.100, 2.0, 8.0, 0.74},
      MakeMobileNetV2Profile(),
      MakeMobileNetV1Profile(),
      MakeInceptionV3Profile(),
  };
}

}  // namespace tvdp::edge
