#ifndef TVDP_EDGE_FAULT_MODEL_H_
#define TVDP_EDGE_FAULT_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "edge/device.h"
#include "edge/model_profile.h"
#include "edge/simulator.h"

namespace tvdp::edge {

/// Knobs of the deterministic edge fault injector. Probabilities are per
/// attempt (crash, straggler) or per round (partitions); everything draws
/// from per-device forked Rng streams, so a fleet's failure history is
/// bit-reproducible for a given seed regardless of dispatch order across
/// devices.
struct FaultModelOptions {
  /// Per-attempt chance the device dies mid-inference (process crash,
  /// watchdog reboot). The attempt fails kUnavailable after a partial run.
  double crash_prob = 0.0;
  /// Per-attempt chance of tail latency: the attempt's latency is
  /// multiplied by straggler_min_multiplier * exp(|N(0, straggler_sigma)|),
  /// a lognormal tail at least straggler_min_multiplier deep.
  double straggler_prob = 0.0;
  double straggler_sigma = 0.6;
  double straggler_min_multiplier = 4.0;
  /// Per-round chance a connected device drops off the network, and per
  /// round chance a partitioned one comes back (AdvanceRound applies both).
  double partition_prob = 0.0;
  double partition_recover_prob = 0.5;
  /// Time wasted discovering that an unreachable device will not answer
  /// (connect timeout), charged to attempts against partitioned or dead
  /// devices. A per-attempt timeout below this caps it.
  double network_timeout_ms = 50.0;
  /// Battery budget, in energy units, for devices with energy_per_gflop >
  /// 0; an inference drains energy_per_gflop * model GFLOPs. 0 disables
  /// battery exhaustion. Mains-powered devices (energy_per_gflop == 0)
  /// never drain.
  double battery_capacity = 0.0;
  uint64_t seed = 29;
};

/// Deterministic, seeded fault injection layered on the analytic
/// InferenceSimulator: crash faults, straggler tail latency, intermittent
/// network partitions, and battery exhaustion. This stands in for the
/// unreliable Raspberry Pi / smartphone fleet of the paper's Sec. VI
/// deployment, the failure modes a smart-city fleet actually exhibits.
class EdgeFaultModel {
 public:
  /// Outcome of one inference attempt. Failures still consume simulated
  /// time (a crash burns a partial run; a partition burns the connect
  /// timeout), which is what makes retries a real latency trade-off.
  struct Attempt {
    Status status = Status::OK();
    double latency_ms = 0;
  };

  EdgeFaultModel(std::vector<DeviceProfile> fleet, FaultModelOptions options,
                 InferenceSimulator::Options sim_options = {});

  size_t fleet_size() const { return fleet_.size(); }
  const std::vector<DeviceProfile>& fleet() const { return fleet_; }
  const DeviceProfile& device(size_t i) const { return fleet_[i]; }

  /// One inference attempt of `model` on device `i`. `timeout_ms` > 0 caps
  /// the attempt: a run that would exceed it returns kDeadlineExceeded
  /// after exactly `timeout_ms` (the caller gave up waiting).
  Attempt RunInference(size_t i, const ModelProfile& model,
                       double timeout_ms = 0);

  /// Cheap reachability probe (heartbeat): OK, kUnavailable when
  /// partitioned, kResourceExhausted when the battery is flat.
  Status Ping(size_t i) const;

  /// Advances the per-round fault state: partitioned devices may recover,
  /// connected ones may partition.
  void AdvanceRound();

  bool partitioned(size_t i) const { return states_[i].partitioned; }
  /// Remaining battery fraction in [0,1]; 1.0 for mains-powered devices or
  /// when battery modelling is off.
  double battery_level(size_t i) const;
  bool battery_dead(size_t i) const;

 private:
  struct DeviceState {
    Rng rng{0};
    bool partitioned = false;
    bool battery_powered = false;
    double battery = 0;  ///< remaining energy units
  };

  std::vector<DeviceProfile> fleet_;
  FaultModelOptions options_;
  InferenceSimulator::Options sim_options_;
  std::vector<DeviceState> states_;
};

}  // namespace tvdp::edge

#endif  // TVDP_EDGE_FAULT_MODEL_H_
