#ifndef TVDP_EDGE_SIMULATOR_H_
#define TVDP_EDGE_SIMULATOR_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "edge/device.h"
#include "edge/model_profile.h"

namespace tvdp::edge {

/// Analytic inference-latency simulator: replaces the paper's physical
/// desktop / Raspberry Pi / smartphone testbed. Latency is compute time
/// (FLOPs over sustained device throughput) plus fixed runtime overhead,
/// inflated when the model does not fit comfortably in device memory
/// (swapping/thrashing on the Pi), with multiplicative run-to-run noise.
class InferenceSimulator {
 public:
  struct Options {
    /// Lognormal-ish noise spread; 0 disables noise.
    double noise_fraction = 0.08;
    /// Memory pressure: when model_size * this > memory, latency inflates.
    /// 12x covers weights + activations + framework overhead; it puts
    /// InceptionV3 (95 MB) past the Raspberry Pi's 1 GB, as observed.
    double memory_headroom_factor = 12.0;
    uint64_t seed = 17;
  };

  InferenceSimulator() : InferenceSimulator(Options()) {}
  explicit InferenceSimulator(Options options)
      : options_(options), rng_(options.seed) {}

  /// One simulated inference; returns latency in milliseconds.
  double SimulateInferenceMs(const DeviceProfile& device,
                             const ModelProfile& model);

  /// Mean latency over `runs` simulated inferences; 0 when `runs <= 0`.
  double MeanLatencyMs(const DeviceProfile& device, const ModelProfile& model,
                       int runs);

  /// Deterministic expected latency (no noise), for tests and dispatch.
  static double ExpectedLatencyMs(const DeviceProfile& device,
                                  const ModelProfile& model,
                                  double memory_headroom_factor = 12.0);

  /// Milliseconds to upload `bytes` over the device's uplink.
  static double TransferMs(const DeviceProfile& device, double bytes);

 private:
  Options options_;
  Rng rng_;
};

}  // namespace tvdp::edge

#endif  // TVDP_EDGE_SIMULATOR_H_
