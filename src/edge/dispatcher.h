#ifndef TVDP_EDGE_DISPATCHER_H_
#define TVDP_EDGE_DISPATCHER_H_

#include <vector>

#include "common/result.h"
#include "edge/device.h"
#include "edge/model_profile.h"

namespace tvdp::edge {

/// Capability-aware model dispatch (paper Sec. VI): the server holds a
/// ladder of model variants with diverse complexities and hands each edge
/// device the most accurate variant that satisfies the device's latency
/// budget and memory constraint. This is the mechanism Fig. 8 motivates —
/// a single static model either starves high-end devices of accuracy or
/// renders low-end devices unusable.
class ModelDispatcher {
 public:
  explicit ModelDispatcher(std::vector<ModelProfile> ladder);

  /// Picks the best model for `device` under `latency_budget_ms`. Falls
  /// back to the cheapest variant when none meets the budget (degraded
  /// mode beats no service); NotFound only when the ladder is empty or
  /// nothing fits device memory.
  Result<ModelProfile> Dispatch(const DeviceProfile& device,
                                double latency_budget_ms) const;

  const std::vector<ModelProfile>& ladder() const { return ladder_; }

 private:
  std::vector<ModelProfile> ladder_;
};

}  // namespace tvdp::edge

#endif  // TVDP_EDGE_DISPATCHER_H_
