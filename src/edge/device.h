#ifndef TVDP_EDGE_DEVICE_H_
#define TVDP_EDGE_DEVICE_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace tvdp::edge {

/// Coarse device classes used in the paper's Fig. 8 evaluation.
enum class DeviceClass {
  kDesktop,
  kRaspberryPi,
  kSmartphone,
};

/// Stable display name, e.g. "raspberry_pi".
std::string DeviceClassName(DeviceClass c);

/// Capability profile of an edge device. The numbers model *effective*
/// single-inference throughput of CPU inference frameworks (TF-Lite-class)
/// on each device tier circa the paper's hardware (desktop CPU, Raspberry
/// Pi 3 B+, mid-range smartphone), not peak datasheet FLOPS.
struct DeviceProfile {
  std::string name;
  DeviceClass device_class = DeviceClass::kDesktop;
  double effective_gflops = 10.0;  ///< sustained, single-image inference
  double memory_mb = 8192;
  double bandwidth_mbps = 100;     ///< uplink to the TVDP server
  double dispatch_overhead_ms = 1; ///< per-inference fixed runtime overhead
  /// Relative battery cost per GFLOP (0 for mains-powered devices).
  double energy_per_gflop = 0.0;
};

/// Desktop-class machine (the paper's "common desktop machine").
DeviceProfile MakeDesktopProfile();

/// Raspberry Pi 3 B+ — the paper's constrained edge device; about 1.5
/// orders of magnitude slower than desktop on CNN inference.
DeviceProfile MakeRaspberryPiProfile();

/// Mid-range smartphone — between the two.
DeviceProfile MakeSmartphoneProfile();

/// All three paper devices, in Fig. 8 order.
std::vector<DeviceProfile> PaperDeviceProfiles();

/// A randomly perturbed profile of the given class, for heterogeneous
/// fleets in the crowd-learning simulation.
DeviceProfile SampleProfile(DeviceClass c, Rng& rng);

}  // namespace tvdp::edge

#endif  // TVDP_EDGE_DEVICE_H_
