#include "edge/dispatcher.h"

#include <algorithm>

#include "edge/simulator.h"

namespace tvdp::edge {

ModelDispatcher::ModelDispatcher(std::vector<ModelProfile> ladder)
    : ladder_(std::move(ladder)) {}

Result<ModelProfile> ModelDispatcher::Dispatch(
    const DeviceProfile& device, double latency_budget_ms) const {
  if (ladder_.empty()) {
    return Status::NotFound("model ladder is empty");
  }
  const ModelProfile* best = nullptr;
  const ModelProfile* cheapest_fitting = nullptr;
  for (const ModelProfile& m : ladder_) {
    // Hard constraint: the model must fit in device memory at all.
    if (m.size_mb * 2.0 > device.memory_mb) continue;
    if (!cheapest_fitting ||
        m.gflops_per_inference < cheapest_fitting->gflops_per_inference) {
      cheapest_fitting = &m;
    }
    double latency = InferenceSimulator::ExpectedLatencyMs(device, m);
    if (latency > latency_budget_ms) continue;
    if (!best || m.accuracy > best->accuracy ||
        (m.accuracy == best->accuracy &&
         m.gflops_per_inference < best->gflops_per_inference)) {
      best = &m;
    }
  }
  if (best) return *best;
  if (cheapest_fitting) return *cheapest_fitting;
  return Status::NotFound("no model variant fits device memory");
}

}  // namespace tvdp::edge
