#include "edge/simulator.h"

#include <algorithm>
#include <cmath>

namespace tvdp::edge {

double InferenceSimulator::ExpectedLatencyMs(const DeviceProfile& device,
                                             const ModelProfile& model,
                                             double memory_headroom_factor) {
  double compute_ms =
      model.gflops_per_inference / std::max(device.effective_gflops, 1e-6) *
      1000.0;
  double latency = compute_ms + device.dispatch_overhead_ms;
  // Memory pressure: models whose working set approaches device memory
  // pay a superlinear penalty (cache thrash / swap on small boards).
  double working_set_mb = model.size_mb * memory_headroom_factor;
  if (working_set_mb > device.memory_mb) {
    latency *= 1.0 + 2.0 * (working_set_mb / device.memory_mb - 1.0);
  }
  return latency;
}

double InferenceSimulator::SimulateInferenceMs(const DeviceProfile& device,
                                               const ModelProfile& model) {
  double base = ExpectedLatencyMs(device, model,
                                  options_.memory_headroom_factor);
  if (options_.noise_fraction <= 0) return base;
  // Multiplicative noise, right-skewed like real tail latency.
  double noise = std::exp(rng_.Normal(0, options_.noise_fraction));
  return base * noise;
}

double InferenceSimulator::MeanLatencyMs(const DeviceProfile& device,
                                         const ModelProfile& model,
                                         int runs) {
  if (runs <= 0) return 0.0;
  double total = 0;
  for (int i = 0; i < runs; ++i) total += SimulateInferenceMs(device, model);
  return total / runs;
}

double InferenceSimulator::TransferMs(const DeviceProfile& device,
                                      double bytes) {
  double bits = bytes * 8.0;
  return bits / std::max(device.bandwidth_mbps, 1e-6) / 1e6 * 1000.0;
}

}  // namespace tvdp::edge
