#include "edge/fault_model.h"

#include <algorithm>
#include <cmath>

namespace tvdp::edge {

EdgeFaultModel::EdgeFaultModel(std::vector<DeviceProfile> fleet,
                               FaultModelOptions options,
                               InferenceSimulator::Options sim_options)
    : fleet_(std::move(fleet)),
      options_(options),
      sim_options_(sim_options) {
  Rng root(options_.seed);
  states_.resize(fleet_.size());
  for (size_t i = 0; i < fleet_.size(); ++i) {
    states_[i].rng = root.Fork();
    states_[i].battery_powered =
        options_.battery_capacity > 0 && fleet_[i].energy_per_gflop > 0;
    states_[i].battery = options_.battery_capacity;
  }
}

double EdgeFaultModel::battery_level(size_t i) const {
  const DeviceState& d = states_[i];
  if (!d.battery_powered) return 1.0;
  return std::max(0.0, d.battery / options_.battery_capacity);
}

bool EdgeFaultModel::battery_dead(size_t i) const {
  return states_[i].battery_powered && states_[i].battery <= 0;
}

Status EdgeFaultModel::Ping(size_t i) const {
  if (battery_dead(i)) {
    return Status::ResourceExhausted(fleet_[i].name + ": battery exhausted");
  }
  if (states_[i].partitioned) {
    return Status::Unavailable(fleet_[i].name + ": network partition");
  }
  return Status::OK();
}

EdgeFaultModel::Attempt EdgeFaultModel::RunInference(size_t i,
                                                     const ModelProfile& model,
                                                     double timeout_ms) {
  DeviceState& d = states_[i];
  const DeviceProfile& dev = fleet_[i];
  Attempt out;

  // Unreachable device: the caller burns the connect timeout finding out.
  double probe_ms = options_.network_timeout_ms;
  if (timeout_ms > 0) probe_ms = std::min(probe_ms, timeout_ms);
  if (battery_dead(i)) {
    out.status = Status::ResourceExhausted(dev.name + ": battery exhausted");
    out.latency_ms = probe_ms;
    return out;
  }
  if (d.partitioned) {
    out.status = Status::Unavailable(dev.name + ": network partition");
    out.latency_ms = probe_ms;
    return out;
  }

  double latency = InferenceSimulator::ExpectedLatencyMs(
      dev, model, sim_options_.memory_headroom_factor);
  if (sim_options_.noise_fraction > 0) {
    latency *= std::exp(d.rng.Normal(0, sim_options_.noise_fraction));
  }
  if (options_.straggler_prob > 0 && d.rng.Bernoulli(options_.straggler_prob)) {
    // Lognormal tail, at least straggler_min_multiplier deep: thermal
    // throttling, background load, GC pauses.
    latency *= options_.straggler_min_multiplier *
               std::exp(std::abs(d.rng.Normal(0, options_.straggler_sigma)));
  }

  // The inference ran (fully or partially) on-device, so it drains battery
  // even when the attempt ultimately fails.
  if (d.battery_powered) {
    d.battery -= dev.energy_per_gflop * model.gflops_per_inference;
    if (d.battery <= 0) {
      out.status = Status::ResourceExhausted(dev.name +
                                             ": battery died mid-inference");
      out.latency_ms = timeout_ms > 0 ? std::min(latency, timeout_ms) : latency;
      return out;
    }
  }

  if (options_.crash_prob > 0 && d.rng.Bernoulli(options_.crash_prob)) {
    double partial = latency * d.rng.Uniform();
    out.status = Status::Unavailable(dev.name + ": crashed mid-inference");
    out.latency_ms = timeout_ms > 0 ? std::min(partial, timeout_ms) : partial;
    return out;
  }

  if (timeout_ms > 0 && latency > timeout_ms) {
    out.status = Status::DeadlineExceeded(dev.name + ": attempt timed out");
    out.latency_ms = timeout_ms;
    return out;
  }

  out.latency_ms = latency;
  return out;
}

void EdgeFaultModel::AdvanceRound() {
  for (DeviceState& d : states_) {
    if (d.partitioned) {
      if (options_.partition_recover_prob > 0 &&
          d.rng.Bernoulli(options_.partition_recover_prob)) {
        d.partitioned = false;
      }
    } else if (options_.partition_prob > 0 &&
               d.rng.Bernoulli(options_.partition_prob)) {
      d.partitioned = true;
    }
  }
}

}  // namespace tvdp::edge
