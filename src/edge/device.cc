#include "edge/device.h"

namespace tvdp::edge {

std::string DeviceClassName(DeviceClass c) {
  switch (c) {
    case DeviceClass::kDesktop: return "desktop";
    case DeviceClass::kRaspberryPi: return "raspberry_pi";
    case DeviceClass::kSmartphone: return "smartphone";
  }
  return "unknown";
}

DeviceProfile MakeDesktopProfile() {
  DeviceProfile p;
  p.name = "desktop-i7";
  p.device_class = DeviceClass::kDesktop;
  p.effective_gflops = 40.0;
  p.memory_mb = 16384;
  p.bandwidth_mbps = 500;
  p.dispatch_overhead_ms = 1.0;
  p.energy_per_gflop = 0.0;
  return p;
}

DeviceProfile MakeRaspberryPiProfile() {
  DeviceProfile p;
  p.name = "raspberry-pi-3b+";
  p.device_class = DeviceClass::kRaspberryPi;
  // ~1.5 orders of magnitude below desktop, per the paper's measurement.
  p.effective_gflops = 1.1;
  p.memory_mb = 1024;
  p.bandwidth_mbps = 40;
  p.dispatch_overhead_ms = 25.0;
  p.energy_per_gflop = 0.4;
  return p;
}

DeviceProfile MakeSmartphoneProfile() {
  DeviceProfile p;
  p.name = "smartphone-mid";
  p.device_class = DeviceClass::kSmartphone;
  p.effective_gflops = 8.0;
  p.memory_mb = 4096;
  p.bandwidth_mbps = 60;
  p.dispatch_overhead_ms = 8.0;
  p.energy_per_gflop = 1.0;
  return p;
}

std::vector<DeviceProfile> PaperDeviceProfiles() {
  return {MakeDesktopProfile(), MakeRaspberryPiProfile(),
          MakeSmartphoneProfile()};
}

DeviceProfile SampleProfile(DeviceClass c, Rng& rng) {
  DeviceProfile base;
  switch (c) {
    case DeviceClass::kDesktop: base = MakeDesktopProfile(); break;
    case DeviceClass::kRaspberryPi: base = MakeRaspberryPiProfile(); break;
    case DeviceClass::kSmartphone: base = MakeSmartphoneProfile(); break;
  }
  // +-30% individual variation (thermal state, background load, SoC bin).
  double f = rng.Uniform(0.7, 1.3);
  base.effective_gflops *= f;
  base.bandwidth_mbps *= rng.Uniform(0.6, 1.4);
  return base;
}

}  // namespace tvdp::edge
