#include "edge/health.h"

namespace tvdp::edge {

std::string CircuitStateName(CircuitState s) {
  switch (s) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kOpen: return "open";
    case CircuitState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

DeviceHealthTracker::DeviceHealthTracker(size_t fleet_size,
                                         HealthOptions options)
    : options_(options), devices_(fleet_size) {}

void DeviceHealthTracker::Open(Device& d, double now_ms) {
  d.state = CircuitState::kOpen;
  d.opened_at_ms = now_ms;
  d.probe_in_flight = false;
  ++circuits_opened_total_;
}

void DeviceHealthTracker::RecordSuccess(size_t i, double now_ms) {
  Device& d = devices_[i];
  d.score += options_.ewma_alpha * (1.0 - d.score);
  d.consecutive_failures = 0;
  d.last_heartbeat_ms = now_ms;
  if (d.state == CircuitState::kHalfOpen) {
    // The probe succeeded: the device is back.
    d.state = CircuitState::kClosed;
  }
  d.probe_in_flight = false;
}

void DeviceHealthTracker::RecordFailure(size_t i, double now_ms) {
  Device& d = devices_[i];
  d.score += options_.ewma_alpha * (0.0 - d.score);
  ++d.consecutive_failures;
  if (d.state == CircuitState::kHalfOpen) {
    // The probe failed: back to open, restart the cooldown.
    Open(d, now_ms);
  } else if (d.state == CircuitState::kClosed &&
             d.consecutive_failures >= options_.failure_threshold) {
    Open(d, now_ms);
  }
}

void DeviceHealthTracker::RecordHeartbeat(size_t i, double now_ms) {
  devices_[i].last_heartbeat_ms = now_ms;
}

bool DeviceHealthTracker::WouldAllowRequest(size_t i, double now_ms) const {
  const Device& d = devices_[i];
  switch (d.state) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kOpen:
      return now_ms - d.opened_at_ms >= options_.open_cooldown_ms;
    case CircuitState::kHalfOpen:
      return !d.probe_in_flight;
  }
  return false;
}

bool DeviceHealthTracker::AllowRequest(size_t i, double now_ms) {
  Device& d = devices_[i];
  switch (d.state) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kOpen:
      if (now_ms - d.opened_at_ms < options_.open_cooldown_ms) return false;
      d.state = CircuitState::kHalfOpen;
      d.probe_in_flight = true;
      return true;
    case CircuitState::kHalfOpen:
      if (d.probe_in_flight) return false;
      d.probe_in_flight = true;
      return true;
  }
  return false;
}

double DeviceHealthTracker::RemainingCooldownMs(size_t i,
                                                double now_ms) const {
  const Device& d = devices_[i];
  if (d.state != CircuitState::kOpen) return 0;
  const double remaining =
      options_.open_cooldown_ms - (now_ms - d.opened_at_ms);
  return remaining > 0 ? remaining : 0;
}

void DeviceHealthTracker::Reset(size_t i) {
  Device& d = devices_[i];
  d.state = CircuitState::kClosed;
  d.consecutive_failures = 0;
  d.probe_in_flight = false;
}

bool DeviceHealthTracker::suspect(size_t i, double now_ms) const {
  return now_ms - devices_[i].last_heartbeat_ms > options_.heartbeat_timeout_ms;
}

std::vector<size_t> DeviceHealthTracker::HealthyDevices(double now_ms) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < devices_.size(); ++i) {
    if (!suspect(i, now_ms) && WouldAllowRequest(i, now_ms)) out.push_back(i);
  }
  return out;
}

size_t DeviceHealthTracker::open_circuits() const {
  size_t n = 0;
  for (const Device& d : devices_) {
    if (d.state == CircuitState::kOpen) ++n;
  }
  return n;
}

}  // namespace tvdp::edge
