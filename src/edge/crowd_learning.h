#ifndef TVDP_EDGE_CROWD_LEARNING_H_
#define TVDP_EDGE_CROWD_LEARNING_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "edge/device.h"
#include "edge/dispatcher.h"
#include "edge/simulator.h"
#include "ml/classifier.h"

namespace tvdp::edge {

/// How an edge device prioritises which locally captured samples to
/// upload to the server (the "distributed selection algorithm" of
/// Sec. VI that limits bandwidth consumption).
enum class SelectionPolicy {
  kRandom,         ///< baseline: uniform choice
  kLowConfidence,  ///< upload what the current model is least sure about
  kMargin,         ///< smallest top1-top2 probability margin
};

/// Stable display name, e.g. "low_confidence".
std::string SelectionPolicyName(SelectionPolicy p);

/// One participating edge device with its local (as-yet-unlabelled from
/// the server's perspective) captures. Labels are carried for the oracle
/// that simulates the human/automatic labelling step of Fig. 4.
struct EdgeNode {
  DeviceProfile device;
  std::vector<ml::Sample> local_data;
};

/// Per-round outcome of the crowd-based learning loop.
struct LearningRound {
  int round = 0;
  size_t train_size = 0;
  double test_macro_f1 = 0;
  double bytes_uploaded = 0;
  double mean_inference_ms = 0;
  double mean_upload_ms = 0;
  /// Devices whose round contribution was aggregated.
  int nodes_participated = 0;
  /// Devices dropped this round (crashed mid-round, or straggled past the
  /// aggregation wait budget); their uploads are deferred, not lost.
  int nodes_dropped = 0;
};

/// The crowd-based learning framework of paper Fig. 4 (Constantinou et
/// al.): the server trains a model, dispatches variants to heterogeneous
/// edge devices, devices score their local captures with the current model
/// and upload a bandwidth-bounded prioritised subset — as extracted
/// feature vectors, not raw images — the server labels and retrains, and
/// the loop repeats, improving the model with crowd data each round.
class CrowdLearningLoop {
 public:
  struct Options {
    int rounds = 8;
    /// Per-device upload budget per round, bytes.
    double upload_budget_bytes = 4096;
    /// true: devices upload extracted features; false: raw images.
    bool upload_features = true;
    /// Raw image payload size (bytes) when upload_features is false.
    double image_bytes = 200.0 * 1024;
    /// Bytes per feature dimension when upload_features is true.
    double bytes_per_feature_dim = 8;
    double latency_budget_ms = 150;
    SelectionPolicy policy = SelectionPolicy::kLowConfidence;
    /// Per-round, per-node probability that the device drops mid-round
    /// (crash, network loss): its uploads are lost for this round and
    /// retried in the next one.
    double node_dropout_prob = 0;
    /// Bounded aggregation wait: a node whose simulated round time
    /// (inference + upload) exceeds this budget is cut off — its uploads
    /// are deferred to the next round instead of stalling the aggregation
    /// step. 0 = wait for everyone (the pre-fault-model behaviour, where a
    /// straggler or dropped device would stall the round indefinitely).
    double round_wait_budget_ms = 0;
    uint64_t seed = 23;
  };

  /// `prototype` is cloned for every retrain. `seed_train` is the initial
  /// labelled server-side dataset; `test` is the held-out evaluation set.
  CrowdLearningLoop(const ml::Classifier& prototype, ml::Dataset seed_train,
                    ml::Dataset test, std::vector<EdgeNode> nodes,
                    Options options);

  /// Runs the loop; round 0 reports the seed model before any uploads.
  Result<std::vector<LearningRound>> Run();

  /// The model dispatched to each node in the last round (parallel to the
  /// node list), for inspection.
  const std::vector<ModelProfile>& last_dispatch() const {
    return last_dispatch_;
  }

 private:
  std::unique_ptr<ml::Classifier> prototype_;
  ml::Dataset train_;
  ml::Dataset test_;
  std::vector<EdgeNode> nodes_;
  Options options_;
  ModelDispatcher dispatcher_;
  std::vector<ModelProfile> last_dispatch_;
};

}  // namespace tvdp::edge

#endif  // TVDP_EDGE_CROWD_LEARNING_H_
