#ifndef TVDP_EDGE_ORCHESTRATOR_H_
#define TVDP_EDGE_ORCHESTRATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "edge/device.h"
#include "edge/dispatcher.h"
#include "edge/fault_model.h"
#include "edge/health.h"
#include "edge/model_profile.h"

namespace tvdp::edge {

/// Per-job outcome of a fault-tolerant batch dispatch.
struct JobResult {
  int job_id = 0;
  bool completed = false;
  int attempts = 0;           ///< device attempts, including hedges
  int device_index = -1;      ///< device that served the final attempt; -1 = server
  std::string model_name;     ///< model that ultimately ran
  bool degraded = false;      ///< served by a cheaper rung than first choice
  bool server_fallback = false;
  bool hedged = false;        ///< a hedge request was launched for this job
  double latency_ms = 0;      ///< submit -> done, incl. failures and backoffs
  Status final_status = Status::OK();  ///< last error for failed jobs
};

/// Aggregate outcome of one batch.
struct BatchReport {
  std::vector<JobResult> jobs;
  int completed = 0;
  double completion_rate = 0;
  int total_attempts = 0;
  int retries = 0;            ///< re-dispatches after a failed attempt
  int hedges = 0;
  int degradations = 0;       ///< jobs served by a stepped-down model
  int server_fallbacks = 0;
  size_t circuits_opened = 0; ///< breaker trips over the batch
  double p50_latency_ms = 0;  ///< over completed jobs
  double p99_latency_ms = 0;
};

/// Tuning of the fault-tolerant dispatch loop.
struct OrchestratorOptions {
  /// Per-job retry budget. per_attempt_timeout_ms is handed to the fault
  /// model as the attempt timeout; deadline_ms bounds a job's total time
  /// across attempts and backoffs.
  RetryPolicy retry{/*max_attempts=*/4, /*initial_backoff_ms=*/5,
                    /*max_backoff_ms=*/100, /*per_attempt_timeout_ms=*/4000,
                    /*deadline_ms=*/20000};
  /// Master switch measured by bench_edge_faults: off = fail a job on its
  /// first error, exactly what the pre-fault-model platform did.
  bool enable_retries = true;
  /// Hedge successful-but-slow attempts: when an attempt exceeds
  /// hedge_multiplier x the device's expected latency, a duplicate request
  /// is (conceptually) raced on another healthy device and the earlier
  /// completion wins.
  bool enable_hedging = true;
  double hedge_multiplier = 3.0;
  /// Step down the model ladder after this many failed attempts on a job
  /// (cheaper models run faster and fit weaker devices: degraded beats
  /// failed).
  bool enable_degradation = true;
  int degrade_after_failures = 2;
  /// Last rung: run the inference on the TVDP server itself when the fleet
  /// cannot serve the job. Always succeeds, at server_latency_ms.
  bool enable_server_fallback = true;
  double server_latency_ms = 40;
  /// Latency budget handed to ModelDispatcher when picking a device's rung.
  double latency_budget_ms = 1000;
  /// Jobs between fault-model rounds (partition churn) and heartbeat sweeps.
  int jobs_per_round = 64;
  /// Simulated inter-arrival time between jobs; this is what lets circuit
  /// cooldowns elapse while the batch streams through the fleet.
  double job_interarrival_ms = 2.0;
  HealthOptions health;
  uint64_t seed = 31;
};

/// Fault-tolerant edge inference orchestration (the machinery the paper's
/// Sec. VI edge framework needs to survive a real device fleet): dispatches
/// a batch of inference jobs across heterogeneous devices under a deadline,
/// consults the circuit-breaker health tracker so unhealthy devices stop
/// receiving work, retries failed jobs on other healthy devices per the
/// RetryPolicy, hedges long-tail stragglers, and degrades gracefully —
/// cheaper model rung, then server-side inference — rather than failing
/// the batch.
class EdgeOrchestrator {
 public:
  EdgeOrchestrator(std::vector<DeviceProfile> fleet,
                   std::vector<ModelProfile> ladder,
                   FaultModelOptions faults,
                   OrchestratorOptions options = {});

  /// Dispatches `num_jobs` inference jobs and reports per-job outcomes,
  /// attempt counts, and completion rate.
  Result<BatchReport> RunBatch(int num_jobs);

  const DeviceHealthTracker& health() const { return health_; }
  const EdgeFaultModel& fault_model() const { return faults_; }
  double now_ms() const { return now_ms_; }

 private:
  /// The healthiest admissible non-suspect device, preferring ones the job
  /// has not failed on yet; -1 when none qualifies.
  int PickDevice(const std::vector<char>& failed_on, double now_ms);

  /// Heartbeat sweep + fault-model round churn.
  void RoundMaintenance();

  JobResult RunJob(int job_id);

  ModelDispatcher dispatcher_;
  EdgeFaultModel faults_;
  OrchestratorOptions options_;
  DeviceHealthTracker health_;
  Rng rng_;
  double now_ms_ = 0;
  int jobs_since_round_ = 0;
};

}  // namespace tvdp::edge

#endif  // TVDP_EDGE_ORCHESTRATOR_H_
