#include "vision/sift.h"

#include <algorithm>
#include <cmath>

namespace tvdp::vision {
namespace {

constexpr int kDescriptorGrid = 4;   // 4x4 spatial cells
constexpr int kDescriptorBins = 8;   // orientations per cell
constexpr int kDescriptorDim = kDescriptorGrid * kDescriptorGrid *
                               kDescriptorBins;

/// Gradient magnitude/orientation at (x, y) with border clamping.
void GradientAt(const GrayImage& img, int x, int y, double* magnitude,
                double* orientation) {
  int xm = std::max(x - 1, 0), xp = std::min(x + 1, img.width - 1);
  int ym = std::max(y - 1, 0), yp = std::min(y + 1, img.height - 1);
  double dx = img.at(xp, y) - img.at(xm, y);
  double dy = img.at(x, yp) - img.at(x, ym);
  *magnitude = std::sqrt(dx * dx + dy * dy);
  *orientation = std::atan2(dy, dx);  // (-pi, pi]
}

/// True iff DoG value at (x,y) in `cur` is a local extremum across the
/// 3x3x3 neighbourhood spanned by prev/cur/next.
bool IsExtremum(const GrayImage& prev, const GrayImage& cur,
                const GrayImage& next, int x, int y) {
  float v = cur.at(x, y);
  bool is_max = true, is_min = true;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      for (const GrayImage* level : {&prev, &cur, &next}) {
        if (level == &cur && dx == 0 && dy == 0) continue;
        float n = level->at(x + dx, y + dy);
        if (n >= v) is_max = false;
        if (n <= v) is_min = false;
        if (!is_max && !is_min) return false;
      }
    }
  }
  return is_max || is_min;
}

/// Rejects edge-like responses via the Hessian trace/determinant test.
bool PassesEdgeTest(const GrayImage& dog, int x, int y, double r) {
  double dxx = dog.at(x + 1, y) + dog.at(x - 1, y) - 2.0 * dog.at(x, y);
  double dyy = dog.at(x, y + 1) + dog.at(x, y - 1) - 2.0 * dog.at(x, y);
  double dxy = (dog.at(x + 1, y + 1) - dog.at(x - 1, y + 1) -
                dog.at(x + 1, y - 1) + dog.at(x - 1, y - 1)) /
               4.0;
  double trace = dxx + dyy;
  double det = dxx * dyy - dxy * dxy;
  if (det <= 0) return false;
  double threshold = (r + 1) * (r + 1) / r;
  return trace * trace / det < threshold;
}

}  // namespace

GrayImage ToGrayImage(const image::Image& img) {
  GrayImage out;
  out.width = img.width();
  out.height = img.height();
  out.data = img.ToGray();
  return out;
}

GrayImage GaussianBlur(const GrayImage& src, double sigma) {
  if (sigma <= 0.01) return src;
  int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<float> kernel(static_cast<size_t>(2 * radius + 1));
  double sum = 0;
  for (int i = -radius; i <= radius; ++i) {
    double v = std::exp(-(i * i) / (2.0 * sigma * sigma));
    kernel[static_cast<size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  for (float& k : kernel) k = static_cast<float>(k / sum);

  GrayImage tmp = src;
  // Horizontal pass.
  for (int y = 0; y < src.height; ++y) {
    for (int x = 0; x < src.width; ++x) {
      float acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        int xx = std::clamp(x + i, 0, src.width - 1);
        acc += kernel[static_cast<size_t>(i + radius)] * src.at(xx, y);
      }
      tmp.at(x, y) = acc;
    }
  }
  GrayImage out = tmp;
  // Vertical pass.
  for (int y = 0; y < src.height; ++y) {
    for (int x = 0; x < src.width; ++x) {
      float acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        int yy = std::clamp(y + i, 0, src.height - 1);
        acc += kernel[static_cast<size_t>(i + radius)] * tmp.at(x, yy);
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

GrayImage Downsample2x(const GrayImage& src) {
  GrayImage out;
  out.width = std::max(src.width / 2, 1);
  out.height = std::max(src.height / 2, 1);
  out.data.resize(static_cast<size_t>(out.width) * out.height);
  for (int y = 0; y < out.height; ++y) {
    for (int x = 0; x < out.width; ++x) {
      out.at(x, y) = src.at(std::min(2 * x, src.width - 1),
                            std::min(2 * y, src.height - 1));
    }
  }
  return out;
}

Result<std::vector<SiftFeature>> SiftDetector::DetectAndDescribe(
    const image::Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.width() < 16 || img.height() < 16) {
    return Status::InvalidArgument("image too small for SIFT (min 16x16)");
  }

  std::vector<SiftFeature> features;
  const int s = std::max(options_.scales_per_octave, 1);
  const double k = std::pow(2.0, 1.0 / s);

  GrayImage base = ToGrayImage(img);
  double octave_scale = 1.0;  // base-image pixels per octave pixel

  for (int octave = 0; octave < options_.num_octaves; ++octave) {
    if (base.width < 16 || base.height < 16) break;
    // Gaussian stack: s + 3 levels.
    std::vector<GrayImage> gauss;
    gauss.reserve(static_cast<size_t>(s) + 3);
    gauss.push_back(GaussianBlur(base, options_.base_sigma));
    for (int i = 1; i < s + 3; ++i) {
      double sigma_prev = options_.base_sigma * std::pow(k, i - 1);
      double sigma_next = sigma_prev * k;
      double delta = std::sqrt(std::max(
          sigma_next * sigma_next - sigma_prev * sigma_prev, 1e-6));
      gauss.push_back(GaussianBlur(gauss.back(), delta));
    }
    // DoG stack: s + 2 levels.
    std::vector<GrayImage> dog;
    dog.reserve(gauss.size() - 1);
    for (size_t i = 0; i + 1 < gauss.size(); ++i) {
      GrayImage d = gauss[i];
      for (size_t p = 0; p < d.data.size(); ++p) {
        d.data[p] = gauss[i + 1].data[p] - gauss[i].data[p];
      }
      dog.push_back(std::move(d));
    }

    for (int level = 1; level + 1 < static_cast<int>(dog.size()); ++level) {
      const GrayImage& cur = dog[static_cast<size_t>(level)];
      const GrayImage& prev = dog[static_cast<size_t>(level) - 1];
      const GrayImage& next = dog[static_cast<size_t>(level) + 1];
      const GrayImage& grad_img = gauss[static_cast<size_t>(level)];
      double sigma = options_.base_sigma * std::pow(k, level);

      for (int y = 2; y < cur.height - 2; ++y) {
        for (int x = 2; x < cur.width - 2; ++x) {
          float v = cur.at(x, y);
          if (std::abs(v) < options_.contrast_threshold) continue;
          if (!IsExtremum(prev, cur, next, x, y)) continue;
          if (!PassesEdgeTest(cur, x, y, options_.edge_threshold)) continue;

          // Orientation assignment: 36-bin histogram of gradient
          // directions in a sigma-scaled window.
          constexpr int kOriBins = 36;
          double hist[kOriBins] = {0};
          int radius = std::max(2, static_cast<int>(std::lround(3.0 * sigma)));
          for (int dy = -radius; dy <= radius; ++dy) {
            for (int dx = -radius; dx <= radius; ++dx) {
              int xx = x + dx, yy = y + dy;
              if (xx < 1 || xx >= grad_img.width - 1 || yy < 1 ||
                  yy >= grad_img.height - 1) {
                continue;
              }
              double mag, ori;
              GradientAt(grad_img, xx, yy, &mag, &ori);
              double w = std::exp(-(dx * dx + dy * dy) /
                                  (2.0 * (1.5 * sigma) * (1.5 * sigma)));
              int bin = static_cast<int>(
                            std::floor((ori + M_PI) / (2 * M_PI) * kOriBins)) %
                        kOriBins;
              hist[bin] += w * mag;
            }
          }
          int best_bin = 0;
          for (int b = 1; b < kOriBins; ++b) {
            if (hist[b] > hist[best_bin]) best_bin = b;
          }
          double orientation =
              (best_bin + 0.5) / kOriBins * 2 * M_PI - M_PI;

          // Descriptor: 4x4 cells of 8-bin orientation histograms over a
          // rotated window of width 16 * (sigma / base_sigma) pixels.
          ml::FeatureVector desc(kDescriptorDim, 0.0);
          double cell = 4.0 * sigma / options_.base_sigma;  // pixels/cell
          double cos_o = std::cos(orientation), sin_o = std::sin(orientation);
          int win = static_cast<int>(std::ceil(cell * kDescriptorGrid / 2 *
                                               std::sqrt(2.0)));
          for (int dy = -win; dy <= win; ++dy) {
            for (int dx = -win; dx <= win; ++dx) {
              int xx = x + dx, yy = y + dy;
              if (xx < 1 || xx >= grad_img.width - 1 || yy < 1 ||
                  yy >= grad_img.height - 1) {
                continue;
              }
              // Rotate the offset into the keypoint frame.
              double rx = (cos_o * dx + sin_o * dy) / cell +
                          kDescriptorGrid / 2.0 - 0.5;
              double ry = (-sin_o * dx + cos_o * dy) / cell +
                          kDescriptorGrid / 2.0 - 0.5;
              int cx = static_cast<int>(std::floor(rx + 0.5));
              int cy = static_cast<int>(std::floor(ry + 0.5));
              if (cx < 0 || cx >= kDescriptorGrid || cy < 0 ||
                  cy >= kDescriptorGrid) {
                continue;
              }
              double mag, ori;
              GradientAt(grad_img, xx, yy, &mag, &ori);
              double rel = ori - orientation;
              while (rel < 0) rel += 2 * M_PI;
              while (rel >= 2 * M_PI) rel -= 2 * M_PI;
              int ob = std::min(static_cast<int>(rel / (2 * M_PI) *
                                                 kDescriptorBins),
                                kDescriptorBins - 1);
              double w = std::exp(-(dx * dx + dy * dy) /
                                  (2.0 * (cell * kDescriptorGrid / 2) *
                                   (cell * kDescriptorGrid / 2)));
              desc[static_cast<size_t>((cy * kDescriptorGrid + cx) *
                                       kDescriptorBins + ob)] += w * mag;
            }
          }
          // Normalize, clip at 0.2 (illumination robustness), renormalize.
          ml::L2NormalizeInPlace(desc);
          for (double& d : desc) d = std::min(d, 0.2);
          ml::L2NormalizeInPlace(desc);

          SiftFeature feat;
          feat.keypoint.x = x * octave_scale;
          feat.keypoint.y = y * octave_scale;
          feat.keypoint.scale = sigma * octave_scale;
          feat.keypoint.orientation = orientation;
          feat.keypoint.response = std::abs(v);
          feat.descriptor = std::move(desc);
          features.push_back(std::move(feat));
        }
      }
    }
    base = Downsample2x(base);
    octave_scale *= 2.0;
  }

  if (options_.max_keypoints > 0 &&
      features.size() > static_cast<size_t>(options_.max_keypoints)) {
    std::partial_sort(features.begin(),
                      features.begin() + options_.max_keypoints,
                      features.end(),
                      [](const SiftFeature& a, const SiftFeature& b) {
                        return a.keypoint.response > b.keypoint.response;
                      });
    features.resize(static_cast<size_t>(options_.max_keypoints));
  }
  return features;
}

}  // namespace tvdp::vision
