#ifndef TVDP_VISION_BOW_H_
#define TVDP_VISION_BOW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/kmeans.h"
#include "vision/feature.h"
#include "vision/sift.h"

namespace tvdp::vision {

/// Bag-of-visual-words encoder: quantizes a set of local descriptors
/// against a k-means dictionary and emits a normalized word histogram.
class BowEncoder {
 public:
  struct Options {
    /// Dictionary size. The paper clusters SIFT points into 1000 words for
    /// full-resolution photographs; the default here is scaled down for
    /// the synthetic 64x64 corpus.
    int vocabulary_size = 96;
    /// Cap on descriptors sampled for dictionary training.
    size_t max_training_descriptors = 60000;
    int kmeans_iterations = 25;
    uint64_t seed = 7;
  };

  BowEncoder() : BowEncoder(Options()) {}
  explicit BowEncoder(Options options) : options_(options) {}

  /// Builds the visual-word dictionary from per-image descriptor sets.
  Status Fit(const std::vector<std::vector<ml::FeatureVector>>& descriptors);

  /// Encodes one image's descriptors as an L2-normalized word histogram.
  Result<FeatureVector> Encode(
      const std::vector<ml::FeatureVector>& descriptors) const;

  bool fitted() const { return kmeans_ != nullptr; }
  size_t vocabulary_size() const {
    return fitted() ? kmeans_->centroids().size() : 0;
  }

 private:
  Options options_;
  std::unique_ptr<ml::KMeans> kmeans_;
};

/// The SIFT-BoW visual descriptor of the TVDP data model: SIFT keypoints,
/// quantized against a corpus-fitted dictionary.
class SiftBowExtractor : public TrainableFeatureExtractor {
 public:
  SiftBowExtractor() = default;
  SiftBowExtractor(SiftDetector::Options sift_options,
                   BowEncoder::Options bow_options)
      : detector_(sift_options), encoder_(bow_options) {}

  /// Detects SIFT features on every image and fits the BoW dictionary.
  /// Labels are ignored (unsupervised).
  Status Fit(const std::vector<image::Image>& images,
             const std::vector<int>& labels) override;

  Result<FeatureVector> Extract(const image::Image& img) const override;
  size_t dim() const override { return encoder_.vocabulary_size(); }
  std::string name() const override { return "sift_bow"; }
  bool ready() const override { return encoder_.fitted(); }

  const SiftDetector& detector() const { return detector_; }

 private:
  SiftDetector detector_;
  BowEncoder encoder_;
};

}  // namespace tvdp::vision

#endif  // TVDP_VISION_BOW_H_
