#include "vision/bow.h"

#include <algorithm>

namespace tvdp::vision {

Status BowEncoder::Fit(
    const std::vector<std::vector<ml::FeatureVector>>& descriptors) {
  std::vector<ml::FeatureVector> pool;
  for (const auto& per_image : descriptors) {
    for (const auto& d : per_image) pool.push_back(d);
  }
  if (pool.size() < static_cast<size_t>(options_.vocabulary_size)) {
    return Status::FailedPrecondition(
        "not enough descriptors to build BoW dictionary");
  }
  Rng rng(options_.seed);
  if (pool.size() > options_.max_training_descriptors) {
    rng.Shuffle(pool);
    pool.resize(options_.max_training_descriptors);
  }
  ml::KMeans::Options km;
  km.k = options_.vocabulary_size;
  km.max_iterations = options_.kmeans_iterations;
  TVDP_ASSIGN_OR_RETURN(ml::KMeans model, ml::KMeans::Fit(pool, km, rng));
  kmeans_ = std::make_unique<ml::KMeans>(std::move(model));
  return Status::OK();
}

Result<FeatureVector> BowEncoder::Encode(
    const std::vector<ml::FeatureVector>& descriptors) const {
  if (!fitted()) return Status::FailedPrecondition("BoW dictionary not fitted");
  FeatureVector hist(vocabulary_size(), 0.0);
  for (const auto& d : descriptors) {
    hist[kmeans_->Assign(d)] += 1.0;
  }
  ml::L2NormalizeInPlace(hist);
  return hist;
}

Status SiftBowExtractor::Fit(const std::vector<image::Image>& images,
                             const std::vector<int>& /*labels*/) {
  if (images.empty()) return Status::InvalidArgument("no training images");
  std::vector<std::vector<ml::FeatureVector>> descriptor_sets;
  descriptor_sets.reserve(images.size());
  for (const auto& img : images) {
    TVDP_ASSIGN_OR_RETURN(std::vector<SiftFeature> feats,
                          detector_.DetectAndDescribe(img));
    std::vector<ml::FeatureVector> descs;
    descs.reserve(feats.size());
    for (auto& f : feats) descs.push_back(std::move(f.descriptor));
    descriptor_sets.push_back(std::move(descs));
  }
  return encoder_.Fit(descriptor_sets);
}

Result<FeatureVector> SiftBowExtractor::Extract(
    const image::Image& img) const {
  if (!ready()) return Status::FailedPrecondition("extractor not fitted");
  TVDP_ASSIGN_OR_RETURN(std::vector<SiftFeature> feats,
                        detector_.DetectAndDescribe(img));
  std::vector<ml::FeatureVector> descs;
  descs.reserve(feats.size());
  for (auto& f : feats) descs.push_back(std::move(f.descriptor));
  return encoder_.Encode(descs);
}

}  // namespace tvdp::vision
