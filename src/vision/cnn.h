#ifndef TVDP_VISION_CNN_H_
#define TVDP_VISION_CNN_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/mlp.h"
#include "vision/feature.h"

namespace tvdp::vision {

/// CNN-based feature extractor, built from scratch in place of the
/// fine-tuned Caffe network of the paper's experiments.
///
/// Architecture: three convolution blocks with fixed filter banks —
/// the first mixes hand-designed edge/color-opponent kernels with seeded
/// random kernels, the deeper ones use seeded random (He-scaled) kernels —
/// each followed by ReLU and 2x2 max pooling. The head concatenates a
/// global average pool with a 2x2 spatial average-pool pyramid, giving a
/// dense "deep feature".
///
/// "Fine-tuning" (the transfer-learning step of Sec. VII-A) trains a
/// one-hidden-layer MLP on the deep features of a labelled corpus; after
/// fitting, Extract() returns the learned hidden-layer embedding, which is
/// what gives CNN features their edge over SIFT-BoW in Fig. 6. Random
/// convolutional features with a trained readout are a faithful small-scale
/// analogue of a fine-tuned pretrained network: the convolutional trunk is
/// generic and fixed, the task adaptation happens in the trained head.
class CnnFeatureExtractor : public TrainableFeatureExtractor {
 public:
  struct Options {
    /// Input is resized to input_size x input_size before the trunk.
    int input_size = 64;
    int conv1_filters = 12;
    int conv2_filters = 24;
    int conv3_filters = 32;
    /// Hidden width of the fine-tuning head (= output dim once fitted).
    int finetune_units = 64;
    int finetune_epochs = 60;
    uint64_t seed = 1234;
  };

  CnnFeatureExtractor() : CnnFeatureExtractor(Options()) {}
  explicit CnnFeatureExtractor(Options options);

  /// Fine-tunes the head on the labelled corpus. Labels are required.
  Status Fit(const std::vector<image::Image>& images,
             const std::vector<int>& labels) override;

  /// Returns the fine-tuned embedding when fitted, otherwise the raw deep
  /// feature (both L2-normalized).
  Result<FeatureVector> Extract(const image::Image& img) const override;

  size_t dim() const override;
  std::string name() const override { return "cnn"; }
  /// The raw (pre-fine-tuning) trunk is always usable.
  bool ready() const override { return true; }
  bool fine_tuned() const { return head_ != nullptr; }

  /// The raw trunk feature (before any fine-tuning head).
  Result<FeatureVector> ExtractRaw(const image::Image& img) const;

  /// Dimensionality of the raw trunk feature.
  size_t raw_dim() const;

 private:
  /// A [channels][h*w] activation tensor.
  struct Tensor {
    int channels = 0;
    int height = 0;
    int width = 0;
    std::vector<float> data;  // channel-major

    float at(int c, int x, int y) const {
      return data[(static_cast<size_t>(c) * height + y) * width + x];
    }
    float& at(int c, int x, int y) {
      return data[(static_cast<size_t>(c) * height + y) * width + x];
    }
  };

  /// 3x3 same-padding convolution + ReLU using `filters` laid out as
  /// [out][in][3*3], followed by 2x2 max pool.
  static Tensor ConvReluPool(const Tensor& in, const std::vector<float>& filters,
                             const std::vector<float>& bias, int out_channels);

  void InitFilters();
  Tensor ImageToTensor(const image::Image& img) const;

  Options options_;
  std::vector<float> f1_, b1_, f2_, b2_, f3_, b3_;
  /// Per-dimension moments of the raw trunk features on the fine-tuning
  /// corpus; Extract standardizes with these before applying the head
  /// (the scale-free trunk output needs whitening, as batch-norm would
  /// provide in a real network).
  ml::Dataset::Moments moments_;
  std::unique_ptr<ml::MlpClassifier> head_;
};

}  // namespace tvdp::vision

#endif  // TVDP_VISION_CNN_H_
