#include "vision/cnn.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "ml/dataset.h"

namespace tvdp::vision {
namespace {

/// Writes one hand-designed 3x3 kernel applied to input channel `in_ch`
/// of filter `out_ch` into the bank.
void SetKernel(std::vector<float>& bank, int out_ch, int in_channels,
               int in_ch, const float k[9]) {
  size_t base = (static_cast<size_t>(out_ch) * in_channels + in_ch) * 9;
  for (int i = 0; i < 9; ++i) bank[base + i] = k[i];
}

}  // namespace

CnnFeatureExtractor::CnnFeatureExtractor(Options options) : options_(options) {
  options_.input_size = std::max(options_.input_size, 16);
  options_.conv1_filters = std::max(options_.conv1_filters, 4);
  options_.conv2_filters = std::max(options_.conv2_filters, 4);
  options_.conv3_filters = std::max(options_.conv3_filters, 4);
  InitFilters();
}

void CnnFeatureExtractor::InitFilters() {
  Rng rng(options_.seed);
  auto he_init = [&](std::vector<float>& bank, int out_c, int in_c) {
    bank.assign(static_cast<size_t>(out_c) * in_c * 9, 0.0f);
    float scale = std::sqrt(2.0f / (in_c * 9));
    for (float& w : bank) w = static_cast<float>(rng.Normal(0, scale));
  };

  he_init(f1_, options_.conv1_filters, 3);
  b1_.assign(static_cast<size_t>(options_.conv1_filters), 0.0f);
  // First filters are hand-designed: luminance edges and color opponency,
  // the same primitives early layers of trained CNNs converge to.
  const float sobel_x[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  const float sobel_y[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
  const float diag[9] = {0, 1, 2, -1, 0, 1, -2, -1, 0};
  const float laplace[9] = {0, -1, 0, -1, 4, -1, 0, -1, 0};
  const float avg_third[9] = {0.11f, 0.11f, 0.11f, 0.11f, 0.11f, 0.11f,
                              0.11f, 0.11f, 0.11f};
  const float neg_third[9] = {-0.11f, -0.11f, -0.11f, -0.11f, -0.11f, -0.11f,
                              -0.11f, -0.11f, -0.11f};
  int n = options_.conv1_filters;
  // Filters 0-3: grayscale edge detectors (same kernel on all channels,
  // scaled by luma weights).
  const float* edges[4] = {sobel_x, sobel_y, diag, laplace};
  for (int f = 0; f < 4 && f < n; ++f) {
    float kr[9], kg[9], kb[9];
    for (int i = 0; i < 9; ++i) {
      kr[i] = 0.299f * edges[f][i];
      kg[i] = 0.587f * edges[f][i];
      kb[i] = 0.114f * edges[f][i];
    }
    SetKernel(f1_, f, 3, 0, kr);
    SetKernel(f1_, f, 3, 1, kg);
    SetKernel(f1_, f, 3, 2, kb);
  }
  // Filter 4: green-vs-red opponency (vegetation detector primitive).
  if (n > 4) {
    SetKernel(f1_, 4, 3, 0, neg_third);
    SetKernel(f1_, 4, 3, 1, avg_third);
    SetKernel(f1_, 4, 3, 2, neg_third);
  }
  // Filter 5: blue-vs-yellow opponency (tarp / sky primitive).
  if (n > 5) {
    SetKernel(f1_, 5, 3, 0, neg_third);
    SetKernel(f1_, 5, 3, 1, neg_third);
    SetKernel(f1_, 5, 3, 2, avg_third);
  }
  // Remaining conv1 filters keep their seeded random init.

  he_init(f2_, options_.conv2_filters, options_.conv1_filters);
  b2_.assign(static_cast<size_t>(options_.conv2_filters), 0.0f);
  he_init(f3_, options_.conv3_filters, options_.conv2_filters);
  b3_.assign(static_cast<size_t>(options_.conv3_filters), 0.0f);
}

CnnFeatureExtractor::Tensor CnnFeatureExtractor::ImageToTensor(
    const image::Image& img) const {
  image::Image input = img;
  if (img.width() != options_.input_size ||
      img.height() != options_.input_size) {
    auto resized = img.Resize(options_.input_size, options_.input_size);
    if (resized.ok()) input = std::move(resized).value();
  }
  Tensor t;
  t.channels = 3;
  t.width = input.width();
  t.height = input.height();
  t.data.resize(static_cast<size_t>(3) * t.width * t.height);
  for (int y = 0; y < t.height; ++y) {
    for (int x = 0; x < t.width; ++x) {
      const image::Rgb& p = input.at(x, y);
      t.at(0, x, y) = p.r / 255.0f - 0.5f;
      t.at(1, x, y) = p.g / 255.0f - 0.5f;
      t.at(2, x, y) = p.b / 255.0f - 0.5f;
    }
  }
  return t;
}

CnnFeatureExtractor::Tensor CnnFeatureExtractor::ConvReluPool(
    const Tensor& in, const std::vector<float>& filters,
    const std::vector<float>& bias, int out_channels) {
  // 3x3 same-padding convolution + ReLU.
  Tensor conv;
  conv.channels = out_channels;
  conv.width = in.width;
  conv.height = in.height;
  conv.data.assign(
      static_cast<size_t>(out_channels) * in.width * in.height, 0.0f);
  for (int oc = 0; oc < out_channels; ++oc) {
    for (int ic = 0; ic < in.channels; ++ic) {
      const float* k =
          &filters[(static_cast<size_t>(oc) * in.channels + ic) * 9];
      for (int y = 0; y < in.height; ++y) {
        int ym = std::max(y - 1, 0), yp = std::min(y + 1, in.height - 1);
        for (int x = 0; x < in.width; ++x) {
          int xm = std::max(x - 1, 0), xp = std::min(x + 1, in.width - 1);
          float acc = k[0] * in.at(ic, xm, ym) + k[1] * in.at(ic, x, ym) +
                      k[2] * in.at(ic, xp, ym) + k[3] * in.at(ic, xm, y) +
                      k[4] * in.at(ic, x, y) + k[5] * in.at(ic, xp, y) +
                      k[6] * in.at(ic, xm, yp) + k[7] * in.at(ic, x, yp) +
                      k[8] * in.at(ic, xp, yp);
          conv.at(oc, x, y) += acc;
        }
      }
    }
    // Bias + ReLU.
    for (int y = 0; y < conv.height; ++y) {
      for (int x = 0; x < conv.width; ++x) {
        float v = conv.at(oc, x, y) + bias[static_cast<size_t>(oc)];
        conv.at(oc, x, y) = v > 0 ? v : 0;
      }
    }
  }
  // 2x2 max pool, stride 2.
  Tensor out;
  out.channels = out_channels;
  out.width = std::max(conv.width / 2, 1);
  out.height = std::max(conv.height / 2, 1);
  out.data.resize(static_cast<size_t>(out_channels) * out.width * out.height);
  for (int c = 0; c < out_channels; ++c) {
    for (int y = 0; y < out.height; ++y) {
      for (int x = 0; x < out.width; ++x) {
        int x0 = 2 * x, y0 = 2 * y;
        int x1 = std::min(x0 + 1, conv.width - 1);
        int y1 = std::min(y0 + 1, conv.height - 1);
        out.at(c, x, y) = std::max(
            std::max(conv.at(c, x0, y0), conv.at(c, x1, y0)),
            std::max(conv.at(c, x0, y1), conv.at(c, x1, y1)));
      }
    }
  }
  return out;
}

size_t CnnFeatureExtractor::raw_dim() const {
  // Global average (C) + 2x2 average pyramid (4C).
  return static_cast<size_t>(options_.conv3_filters) * 5;
}

size_t CnnFeatureExtractor::dim() const {
  return fine_tuned() ? static_cast<size_t>(options_.finetune_units)
                      : raw_dim();
}

Result<FeatureVector> CnnFeatureExtractor::ExtractRaw(
    const image::Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  Tensor t = ImageToTensor(img);
  t = ConvReluPool(t, f1_, b1_, options_.conv1_filters);
  t = ConvReluPool(t, f2_, b2_, options_.conv2_filters);
  t = ConvReluPool(t, f3_, b3_, options_.conv3_filters);

  FeatureVector feat(raw_dim(), 0.0);
  int c3 = options_.conv3_filters;
  // Global average pool.
  for (int c = 0; c < c3; ++c) {
    double sum = 0;
    for (int y = 0; y < t.height; ++y) {
      for (int x = 0; x < t.width; ++x) sum += t.at(c, x, y);
    }
    feat[static_cast<size_t>(c)] = sum / (t.width * t.height);
  }
  // 2x2 spatial pyramid of average pools (keeps coarse layout: sky vs
  // sidewalk vs road matters for street scenes).
  int hw = std::max(t.width / 2, 1), hh = std::max(t.height / 2, 1);
  for (int qy = 0; qy < 2; ++qy) {
    for (int qx = 0; qx < 2; ++qx) {
      int x0 = qx * hw, y0 = qy * hh;
      int x1 = qx == 1 ? t.width : hw;
      int y1 = qy == 1 ? t.height : hh;
      for (int c = 0; c < c3; ++c) {
        double sum = 0;
        int count = 0;
        for (int y = y0; y < y1; ++y) {
          for (int x = x0; x < x1; ++x) {
            sum += t.at(c, x, y);
            ++count;
          }
        }
        feat[static_cast<size_t>(c3 + (qy * 2 + qx) * c3 + c)] =
            count > 0 ? sum / count : 0;
      }
    }
  }
  ml::L2NormalizeInPlace(feat);
  return feat;
}

Status CnnFeatureExtractor::Fit(const std::vector<image::Image>& images,
                                const std::vector<int>& labels) {
  if (images.empty()) return Status::InvalidArgument("no training images");
  if (images.size() != labels.size()) {
    return Status::InvalidArgument("images/labels size mismatch");
  }
  ml::Dataset data;
  for (size_t i = 0; i < images.size(); ++i) {
    TVDP_ASSIGN_OR_RETURN(FeatureVector f, ExtractRaw(images[i]));
    TVDP_RETURN_IF_ERROR(data.Add(std::move(f), labels[i]));
  }
  moments_ = data.ComputeMoments();
  data.Standardize(moments_);
  ml::MlpClassifier::Options mlp;
  mlp.hidden_units = options_.finetune_units;
  mlp.epochs = options_.finetune_epochs;
  mlp.seed = options_.seed;
  auto head = std::make_unique<ml::MlpClassifier>(mlp);
  TVDP_RETURN_IF_ERROR(head->Train(data));
  head_ = std::move(head);
  return Status::OK();
}

Result<FeatureVector> CnnFeatureExtractor::Extract(
    const image::Image& img) const {
  TVDP_ASSIGN_OR_RETURN(FeatureVector raw, ExtractRaw(img));
  if (!fine_tuned()) return raw;
  for (size_t d = 0; d < raw.size() && d < moments_.mean.size(); ++d) {
    double sd = moments_.stddev[d] > 1e-12 ? moments_.stddev[d] : 1.0;
    raw[d] = (raw[d] - moments_.mean[d]) / sd;
  }
  FeatureVector embedded = head_->HiddenActivations(raw);
  ml::L2NormalizeInPlace(embedded);
  return embedded;
}

}  // namespace tvdp::vision
