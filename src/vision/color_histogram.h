#ifndef TVDP_VISION_COLOR_HISTOGRAM_H_
#define TVDP_VISION_COLOR_HISTOGRAM_H_

#include <string>

#include "vision/feature.h"

namespace tvdp::vision {

/// HSV color histogram descriptor. Matches the paper's configuration
/// (Sec. VII-A): "images were processed in the HSV color space, and the
/// color histogram was divided into 20, 20, and 10 bins in H, S, and V" —
/// i.e. three marginal histograms concatenated into a 50-d vector, each
/// marginal L1-normalized.
class ColorHistogramExtractor : public FeatureExtractor {
 public:
  struct Options {
    int h_bins = 20;
    int s_bins = 20;
    int v_bins = 10;
  };

  ColorHistogramExtractor() : ColorHistogramExtractor(Options()) {}
  explicit ColorHistogramExtractor(Options options);

  Result<FeatureVector> Extract(const image::Image& img) const override;
  size_t dim() const override;
  std::string name() const override { return "color_histogram"; }

 private:
  Options options_;
};

}  // namespace tvdp::vision

#endif  // TVDP_VISION_COLOR_HISTOGRAM_H_
