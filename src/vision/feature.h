#ifndef TVDP_VISION_FEATURE_H_
#define TVDP_VISION_FEATURE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "image/image.h"
#include "ml/dataset.h"

namespace tvdp::vision {

/// Feature vectors reuse the ML representation so descriptors flow
/// directly into classifiers and indexes.
using ml::FeatureVector;

/// The visual-descriptor families of the TVDP data model (paper Sec. IV-A):
/// color histogram, SIFT-based bag of words, and CNN-based features.
enum class FeatureKind {
  kColorHistogram,
  kSiftBow,
  kCnn,
};

/// Stable display name, e.g. "sift_bow".
std::string FeatureKindName(FeatureKind kind);

/// Extracts a fixed-length feature vector from an image.
class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;

  /// Computes the descriptor for `img`.
  virtual Result<FeatureVector> Extract(const image::Image& img) const = 0;

  /// Output dimensionality (fixed once the extractor is ready).
  virtual size_t dim() const = 0;

  /// Short stable name, e.g. "cnn".
  virtual std::string name() const = 0;

  /// Whether Extract may be called (some extractors must be fitted first).
  virtual bool ready() const { return true; }
};

/// A feature extractor that must be fitted on a training corpus before use
/// (the SIFT-BoW dictionary, the CNN fine-tuning head).
class TrainableFeatureExtractor : public FeatureExtractor {
 public:
  /// Fits the extractor. `labels` is parallel to `images` and may be
  /// ignored by unsupervised extractors (BoW); supervised fine-tuning
  /// (CNN) uses it.
  virtual Status Fit(const std::vector<image::Image>& images,
                     const std::vector<int>& labels) = 0;
};

/// Extracts features for a batch of images, failing on the first error.
Result<std::vector<FeatureVector>> ExtractAll(
    const FeatureExtractor& extractor, const std::vector<image::Image>& images);

}  // namespace tvdp::vision

#endif  // TVDP_VISION_FEATURE_H_
