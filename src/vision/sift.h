#ifndef TVDP_VISION_SIFT_H_
#define TVDP_VISION_SIFT_H_

#include <vector>

#include "common/result.h"
#include "image/image.h"
#include "ml/dataset.h"

namespace tvdp::vision {

/// A detected scale-space keypoint.
struct SiftKeypoint {
  double x = 0;            ///< column, pixels, base-image coordinates
  double y = 0;            ///< row, pixels, base-image coordinates
  double scale = 1;        ///< sigma of the detection scale
  double orientation = 0;  ///< dominant gradient direction, radians
  double response = 0;     ///< |DoG| contrast at the extremum
};

/// A keypoint with its 128-d gradient-histogram descriptor.
struct SiftFeature {
  SiftKeypoint keypoint;
  ml::FeatureVector descriptor;  // 4x4 cells x 8 orientations = 128 dims
};

/// From-scratch simplified SIFT (Lowe 2004): Gaussian scale space,
/// difference-of-Gaussians extrema with contrast and edge-response
/// filtering, orientation assignment from a 36-bin gradient histogram,
/// and the classic 4x4x8 descriptor with trilinear-ish binning, clipped
/// at 0.2 and renormalized. This is the engineering method behind the
/// data model's SIFT-BoW visual descriptor.
class SiftDetector {
 public:
  struct Options {
    int num_octaves = 3;
    /// DoG levels per octave used for extrema (s); 2+s Gaussians built.
    int scales_per_octave = 3;
    double base_sigma = 1.6;
    /// Minimum |DoG| contrast for a keypoint (on [0,1] intensities).
    double contrast_threshold = 0.015;
    /// Maximum principal-curvature ratio (Lowe's r = 10).
    double edge_threshold = 10.0;
    /// Hard cap on keypoints per image (strongest kept); 0 = unlimited.
    int max_keypoints = 128;
  };

  SiftDetector() : SiftDetector(Options()) {}
  explicit SiftDetector(Options options) : options_(options) {}

  /// Detects keypoints and computes their descriptors.
  Result<std::vector<SiftFeature>> DetectAndDescribe(
      const image::Image& img) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// A single-channel float image used by the scale-space pipeline.
struct GrayImage {
  int width = 0;
  int height = 0;
  std::vector<float> data;  // row-major, [0,1]

  float at(int x, int y) const {
    return data[static_cast<size_t>(y) * width + x];
  }
  float& at(int x, int y) {
    return data[static_cast<size_t>(y) * width + x];
  }
};

/// Converts an RGB image to a GrayImage.
GrayImage ToGrayImage(const image::Image& img);

/// Separable Gaussian blur with the given sigma.
GrayImage GaussianBlur(const GrayImage& src, double sigma);

/// 2x downsampling (picks every other pixel).
GrayImage Downsample2x(const GrayImage& src);

}  // namespace tvdp::vision

#endif  // TVDP_VISION_SIFT_H_
