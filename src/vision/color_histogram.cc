#include "vision/color_histogram.h"

#include <algorithm>

namespace tvdp::vision {

ColorHistogramExtractor::ColorHistogramExtractor(Options options)
    : options_(options) {
  options_.h_bins = std::max(options_.h_bins, 1);
  options_.s_bins = std::max(options_.s_bins, 1);
  options_.v_bins = std::max(options_.v_bins, 1);
}

size_t ColorHistogramExtractor::dim() const {
  return static_cast<size_t>(options_.h_bins + options_.s_bins +
                             options_.v_bins);
}

Result<FeatureVector> ColorHistogramExtractor::Extract(
    const image::Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  FeatureVector feat(dim(), 0.0);
  double* h_hist = feat.data();
  double* s_hist = feat.data() + options_.h_bins;
  double* v_hist = s_hist + options_.s_bins;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      image::Hsv hsv = image::RgbToHsv(img.at(x, y));
      int hb = std::min(static_cast<int>(hsv.h / 360.0 * options_.h_bins),
                        options_.h_bins - 1);
      int sb = std::min(static_cast<int>(hsv.s * options_.s_bins),
                        options_.s_bins - 1);
      int vb = std::min(static_cast<int>(hsv.v * options_.v_bins),
                        options_.v_bins - 1);
      h_hist[std::max(hb, 0)] += 1.0;
      s_hist[std::max(sb, 0)] += 1.0;
      v_hist[std::max(vb, 0)] += 1.0;
    }
  }
  // Each marginal is L1-normalized so the three blocks contribute equally.
  double n = static_cast<double>(img.pixel_count());
  for (double& v : feat) v /= n;
  return feat;
}

}  // namespace tvdp::vision
