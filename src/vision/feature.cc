#include "vision/feature.h"

namespace tvdp::vision {

std::string FeatureKindName(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kColorHistogram: return "color_histogram";
    case FeatureKind::kSiftBow: return "sift_bow";
    case FeatureKind::kCnn: return "cnn";
  }
  return "unknown";
}

Result<std::vector<FeatureVector>> ExtractAll(
    const FeatureExtractor& extractor,
    const std::vector<image::Image>& images) {
  std::vector<FeatureVector> out;
  out.reserve(images.size());
  for (const auto& img : images) {
    TVDP_ASSIGN_OR_RETURN(FeatureVector f, extractor.Extract(img));
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace tvdp::vision
