#include "query/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "storage/catalog.h"
#include "storage/tvdp_schema.h"

namespace tvdp::query {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;
namespace tables = storage::tables;

namespace {

/// Rows per Next() batch. Large enough that virtual-call overhead is
/// negligible, small enough that streaming operators (Limit over a
/// non-visual query) terminate early with little wasted work.
constexpr size_t kBatchSize = 256;

/// Below this many candidates a hybrid verification runs sequentially —
/// scheduling would cost more than the verification itself.
constexpr size_t kParallelVerifyMin = 64;

/// Below this many kNN candidates the exact-distance re-rank runs inline.
constexpr size_t kParallelKnnRerankMin = 64;

std::vector<QueryHit> ToHits(const std::vector<index::RecordId>& ids) {
  std::vector<QueryHit> out;
  out.reserve(ids.size());
  for (index::RecordId id : ids) out.push_back(QueryHit{id, 0, 0});
  return out;
}

/// Annotates a failed-context status with where the query stopped and how
/// far it got, e.g. "request deadline exceeded during hybrid verify
/// (120/400 candidates)". Partial results themselves are discarded; only
/// this progress metadata escapes.
Status ContextError(const Status& s, const char* stage, size_t done,
                    size_t total) {
  return Status(s.code(), StrFormat("%s during %s (%zu/%zu candidates)",
                                    s.message().c_str(), stage, done, total));
}

Result<int64_t> LookupTypeId(const AccessPaths& access,
                             const CategoricalPredicate& pred) {
  const Table* cls = FindTable(access, tables::kImageContentClassification);
  const Table* types =
      FindTable(access, tables::kImageContentClassificationTypes);
  if (!cls || !types) {
    return Status::FailedPrecondition("classification tables missing");
  }
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> cls_rows,
                        cls->FindBy("name", Value(pred.classification)));
  if (cls_rows.empty()) {
    return Status::NotFound("no classification named " + pred.classification);
  }
  int64_t cls_id = cls_rows[0][0].AsInt64();
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> type_rows,
                        types->FindBy("classification_id", Value(cls_id)));
  const storage::Schema& ts = types->schema();
  for (const Row& r : type_rows) {
    if (r[static_cast<size_t>(ts.ColumnIndex("label"))].AsString() ==
        pred.label) {
      return r[0].AsInt64();
    }
  }
  return Status::NotFound("no label " + pred.label + " in " +
                          pred.classification);
}

}  // namespace

void DedupHitsById(std::vector<QueryHit>* hits) {
  std::unordered_set<int64_t> seen;
  seen.reserve(hits->size());
  size_t w = 0;
  for (size_t r = 0; r < hits->size(); ++r) {
    if (seen.insert((*hits)[r].image_id).second) {
      (*hits)[w++] = (*hits)[r];
    }
  }
  hits->resize(w);
}

Result<std::vector<QueryHit>> EvalSpatialRange(const AccessPaths& access,
                                               const geo::BoundingBox& box,
                                               const RequestContext* ctx) {
  if (box.IsEmpty()) return Status::InvalidArgument("empty query box");
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  // Prefer FOV semantics when FOVs exist; union with camera-point hits so
  // images without FOV metadata still surface.
  std::set<index::RecordId> ids;
  std::vector<index::RecordId> fov_hits = access.fovs->RangeSearch(box, ctx);
  if (ctx) {
    Status s = ctx->Check();
    if (!s.ok()) {
      return ContextError(s, "spatial range refine", fov_hits.size(),
                          fov_hits.size());
    }
  }
  for (index::RecordId id : fov_hits) ids.insert(id);
  for (index::RecordId id : access.points->RangeSearch(box)) ids.insert(id);
  return ToHits(std::vector<index::RecordId>(ids.begin(), ids.end()));
}

Result<std::vector<QueryHit>> EvalSpatialKnn(const AccessPaths& access,
                                             const geo::GeoPoint& p, int k,
                                             const RequestContext* ctx) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  // The R-tree orders candidates by box min-distance in *degree* space,
  // where a degree of longitude counts the same as a degree of latitude;
  // away from the equator that misorders near-ties. Over-fetch by degree
  // distance, then re-rank the candidates by exact geodesic distance,
  // fanning the distance computations (each a catalog row read + haversine)
  // out across the pool when the set is large.
  int fetch = k + k / 2 + 8;
  std::vector<index::RecordId> ids = access.points->KNearest(p, fetch);
  const Table* images = FindTable(access, tables::kImages);
  if (!images) return Status::FailedPrecondition("images table missing");
  const storage::Schema& schema = images->schema();
  const size_t lat_idx = static_cast<size_t>(schema.ColumnIndex("lat"));
  const size_t lon_idx = static_cast<size_t>(schema.ColumnIndex("lon"));
  // Columnar fast path: when the hot-column arrays cover the whole table,
  // the re-rank reads two packed values per candidate instead of
  // materializing a row. A columnar miss (or a stale columnar, sizes
  // differing) falls back to row storage so dangling candidate ids keep
  // their exact error semantics.
  const storage::ColumnarImages* ci =
      access.col_images && access.col_images->size() == images->size()
          ? access.col_images
          : nullptr;
  std::vector<std::pair<double, index::RecordId>> ranked(ids.size());
  auto rank_span = [&](size_t begin, size_t end) -> Status {
    for (size_t i = begin; i < end; ++i) {
      geo::GeoPoint loc;
      ptrdiff_t slot = ci ? ci->Find(ids[i]) : -1;
      if (slot >= 0) {
        loc = geo::GeoPoint{ci->lat(static_cast<size_t>(slot)),
                            ci->lon(static_cast<size_t>(slot))};
      } else {
        TVDP_ASSIGN_OR_RETURN(Row img, images->Get(ids[i]));
        loc = geo::GeoPoint{img[lat_idx].AsDouble(), img[lon_idx].AsDouble()};
      }
      ranked[i] = {geo::HaversineMeters(p, loc), ids[i]};
    }
    return Status::OK();
  };
  if (ctx && ranked.size() >= kParallelKnnRerankMin) {
    Status s = access.pool->ParallelFor(*ctx, ranked.size(), 16, rank_span);
    if (!s.ok()) {
      if (s.code() == StatusCode::kDeadlineExceeded ||
          s.code() == StatusCode::kCancelled) {
        return ContextError(s, "spatial kNN re-rank", 0, ranked.size());
      }
      return s;
    }
  } else if (ranked.size() >= kParallelKnnRerankMin) {
    TVDP_RETURN_IF_ERROR(access.pool->ParallelFor(ranked.size(), 16, rank_span));
  } else {
    if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
    TVDP_RETURN_IF_ERROR(rank_span(0, ranked.size()));
  }
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > static_cast<size_t>(k)) {
    ranked.resize(static_cast<size_t>(k));
  }
  std::vector<QueryHit> out;
  out.reserve(ranked.size());
  for (const auto& [dist, id] : ranked) out.push_back(QueryHit{id, 0, dist});
  return out;
}

Result<std::vector<QueryHit>> EvalVisibleAt(const AccessPaths& access,
                                            const geo::GeoPoint& p,
                                            const RequestContext* ctx) {
  if (!geo::IsValid(p)) return Status::InvalidArgument("invalid point");
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  std::vector<index::RecordId> hits = access.fovs->PointQuery(p, ctx);
  if (ctx) {
    Status s = ctx->Check();
    if (!s.ok()) {
      return ContextError(s, "FOV point refine", hits.size(), hits.size());
    }
  }
  return ToHits(hits);
}

Result<std::vector<QueryHit>> EvalVisualTopK(const AccessPaths& access,
                                             const std::string& kind,
                                             const ml::FeatureVector& feature,
                                             int k, const RequestContext* ctx,
                                             const QueryBudget& budget) {
  if (feature.empty()) return Status::InvalidArgument("empty feature vector");
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  auto it = access.lsh->find(kind);
  if (it == access.lsh->end()) {
    return Status::NotFound("no feature index for kind: " + kind);
  }
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  auto ranked = it->second->KNearest(feature, k, ctx, budget.lsh_probes);
  if (ctx) {
    // The LSH returns whatever it ranked before the context failed;
    // discard it — partial top-k lists are misleading.
    Status s = ctx->Check();
    if (!s.ok()) {
      return ContextError(s, "LSH probe/rank", ranked.size(), ranked.size());
    }
  }
  std::vector<QueryHit> out;
  for (const auto& [id, dist] : ranked) {
    out.push_back(QueryHit{id, dist, dist});
  }
  DedupHitsById(&out);
  return out;
}

Result<std::vector<QueryHit>> EvalVisualThreshold(
    const AccessPaths& access, const std::string& kind,
    const ml::FeatureVector& feature, double threshold,
    const RequestContext* ctx, const QueryBudget& budget) {
  if (feature.empty()) return Status::InvalidArgument("empty feature vector");
  if (threshold < 0) return Status::InvalidArgument("negative visual threshold");
  auto it = access.lsh->find(kind);
  if (it == access.lsh->end()) {
    return Status::NotFound("no feature index for kind: " + kind);
  }
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  auto ranked = it->second->RangeSearch(feature, threshold, ctx,
                                        budget.lsh_probes);
  if (ctx) {
    Status s = ctx->Check();
    if (!s.ok()) {
      return ContextError(s, "LSH probe/rank", ranked.size(), ranked.size());
    }
  }
  std::vector<QueryHit> out;
  for (const auto& [id, dist] : ranked) {
    out.push_back(QueryHit{id, dist, dist});
  }
  DedupHitsById(&out);
  return out;
}

Result<std::vector<QueryHit>> EvalCategorical(
    const AccessPaths& access, const CategoricalPredicate& pred) {
  TVDP_ASSIGN_OR_RETURN(int64_t type_id, LookupTypeId(access, pred));
  const Table* ann = FindTable(access, tables::kImageContentAnnotation);
  if (!ann) return Status::FailedPrecondition("annotation table missing");
  std::set<index::RecordId> ids;
  // Columnar fast path: the categorical scan touches exactly the hot
  // columns (type id, confidence, source, image id), so when they cover
  // the whole table the probe never materializes a row.
  const storage::ColumnarAnnotations* ca =
      access.col_annotations && access.col_annotations->size() == ann->size()
          ? access.col_annotations
          : nullptr;
  if (ca) {
    for (size_t i = 0; i < ca->size(); ++i) {
      if (ca->type_id(i) != type_id) continue;
      if (ca->confidence(i) < pred.min_confidence) continue;
      if (!pred.source.empty() && ca->source(i) != pred.source) continue;
      ids.insert(ca->image_id(i));
    }
    return ToHits(std::vector<index::RecordId>(ids.begin(), ids.end()));
  }
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        ann->FindBy("type_id", Value(type_id)));
  const storage::Schema& as = ann->schema();
  size_t conf_idx = static_cast<size_t>(as.ColumnIndex("confidence"));
  size_t src_idx = static_cast<size_t>(as.ColumnIndex("annotation_source"));
  size_t img_idx = static_cast<size_t>(as.ColumnIndex("image_id"));
  for (const Row& r : rows) {
    if (r[conf_idx].AsDouble() < pred.min_confidence) continue;
    if (!pred.source.empty() && r[src_idx].AsString() != pred.source) continue;
    ids.insert(r[img_idx].AsInt64());
  }
  return ToHits(std::vector<index::RecordId>(ids.begin(), ids.end()));
}

Result<std::vector<QueryHit>> EvalTextual(const AccessPaths& access,
                                          const TextualPredicate& pred) {
  if (pred.keywords.empty()) {
    return Status::InvalidArgument("no keywords given");
  }
  std::vector<std::string> terms;
  for (const auto& kw : pred.keywords) {
    std::vector<std::string> toks = TokenizeWords(kw);
    if (toks.empty()) return Status::InvalidArgument("empty keyword");
    for (auto& t : toks) terms.push_back(std::move(t));
  }
  std::vector<index::RecordId> ids = pred.mode == TextualPredicate::Mode::kAnd
                                         ? access.keywords->QueryAnd(terms)
                                         : access.keywords->QueryOr(terms);
  return ToHits(ids);
}

Result<std::vector<QueryHit>> EvalTemporal(const AccessPaths& access,
                                           Timestamp begin, Timestamp end) {
  // Boundary contract: [begin, end] inclusive on both ends; an inverted
  // range is a caller error, never an unspecified scan.
  if (begin > end) {
    return Status::InvalidArgument("temporal range inverted: begin after end");
  }
  return ToHits(access.temporal->RangeSearch(begin, end));
}

namespace {

/// Finds the spine node (first-child chain) with the given operator name.
PlanNode* FindSpineNode(PlanNode* root, const char* op) {
  for (PlanNode* n = root; n != nullptr;
       n = n->children.empty() ? nullptr : &n->children[0]) {
    if (n->op == op) return n;
  }
  return nullptr;
}

/// Leaf operator: runs the seed probe on the first pull, then streams the
/// probe result out in batches.
class SeedProbeOp : public Operator {
 public:
  SeedProbeOp(const AccessPaths& access, const HybridQuery& q,
              const QueryPlan& plan, PlanNode* node)
      : access_(access), q_(q), plan_(plan), node_(node) {}

  Result<std::optional<std::vector<QueryHit>>> Next(
      const RequestContext* ctx) override {
    if (!probed_) {
      probed_ = true;
      TVDP_ASSIGN_OR_RETURN(hits_, Probe(ctx));
      if (node_) node_->actual_rows = static_cast<int64_t>(hits_.size());
    }
    if (pos_ >= hits_.size()) return std::optional<std::vector<QueryHit>>();
    size_t end = std::min(pos_ + kBatchSize, hits_.size());
    std::vector<QueryHit> batch(hits_.begin() + static_cast<ptrdiff_t>(pos_),
                                hits_.begin() + static_cast<ptrdiff_t>(end));
    pos_ = end;
    return std::optional<std::vector<QueryHit>>(std::move(batch));
  }

 private:
  Result<std::vector<QueryHit>> Probe(const RequestContext* ctx) const {
    const std::string& seed = plan_.seed_family;
    if (seed == "spatial") {
      switch (q_.spatial->kind) {
        case SpatialPredicate::Kind::kRange:
          return EvalSpatialRange(access_, q_.spatial->range, ctx);
        case SpatialPredicate::Kind::kKnn:
          return EvalSpatialKnn(access_, q_.spatial->point, q_.spatial->k, ctx);
        case SpatialPredicate::Kind::kVisibleAt:
          return EvalVisibleAt(access_, q_.spatial->point, ctx);
      }
    }
    if (seed == "visual") {
      if (q_.visual->kind == VisualPredicate::Kind::kTopK) {
        return EvalVisualTopK(access_, q_.visual->feature_kind,
                              q_.visual->feature,
                              Planner::VisualTopKFetch(*q_.visual, plan_.budget),
                              ctx, plan_.budget);
      }
      return EvalVisualThreshold(access_, q_.visual->feature_kind,
                                 q_.visual->feature, q_.visual->threshold, ctx,
                                 plan_.budget);
    }
    if (seed == "categorical") return EvalCategorical(access_, *q_.categorical);
    if (seed == "textual") return EvalTextual(access_, *q_.textual);
    return EvalTemporal(access_, q_.temporal->begin, q_.temporal->end);
  }

  const AccessPaths& access_;
  const HybridQuery& q_;
  const QueryPlan& plan_;
  PlanNode* node_;
  bool probed_ = false;
  std::vector<QueryHit> hits_;
  size_t pos_ = 0;
};

/// Streaming dedup + budget cap. An image that matched the seed through
/// several index entries (several stored vectors, repeated keywords, ...)
/// must be verified — and returned — at most once. Once the cap is
/// reached, the remaining input is drained only to count the distinct
/// candidates that were cut (the plan reports "cap=kept/total").
class DedupCapOp : public Operator {
 public:
  DedupCapOp(std::unique_ptr<Operator> child, QueryPlan* plan, PlanNode* node)
      : child_(std::move(child)), plan_(plan), node_(node) {}

  Result<std::optional<std::vector<QueryHit>>> Next(
      const RequestContext* ctx) override {
    const size_t cap = plan_->budget.max_candidates;
    while (!done_) {
      TVDP_ASSIGN_OR_RETURN(auto batch, child_->Next(ctx));
      if (!batch) {
        done_ = true;
        break;
      }
      std::vector<QueryHit> out;
      for (QueryHit& h : *batch) {
        if (!seen_.insert(h.image_id).second) continue;
        ++distinct_;
        if (cap > 0 && emitted_ >= cap) continue;  // counting cut candidates
        ++emitted_;
        out.push_back(h);
      }
      if (!out.empty()) return std::optional<std::vector<QueryHit>>(std::move(out));
    }
    if (!finalized_) {
      finalized_ = true;
      plan_->seed_candidates = emitted_;
      plan_->capped_from = distinct_ > emitted_ ? distinct_ : 0;
      if (node_) node_->actual_rows = static_cast<int64_t>(emitted_);
    }
    return std::optional<std::vector<QueryHit>>();
  }

 private:
  std::unique_ptr<Operator> child_;
  QueryPlan* plan_;
  PlanNode* node_;
  std::unordered_set<int64_t> seen_;
  size_t distinct_ = 0;
  size_t emitted_ = 0;
  bool done_ = false;
  bool finalized_ = false;
};

/// Pipeline breaker: drains the candidate stream, publishes the plan (the
/// legacy plan string becomes observable at this instant — before any
/// verification work, so a query cancelled mid-verify still reports its
/// plan), materializes the set-valued conjuncts once, then verifies every
/// candidate — in parallel when the set is large. Survivors stream out in
/// candidate order with their exact visual distance filled in.
class VerifyOp : public Operator {
 public:
  VerifyOp(std::unique_ptr<Operator> child, const AccessPaths& access,
           const HybridQuery& q, QueryPlan* plan, PlanNode* node,
           const Executor::PlanReadyFn& on_plan_ready)
      : child_(std::move(child)),
        access_(access),
        q_(q),
        plan_(plan),
        node_(node),
        on_plan_ready_(on_plan_ready) {}

  Result<std::optional<std::vector<QueryHit>>> Next(
      const RequestContext* ctx) override {
    if (!ran_) {
      ran_ = true;
      TVDP_RETURN_IF_ERROR(RunVerify(ctx));
    }
    if (pos_ >= kept_.size()) return std::optional<std::vector<QueryHit>>();
    size_t end = std::min(pos_ + kBatchSize, kept_.size());
    std::vector<QueryHit> batch(kept_.begin() + static_cast<ptrdiff_t>(pos_),
                                kept_.begin() + static_cast<ptrdiff_t>(end));
    pos_ = end;
    return std::optional<std::vector<QueryHit>>(std::move(batch));
  }

 private:
  Status RunVerify(const RequestContext* ctx) {
    std::vector<QueryHit> candidates;
    while (true) {
      TVDP_ASSIGN_OR_RETURN(auto batch, child_->Next(ctx));
      if (!batch) break;
      candidates.insert(candidates.end(), batch->begin(), batch->end());
    }
    if (on_plan_ready_) on_plan_ready_(*plan_);

    // Materialize set-valued conjuncts once — their membership check was
    // a full index probe per candidate in the pre-planner engine; one
    // probe shared by all candidates is the materialize-probe strategy's
    // payoff. Materialization is lazy: an empty candidate list does no
    // probing (and surfaces no probe errors), matching the old
    // per-candidate behaviour.
    if (!candidates.empty()) {
      TVDP_RETURN_IF_ERROR(Materialize());
    }

    std::vector<char> keep(candidates.size(), 1);
    std::vector<double> distances(candidates.size(), 0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      distances[i] = candidates[i].visual_distance;
    }
    std::atomic<size_t> verified{0};
    auto verify_span = [&](size_t chunk_begin, size_t chunk_end) -> Status {
      for (size_t i = chunk_begin; i < chunk_end; ++i) {
        TVDP_ASSIGN_OR_RETURN(
            bool ok_hit, VerifyOne(candidates[i].image_id, &distances[i]));
        keep[i] = ok_hit ? 1 : 0;
        verified.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    };
    Status verify_status = Status::OK();
    if (ctx && candidates.size() >= kParallelVerifyMin) {
      verify_status =
          access_.pool->ParallelFor(*ctx, candidates.size(), 16, verify_span);
    } else if (candidates.size() >= kParallelVerifyMin) {
      verify_status =
          access_.pool->ParallelFor(candidates.size(), 16, verify_span);
    } else {
      if (ctx) verify_status = ctx->Check();
      if (verify_status.ok()) {
        verify_status = verify_span(0, candidates.size());
      }
    }
    if (!verify_status.ok()) {
      if (verify_status.code() == StatusCode::kDeadlineExceeded ||
          verify_status.code() == StatusCode::kCancelled) {
        return ContextError(verify_status, "hybrid verify",
                            verified.load(std::memory_order_relaxed),
                            candidates.size());
      }
      return verify_status;
    }
    kept_.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!keep[i]) continue;
      kept_.push_back(QueryHit{candidates[i].image_id, distances[i],
                               distances[i]});
    }
    if (node_) node_->actual_rows = static_cast<int64_t>(kept_.size());
    return Status::OK();
  }

  Status Materialize() {
    for (size_t i = 1; i < plan_->conjuncts.size(); ++i) {
      const ConjunctPlan& c = plan_->conjuncts[i];
      if (c.strategy != ConjunctPlan::Strategy::kMaterializeProbe) continue;
      Result<std::vector<QueryHit>> probed =
          c.family == "categorical" ? EvalCategorical(access_, *q_.categorical)
          : c.family == "textual"
              ? EvalTextual(access_, *q_.textual)
              : EvalVisibleAt(access_, q_.spatial->point, nullptr);
      TVDP_RETURN_IF_ERROR(probed.status());
      std::unordered_set<int64_t>& ids = materialized_[c.family];
      ids.reserve(probed->size());
      for (const QueryHit& h : *probed) ids.insert(h.image_id);
      // Record the probe's actual cardinality on its side-node.
      if (node_) {
        for (size_t ci = 1; ci < node_->children.size(); ++ci) {
          PlanNode& side = node_->children[ci];
          if (side.op == "MaterializeProbe" &&
              side.detail.rfind(c.family + ":", 0) == 0) {
            side.actual_rows = static_cast<int64_t>(probed->size());
          }
        }
      }
    }
    return Status::OK();
  }

  /// Verifies one candidate against every non-seed conjunct, in the
  /// plan's evaluation order (cheapest rejector first). The temporal and
  /// spatial checks read the columnar hot columns when current; a columnar
  /// miss (or stale columnar) fetches the image row, so a dangling
  /// candidate id is a storage error surfaced to the caller, never
  /// silently dropped.
  Result<bool> VerifyOne(RowId id, double* visual_distance) {
    const Table* images = FindTable(access_, tables::kImages);
    if (!images) return Status::FailedPrecondition("images table missing");
    const storage::ColumnarImages* ci =
        access_.col_images && access_.col_images->size() == images->size()
            ? access_.col_images
            : nullptr;
    ptrdiff_t slot = ci ? ci->Find(id) : -1;
    std::optional<Row> img;
    if (slot < 0) {
      TVDP_ASSIGN_OR_RETURN(Row row, images->Get(id));
      img = std::move(row);
    }
    const storage::Schema& schema = images->schema();
    for (size_t i = 1; i < plan_->conjuncts.size(); ++i) {
      const ConjunctPlan& c = plan_->conjuncts[i];
      if (c.strategy == ConjunctPlan::Strategy::kMaterializeProbe) {
        auto it = materialized_.find(c.family);
        if (it == materialized_.end() || it->second.count(id) == 0) {
          return false;
        }
        continue;
      }
      if (c.family == "temporal") {
        Timestamp t =
            slot >= 0
                ? access_.col_images->captured_at(static_cast<size_t>(slot))
                : (*img)[static_cast<size_t>(
                             schema.ColumnIndex("timestamp_capturing"))]
                      .AsInt64();
        if (t < q_.temporal->begin || t > q_.temporal->end) return false;
      } else if (c.family == "spatial") {
        // Only the range kind reaches here: kNN always seeds, and
        // visible-at is a materialize-probe.
        geo::GeoPoint loc =
            slot >= 0
                ? geo::GeoPoint{access_.col_images->lat(
                                    static_cast<size_t>(slot)),
                                access_.col_images->lon(
                                    static_cast<size_t>(slot))}
                : geo::GeoPoint{
                      (*img)[static_cast<size_t>(schema.ColumnIndex("lat"))]
                          .AsDouble(),
                      (*img)[static_cast<size_t>(schema.ColumnIndex("lon"))]
                          .AsDouble()};
        if (q_.spatial->kind == SpatialPredicate::Kind::kRange &&
            !q_.spatial->range.Contains(loc)) {
          return false;
        }
      } else if (c.family == "visual") {
        // Exact feature distance from the stored feature rows. An image
        // can store several vectors of the same kind; membership and the
        // reported distance use the *closest* one — the same convention
        // as the visual seed path, so plan order cannot change results.
        const Table* feats = FindTable(access_, tables::kImageVisualFeatures);
        if (!feats) {
          return Status::FailedPrecondition("features table missing");
        }
        TVDP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              feats->FindBy("image_id", Value(id)));
        const storage::Schema& fs = feats->schema();
        size_t kind_idx = static_cast<size_t>(fs.ColumnIndex("feature_kind"));
        size_t feat_idx = static_cast<size_t>(fs.ColumnIndex("feature"));
        double best = std::numeric_limits<double>::max();
        bool found = false;
        for (const Row& r : rows) {
          if (r[kind_idx].AsString() != q_.visual->feature_kind) continue;
          double d =
              ml::L2Distance(r[feat_idx].AsFloatVector(), q_.visual->feature);
          if (!found || d < best) best = d;
          found = true;
        }
        if (!found) return false;
        if (q_.visual->kind == VisualPredicate::Kind::kThreshold &&
            best > q_.visual->threshold) {
          return false;
        }
        if (visual_distance) *visual_distance = best;
      }
    }
    return true;
  }

  std::unique_ptr<Operator> child_;
  const AccessPaths& access_;
  const HybridQuery& q_;
  QueryPlan* plan_;
  PlanNode* node_;
  const Executor::PlanReadyFn& on_plan_ready_;
  std::map<std::string, std::unordered_set<int64_t>> materialized_;
  bool ran_ = false;
  std::vector<QueryHit> kept_;
  size_t pos_ = 0;
};

/// Streaming head: emits at most `n` rows, then stops pulling its input.
/// Implements both TopK (over the verified, candidate-ordered stream — the
/// visual seed emits candidates in ascending distance, so the first k
/// survivors are the top k) and Limit for non-visual queries.
class HeadOp : public Operator {
 public:
  HeadOp(std::unique_ptr<Operator> child, size_t n, PlanNode* node)
      : child_(std::move(child)), remaining_(n), node_(node) {}

  Result<std::optional<std::vector<QueryHit>>> Next(
      const RequestContext* ctx) override {
    if (remaining_ == 0) {
      Finalize();
      return std::optional<std::vector<QueryHit>>();
    }
    TVDP_ASSIGN_OR_RETURN(auto batch, child_->Next(ctx));
    if (!batch) {
      remaining_ = 0;
      Finalize();
      return std::optional<std::vector<QueryHit>>();
    }
    if (batch->size() > remaining_) batch->resize(remaining_);
    remaining_ -= batch->size();
    emitted_ += batch->size();
    return batch;
  }

 private:
  void Finalize() {
    if (node_ && node_->actual_rows < 0) {
      node_->actual_rows = static_cast<int64_t>(emitted_);
    }
  }

  std::unique_ptr<Operator> child_;
  size_t remaining_;
  size_t emitted_ = 0;
  PlanNode* node_;
};

/// Pipeline breaker: materializes its input and emits it ordered by
/// (score ascending, image id) — the cross-family result convention.
class RerankOp : public Operator {
 public:
  RerankOp(std::unique_ptr<Operator> child, PlanNode* node)
      : child_(std::move(child)), node_(node) {}

  Result<std::optional<std::vector<QueryHit>>> Next(
      const RequestContext* ctx) override {
    if (!ran_) {
      ran_ = true;
      while (true) {
        TVDP_ASSIGN_OR_RETURN(auto batch, child_->Next(ctx));
        if (!batch) break;
        rows_.insert(rows_.end(), batch->begin(), batch->end());
      }
      std::sort(rows_.begin(), rows_.end(),
                [](const QueryHit& a, const QueryHit& b) {
                  if (a.visual_distance != b.visual_distance) {
                    return a.visual_distance < b.visual_distance;
                  }
                  return a.image_id < b.image_id;
                });
      if (node_) node_->actual_rows = static_cast<int64_t>(rows_.size());
    }
    if (pos_ >= rows_.size()) return std::optional<std::vector<QueryHit>>();
    size_t end = std::min(pos_ + kBatchSize, rows_.size());
    std::vector<QueryHit> batch(rows_.begin() + static_cast<ptrdiff_t>(pos_),
                                rows_.begin() + static_cast<ptrdiff_t>(end));
    pos_ = end;
    return std::optional<std::vector<QueryHit>>(std::move(batch));
  }

 private:
  std::unique_ptr<Operator> child_;
  PlanNode* node_;
  bool ran_ = false;
  std::vector<QueryHit> rows_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<QueryHit>> Executor::Run(const AccessPaths& access,
                                            const HybridQuery& q,
                                            QueryPlan* plan,
                                            const RequestContext* ctx,
                                            const PlanReadyFn& on_plan_ready) {
  // Assemble the operator chain along the plan's spine, innermost first.
  std::unique_ptr<Operator> op = std::make_unique<SeedProbeOp>(
      access, q, *plan, FindSpineNode(&plan->root, "IndexProbe"));
  op = std::make_unique<DedupCapOp>(std::move(op), plan,
                                    FindSpineNode(&plan->root, "Dedup"));
  op = std::make_unique<VerifyOp>(std::move(op), access, q, plan,
                                  FindSpineNode(&plan->root, "Verify"),
                                  on_plan_ready);
  if (PlanNode* topk = FindSpineNode(&plan->root, "TopK")) {
    op = std::make_unique<HeadOp>(std::move(op),
                                  static_cast<size_t>(q.visual->k), topk);
  }
  if (PlanNode* rerank = FindSpineNode(&plan->root, "Rerank")) {
    op = std::make_unique<RerankOp>(std::move(op), rerank);
  }
  if (PlanNode* limit = FindSpineNode(&plan->root, "Limit")) {
    op = std::make_unique<HeadOp>(std::move(op), static_cast<size_t>(q.limit),
                                  limit);
  }

  std::vector<QueryHit> out;
  while (true) {
    TVDP_ASSIGN_OR_RETURN(auto batch, op->Next(ctx));
    if (!batch) break;
    out.insert(out.end(), batch->begin(), batch->end());
  }
  plan->executed = true;
  return out;
}

}  // namespace tvdp::query
