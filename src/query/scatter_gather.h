#ifndef TVDP_QUERY_SCATTER_GATHER_H_
#define TVDP_QUERY_SCATTER_GATHER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/context.h"
#include "common/json.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "geo/bbox.h"
#include "query/plan.h"
#include "query/query.h"

namespace tvdp::query {

/// What happened to one shard during a scatter-gather round.
///   probed       — the shard answered (its rows are in the merged result);
///   migrating    — the shard answered while a cell migration touching it
///                  was in flight; the result is still exact (both migration
///                  endpoints serve the moving rows and the merge dedups by
///                  image id) but the outcome is surfaced so operators can
///                  see rebalancing traffic;
///   pruned       — skipped because the query provably selects nothing
///                  there (region disjoint or a provably-empty estimate);
///   shed         — skipped by degraded-mode load shedding (lowest
///                  estimated selectivity goes first);
///   breaker_open — skipped because the shard's circuit breaker blocked it
///                  (and no replica could stand in);
///   failed       — probed (possibly with hedged retries) and still failed;
///   failed_over  — the primary was unreachable (probe failed or breaker
///                  blocked it) but a replica answered in its place; the
///                  shard's rows are in the merged result.
/// `pruned`, `migrating` and `failed_over` keep the result exact; the other
/// skip/fail outcomes make the response a partial result, which coverage
/// reports.
enum class ShardOutcome {
  kProbed,
  kPruned,
  kShed,
  kBreakerOpen,
  kFailed,
  kMigrating,
  kFailedOver,
};

/// Stable display name, e.g. "breaker_open".
std::string ShardOutcomeName(ShardOutcome o);

/// Per-shard accounting of one scatter-gather execution.
struct ShardReport {
  int shard = 0;
  ShardOutcome outcome = ShardOutcome::kProbed;
  /// The terminal error for kFailed (OK otherwise).
  Status error = Status::OK();
  /// Wall-clock spent probing (0 for skipped shards).
  double latency_ms = 0;
  /// Probe attempts made (0 for skipped shards; > 1 means hedged retries).
  int attempts = 0;
  /// Rows the shard contributed to the merge.
  size_t rows = 0;
  /// The planner's cardinality estimate used for shedding; -1 = unknown.
  double estimated_rows = -1;
  /// Replica index that served this probe (-1 = the primary). Set for
  /// kFailedOver and for balanced replica reads.
  int replica = -1;
  /// False when the primary itself was never probed (balanced replica read
  /// or a breaker-open failover) — breaker bookkeeping must then leave the
  /// primary's circuit untouched.
  bool primary_probed = true;
};

/// The partial-result contract of a sharded response: which shards were
/// probed, which were skipped and why, and which failed. A response is
/// `complete()` when every shard either answered or was pruned by an exact
/// emptiness proof — i.e. the result set equals what an unsharded engine
/// would have returned.
struct Coverage {
  int total_shards = 0;
  std::vector<ShardReport> reports;  ///< one per shard, ordered by shard id

  std::vector<int> ProbedShards() const;
  std::vector<int> SkippedShards() const;  ///< pruned + shed + breaker_open
  std::vector<int> FailedShards() const;

  /// True when the result is exact (no shard shed, blocked, or failed).
  bool complete() const;

  /// Deterministic JSON: {"total_shards", "probed_shards",
  /// "skipped_shards", "failed_shards", "complete", "shards":[...]}.
  Json ToJson() const;
};

/// A shard's cardinality estimate for a query, from its local planner.
struct ShardEstimate {
  /// Estimated seed cardinality on this shard; -1 = unknown.
  double rows = -1;
  /// True only when the shard's indexes prove the query selects nothing
  /// there (exact textual / temporal zero counts). Heuristic estimates
  /// (spatial grids, categorical priors) must never set this — pruning on
  /// them would silently drop rows.
  bool provably_empty = false;
};

/// One probe target of the scatter stage. Implemented by the platform's
/// ShardManager (the query library stays independent of platform types);
/// implementations must be safe to probe from pool threads.
class ShardTarget {
 public:
  virtual ~ShardTarget() = default;

  /// Stable shard id used in coverage reports.
  virtual int id() const = 0;

  /// The geographic region this shard can contribute hits for: its cell
  /// bounds expanded by the largest FOV radius ingested into it (an image
  /// is routed by camera location but its scene can spill into neighbor
  /// cells). An empty box means "unknown" and disables region pruning.
  virtual geo::BoundingBox region() const = 0;

  /// Executes `q` against this shard under `ctx`/`budget`. Returns hits in
  /// the shard's global id space. `plan_out` (optional) receives the
  /// shard-local executed plan.
  virtual Result<std::vector<QueryHit>> Probe(const HybridQuery& q,
                                              const RequestContext& ctx,
                                              const QueryBudget& budget,
                                              QueryPlan* plan_out) = 0;

  /// This shard's cardinality estimate for `q` (used for estimate pruning
  /// and degraded shedding). Must be cheap — planning only, no execution.
  virtual ShardEstimate Estimate(const HybridQuery& q) const = 0;

  /// True when a cell migration touching this shard was in flight when the
  /// target was snapshotted; a successful probe is then reported as
  /// kMigrating instead of kProbed.
  virtual bool migrating() const { return false; }

  /// Replicas available to stand in for the primary (0 = unreplicated or
  /// replica reads disabled). When > 0, a probe whose primary attempts all
  /// failed — or whose primary the breaker blocked — is retried against
  /// the replicas in order, and a success is reported as kFailedOver.
  virtual int replica_count() const { return 0; }

  /// Executes `q` against replica `r` (same contract as Probe; same global
  /// id space — replication preserves row ids).
  virtual Result<std::vector<QueryHit>> ProbeReplica(
      int r, const HybridQuery& q, const RequestContext& ctx,
      const QueryBudget& budget, QueryPlan* plan_out) {
    (void)r, (void)q, (void)ctx, (void)budget, (void)plan_out;
    return Status::Unavailable("shard has no replicas");
  }

  /// Read balancing: when >= 0, a clean (non-failover) probe goes to this
  /// replica first and falls back to the primary on failure. -1 = always
  /// probe the primary first.
  virtual int preferred_replica() const { return -1; }
};

/// Tuning knobs of the scatter-gather stage.
struct ScatterGatherOptions {
  /// Fraction of the request's remaining deadline granted to each shard
  /// probe (shards run concurrently, so this is per-shard, not divided).
  /// Must be in (0, 1]. Ignored when the request carries no deadline.
  double per_shard_deadline_fraction = 0.5;

  /// Hedged-probe policy: per-shard attempts and backoff between them.
  /// Classification uses IsRetryableStatus, so semantic errors surface
  /// immediately while crashes / stragglers get a second chance.
  RetryPolicy probe_retry{/*max_attempts=*/2, /*initial_backoff_ms=*/0,
                          /*max_backoff_ms=*/0};

  /// When false, each shard gets exactly one attempt spanning its whole
  /// per-shard budget (the "naive" bench configuration).
  bool hedging = true;

  /// Skip shards whose region is disjoint from the query's spatial
  /// predicate (exact — routing guarantees no hits outside the region).
  bool prune_by_region = true;

  /// Skip shards whose estimate is provably empty (see ShardEstimate).
  bool prune_by_estimate = true;

  /// Degraded mode: shed the lowest-estimated-selectivity shards before
  /// probing (the admission controller sheds shards before queries).
  bool shed_low_selectivity = false;

  /// Fraction of eligible shards kept when shedding (at least one).
  double degraded_keep_fraction = 0.5;

  /// Strict mode: any failed or breaker-blocked shard fails the whole
  /// query instead of degrading coverage (the "naive" bench config).
  bool require_full_coverage = false;

  /// Circuit-breaker admission gate, consulted immediately before a probe
  /// is launched (the half-open state admits exactly one probe, so the
  /// gate must only be asked when a probe will actually run). Null = no
  /// breakers. Called from the coordinating thread only.
  std::function<bool(int shard)> admit;

  /// Invoked once per launched probe as its outcome is gathered (kProbed,
  /// kFailed, or kFailedOver), before partial-result semantics can turn the
  /// whole call into an error — so breaker bookkeeping sees every admitted
  /// probe's outcome even when no shard answered. Called from the
  /// coordinating thread only.
  std::function<void(const ShardReport&)> observe;

  /// Derives the retry-after hint (ms) attached to the all-shards-blocked
  /// kUnavailable from the blocked shard ids — e.g. the earliest breaker
  /// half-open deadline. Null = the static 50 ms fallback. Called from the
  /// coordinating thread only.
  std::function<double(const std::vector<int>& blocked_shards)>
      retry_after_hint;

  /// Seed for the hedge-backoff jitter streams.
  uint64_t seed = 0x5ca77e2ULL;
};

/// The merged outcome of one scatter-gather execution.
struct ShardedResult {
  std::vector<QueryHit> hits;
  Coverage coverage;
  /// Executed shard-local plans, (shard id, plan), probed shards only.
  std::vector<std::pair<int, QueryPlan>> plans;
};

/// The scatter-gather stage: prunes shards by query region and cardinality
/// estimates, sheds low-selectivity shards under degraded budgets, fans
/// probes out through `pool` under per-shard deadline slices with hedged
/// retries, and merges the per-shard top-k streams into one well-ordered
/// result (visual distance when a visual predicate participates, kNN score
/// for spatial rankings, image id otherwise).
///
/// Partial-result semantics: as long as at least one probed shard answers,
/// the call succeeds and `coverage` says which shards are missing. It fails
/// outright only when nothing answered: every probe failed (first failure
/// wins) or every shard was blocked (kUnavailable with a retry hint).
class ScatterGather {
 public:
  static Result<ShardedResult> Execute(const std::vector<ShardTarget*>& shards,
                                       ThreadPool* pool, const HybridQuery& q,
                                       const RequestContext* ctx,
                                       const QueryBudget& budget,
                                       const ScatterGatherOptions& options);
};

}  // namespace tvdp::query

#endif  // TVDP_QUERY_SCATTER_GATHER_H_
