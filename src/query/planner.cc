#include "query/planner.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace tvdp::query {

const storage::Table* FindTable(const AccessPaths& access,
                                const std::string& name) {
  if (access.tables) {
    auto it = access.tables->find(name);
    if (it != access.tables->end()) return it->second.get();
  }
  return access.catalog ? access.catalog->GetTable(name) : nullptr;
}

namespace {

/// Families in declaration order — the tie-break order for seed selection
/// and the order the legacy plan string lists verify conjuncts in.
const char* const kFamilies[] = {"spatial", "visual", "categorical", "textual",
                                 "temporal"};

bool HasFamily(const HybridQuery& q, const std::string& family) {
  if (family == "spatial") return q.spatial.has_value();
  if (family == "visual") return q.visual.has_value();
  if (family == "categorical") return q.categorical.has_value();
  if (family == "textual") return q.textual.has_value();
  if (family == "temporal") return q.temporal.has_value();
  return false;
}

std::vector<std::string> TokenizedTerms(const TextualPredicate& pred) {
  std::vector<std::string> terms;
  for (const std::string& kw : pred.keywords) {
    for (const std::string& t : TokenizeWords(kw)) terms.push_back(t);
  }
  return terms;
}

std::string ProbeDetail(const HybridQuery& q, const std::string& family,
                        const QueryBudget& budget) {
  if (family == "spatial") {
    switch (q.spatial->kind) {
      case SpatialPredicate::Kind::kRange:
        return "rtree+fov range";
      case SpatialPredicate::Kind::kKnn:
        return StrFormat("rtree knn k=%d", q.spatial->k);
      case SpatialPredicate::Kind::kVisibleAt:
        return "fov visible-at";
    }
  }
  if (family == "visual") {
    if (q.visual->kind == VisualPredicate::Kind::kTopK) {
      std::string out = StrFormat("lsh(%s) k=%d fetch=%d",
                                  q.visual->feature_kind.c_str(), q.visual->k,
                                  Planner::VisualTopKFetch(*q.visual, budget));
      if (budget.lsh_probes >= 0) {
        out += StrFormat(" probes=%d", budget.lsh_probes);
      }
      return out;
    }
    std::string out = StrFormat("lsh(%s) threshold=%g",
                                q.visual->feature_kind.c_str(),
                                q.visual->threshold);
    if (budget.lsh_probes >= 0) {
      out += StrFormat(" probes=%d", budget.lsh_probes);
    }
    return out;
  }
  if (family == "categorical") {
    return StrFormat("annotations %s/%s", q.categorical->classification.c_str(),
                     q.categorical->label.c_str());
  }
  if (family == "textual") {
    return StrFormat("inverted %s(%zu terms)",
                     q.textual->mode == TextualPredicate::Mode::kAnd ? "and"
                                                                     : "or",
                     TokenizedTerms(*q.textual).size());
  }
  if (family == "temporal") {
    return StrFormat("temporal [%lld, %lld]",
                     static_cast<long long>(q.temporal->begin),
                     static_cast<long long>(q.temporal->end));
  }
  return family;
}

/// Strategy for a conjunct in the verify role. Set-valued conjuncts
/// (categorical, textual, spatial visible-at) cost a full index/table
/// probe per check, so they are probed once into an id set; row-valued
/// conjuncts (temporal, spatial range, visual distance) are O(1) against
/// the already-fetched catalog row and stay per-candidate scans.
ConjunctPlan::Strategy VerifyStrategy(const HybridQuery& q,
                                      const std::string& family) {
  if (family == "categorical" || family == "textual") {
    return ConjunctPlan::Strategy::kMaterializeProbe;
  }
  if (family == "spatial" &&
      q.spatial->kind == SpatialPredicate::Kind::kVisibleAt) {
    return ConjunctPlan::Strategy::kMaterializeProbe;
  }
  return ConjunctPlan::Strategy::kVerifyScan;
}

}  // namespace

Status Planner::Validate(const HybridQuery& q) {
  if (q.spatial) {
    switch (q.spatial->kind) {
      case SpatialPredicate::Kind::kRange:
        if (q.spatial->range.IsEmpty()) {
          return Status::InvalidArgument("empty query box");
        }
        break;
      case SpatialPredicate::Kind::kKnn:
        if (q.spatial->k <= 0) {
          return Status::InvalidArgument("k must be positive");
        }
        break;
      case SpatialPredicate::Kind::kVisibleAt:
        if (!geo::IsValid(q.spatial->point)) {
          return Status::InvalidArgument("invalid point");
        }
        break;
    }
  }
  if (q.visual) {
    if (q.visual->feature.empty()) {
      return Status::InvalidArgument("empty feature vector");
    }
    if (q.visual->kind == VisualPredicate::Kind::kTopK && q.visual->k <= 0) {
      return Status::InvalidArgument("k must be positive");
    }
    if (q.visual->kind == VisualPredicate::Kind::kThreshold &&
        q.visual->threshold < 0) {
      return Status::InvalidArgument("negative visual threshold");
    }
  }
  if (q.textual) {
    if (q.textual->keywords.empty()) {
      return Status::InvalidArgument("no keywords given");
    }
    for (const std::string& kw : q.textual->keywords) {
      if (TokenizeWords(kw).empty()) {
        return Status::InvalidArgument("empty keyword");
      }
    }
  }
  if (q.temporal && q.temporal->begin > q.temporal->end) {
    return Status::InvalidArgument("temporal range inverted: begin after end");
  }
  return Status::OK();
}

double Planner::EstimateFamily(const AccessPaths& access, const HybridQuery& q,
                               const std::string& family) {
  double n = static_cast<double>(std::max<size_t>(access.indexed_images, 1));
  if (family == "spatial" && q.spatial) {
    switch (q.spatial->kind) {
      case SpatialPredicate::Kind::kKnn:
        return static_cast<double>(q.spatial->k);
      case SpatialPredicate::Kind::kRange: {
        // SpatialRange unions FOV-intersect and camera-point hits; the sum
        // of the two estimates is an upper bound (images usually appear in
        // both), capped at the corpus size.
        double est = access.points->CardinalityEstimate(q.spatial->range) +
                     access.fovs->CardinalityEstimate(q.spatial->range);
        return std::clamp(est, 0.0, n);
      }
      case SpatialPredicate::Kind::kVisibleAt: {
        geo::BoundingBox pt;
        pt.min_lat = pt.max_lat = q.spatial->point.lat;
        pt.min_lon = pt.max_lon = q.spatial->point.lon;
        return std::clamp(access.fovs->CardinalityEstimate(pt), 0.0, n);
      }
    }
  }
  if (family == "visual" && q.visual) {
    if (q.visual->kind == VisualPredicate::Kind::kTopK) {
      return static_cast<double>(q.visual->k);
    }
    auto it = access.lsh->find(q.visual->feature_kind);
    if (it == access.lsh->end()) return n;  // unknown kind: NotFound later
    return std::clamp(it->second->CardinalityEstimate(q.visual->feature), 0.0,
                      n);
  }
  if (family == "categorical" && q.categorical) {
    // Annotations have no engine index; assume a typical task has 8 labels
    // and annotations cover the corpus — documented heuristic.
    return n / 8.0;
  }
  if (family == "textual" && q.textual) {
    return access.keywords->CardinalityEstimate(TokenizedTerms(*q.textual),
                                                q.textual->mode ==
                                                    TextualPredicate::Mode::kAnd);
  }
  if (family == "temporal" && q.temporal) {
    return access.temporal->CardinalityEstimate(q.temporal->begin,
                                                q.temporal->end);
  }
  return n;
}

int Planner::VisualTopKFetch(const VisualPredicate& pred,
                             const QueryBudget& budget) {
  // Formula frozen: the pre-planner engine used exactly this, and the
  // candidate counts it produces are part of the observable plan surface.
  int fetch = budget.degraded() ? pred.k * 2 + 8 : pred.k * 4 + 16;
  if (budget.max_candidates > 0) {
    fetch = std::min(fetch, static_cast<int>(budget.max_candidates));
    fetch = std::max(fetch, pred.k);
  }
  return fetch;
}

Result<QueryPlan> Planner::BuildPlan(const AccessPaths& access,
                                     const HybridQuery& q,
                                     const QueryBudget& budget,
                                     const PlannerOptions& options) {
  std::vector<std::string> families;
  for (const char* f : kFamilies) {
    if (HasFamily(q, f)) families.push_back(f);
  }
  if (families.empty()) {
    return Status::InvalidArgument("hybrid query has no predicates");
  }
  TVDP_RETURN_IF_ERROR(Validate(q));

  double n = static_cast<double>(std::max<size_t>(access.indexed_images, 1));
  std::vector<std::pair<std::string, double>> estimates;
  for (const std::string& f : families) {
    estimates.emplace_back(f, EstimateFamily(access, q, f));
  }
  auto estimate_of = [&](const std::string& f) {
    for (const auto& [name, est] : estimates) {
      if (name == f) return est;
    }
    return n;
  };

  // Ranking predicates must seed (they define an order, not a filter);
  // spatial kNN outranks visual top-k, matching the pre-planner engine.
  // Otherwise the cheapest estimate seeds, ties broken by family order.
  std::string seed;
  bool seed_forced = false;
  if (q.spatial && q.spatial->kind == SpatialPredicate::Kind::kKnn) {
    seed = "spatial";
    seed_forced = true;
  } else if (q.visual && q.visual->kind == VisualPredicate::Kind::kTopK) {
    seed = "visual";
    seed_forced = true;
  } else {
    double best = -1;
    for (const auto& [name, est] : estimates) {
      if (best < 0 || est < best) {
        best = est;
        seed = name;
      }
    }
  }
  if (!options.force_seed.empty() && !seed_forced) {
    if (!HasFamily(q, options.force_seed)) {
      return Status::InvalidArgument("force_seed family not in query: " +
                                     options.force_seed);
    }
    seed = options.force_seed;
  }

  QueryPlan plan;
  plan.seed_family = seed;
  plan.budget = budget;
  plan.degraded = budget.degraded();

  // Conjunct order: seed first, then verify conjuncts by ascending
  // estimate (cheapest rejector first — selectivity ordering applies to
  // the verify short-circuit too, not just the seed choice).
  ConjunctPlan seed_conjunct;
  seed_conjunct.family = seed;
  seed_conjunct.strategy = ConjunctPlan::Strategy::kSeedProbe;
  seed_conjunct.estimated_rows = estimate_of(seed);
  plan.conjuncts.push_back(seed_conjunct);
  std::vector<std::pair<double, std::string>> verify_order;
  for (const std::string& f : families) {
    if (f != seed) verify_order.emplace_back(estimate_of(f), f);
  }
  std::stable_sort(verify_order.begin(), verify_order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [est, f] : verify_order) {
    ConjunctPlan c;
    c.family = f;
    c.strategy = VerifyStrategy(q, f);
    c.estimated_rows = est;
    plan.conjuncts.push_back(c);
  }

  // --- Operator tree: IndexProbe -> Dedup -> Verify -> TopK -> Rerank ->
  // Limit, innermost first. Estimates compose multiplicatively under an
  // independence assumption (each verify conjunct keeps est/n of rows).
  PlanNode probe;
  probe.op = "IndexProbe";
  probe.detail = StrFormat("%s: %s", seed.c_str(),
                           ProbeDetail(q, seed, budget).c_str());
  if (seed == "visual" && q.visual->kind == VisualPredicate::Kind::kTopK) {
    probe.estimated_rows = VisualTopKFetch(*q.visual, budget);
  } else {
    probe.estimated_rows = estimate_of(seed);
  }

  PlanNode dedup;
  dedup.op = "Dedup";
  dedup.detail = "by image id";
  dedup.estimated_rows = probe.estimated_rows;
  if (budget.max_candidates > 0) {
    dedup.detail += StrFormat(" cap=%zu", budget.max_candidates);
    dedup.estimated_rows = std::min(
        dedup.estimated_rows, static_cast<double>(budget.max_candidates));
  }
  dedup.children.push_back(std::move(probe));

  PlanNode verify;
  verify.op = "Verify";
  double keep_fraction = 1.0;
  std::string verify_detail;
  for (size_t i = 1; i < plan.conjuncts.size(); ++i) {
    const ConjunctPlan& c = plan.conjuncts[i];
    keep_fraction *= std::clamp(c.estimated_rows / n, 0.0, 1.0);
    if (!verify_detail.empty()) verify_detail += " ";
    verify_detail += c.family + ":" +
                     std::string(ConjunctStrategyName(c.strategy));
  }
  verify.detail = verify_detail.empty() ? "none" : verify_detail;
  verify.estimated_rows = dedup.estimated_rows * keep_fraction;
  verify.children.push_back(std::move(dedup));
  // Materialized side-probes appear as extra children so EXPLAIN shows
  // which conjuncts are probed once vs scanned per candidate.
  for (size_t i = 1; i < plan.conjuncts.size(); ++i) {
    const ConjunctPlan& c = plan.conjuncts[i];
    if (c.strategy != ConjunctPlan::Strategy::kMaterializeProbe) continue;
    PlanNode side;
    side.op = "MaterializeProbe";
    side.detail = StrFormat("%s: %s", c.family.c_str(),
                            ProbeDetail(q, c.family, budget).c_str());
    side.estimated_rows = c.estimated_rows;
    verify.children.push_back(std::move(side));
  }

  PlanNode top = std::move(verify);
  if (q.visual && q.visual->kind == VisualPredicate::Kind::kTopK) {
    PlanNode topk;
    topk.op = "TopK";
    topk.detail = StrFormat("k=%d", q.visual->k);
    topk.estimated_rows =
        std::min(top.estimated_rows, static_cast<double>(q.visual->k));
    topk.children.push_back(std::move(top));
    top = std::move(topk);
  }
  if (q.visual) {
    PlanNode rerank;
    rerank.op = "Rerank";
    rerank.detail = "order=score asc";
    rerank.estimated_rows = top.estimated_rows;
    rerank.children.push_back(std::move(top));
    top = std::move(rerank);
  }
  if (q.limit > 0) {
    PlanNode limit;
    limit.op = "Limit";
    limit.detail = StrFormat("limit=%d", q.limit);
    limit.estimated_rows =
        std::min(top.estimated_rows, static_cast<double>(q.limit));
    limit.children.push_back(std::move(top));
    top = std::move(limit);
  }
  plan.root = std::move(top);
  return plan;
}

}  // namespace tvdp::query
