#ifndef TVDP_QUERY_PLAN_H_
#define TVDP_QUERY_PLAN_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "query/query.h"

namespace tvdp::query {

/// One node of a physical query plan: an operator with its estimated (and,
/// after execution, actual) output cardinality. The tree is deterministic
/// for a given query and corpus state — `explain_query` golden tests rely
/// on that — so nothing time- or thread-dependent may be recorded here.
struct PlanNode {
  /// Operator name: "IndexProbe", "Dedup", "Verify", "MaterializeProbe",
  /// "TopK", "Rerank", "Limit".
  std::string op;
  /// Operator-specific detail, e.g. "textual and(2 terms)" or
  /// "lsh(cnn) k=5 fetch=36".
  std::string detail;
  /// Planner's cardinality estimate for this operator's output; -1 when
  /// the operator has no meaningful estimate.
  double estimated_rows = -1;
  /// Rows actually produced; -1 until the plan has been executed (EXPLAIN
  /// plans keep -1 everywhere).
  int64_t actual_rows = -1;
  /// Input operators. The first child is the pipeline input; additional
  /// children of a Verify node are materialized side-probes.
  std::vector<PlanNode> children;

  /// Deterministic JSON form ("actual_rows" is present only once set).
  Json ToJson() const;
};

/// How the planner evaluates one conjunct of a hybrid query.
struct ConjunctPlan {
  enum class Strategy {
    kSeedProbe,         ///< produces the candidate set from its index
    kMaterializeProbe,  ///< probed once into an id set, then membership
    kVerifyScan,        ///< checked per candidate against catalog rows
  };

  std::string family;  ///< "spatial" | "visual" | "categorical" | ...
  Strategy strategy = Strategy::kVerifyScan;
  /// Estimated result cardinality of the conjunct alone.
  double estimated_rows = -1;
};

const char* ConjunctStrategyName(ConjunctPlan::Strategy s);

/// A fully-built plan for one hybrid query: the operator tree plus the
/// planner's reasoning (conjunct order, strategies, budget). Execution
/// fills in the actual cardinalities and the seed-candidate accounting.
struct QueryPlan {
  /// Conjuncts in evaluation order: the seed first, then verify conjuncts
  /// ordered by ascending estimated cardinality (cheapest rejector first).
  std::vector<ConjunctPlan> conjuncts;
  std::string seed_family;
  QueryBudget budget;
  bool degraded = false;

  /// Root of the operator tree (the last operator to run).
  PlanNode root;

  // --- execution accounting (filled by the Executor) ---

  /// Seed candidates after dedup and budget cap — the value the legacy
  /// plan string reports.
  size_t seed_candidates = 0;
  /// Pre-cap candidate count when the budget cap trimmed the set, else 0.
  size_t capped_from = 0;
  /// True once the executor has run the plan.
  bool executed = false;

  /// The legacy one-line plan summary, e.g.
  /// "seed=textual(1) verify=[spatial temporal] cap=512/900 degraded" —
  /// byte-compatible with the pre-planner `last_plan()` string.
  std::string LegacySummary() const;

  /// Deterministic JSON: operator tree, conjunct order and strategies,
  /// estimated vs actual cardinalities, budget, degraded flag, summary.
  Json ToJson() const;
};

}  // namespace tvdp::query

#endif  // TVDP_QUERY_PLAN_H_
