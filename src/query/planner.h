#ifndef TVDP_QUERY_PLANNER_H_
#define TVDP_QUERY_PLANNER_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/thread_pool.h"
#include "index/inverted_index.h"
#include "index/lsh.h"
#include "index/oriented_rtree.h"
#include "index/rtree.h"
#include "index/temporal_index.h"
#include "index/visual_rtree.h"
#include "query/plan.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/columnar.h"

namespace tvdp::query {

/// The access paths the planner and executor operate over: non-owning
/// views of the indexes, tables, and the fan-out pool. Two provenances:
///  * a pinned MVCC snapshot (`tables` set, `catalog` null) — the default
///    read path; everything referenced is immutable, no lock held;
///  * the live engine state (`catalog` set) — writers' read-own-writes
///    and the legacy locked path; caller holds the engine mutex.
/// Resolve tables through FindTable() so both provenances work. The
/// planner never reaches into index internals — only through the
/// `CardinalityEstimate` statistics hooks and the public probe methods.
struct AccessPaths {
  const storage::Catalog* catalog = nullptr;
  const storage::TableSet* tables = nullptr;
  ThreadPool* pool = nullptr;
  const index::RTree* points = nullptr;
  const index::OrientedRTree* fovs = nullptr;
  const index::TemporalIndex* temporal = nullptr;
  const index::InvertedIndex* keywords = nullptr;
  const std::map<std::string, std::shared_ptr<index::LshIndex>>* lsh = nullptr;
  const std::map<std::string, std::shared_ptr<index::VisualRTree>>*
      visual_rtree = nullptr;
  /// Columnar hot columns; may be null (legacy path) or stale relative to
  /// the table (mid-rebuild) — consumers fall back to row storage unless
  /// the sizes match.
  const storage::ColumnarImages* col_images = nullptr;
  const storage::ColumnarAnnotations* col_annotations = nullptr;
  size_t indexed_images = 0;
};

/// Table lookup across both AccessPaths provenances: the snapshot table
/// set when present, the live catalog otherwise. Nullptr when absent.
const storage::Table* FindTable(const AccessPaths& access,
                                const std::string& name);

/// Knobs for plan construction. The defaults produce the cost-based plan;
/// tests and benches use `force_seed` to run every (or the worst) conjunct
/// order and prove order-independence of the result set.
struct PlannerOptions {
  /// When non-empty, seed with this family instead of the cheapest one.
  /// Ignored when a ranking predicate (spatial kNN, visual top-k) forces
  /// the seed, and rejected when the family is absent from the query.
  std::string force_seed;
};

/// The cost-based planner over the composable operator pipeline.
///
/// Planning is three steps (DESIGN.md "Query planning and EXPLAIN"):
///  1. Validate — degenerate arguments (k <= 0, empty feature vector,
///     empty keyword, inverted temporal range, empty box, invalid point)
///     are kInvalidArgument at the front door, uniformly for every family.
///  2. Estimate — each present conjunct gets a cardinality estimate from
///     its index's `CardinalityEstimate` hook (categorical has no
///     dedicated index and uses a labels-per-task heuristic).
///  3. Order & choose — the cheapest conjunct seeds (ranking predicates
///     are forced to seed: spatial kNN outranks visual top-k); remaining
///     conjuncts are ordered by ascending estimate and assigned a
///     strategy: materialize-probe (one index probe into an id set) for
///     set-valued conjuncts (categorical, textual, visible-at), or
///     verify-scan (per-candidate catalog row check) for conjuncts whose
///     check is O(1) per row (temporal, spatial range, visual distance).
///
/// Plans are deterministic: same query + same corpus state -> same plan.
class Planner {
 public:
  /// Builds a plan without executing it. The returned plan carries
  /// estimates only (`actual_rows` = -1 everywhere, `executed` = false).
  static Result<QueryPlan> BuildPlan(const AccessPaths& access,
                                     const HybridQuery& q,
                                     const QueryBudget& budget,
                                     const PlannerOptions& options = {});

  /// Validates the arguments of every present conjunct (step 1 above).
  /// Also used by the single-family engine entry points so degenerate
  /// arguments fail identically whichever door they come in through.
  static Status Validate(const HybridQuery& q);

  /// Cardinality estimate of a single conjunct family of `q` (must be
  /// present). Exposed for the estimate-accuracy tests.
  static double EstimateFamily(const AccessPaths& access, const HybridQuery& q,
                               const std::string& family);

  /// The visual top-k seed over-fetch: post-filtering must still be able
  /// to fill k results; a degraded budget halves the over-fetch and
  /// respects the candidate cap. Shared by plan construction (the probe
  /// node's estimate) and the executor (the actual LSH fetch) so EXPLAIN
  /// never disagrees with execution.
  static int VisualTopKFetch(const VisualPredicate& pred,
                             const QueryBudget& budget);
};

}  // namespace tvdp::query

#endif  // TVDP_QUERY_PLANNER_H_
