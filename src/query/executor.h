#ifndef TVDP_QUERY_EXECUTOR_H_
#define TVDP_QUERY_EXECUTOR_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "query/plan.h"
#include "query/planner.h"
#include "query/query.h"

namespace tvdp::query {

// --- Single-family evaluation over the access paths ---
//
// These are the leaf routines of the operator pipeline and the bodies
// behind the QueryEngine's single-modality entry points (the engine wraps
// them with its reader lock). Each guards its own degenerate arguments
// (kInvalidArgument) so a malformed predicate fails identically whichever
// door it comes in through; each checks `ctx` before touching an index and
// annotates context failures with a stage name and progress.

Result<std::vector<QueryHit>> EvalSpatialRange(const AccessPaths& access,
                                               const geo::BoundingBox& box,
                                               const RequestContext* ctx);
Result<std::vector<QueryHit>> EvalSpatialKnn(const AccessPaths& access,
                                             const geo::GeoPoint& p, int k,
                                             const RequestContext* ctx);
Result<std::vector<QueryHit>> EvalVisibleAt(const AccessPaths& access,
                                            const geo::GeoPoint& p,
                                            const RequestContext* ctx);
Result<std::vector<QueryHit>> EvalVisualTopK(const AccessPaths& access,
                                             const std::string& kind,
                                             const ml::FeatureVector& feature,
                                             int k, const RequestContext* ctx,
                                             const QueryBudget& budget);
Result<std::vector<QueryHit>> EvalVisualThreshold(
    const AccessPaths& access, const std::string& kind,
    const ml::FeatureVector& feature, double threshold,
    const RequestContext* ctx, const QueryBudget& budget);
Result<std::vector<QueryHit>> EvalCategorical(const AccessPaths& access,
                                              const CategoricalPredicate& pred);
Result<std::vector<QueryHit>> EvalTextual(const AccessPaths& access,
                                          const TextualPredicate& pred);
Result<std::vector<QueryHit>> EvalTemporal(const AccessPaths& access,
                                           Timestamp begin, Timestamp end);

/// Keeps the first hit per image id, preserving order. Seeds such as LSH
/// (one entry per stored vector) can surface the same image several times;
/// hits arrive sorted by distance for visual seeds, so "first" is also
/// "closest".
void DedupHitsById(std::vector<QueryHit>* hits);

/// Pull-based physical operator. Execution proceeds at batch granularity:
/// each Next() call returns up to a batch of rows, or nullopt once the
/// stream is exhausted. Pipeline breakers (Verify, Rerank) drain their
/// input completely on the first pull; streaming operators (Dedup, TopK,
/// Limit) pass batches through and stop pulling as soon as they have
/// enough rows. Every operator records its actual output cardinality into
/// its PlanNode, which is how EXPLAIN reports estimated vs actual.
class Operator {
 public:
  virtual ~Operator() = default;

  /// The next batch of rows; nullopt at end of stream. `ctx` is threaded
  /// to the leaf probes and the verification fan-out.
  virtual Result<std::optional<std::vector<QueryHit>>> Next(
      const RequestContext* ctx) = 0;
};

/// Executes a plan built by the Planner against the access paths.
class Executor {
 public:
  /// Fires once the candidate set is materialized (after dedup and budget
  /// cap, before verification) — the moment the plan's seed accounting is
  /// final and the legacy plan string becomes observable. Not invoked when
  /// seeding fails, so a query rejected before doing work never publishes
  /// a plan.
  using PlanReadyFn = std::function<void(const QueryPlan&)>;

  /// Runs `plan` (which must have been built from the same `q` and access
  /// paths) and returns the result rows. Fills `plan->seed_candidates`,
  /// `plan->capped_from`, the per-operator `actual_rows`, and sets
  /// `plan->executed` on success. The caller must hold the engine's reader
  /// lock for the duration.
  static Result<std::vector<QueryHit>> Run(const AccessPaths& access,
                                           const HybridQuery& q,
                                           QueryPlan* plan,
                                           const RequestContext* ctx,
                                           const PlanReadyFn& on_plan_ready);
};

}  // namespace tvdp::query

#endif  // TVDP_QUERY_EXECUTOR_H_
