#include "query/engine.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace tvdp::query {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;
namespace tables = storage::tables;

QueryEngine::QueryEngine(storage::Catalog* catalog, ThreadPool* pool)
    : catalog_(catalog),
      pool_(pool ? pool : &ThreadPool::Shared()),
      fovs_(index::OrientedRTree::Options{16, pool_}) {}

AccessPaths QueryEngine::PathsLocked() const {
  AccessPaths paths;
  paths.catalog = catalog_;
  paths.pool = pool_;
  paths.points = &points_;
  paths.fovs = &fovs_;
  paths.temporal = &temporal_;
  paths.keywords = &keywords_;
  paths.lsh = &lsh_;
  paths.visual_rtree = &visual_rtree_;
  paths.indexed_images = indexed_images();
  return paths;
}

Status QueryEngine::IndexImage(RowId image_id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return IndexImageLocked(image_id);
}

Status QueryEngine::IndexImageLocked(RowId image_id) {
  const Table* images = catalog_->GetTable(tables::kImages);
  if (!images) return Status::FailedPrecondition("images table missing");
  TVDP_ASSIGN_OR_RETURN(Row img, images->Get(image_id));
  const storage::Schema& schema = images->schema();
  double lat = img[static_cast<size_t>(schema.ColumnIndex("lat"))].AsDouble();
  double lon = img[static_cast<size_t>(schema.ColumnIndex("lon"))].AsDouble();
  Timestamp captured =
      img[static_cast<size_t>(schema.ColumnIndex("timestamp_capturing"))]
          .AsInt64();

  geo::GeoPoint location{lat, lon};
  geo::BoundingBox point_box;
  point_box.min_lat = point_box.max_lat = lat;
  point_box.min_lon = point_box.max_lon = lon;
  TVDP_RETURN_IF_ERROR(points_.Insert(point_box, image_id));
  temporal_.Insert(captured, image_id);

  // FOV rows (0 or 1 per image in practice).
  const Table* fov_table = catalog_->GetTable(tables::kImageFov);
  if (fov_table) {
    TVDP_ASSIGN_OR_RETURN(std::vector<Row> fov_rows,
                          fov_table->FindBy("image_id", Value(image_id)));
    const storage::Schema& fs = fov_table->schema();
    for (const Row& r : fov_rows) {
      TVDP_ASSIGN_OR_RETURN(
          geo::FieldOfView fov,
          geo::FieldOfView::Make(
              location,
              r[static_cast<size_t>(fs.ColumnIndex("direction_deg"))].AsDouble(),
              r[static_cast<size_t>(fs.ColumnIndex("angle_deg"))].AsDouble(),
              r[static_cast<size_t>(fs.ColumnIndex("radius_m"))].AsDouble()));
      TVDP_RETURN_IF_ERROR(fovs_.Insert(fov, image_id));
    }
  }

  // Keywords.
  const Table* kw_table = catalog_->GetTable(tables::kImageManualKeywords);
  if (kw_table) {
    TVDP_ASSIGN_OR_RETURN(std::vector<Row> kw_rows,
                          kw_table->FindBy("image_id", Value(image_id)));
    const storage::Schema& ks = kw_table->schema();
    std::vector<std::string> terms;
    for (const Row& r : kw_rows) {
      for (const std::string& t : TokenizeWords(
               r[static_cast<size_t>(ks.ColumnIndex("keyword"))].AsString())) {
        terms.push_back(t);
      }
    }
    if (!terms.empty()) {
      TVDP_RETURN_IF_ERROR(keywords_.AddDocument(image_id, terms));
    }
  }
  indexed_images_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status QueryEngine::IndexFeature(RowId image_id, const std::string& kind,
                                 const ml::FeatureVector& feature) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return IndexFeatureLocked(image_id, kind, feature);
}

Status QueryEngine::IndexFeatureLocked(RowId image_id, const std::string& kind,
                                       const ml::FeatureVector& feature) {
  if (feature.empty()) return Status::InvalidArgument("empty feature");
  auto lsh_it = lsh_.find(kind);
  if (lsh_it == lsh_.end()) {
    index::LshIndex::Options lsh_options;
    lsh_options.pool = pool_;
    lsh_it = lsh_.emplace(kind, std::make_unique<index::LshIndex>(
                                    feature.size(), lsh_options))
                 .first;
    // The hybrid spatial-visual tree shares the same feature space.
    visual_rtree_.emplace(
        kind, std::make_unique<index::VisualRTree>(feature.size()));
  }
  TVDP_RETURN_IF_ERROR(lsh_it->second->Insert(feature, image_id));

  // Fetch the image location for the hybrid tree.
  const Table* images = catalog_->GetTable(tables::kImages);
  TVDP_ASSIGN_OR_RETURN(Row img, images->Get(image_id));
  const storage::Schema& schema = images->schema();
  geo::GeoPoint loc{
      img[static_cast<size_t>(schema.ColumnIndex("lat"))].AsDouble(),
      img[static_cast<size_t>(schema.ColumnIndex("lon"))].AsDouble()};
  return visual_rtree_[kind]->Insert(loc, feature, image_id);
}

void QueryEngine::ResetIndexesLocked() {
  points_ = index::RTree();
  fovs_ = index::OrientedRTree(index::OrientedRTree::Options{16, pool_});
  temporal_ = index::TemporalIndex();
  keywords_ = index::InvertedIndex();
  lsh_.clear();
  visual_rtree_.clear();
  indexed_images_.store(0, std::memory_order_relaxed);
}

std::string QueryEngine::last_plan() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return last_plan_;
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRange(
    const geo::BoundingBox& box, const RequestContext* ctx) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return SpatialRangeLocked(box, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRangeLocked(
    const geo::BoundingBox& box, const RequestContext* ctx) const {
  return EvalSpatialRange(PathsLocked(), box, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialKnn(
    const geo::GeoPoint& p, int k, const RequestContext* ctx) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return SpatialKnnLocked(p, k, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialKnnLocked(
    const geo::GeoPoint& p, int k, const RequestContext* ctx) const {
  return EvalSpatialKnn(PathsLocked(), p, k, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::VisibleAt(
    const geo::GeoPoint& p, const RequestContext* ctx) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return VisibleAtLocked(p, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::VisibleAtLocked(
    const geo::GeoPoint& p, const RequestContext* ctx) const {
  return EvalVisibleAt(PathsLocked(), p, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopK(
    const std::string& kind, const ml::FeatureVector& feature, int k,
    const RequestContext* ctx, const QueryBudget& budget) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return VisualTopKLocked(kind, feature, k, ctx, budget);
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopKLocked(
    const std::string& kind, const ml::FeatureVector& feature, int k,
    const RequestContext* ctx, const QueryBudget& budget) const {
  return EvalVisualTopK(PathsLocked(), kind, feature, k, ctx, budget);
}

Result<std::vector<QueryHit>> QueryEngine::VisualThreshold(
    const std::string& kind, const ml::FeatureVector& feature, double threshold,
    const RequestContext* ctx, const QueryBudget& budget) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return VisualThresholdLocked(kind, feature, threshold, ctx, budget);
}

Result<std::vector<QueryHit>> QueryEngine::VisualThresholdLocked(
    const std::string& kind, const ml::FeatureVector& feature, double threshold,
    const RequestContext* ctx, const QueryBudget& budget) const {
  return EvalVisualThreshold(PathsLocked(), kind, feature, threshold, ctx,
                             budget);
}

Result<std::vector<QueryHit>> QueryEngine::Categorical(
    const CategoricalPredicate& pred) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return CategoricalLocked(pred);
}

Result<std::vector<QueryHit>> QueryEngine::CategoricalLocked(
    const CategoricalPredicate& pred) const {
  return EvalCategorical(PathsLocked(), pred);
}

Result<std::vector<QueryHit>> QueryEngine::Textual(
    const TextualPredicate& pred) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return TextualLocked(pred);
}

Result<std::vector<QueryHit>> QueryEngine::TextualLocked(
    const TextualPredicate& pred) const {
  return EvalTextual(PathsLocked(), pred);
}

Result<std::vector<QueryHit>> QueryEngine::Temporal(Timestamp begin,
                                                    Timestamp end) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return TemporalLocked(begin, end);
}

Result<std::vector<QueryHit>> QueryEngine::TemporalLocked(Timestamp begin,
                                                          Timestamp end) const {
  return EvalTemporal(PathsLocked(), begin, end);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialVisualTopK(
    const geo::GeoPoint& p, const std::string& kind,
    const ml::FeatureVector& feature, int k, double alpha) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = visual_rtree_.find(kind);
  if (it == visual_rtree_.end()) {
    return Status::NotFound("no hybrid index for kind: " + kind);
  }
  std::vector<QueryHit> out;
  for (const auto& hit : it->second->TopK(p, feature, k, alpha)) {
    out.push_back(QueryHit{hit.id, hit.visual, hit.score});
  }
  DedupHitsById(&out);
  return out;
}

Result<std::vector<QueryHit>> QueryEngine::Execute(
    const HybridQuery& q, const RequestContext* ctx, const QueryBudget& budget,
    QueryPlan* plan_out, const PlannerOptions& options) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return ExecuteLocked(q, ctx, budget, plan_out, options);
}

Result<std::vector<QueryHit>> QueryEngine::ExecuteLocked(
    const HybridQuery& q, const RequestContext* ctx, const QueryBudget& budget,
    QueryPlan* plan_out, const PlannerOptions& options) const {
  AccessPaths paths = PathsLocked();
  TVDP_ASSIGN_OR_RETURN(QueryPlan plan,
                        Planner::BuildPlan(paths, q, budget, options));
  // An already-failed context rejects before any index is probed — and
  // before the plan becomes observable through last_plan().
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  Executor::PlanReadyFn publish = [this](const QueryPlan& p) {
    std::lock_guard<std::mutex> plan_lock(plan_mutex_);
    last_plan_ = p.LegacySummary();
  };
  auto result = Executor::Run(paths, q, &plan, ctx, publish);
  if (plan_out) *plan_out = std::move(plan);
  return result;
}

Result<QueryPlan> QueryEngine::Explain(const HybridQuery& q,
                                       const QueryBudget& budget,
                                       const PlannerOptions& options) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return Planner::BuildPlan(PathsLocked(), q, budget, options);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRangeScan(
    const geo::BoundingBox& box) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const Table* images = catalog_->GetTable(tables::kImages);
  const Table* fov_table = catalog_->GetTable(tables::kImageFov);
  if (!images || !fov_table) {
    return Status::FailedPrecondition("schema tables missing");
  }
  const storage::Schema& is = images->schema();
  const storage::Schema& fs = fov_table->schema();
  size_t lat_idx = static_cast<size_t>(is.ColumnIndex("lat"));
  size_t lon_idx = static_cast<size_t>(is.ColumnIndex("lon"));

  std::set<index::RecordId> ids;
  // Camera-point membership.
  images->ForEach([&](const Row& r) {
    geo::GeoPoint loc{r[lat_idx].AsDouble(), r[lon_idx].AsDouble()};
    if (box.Contains(loc)) ids.insert(r[0].AsInt64());
    return true;
  });
  // FOV intersection (requires the image row for the camera location).
  Status status = Status::OK();
  fov_table->ForEach([&](const Row& r) {
    int64_t image_id =
        r[static_cast<size_t>(fs.ColumnIndex("image_id"))].AsInt64();
    auto img = images->Get(image_id);
    if (!img.ok()) {
      status = img.status();
      return false;
    }
    geo::GeoPoint loc{img->at(lat_idx).AsDouble(),
                      img->at(lon_idx).AsDouble()};
    auto fov = geo::FieldOfView::Make(
        loc, r[static_cast<size_t>(fs.ColumnIndex("direction_deg"))].AsDouble(),
        r[static_cast<size_t>(fs.ColumnIndex("angle_deg"))].AsDouble(),
        r[static_cast<size_t>(fs.ColumnIndex("radius_m"))].AsDouble());
    if (fov.ok() && fov->IntersectsBBox(box)) ids.insert(image_id);
    return true;
  });
  TVDP_RETURN_IF_ERROR(status);
  std::vector<QueryHit> out;
  out.reserve(ids.size());
  for (index::RecordId id : ids) out.push_back(QueryHit{id, 0, 0});
  return out;
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopKScan(
    const std::string& kind, const ml::FeatureVector& feature, int k) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const Table* feats = catalog_->GetTable(tables::kImageVisualFeatures);
  if (!feats) return Status::FailedPrecondition("features table missing");
  const storage::Schema& fs = feats->schema();
  size_t kind_idx = static_cast<size_t>(fs.ColumnIndex("feature_kind"));
  size_t feat_idx = static_cast<size_t>(fs.ColumnIndex("feature"));
  size_t img_idx = static_cast<size_t>(fs.ColumnIndex("image_id"));
  std::vector<QueryHit> all;
  feats->ForEach([&](const Row& r) {
    if (r[kind_idx].AsString() == kind) {
      double d = ml::L2Distance(r[feat_idx].AsFloatVector(), feature);
      all.push_back(QueryHit{r[img_idx].AsInt64(), d, d});
    }
    return true;
  });
  std::sort(all.begin(), all.end(), [](const QueryHit& a, const QueryHit& b) {
    if (a.visual_distance != b.visual_distance) {
      return a.visual_distance < b.visual_distance;
    }
    return a.image_id < b.image_id;
  });
  if (all.size() > static_cast<size_t>(std::max(k, 0))) {
    all.resize(static_cast<size_t>(std::max(k, 0)));
  }
  return all;
}

}  // namespace tvdp::query
