#include "query/engine.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/strings.h"

namespace tvdp::query {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;
namespace tables = storage::tables;

namespace {

/// Below this many candidates a hybrid verification runs sequentially —
/// scheduling would cost more than the verification itself.
constexpr size_t kParallelVerifyMin = 64;

/// Below this many kNN candidates the exact-distance re-rank runs inline.
constexpr size_t kParallelKnnRerankMin = 64;

/// Keeps the first hit per image id, preserving order. Seeds such as LSH
/// (one entry per stored vector) can surface the same image several times;
/// hits arrive sorted by distance for visual seeds, so "first" is also
/// "closest".
void DedupHitsById(std::vector<QueryHit>* hits) {
  std::unordered_set<int64_t> seen;
  seen.reserve(hits->size());
  size_t w = 0;
  for (size_t r = 0; r < hits->size(); ++r) {
    if (seen.insert((*hits)[r].image_id).second) {
      (*hits)[w++] = (*hits)[r];
    }
  }
  hits->resize(w);
}

std::vector<QueryHit> ToHits(const std::vector<index::RecordId>& ids) {
  std::vector<QueryHit> out;
  out.reserve(ids.size());
  for (index::RecordId id : ids) out.push_back(QueryHit{id, 0});
  return out;
}

/// Annotates a failed-context status with where the query stopped and how
/// far it got, e.g. "request deadline exceeded during hybrid verify
/// (120/400 candidates verified)". Partial results themselves are
/// discarded; only this progress metadata escapes.
Status ContextError(const Status& s, const char* stage, size_t done,
                    size_t total) {
  return Status(s.code(), StrFormat("%s during %s (%zu/%zu candidates)",
                                    s.message().c_str(), stage, done, total));
}

}  // namespace

QueryEngine::QueryEngine(storage::Catalog* catalog, ThreadPool* pool)
    : catalog_(catalog),
      pool_(pool ? pool : &ThreadPool::Shared()),
      fovs_(index::OrientedRTree::Options{16, pool_}) {}

Status QueryEngine::IndexImage(RowId image_id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return IndexImageLocked(image_id);
}

Status QueryEngine::IndexImageLocked(RowId image_id) {
  const Table* images = catalog_->GetTable(tables::kImages);
  if (!images) return Status::FailedPrecondition("images table missing");
  TVDP_ASSIGN_OR_RETURN(Row img, images->Get(image_id));
  const storage::Schema& schema = images->schema();
  double lat = img[static_cast<size_t>(schema.ColumnIndex("lat"))].AsDouble();
  double lon = img[static_cast<size_t>(schema.ColumnIndex("lon"))].AsDouble();
  Timestamp captured =
      img[static_cast<size_t>(schema.ColumnIndex("timestamp_capturing"))]
          .AsInt64();

  geo::GeoPoint location{lat, lon};
  geo::BoundingBox point_box;
  point_box.min_lat = point_box.max_lat = lat;
  point_box.min_lon = point_box.max_lon = lon;
  TVDP_RETURN_IF_ERROR(points_.Insert(point_box, image_id));
  temporal_.Insert(captured, image_id);

  // FOV rows (0 or 1 per image in practice).
  const Table* fov_table = catalog_->GetTable(tables::kImageFov);
  if (fov_table) {
    TVDP_ASSIGN_OR_RETURN(std::vector<Row> fov_rows,
                          fov_table->FindBy("image_id", Value(image_id)));
    const storage::Schema& fs = fov_table->schema();
    for (const Row& r : fov_rows) {
      TVDP_ASSIGN_OR_RETURN(
          geo::FieldOfView fov,
          geo::FieldOfView::Make(
              location,
              r[static_cast<size_t>(fs.ColumnIndex("direction_deg"))].AsDouble(),
              r[static_cast<size_t>(fs.ColumnIndex("angle_deg"))].AsDouble(),
              r[static_cast<size_t>(fs.ColumnIndex("radius_m"))].AsDouble()));
      TVDP_RETURN_IF_ERROR(fovs_.Insert(fov, image_id));
    }
  }

  // Keywords.
  const Table* kw_table = catalog_->GetTable(tables::kImageManualKeywords);
  if (kw_table) {
    TVDP_ASSIGN_OR_RETURN(std::vector<Row> kw_rows,
                          kw_table->FindBy("image_id", Value(image_id)));
    const storage::Schema& ks = kw_table->schema();
    std::vector<std::string> terms;
    for (const Row& r : kw_rows) {
      for (const std::string& t : TokenizeWords(
               r[static_cast<size_t>(ks.ColumnIndex("keyword"))].AsString())) {
        terms.push_back(t);
      }
    }
    if (!terms.empty()) {
      TVDP_RETURN_IF_ERROR(keywords_.AddDocument(image_id, terms));
    }
  }
  indexed_images_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status QueryEngine::IndexFeature(RowId image_id, const std::string& kind,
                                 const ml::FeatureVector& feature) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return IndexFeatureLocked(image_id, kind, feature);
}

Status QueryEngine::IndexFeatureLocked(RowId image_id, const std::string& kind,
                                       const ml::FeatureVector& feature) {
  if (feature.empty()) return Status::InvalidArgument("empty feature");
  auto lsh_it = lsh_.find(kind);
  if (lsh_it == lsh_.end()) {
    index::LshIndex::Options lsh_options;
    lsh_options.pool = pool_;
    lsh_it = lsh_.emplace(kind, std::make_unique<index::LshIndex>(
                                    feature.size(), lsh_options))
                 .first;
    // The hybrid spatial-visual tree shares the same feature space.
    visual_rtree_.emplace(
        kind, std::make_unique<index::VisualRTree>(feature.size()));
  }
  TVDP_RETURN_IF_ERROR(lsh_it->second->Insert(feature, image_id));

  // Fetch the image location for the hybrid tree.
  const Table* images = catalog_->GetTable(tables::kImages);
  TVDP_ASSIGN_OR_RETURN(Row img, images->Get(image_id));
  const storage::Schema& schema = images->schema();
  geo::GeoPoint loc{
      img[static_cast<size_t>(schema.ColumnIndex("lat"))].AsDouble(),
      img[static_cast<size_t>(schema.ColumnIndex("lon"))].AsDouble()};
  return visual_rtree_[kind]->Insert(loc, feature, image_id);
}

std::string QueryEngine::last_plan() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return last_plan_;
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRange(
    const geo::BoundingBox& box, const RequestContext* ctx) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return SpatialRangeLocked(box, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRangeLocked(
    const geo::BoundingBox& box, const RequestContext* ctx) const {
  if (box.IsEmpty()) return Status::InvalidArgument("empty query box");
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  // Prefer FOV semantics when FOVs exist; union with camera-point hits so
  // images without FOV metadata still surface.
  std::set<index::RecordId> ids;
  std::vector<index::RecordId> fov_hits = fovs_.RangeSearch(box, ctx);
  if (ctx) {
    Status s = ctx->Check();
    if (!s.ok()) {
      return ContextError(s, "spatial range refine", fov_hits.size(),
                          fov_hits.size());
    }
  }
  for (index::RecordId id : fov_hits) ids.insert(id);
  for (index::RecordId id : points_.RangeSearch(box)) ids.insert(id);
  return ToHits(std::vector<index::RecordId>(ids.begin(), ids.end()));
}

Result<std::vector<QueryHit>> QueryEngine::SpatialKnn(
    const geo::GeoPoint& p, int k, const RequestContext* ctx) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return SpatialKnnLocked(p, k, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialKnnLocked(
    const geo::GeoPoint& p, int k, const RequestContext* ctx) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  // The R-tree orders candidates by box min-distance in *degree* space,
  // where a degree of longitude counts the same as a degree of latitude;
  // away from the equator that misorders near-ties. Over-fetch by degree
  // distance, then re-rank the candidates by exact geodesic distance,
  // fanning the distance computations (each a catalog row read + haversine)
  // out across the pool when the set is large.
  int fetch = k + k / 2 + 8;
  std::vector<index::RecordId> ids = points_.KNearest(p, fetch);
  const Table* images = catalog_->GetTable(tables::kImages);
  if (!images) return Status::FailedPrecondition("images table missing");
  const storage::Schema& schema = images->schema();
  const size_t lat_idx = static_cast<size_t>(schema.ColumnIndex("lat"));
  const size_t lon_idx = static_cast<size_t>(schema.ColumnIndex("lon"));
  std::vector<std::pair<double, index::RecordId>> ranked(ids.size());
  auto rank_span = [&](size_t begin, size_t end) -> Status {
    for (size_t i = begin; i < end; ++i) {
      TVDP_ASSIGN_OR_RETURN(Row img, images->Get(ids[i]));
      geo::GeoPoint loc{img[lat_idx].AsDouble(), img[lon_idx].AsDouble()};
      ranked[i] = {geo::HaversineMeters(p, loc), ids[i]};
    }
    return Status::OK();
  };
  if (ctx && ranked.size() >= kParallelKnnRerankMin) {
    Status s = pool_->ParallelFor(*ctx, ranked.size(), 16, rank_span);
    if (!s.ok()) {
      if (s.code() == StatusCode::kDeadlineExceeded ||
          s.code() == StatusCode::kCancelled) {
        return ContextError(s, "spatial kNN re-rank", 0, ranked.size());
      }
      return s;
    }
  } else if (ranked.size() >= kParallelKnnRerankMin) {
    TVDP_RETURN_IF_ERROR(pool_->ParallelFor(ranked.size(), 16, rank_span));
  } else {
    if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
    TVDP_RETURN_IF_ERROR(rank_span(0, ranked.size()));
  }
  std::sort(ranked.begin(), ranked.end());
  if (ranked.size() > static_cast<size_t>(k)) {
    ranked.resize(static_cast<size_t>(k));
  }
  std::vector<QueryHit> out;
  out.reserve(ranked.size());
  for (const auto& [dist, id] : ranked) out.push_back(QueryHit{id, 0});
  return out;
}

Result<std::vector<QueryHit>> QueryEngine::VisibleAt(
    const geo::GeoPoint& p, const RequestContext* ctx) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return VisibleAtLocked(p, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::VisibleAtLocked(
    const geo::GeoPoint& p, const RequestContext* ctx) const {
  if (!geo::IsValid(p)) return Status::InvalidArgument("invalid point");
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  std::vector<index::RecordId> hits = fovs_.PointQuery(p, ctx);
  if (ctx) {
    Status s = ctx->Check();
    if (!s.ok()) {
      return ContextError(s, "FOV point refine", hits.size(), hits.size());
    }
  }
  return ToHits(hits);
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopK(
    const std::string& kind, const ml::FeatureVector& feature, int k,
    const RequestContext* ctx, int probes_override) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return VisualTopKLocked(kind, feature, k, ctx, probes_override);
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopKLocked(
    const std::string& kind, const ml::FeatureVector& feature, int k,
    const RequestContext* ctx, int probes_override) const {
  auto it = lsh_.find(kind);
  if (it == lsh_.end()) {
    return Status::NotFound("no feature index for kind: " + kind);
  }
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  auto ranked = it->second->KNearest(feature, k, ctx, probes_override);
  if (ctx) {
    // The LSH returns whatever it ranked before the context failed;
    // discard it — partial top-k lists are misleading.
    Status s = ctx->Check();
    if (!s.ok()) {
      return ContextError(s, "LSH probe/rank", ranked.size(), ranked.size());
    }
  }
  std::vector<QueryHit> out;
  for (const auto& [id, dist] : ranked) {
    out.push_back(QueryHit{id, dist});
  }
  DedupHitsById(&out);
  return out;
}

Result<std::vector<QueryHit>> QueryEngine::VisualThreshold(
    const std::string& kind, const ml::FeatureVector& feature, double threshold,
    const RequestContext* ctx, int probes_override) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return VisualThresholdLocked(kind, feature, threshold, ctx, probes_override);
}

Result<std::vector<QueryHit>> QueryEngine::VisualThresholdLocked(
    const std::string& kind, const ml::FeatureVector& feature, double threshold,
    const RequestContext* ctx, int probes_override) const {
  auto it = lsh_.find(kind);
  if (it == lsh_.end()) {
    return Status::NotFound("no feature index for kind: " + kind);
  }
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  auto ranked = it->second->RangeSearch(feature, threshold, ctx,
                                        probes_override);
  if (ctx) {
    Status s = ctx->Check();
    if (!s.ok()) {
      return ContextError(s, "LSH probe/rank", ranked.size(), ranked.size());
    }
  }
  std::vector<QueryHit> out;
  for (const auto& [id, dist] : ranked) {
    out.push_back(QueryHit{id, dist});
  }
  DedupHitsById(&out);
  return out;
}

Result<int64_t> QueryEngine::LookupTypeId(
    const CategoricalPredicate& pred) const {
  const Table* cls = catalog_->GetTable(tables::kImageContentClassification);
  const Table* types =
      catalog_->GetTable(tables::kImageContentClassificationTypes);
  if (!cls || !types) {
    return Status::FailedPrecondition("classification tables missing");
  }
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> cls_rows,
                        cls->FindBy("name", Value(pred.classification)));
  if (cls_rows.empty()) {
    return Status::NotFound("no classification named " + pred.classification);
  }
  int64_t cls_id = cls_rows[0][0].AsInt64();
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> type_rows,
                        types->FindBy("classification_id", Value(cls_id)));
  const storage::Schema& ts = types->schema();
  for (const Row& r : type_rows) {
    if (r[static_cast<size_t>(ts.ColumnIndex("label"))].AsString() ==
        pred.label) {
      return r[0].AsInt64();
    }
  }
  return Status::NotFound("no label " + pred.label + " in " +
                          pred.classification);
}

Result<std::vector<QueryHit>> QueryEngine::Categorical(
    const CategoricalPredicate& pred) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return CategoricalLocked(pred);
}

Result<std::vector<QueryHit>> QueryEngine::CategoricalLocked(
    const CategoricalPredicate& pred) const {
  TVDP_ASSIGN_OR_RETURN(int64_t type_id, LookupTypeId(pred));
  const Table* ann = catalog_->GetTable(tables::kImageContentAnnotation);
  TVDP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        ann->FindBy("type_id", Value(type_id)));
  const storage::Schema& as = ann->schema();
  size_t conf_idx = static_cast<size_t>(as.ColumnIndex("confidence"));
  size_t src_idx = static_cast<size_t>(as.ColumnIndex("annotation_source"));
  size_t img_idx = static_cast<size_t>(as.ColumnIndex("image_id"));
  std::set<index::RecordId> ids;
  for (const Row& r : rows) {
    if (r[conf_idx].AsDouble() < pred.min_confidence) continue;
    if (!pred.source.empty() && r[src_idx].AsString() != pred.source) continue;
    ids.insert(r[img_idx].AsInt64());
  }
  return ToHits(std::vector<index::RecordId>(ids.begin(), ids.end()));
}

Result<std::vector<QueryHit>> QueryEngine::Textual(
    const TextualPredicate& pred) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return TextualLocked(pred);
}

Result<std::vector<QueryHit>> QueryEngine::TextualLocked(
    const TextualPredicate& pred) const {
  if (pred.keywords.empty()) {
    return Status::InvalidArgument("no keywords given");
  }
  std::vector<std::string> terms;
  for (const auto& kw : pred.keywords) {
    for (const auto& t : TokenizeWords(kw)) terms.push_back(t);
  }
  std::vector<index::RecordId> ids = pred.mode == TextualPredicate::Mode::kAnd
                                         ? keywords_.QueryAnd(terms)
                                         : keywords_.QueryOr(terms);
  return ToHits(ids);
}

Result<std::vector<QueryHit>> QueryEngine::Temporal(Timestamp begin,
                                                    Timestamp end) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return TemporalLocked(begin, end);
}

Result<std::vector<QueryHit>> QueryEngine::TemporalLocked(Timestamp begin,
                                                          Timestamp end) const {
  // Boundary contract: [begin, end] inclusive on both ends; an inverted
  // range is a caller error, never an unspecified scan.
  if (begin > end) {
    return Status::InvalidArgument("temporal range inverted: begin after end");
  }
  return ToHits(temporal_.RangeSearch(begin, end));
}

Result<std::vector<QueryHit>> QueryEngine::SpatialVisualTopK(
    const geo::GeoPoint& p, const std::string& kind,
    const ml::FeatureVector& feature, int k, double alpha) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = visual_rtree_.find(kind);
  if (it == visual_rtree_.end()) {
    return Status::NotFound("no hybrid index for kind: " + kind);
  }
  std::vector<QueryHit> out;
  for (const auto& hit : it->second->TopK(p, feature, k, alpha)) {
    out.push_back(QueryHit{hit.id, hit.visual});
  }
  DedupHitsById(&out);
  return out;
}

double QueryEngine::EstimateSelectivity(const HybridQuery& q,
                                        const std::string& family) const {
  double n = static_cast<double>(std::max<size_t>(indexed_images(), 1));
  if (family == "categorical" && q.categorical) {
    // Annotations are typically sparse: assume 1/NumLabels of the corpus.
    return n / 8.0;
  }
  if (family == "textual" && q.textual) {
    // Use the rarest keyword's document frequency.
    double best = n;
    for (const auto& kw : q.textual->keywords) {
      for (const auto& t : TokenizeWords(kw)) {
        best = std::min(best,
                        static_cast<double>(keywords_.DocumentFrequency(t)));
      }
    }
    return best;
  }
  if (family == "spatial" && q.spatial) {
    if (q.spatial->kind == SpatialPredicate::Kind::kKnn) {
      return static_cast<double>(q.spatial->k);
    }
    return n / 4.0;  // coarse: a range box typically covers a district
  }
  if (family == "temporal" && q.temporal) {
    double span = static_cast<double>(q.temporal->end - q.temporal->begin);
    double total = temporal_.empty()
                       ? 1.0
                       : static_cast<double>(temporal_.max_timestamp() -
                                             temporal_.min_timestamp() + 1);
    return n * std::clamp(span / total, 0.0, 1.0);
  }
  if (family == "visual" && q.visual) {
    if (q.visual->kind == VisualPredicate::Kind::kTopK) {
      return static_cast<double>(q.visual->k);
    }
    return n / 4.0;
  }
  return n;
}

Result<bool> QueryEngine::VerifyLocked(RowId id, const HybridQuery& q,
                                       const std::string& seed_family,
                                       double* visual_distance) const {
  const Table* images = catalog_->GetTable(tables::kImages);
  TVDP_ASSIGN_OR_RETURN(Row img, images->Get(id));
  const storage::Schema& schema = images->schema();

  if (q.temporal && seed_family != "temporal") {
    Timestamp t =
        img[static_cast<size_t>(schema.ColumnIndex("timestamp_capturing"))]
            .AsInt64();
    if (t < q.temporal->begin || t > q.temporal->end) return false;
  }
  if (q.spatial && seed_family != "spatial") {
    geo::GeoPoint loc{
        img[static_cast<size_t>(schema.ColumnIndex("lat"))].AsDouble(),
        img[static_cast<size_t>(schema.ColumnIndex("lon"))].AsDouble()};
    switch (q.spatial->kind) {
      case SpatialPredicate::Kind::kRange:
        if (!q.spatial->range.Contains(loc)) return false;
        break;
      case SpatialPredicate::Kind::kKnn:
        // kNN cannot be verified per-candidate; treated as a seed-only
        // predicate (the planner always seeds with it when present).
        break;
      case SpatialPredicate::Kind::kVisibleAt: {
        TVDP_ASSIGN_OR_RETURN(std::vector<QueryHit> vis,
                              VisibleAtLocked(q.spatial->point));
        bool found = false;
        for (const auto& h : vis) {
          if (h.image_id == id) {
            found = true;
            break;
          }
        }
        if (!found) return false;
        break;
      }
    }
  }
  if (q.categorical && seed_family != "categorical") {
    TVDP_ASSIGN_OR_RETURN(std::vector<QueryHit> cat,
                          CategoricalLocked(*q.categorical));
    bool found = false;
    for (const auto& h : cat) {
      if (h.image_id == id) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (q.textual && seed_family != "textual") {
    TVDP_ASSIGN_OR_RETURN(std::vector<QueryHit> txt, TextualLocked(*q.textual));
    bool found = false;
    for (const auto& h : txt) {
      if (h.image_id == id) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (q.visual && seed_family != "visual") {
    // Verify by exact feature distance from the stored feature row.
    const Table* feats = catalog_->GetTable(tables::kImageVisualFeatures);
    TVDP_ASSIGN_OR_RETURN(std::vector<Row> rows,
                          feats->FindBy("image_id", Value(id)));
    const storage::Schema& fs = feats->schema();
    size_t kind_idx = static_cast<size_t>(fs.ColumnIndex("feature_kind"));
    size_t feat_idx = static_cast<size_t>(fs.ColumnIndex("feature"));
    bool found = false;
    for (const Row& r : rows) {
      if (r[kind_idx].AsString() != q.visual->feature_kind) continue;
      double d = ml::L2Distance(r[feat_idx].AsFloatVector(), q.visual->feature);
      if (q.visual->kind == VisualPredicate::Kind::kThreshold &&
          d > q.visual->threshold) {
        return false;
      }
      if (visual_distance) *visual_distance = d;
      found = true;
      break;
    }
    if (!found) return false;
  }
  return true;
}

Result<std::vector<QueryHit>> QueryEngine::Execute(
    const HybridQuery& q, const RequestContext* ctx,
    const QueryBudget& budget) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return ExecuteLocked(q, ctx, budget);
}

Result<std::vector<QueryHit>> QueryEngine::ExecuteLocked(
    const HybridQuery& q, const RequestContext* ctx,
    const QueryBudget& budget) const {
  // Collect present predicate families and their selectivity estimates.
  std::vector<std::string> families;
  if (q.spatial) families.push_back("spatial");
  if (q.visual) families.push_back("visual");
  if (q.categorical) families.push_back("categorical");
  if (q.textual) families.push_back("textual");
  if (q.temporal) families.push_back("temporal");
  if (families.empty()) {
    return Status::InvalidArgument("hybrid query has no predicates");
  }
  // Malformed predicates fail the whole query up front, whichever role
  // they would have played in the plan.
  if (q.temporal && q.temporal->begin > q.temporal->end) {
    return Status::InvalidArgument("temporal range inverted: begin after end");
  }
  // An already-failed context rejects before any index is touched.
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());

  // kNN spatial and top-k visual predicates must seed (they are ranking
  // predicates, not filters). Otherwise pick the lowest-cardinality one.
  std::string seed;
  if (q.spatial && q.spatial->kind == SpatialPredicate::Kind::kKnn) {
    seed = "spatial";
  } else if (q.visual && q.visual->kind == VisualPredicate::Kind::kTopK) {
    seed = "visual";
  } else {
    double best = -1;
    for (const auto& f : families) {
      double est = EstimateSelectivity(q, f);
      if (best < 0 || est < best) {
        best = est;
        seed = f;
      }
    }
  }

  // Seed candidates.
  std::vector<QueryHit> candidates;
  if (seed == "spatial") {
    switch (q.spatial->kind) {
      case SpatialPredicate::Kind::kRange: {
        TVDP_ASSIGN_OR_RETURN(candidates,
                              SpatialRangeLocked(q.spatial->range, ctx));
        break;
      }
      case SpatialPredicate::Kind::kKnn: {
        TVDP_ASSIGN_OR_RETURN(
            candidates, SpatialKnnLocked(q.spatial->point, q.spatial->k, ctx));
        break;
      }
      case SpatialPredicate::Kind::kVisibleAt: {
        TVDP_ASSIGN_OR_RETURN(candidates,
                              VisibleAtLocked(q.spatial->point, ctx));
        break;
      }
    }
  } else if (seed == "visual") {
    if (q.visual->kind == VisualPredicate::Kind::kTopK) {
      // Over-fetch so post-filtering can still fill k results; a degraded
      // budget halves the over-fetch and respects the candidate cap.
      int fetch = budget.degraded() ? q.visual->k * 2 + 8 : q.visual->k * 4 + 16;
      if (budget.max_candidates > 0) {
        fetch = std::min(fetch, static_cast<int>(budget.max_candidates));
        fetch = std::max(fetch, q.visual->k);
      }
      TVDP_ASSIGN_OR_RETURN(
          candidates, VisualTopKLocked(q.visual->feature_kind, q.visual->feature,
                                       fetch, ctx, budget.lsh_probes));
    } else {
      TVDP_ASSIGN_OR_RETURN(
          candidates,
          VisualThresholdLocked(q.visual->feature_kind, q.visual->feature,
                                q.visual->threshold, ctx, budget.lsh_probes));
    }
  } else if (seed == "categorical") {
    TVDP_ASSIGN_OR_RETURN(candidates, CategoricalLocked(*q.categorical));
  } else if (seed == "textual") {
    TVDP_ASSIGN_OR_RETURN(candidates, TextualLocked(*q.textual));
  } else {
    TVDP_ASSIGN_OR_RETURN(candidates,
                          TemporalLocked(q.temporal->begin, q.temporal->end));
  }

  // An image that matched the seed through several index entries (several
  // stored vectors, repeated keywords, ...) must be verified — and
  // returned — at most once.
  DedupHitsById(&candidates);

  // Degraded plans bound the verification work no matter which family
  // seeded. For visual seeds the list is distance-sorted, so the cap keeps
  // the best candidates.
  size_t capped_from = 0;
  if (budget.max_candidates > 0 && candidates.size() > budget.max_candidates) {
    capped_from = candidates.size();
    candidates.resize(budget.max_candidates);
  }

  std::string verify_list;
  for (const auto& f : families) {
    if (f != seed) verify_list += (verify_list.empty() ? "" : " ") + f;
  }
  {
    std::lock_guard<std::mutex> plan_lock(plan_mutex_);
    last_plan_ = StrFormat("seed=%s(%zu) verify=[%s]", seed.c_str(),
                           candidates.size(), verify_list.c_str());
    if (capped_from > 0) {
      last_plan_ += StrFormat(" cap=%zu/%zu", candidates.size(), capped_from);
    }
    if (budget.degraded()) last_plan_ += " degraded";
  }

  // Verify remaining predicates per candidate. Large candidate sets fan
  // out across the pool (each verification is independent); the selection
  // pass below stays sequential so k/limit semantics match the
  // single-threaded path exactly.
  std::vector<char> keep(candidates.size(), 1);
  std::vector<double> distances(candidates.size(), 0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    distances[i] = candidates[i].visual_distance;
  }
  std::atomic<size_t> verified{0};
  auto verify_span = [&](size_t chunk_begin, size_t chunk_end) -> Status {
    for (size_t i = chunk_begin; i < chunk_end; ++i) {
      TVDP_ASSIGN_OR_RETURN(
          bool ok_hit,
          VerifyLocked(candidates[i].image_id, q, seed, &distances[i]));
      keep[i] = ok_hit ? 1 : 0;
      verified.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  };
  Status verify_status = Status::OK();
  if (ctx && candidates.size() >= kParallelVerifyMin) {
    verify_status = pool_->ParallelFor(*ctx, candidates.size(), 16, verify_span);
  } else if (candidates.size() >= kParallelVerifyMin) {
    verify_status = pool_->ParallelFor(candidates.size(), 16, verify_span);
  } else {
    if (ctx) verify_status = ctx->Check();
    if (verify_status.ok()) verify_status = verify_span(0, candidates.size());
  }
  if (!verify_status.ok()) {
    if (verify_status.code() == StatusCode::kDeadlineExceeded ||
        verify_status.code() == StatusCode::kCancelled) {
      return ContextError(verify_status, "hybrid verify",
                          verified.load(std::memory_order_relaxed),
                          candidates.size());
    }
    return verify_status;
  }

  std::vector<QueryHit> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!keep[i]) continue;
    out.push_back(QueryHit{candidates[i].image_id, distances[i]});
    if (q.visual && q.visual->kind == VisualPredicate::Kind::kTopK &&
        static_cast<int>(out.size()) >= q.visual->k) {
      break;
    }
    if (q.limit > 0 && static_cast<int>(out.size()) >= q.limit &&
        !(q.visual && q.visual->kind == VisualPredicate::Kind::kTopK)) {
      break;
    }
  }
  if (q.visual) {
    std::sort(out.begin(), out.end(), [](const QueryHit& a, const QueryHit& b) {
      if (a.visual_distance != b.visual_distance) {
        return a.visual_distance < b.visual_distance;
      }
      return a.image_id < b.image_id;
    });
  }
  if (q.limit > 0 && out.size() > static_cast<size_t>(q.limit)) {
    out.resize(static_cast<size_t>(q.limit));
  }
  return out;
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRangeScan(
    const geo::BoundingBox& box) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const Table* images = catalog_->GetTable(tables::kImages);
  const Table* fov_table = catalog_->GetTable(tables::kImageFov);
  if (!images || !fov_table) {
    return Status::FailedPrecondition("schema tables missing");
  }
  const storage::Schema& is = images->schema();
  const storage::Schema& fs = fov_table->schema();
  size_t lat_idx = static_cast<size_t>(is.ColumnIndex("lat"));
  size_t lon_idx = static_cast<size_t>(is.ColumnIndex("lon"));

  std::set<index::RecordId> ids;
  // Camera-point membership.
  images->ForEach([&](const Row& r) {
    geo::GeoPoint loc{r[lat_idx].AsDouble(), r[lon_idx].AsDouble()};
    if (box.Contains(loc)) ids.insert(r[0].AsInt64());
    return true;
  });
  // FOV intersection (requires the image row for the camera location).
  Status status = Status::OK();
  fov_table->ForEach([&](const Row& r) {
    int64_t image_id =
        r[static_cast<size_t>(fs.ColumnIndex("image_id"))].AsInt64();
    auto img = images->Get(image_id);
    if (!img.ok()) {
      status = img.status();
      return false;
    }
    geo::GeoPoint loc{img->at(lat_idx).AsDouble(),
                      img->at(lon_idx).AsDouble()};
    auto fov = geo::FieldOfView::Make(
        loc, r[static_cast<size_t>(fs.ColumnIndex("direction_deg"))].AsDouble(),
        r[static_cast<size_t>(fs.ColumnIndex("angle_deg"))].AsDouble(),
        r[static_cast<size_t>(fs.ColumnIndex("radius_m"))].AsDouble());
    if (fov.ok() && fov->IntersectsBBox(box)) ids.insert(image_id);
    return true;
  });
  TVDP_RETURN_IF_ERROR(status);
  return ToHits(std::vector<index::RecordId>(ids.begin(), ids.end()));
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopKScan(
    const std::string& kind, const ml::FeatureVector& feature, int k) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const Table* feats = catalog_->GetTable(tables::kImageVisualFeatures);
  if (!feats) return Status::FailedPrecondition("features table missing");
  const storage::Schema& fs = feats->schema();
  size_t kind_idx = static_cast<size_t>(fs.ColumnIndex("feature_kind"));
  size_t feat_idx = static_cast<size_t>(fs.ColumnIndex("feature"));
  size_t img_idx = static_cast<size_t>(fs.ColumnIndex("image_id"));
  std::vector<QueryHit> all;
  feats->ForEach([&](const Row& r) {
    if (r[kind_idx].AsString() == kind) {
      all.push_back(QueryHit{
          r[img_idx].AsInt64(),
          ml::L2Distance(r[feat_idx].AsFloatVector(), feature)});
    }
    return true;
  });
  std::sort(all.begin(), all.end(), [](const QueryHit& a, const QueryHit& b) {
    if (a.visual_distance != b.visual_distance) {
      return a.visual_distance < b.visual_distance;
    }
    return a.image_id < b.image_id;
  });
  if (all.size() > static_cast<size_t>(std::max(k, 0))) {
    all.resize(static_cast<size_t>(std::max(k, 0)));
  }
  return all;
}

}  // namespace tvdp::query
