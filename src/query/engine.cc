#include "query/engine.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/strings.h"

namespace tvdp::query {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;
namespace tables = storage::tables;

namespace {

/// Rough per-table heap estimate for the commit accounting: rows * columns
/// at ~40 bytes per value plus fixed overhead. The point is the shared-vs-
/// copied *ratio* per commit, not exact byte counts.
size_t EstimateTableBytes(const Table& t) {
  return t.size() * t.schema().columns().size() * 40 + 64;
}

/// Rough per-index estimate, by entry count.
size_t EstimateIndexBytes(size_t entries) { return entries * 64 + 64; }

}  // namespace

QueryEngine::QueryEngine(storage::Catalog* catalog, ThreadPool* pool)
    : catalog_(catalog),
      pool_(pool ? pool : &ThreadPool::Shared()),
      fovs_(index::OrientedRTree::Options{16, pool_}) {}

AccessPaths QueryEngine::PathsLocked() const {
  AccessPaths paths;
  paths.catalog = catalog_;
  paths.pool = pool_;
  paths.points = &points_;
  paths.fovs = &fovs_;
  paths.temporal = &temporal_;
  paths.keywords = &keywords_;
  paths.lsh = &lsh_;
  paths.visual_rtree = &visual_rtree_;
  // The live columnar builders are only guaranteed to mirror the tables
  // when every mutation flows through the managed facade; a legacy engine
  // over an externally mutated catalog must not serve stale columns.
  if (managed_) {
    paths.col_images = &col_images_;
    paths.col_annotations = &col_annotations_;
  }
  paths.indexed_images = indexed_images();
  return paths;
}

AccessPaths QueryEngine::SnapshotPaths(const EngineSnapshot& snap) const {
  AccessPaths paths;
  paths.tables = &snap.tables;
  paths.pool = pool_;
  paths.points = snap.points.get();
  paths.fovs = snap.fovs.get();
  paths.temporal = snap.temporal.get();
  paths.keywords = snap.keywords.get();
  paths.lsh = &snap.lsh;
  paths.visual_rtree = &snap.visual_rtree;
  paths.col_images = snap.col_images.get();
  paths.col_annotations = snap.col_annotations.get();
  paths.indexed_images = snap.indexed_images;
  return paths;
}

void QueryEngine::EnableManagedSnapshots() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  managed_ = true;
  all_dirty_ = true;
  PublishLocked();
}

void QueryEngine::MarkTableDirtyLocked(const std::string& table) {
  dirty_tables_.insert(table);
}

void QueryEngine::NoteAnnotationLocked(int64_t image_id, int64_t type_id,
                                       double confidence,
                                       const std::string& source) {
  col_annotations_.Append(image_id, type_id, confidence, source);
}

void QueryEngine::SetClassMapLocked(const ClassMap& m) {
  class_map_ = std::make_shared<const ClassMap>(m);
  dirty_classes_ = true;
}

void QueryEngine::PublishLocked() {
  if (!managed_) return;
  std::shared_ptr<const EngineSnapshot> prev = snapshot_.load();
  bool dirty = all_dirty_ || !prev || !dirty_tables_.empty() ||
               !dirty_feature_kinds_.empty() || dirty_points_ || dirty_fovs_ ||
               dirty_temporal_ || dirty_keywords_ || dirty_classes_;
  if (!dirty) return;

  auto snap = std::make_shared<EngineSnapshot>();
  size_t copied = 0, shared = 0;

  // Tables: copy-on-write at table granularity. A commit typically touches
  // one or two tables; the rest are shared with the previous version.
  for (const std::string& name : catalog_->TableNames()) {
    const Table* t = catalog_->GetTable(name);
    bool reuse = prev && !all_dirty_ && !dirty_tables_.count(name) &&
                 prev->tables.count(name);
    if (reuse) {
      snap->tables[name] = prev->tables.at(name);
      shared += EstimateTableBytes(*t);
    } else {
      snap->tables[name] = std::make_shared<const Table>(*t);
      copied += EstimateTableBytes(*t);
    }
  }

  // Columnar hot columns: Freeze() shares every chunk the tail mutation
  // didn't clone, so the accounting here is exact per chunk.
  snap->col_images = col_images_.Freeze();
  snap->col_annotations = col_annotations_.Freeze();
  snap->col_images->AccountShared(prev ? prev->col_images.get() : nullptr,
                                  &shared, &copied);
  snap->col_annotations->AccountShared(
      prev ? prev->col_annotations.get() : nullptr, &shared, &copied);

  // Indexes: cloned only when this write section touched them.
  if (!prev || all_dirty_ || dirty_points_) {
    snap->points = std::make_shared<const index::RTree>(points_.Clone());
    copied += EstimateIndexBytes(points_.size());
  } else {
    snap->points = prev->points;
    shared += EstimateIndexBytes(points_.size());
  }
  if (!prev || all_dirty_ || dirty_fovs_) {
    snap->fovs = std::make_shared<const index::OrientedRTree>(fovs_.Clone());
    copied += EstimateIndexBytes(fovs_.size());
  } else {
    snap->fovs = prev->fovs;
    shared += EstimateIndexBytes(fovs_.size());
  }
  if (!prev || all_dirty_ || dirty_temporal_) {
    snap->temporal = std::make_shared<const index::TemporalIndex>(temporal_);
    copied += EstimateIndexBytes(temporal_.size());
  } else {
    snap->temporal = prev->temporal;
    shared += EstimateIndexBytes(temporal_.size());
  }
  if (!prev || all_dirty_ || dirty_keywords_) {
    snap->keywords = std::make_shared<const index::InvertedIndex>(keywords_);
    copied += EstimateIndexBytes(keywords_.document_count());
  } else {
    snap->keywords = prev->keywords;
    shared += EstimateIndexBytes(keywords_.document_count());
  }
  for (const auto& [kind, lsh] : lsh_) {
    bool reuse = prev && !all_dirty_ && !dirty_feature_kinds_.count(kind) &&
                 prev->lsh.count(kind);
    if (reuse) {
      snap->lsh[kind] = prev->lsh.at(kind);
      shared += EstimateIndexBytes(lsh->size());
    } else {
      snap->lsh[kind] = lsh->Clone();
      copied += EstimateIndexBytes(lsh->size());
    }
  }
  for (const auto& [kind, tree] : visual_rtree_) {
    bool reuse = prev && !all_dirty_ && !dirty_feature_kinds_.count(kind) &&
                 prev->visual_rtree.count(kind);
    if (reuse) {
      snap->visual_rtree[kind] = prev->visual_rtree.at(kind);
      shared += EstimateIndexBytes(tree->size());
    } else {
      snap->visual_rtree[kind] = tree->Clone();
      copied += EstimateIndexBytes(tree->size());
    }
  }

  snap->classifications = class_map_;
  snap->indexed_images = indexed_images();
  snap->version = next_version_++;
  snap->bytes_copied = copied;
  snap->bytes_shared = shared;
  snap->live_gauge = live_snapshots_;
  live_snapshots_->fetch_add(1, std::memory_order_relaxed);

  // The root swap IS the commit, from a reader's point of view: queries
  // pinned before this instant keep the old version; queries arriving
  // after see the new one. The box's release pairs with readers' acquire.
  snapshot_.store(std::move(snap));

  dirty_tables_.clear();
  dirty_feature_kinds_.clear();
  dirty_points_ = dirty_fovs_ = dirty_temporal_ = dirty_keywords_ = false;
  dirty_classes_ = false;
  all_dirty_ = false;
}

Json QueryEngine::MvccStatsJson() const {
  std::shared_ptr<const EngineSnapshot> snap = snapshot_.load();
  Json out = Json::MakeObject();
  out["enabled"] = managed_;
  out["snapshot_reads"] = snapshot_reads();
  out["version"] = snap ? static_cast<int64_t>(snap->version) : int64_t{0};
  out["pinned_snapshots"] = pinned_readers_.load(std::memory_order_relaxed);
  // Everything alive beyond the latest version is retired and awaiting
  // reclamation by the pinned readers that still reference it. `snap`
  // itself is our own transient reference, not a retired version.
  int64_t live = live_snapshots_->load(std::memory_order_relaxed);
  out["retired_versions"] = std::max<int64_t>(0, live - 1);
  out["bytes_copied_last_commit"] =
      snap ? static_cast<int64_t>(snap->bytes_copied) : int64_t{0};
  out["bytes_shared_last_commit"] =
      snap ? static_cast<int64_t>(snap->bytes_shared) : int64_t{0};
  return out;
}

Status QueryEngine::IndexImage(RowId image_id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  Status s = IndexImageLocked(image_id);
  if (s.ok()) PublishLocked();
  return s;
}

Status QueryEngine::IndexImageLocked(RowId image_id) {
  const Table* images = catalog_->GetTable(tables::kImages);
  if (!images) return Status::FailedPrecondition("images table missing");
  TVDP_ASSIGN_OR_RETURN(Row img, images->Get(image_id));
  const storage::Schema& schema = images->schema();
  double lat = img[static_cast<size_t>(schema.ColumnIndex("lat"))].AsDouble();
  double lon = img[static_cast<size_t>(schema.ColumnIndex("lon"))].AsDouble();
  Timestamp captured =
      img[static_cast<size_t>(schema.ColumnIndex("timestamp_capturing"))]
          .AsInt64();

  geo::GeoPoint location{lat, lon};
  geo::BoundingBox point_box;
  point_box.min_lat = point_box.max_lat = lat;
  point_box.min_lon = point_box.max_lon = lon;
  TVDP_RETURN_IF_ERROR(points_.Insert(point_box, image_id));
  temporal_.Insert(captured, image_id);
  dirty_points_ = true;
  dirty_temporal_ = true;

  // FOV rows (0 or 1 per image in practice).
  const Table* fov_table = catalog_->GetTable(tables::kImageFov);
  if (fov_table) {
    TVDP_ASSIGN_OR_RETURN(std::vector<Row> fov_rows,
                          fov_table->FindBy("image_id", Value(image_id)));
    const storage::Schema& fs = fov_table->schema();
    for (const Row& r : fov_rows) {
      TVDP_ASSIGN_OR_RETURN(
          geo::FieldOfView fov,
          geo::FieldOfView::Make(
              location,
              r[static_cast<size_t>(fs.ColumnIndex("direction_deg"))].AsDouble(),
              r[static_cast<size_t>(fs.ColumnIndex("angle_deg"))].AsDouble(),
              r[static_cast<size_t>(fs.ColumnIndex("radius_m"))].AsDouble()));
      TVDP_RETURN_IF_ERROR(fovs_.Insert(fov, image_id));
      dirty_fovs_ = true;
    }
  }

  // Keywords.
  const Table* kw_table = catalog_->GetTable(tables::kImageManualKeywords);
  if (kw_table) {
    TVDP_ASSIGN_OR_RETURN(std::vector<Row> kw_rows,
                          kw_table->FindBy("image_id", Value(image_id)));
    const storage::Schema& ks = kw_table->schema();
    std::vector<std::string> terms;
    for (const Row& r : kw_rows) {
      for (const std::string& t : TokenizeWords(
               r[static_cast<size_t>(ks.ColumnIndex("keyword"))].AsString())) {
        terms.push_back(t);
      }
    }
    if (!terms.empty()) {
      TVDP_RETURN_IF_ERROR(keywords_.AddDocument(image_id, terms));
      dirty_keywords_ = true;
    }
  }
  col_images_.Append(image_id, lat, lon, captured);
  indexed_images_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status QueryEngine::IndexFeature(RowId image_id, const std::string& kind,
                                 const ml::FeatureVector& feature) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  Status s = IndexFeatureLocked(image_id, kind, feature);
  if (s.ok()) PublishLocked();
  return s;
}

Status QueryEngine::IndexFeatureLocked(RowId image_id, const std::string& kind,
                                       const ml::FeatureVector& feature) {
  if (feature.empty()) return Status::InvalidArgument("empty feature");
  auto lsh_it = lsh_.find(kind);
  if (lsh_it == lsh_.end()) {
    index::LshIndex::Options lsh_options;
    lsh_options.pool = pool_;
    lsh_it = lsh_.emplace(kind, std::make_shared<index::LshIndex>(
                                    feature.size(), lsh_options))
                 .first;
    // The hybrid spatial-visual tree shares the same feature space.
    visual_rtree_.emplace(
        kind, std::make_shared<index::VisualRTree>(feature.size()));
  }
  TVDP_RETURN_IF_ERROR(lsh_it->second->Insert(feature, image_id));
  dirty_feature_kinds_.insert(kind);

  // Fetch the image location for the hybrid tree.
  const Table* images = catalog_->GetTable(tables::kImages);
  TVDP_ASSIGN_OR_RETURN(Row img, images->Get(image_id));
  const storage::Schema& schema = images->schema();
  geo::GeoPoint loc{
      img[static_cast<size_t>(schema.ColumnIndex("lat"))].AsDouble(),
      img[static_cast<size_t>(schema.ColumnIndex("lon"))].AsDouble()};
  return visual_rtree_[kind]->Insert(loc, feature, image_id);
}

void QueryEngine::ResetIndexesLocked() {
  points_ = index::RTree();
  fovs_ = index::OrientedRTree(index::OrientedRTree::Options{16, pool_});
  temporal_ = index::TemporalIndex();
  keywords_ = index::InvertedIndex();
  lsh_.clear();
  visual_rtree_.clear();
  col_images_.Clear();
  col_annotations_.Clear();
  indexed_images_.store(0, std::memory_order_relaxed);
  all_dirty_ = true;
}

std::string QueryEngine::last_plan() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return last_plan_;
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRange(
    const geo::BoundingBox& box, const RequestContext* ctx) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return EvalSpatialRange(SnapshotPaths(*snap), box, ctx);
  }
  return WithReaderLock([&] { return SpatialRangeLocked(box, ctx); });
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRangeLocked(
    const geo::BoundingBox& box, const RequestContext* ctx) const {
  return EvalSpatialRange(PathsLocked(), box, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialKnn(
    const geo::GeoPoint& p, int k, const RequestContext* ctx) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return EvalSpatialKnn(SnapshotPaths(*snap), p, k, ctx);
  }
  return WithReaderLock([&] { return SpatialKnnLocked(p, k, ctx); });
}

Result<std::vector<QueryHit>> QueryEngine::SpatialKnnLocked(
    const geo::GeoPoint& p, int k, const RequestContext* ctx) const {
  return EvalSpatialKnn(PathsLocked(), p, k, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::VisibleAt(
    const geo::GeoPoint& p, const RequestContext* ctx) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return EvalVisibleAt(SnapshotPaths(*snap), p, ctx);
  }
  return WithReaderLock([&] { return VisibleAtLocked(p, ctx); });
}

Result<std::vector<QueryHit>> QueryEngine::VisibleAtLocked(
    const geo::GeoPoint& p, const RequestContext* ctx) const {
  return EvalVisibleAt(PathsLocked(), p, ctx);
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopK(
    const std::string& kind, const ml::FeatureVector& feature, int k,
    const RequestContext* ctx, const QueryBudget& budget) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return EvalVisualTopK(SnapshotPaths(*snap), kind, feature, k, ctx, budget);
  }
  return WithReaderLock(
      [&] { return VisualTopKLocked(kind, feature, k, ctx, budget); });
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopKLocked(
    const std::string& kind, const ml::FeatureVector& feature, int k,
    const RequestContext* ctx, const QueryBudget& budget) const {
  return EvalVisualTopK(PathsLocked(), kind, feature, k, ctx, budget);
}

Result<std::vector<QueryHit>> QueryEngine::VisualThreshold(
    const std::string& kind, const ml::FeatureVector& feature, double threshold,
    const RequestContext* ctx, const QueryBudget& budget) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return EvalVisualThreshold(SnapshotPaths(*snap), kind, feature, threshold,
                               ctx, budget);
  }
  return WithReaderLock([&] {
    return VisualThresholdLocked(kind, feature, threshold, ctx, budget);
  });
}

Result<std::vector<QueryHit>> QueryEngine::VisualThresholdLocked(
    const std::string& kind, const ml::FeatureVector& feature, double threshold,
    const RequestContext* ctx, const QueryBudget& budget) const {
  return EvalVisualThreshold(PathsLocked(), kind, feature, threshold, ctx,
                             budget);
}

Result<std::vector<QueryHit>> QueryEngine::Categorical(
    const CategoricalPredicate& pred) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return EvalCategorical(SnapshotPaths(*snap), pred);
  }
  return WithReaderLock([&] { return CategoricalLocked(pred); });
}

Result<std::vector<QueryHit>> QueryEngine::CategoricalLocked(
    const CategoricalPredicate& pred) const {
  return EvalCategorical(PathsLocked(), pred);
}

Result<std::vector<QueryHit>> QueryEngine::Textual(
    const TextualPredicate& pred) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return EvalTextual(SnapshotPaths(*snap), pred);
  }
  return WithReaderLock([&] { return TextualLocked(pred); });
}

Result<std::vector<QueryHit>> QueryEngine::TextualLocked(
    const TextualPredicate& pred) const {
  return EvalTextual(PathsLocked(), pred);
}

Result<std::vector<QueryHit>> QueryEngine::Temporal(Timestamp begin,
                                                    Timestamp end) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return EvalTemporal(SnapshotPaths(*snap), begin, end);
  }
  return WithReaderLock([&] { return TemporalLocked(begin, end); });
}

Result<std::vector<QueryHit>> QueryEngine::TemporalLocked(Timestamp begin,
                                                          Timestamp end) const {
  return EvalTemporal(PathsLocked(), begin, end);
}

Result<std::vector<QueryHit>> QueryEngine::SpatialVisualTopKOn(
    const std::map<std::string, std::shared_ptr<index::VisualRTree>>& trees,
    const geo::GeoPoint& p, const std::string& kind,
    const ml::FeatureVector& feature, int k, double alpha) {
  auto it = trees.find(kind);
  if (it == trees.end()) {
    return Status::NotFound("no hybrid index for kind: " + kind);
  }
  std::vector<QueryHit> out;
  for (const auto& hit : it->second->TopK(p, feature, k, alpha)) {
    out.push_back(QueryHit{hit.id, hit.visual, hit.score});
  }
  DedupHitsById(&out);
  return out;
}

Result<std::vector<QueryHit>> QueryEngine::SpatialVisualTopK(
    const geo::GeoPoint& p, const std::string& kind,
    const ml::FeatureVector& feature, int k, double alpha) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return SpatialVisualTopKOn(snap->visual_rtree, p, kind, feature, k, alpha);
  }
  return WithReaderLock([&] {
    return SpatialVisualTopKOn(visual_rtree_, p, kind, feature, k, alpha);
  });
}

Result<std::vector<QueryHit>> QueryEngine::Execute(
    const HybridQuery& q, const RequestContext* ctx, const QueryBudget& budget,
    QueryPlan* plan_out, const PlannerOptions& options) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return ExecuteOnPaths(SnapshotPaths(*snap), q, ctx, budget, plan_out,
                          options);
  }
  return WithReaderLock(
      [&] { return ExecuteLocked(q, ctx, budget, plan_out, options); });
}

Result<std::vector<QueryHit>> QueryEngine::ExecuteLocked(
    const HybridQuery& q, const RequestContext* ctx, const QueryBudget& budget,
    QueryPlan* plan_out, const PlannerOptions& options) const {
  return ExecuteOnPaths(PathsLocked(), q, ctx, budget, plan_out, options);
}

Result<std::vector<QueryHit>> QueryEngine::ExecuteOnPaths(
    const AccessPaths& paths, const HybridQuery& q, const RequestContext* ctx,
    const QueryBudget& budget, QueryPlan* plan_out,
    const PlannerOptions& options) const {
  TVDP_ASSIGN_OR_RETURN(QueryPlan plan,
                        Planner::BuildPlan(paths, q, budget, options));
  // An already-failed context rejects before any index is probed — and
  // before the plan becomes observable through last_plan().
  if (ctx) TVDP_RETURN_IF_ERROR(ctx->Check());
  Executor::PlanReadyFn publish = [this](const QueryPlan& p) {
    std::lock_guard<std::mutex> plan_lock(plan_mutex_);
    last_plan_ = p.LegacySummary();
  };
  auto result = Executor::Run(paths, q, &plan, ctx, publish);
  if (plan_out) *plan_out = std::move(plan);
  return result;
}

Result<QueryPlan> QueryEngine::Explain(const HybridQuery& q,
                                       const QueryBudget& budget,
                                       const PlannerOptions& options) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return Planner::BuildPlan(SnapshotPaths(*snap), q, budget, options);
  }
  return WithReaderLock(
      [&] { return Planner::BuildPlan(PathsLocked(), q, budget, options); });
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRangeScanOn(
    const Table* images, const Table* fov_table, const geo::BoundingBox& box) {
  if (!images || !fov_table) {
    return Status::FailedPrecondition("schema tables missing");
  }
  const storage::Schema& is = images->schema();
  const storage::Schema& fs = fov_table->schema();
  size_t lat_idx = static_cast<size_t>(is.ColumnIndex("lat"));
  size_t lon_idx = static_cast<size_t>(is.ColumnIndex("lon"));

  std::set<index::RecordId> ids;
  // Camera-point membership.
  images->ForEach([&](const Row& r) {
    geo::GeoPoint loc{r[lat_idx].AsDouble(), r[lon_idx].AsDouble()};
    if (box.Contains(loc)) ids.insert(r[0].AsInt64());
    return true;
  });
  // FOV intersection (requires the image row for the camera location).
  Status status = Status::OK();
  fov_table->ForEach([&](const Row& r) {
    int64_t image_id =
        r[static_cast<size_t>(fs.ColumnIndex("image_id"))].AsInt64();
    auto img = images->Get(image_id);
    if (!img.ok()) {
      status = img.status();
      return false;
    }
    geo::GeoPoint loc{img->at(lat_idx).AsDouble(),
                      img->at(lon_idx).AsDouble()};
    auto fov = geo::FieldOfView::Make(
        loc, r[static_cast<size_t>(fs.ColumnIndex("direction_deg"))].AsDouble(),
        r[static_cast<size_t>(fs.ColumnIndex("angle_deg"))].AsDouble(),
        r[static_cast<size_t>(fs.ColumnIndex("radius_m"))].AsDouble());
    if (fov.ok() && fov->IntersectsBBox(box)) ids.insert(image_id);
    return true;
  });
  TVDP_RETURN_IF_ERROR(status);
  std::vector<QueryHit> out;
  out.reserve(ids.size());
  for (index::RecordId id : ids) out.push_back(QueryHit{id, 0, 0});
  return out;
}

Result<std::vector<QueryHit>> QueryEngine::SpatialRangeScan(
    const geo::BoundingBox& box) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return SpatialRangeScanOn(snap->FindTable(tables::kImages),
                              snap->FindTable(tables::kImageFov), box);
  }
  return WithReaderLock([&] {
    return SpatialRangeScanOn(catalog_->GetTable(tables::kImages),
                              catalog_->GetTable(tables::kImageFov), box);
  });
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopKScanOn(
    const Table* feats, const std::string& kind,
    const ml::FeatureVector& feature, int k) {
  if (!feats) return Status::FailedPrecondition("features table missing");
  const storage::Schema& fs = feats->schema();
  size_t kind_idx = static_cast<size_t>(fs.ColumnIndex("feature_kind"));
  size_t feat_idx = static_cast<size_t>(fs.ColumnIndex("feature"));
  size_t img_idx = static_cast<size_t>(fs.ColumnIndex("image_id"));
  std::vector<QueryHit> all;
  feats->ForEach([&](const Row& r) {
    if (r[kind_idx].AsString() == kind) {
      double d = ml::L2Distance(r[feat_idx].AsFloatVector(), feature);
      all.push_back(QueryHit{r[img_idx].AsInt64(), d, d});
    }
    return true;
  });
  std::sort(all.begin(), all.end(), [](const QueryHit& a, const QueryHit& b) {
    if (a.visual_distance != b.visual_distance) {
      return a.visual_distance < b.visual_distance;
    }
    return a.image_id < b.image_id;
  });
  if (all.size() > static_cast<size_t>(std::max(k, 0))) {
    all.resize(static_cast<size_t>(std::max(k, 0)));
  }
  return all;
}

Result<std::vector<QueryHit>> QueryEngine::VisualTopKScan(
    const std::string& kind, const ml::FeatureVector& feature, int k) const {
  if (SnapshotRef snap = PinIfSnapshotReads()) {
    return VisualTopKScanOn(snap->FindTable(tables::kImageVisualFeatures),
                            kind, feature, k);
  }
  return WithReaderLock([&] {
    return VisualTopKScanOn(catalog_->GetTable(tables::kImageVisualFeatures),
                            kind, feature, k);
  });
}

}  // namespace tvdp::query
