#include "query/plan.h"

#include "common/strings.h"

namespace tvdp::query {

Json PlanNode::ToJson() const {
  Json out = Json::MakeObject();
  out["op"] = op;
  if (!detail.empty()) out["detail"] = detail;
  if (estimated_rows >= 0) out["estimated_rows"] = estimated_rows;
  if (actual_rows >= 0) out["actual_rows"] = actual_rows;
  if (!children.empty()) {
    Json kids = Json::MakeArray();
    for (const PlanNode& c : children) kids.Append(c.ToJson());
    out["children"] = std::move(kids);
  }
  return out;
}

const char* ConjunctStrategyName(ConjunctPlan::Strategy s) {
  switch (s) {
    case ConjunctPlan::Strategy::kSeedProbe:
      return "seed-probe";
    case ConjunctPlan::Strategy::kMaterializeProbe:
      return "materialize-probe";
    case ConjunctPlan::Strategy::kVerifyScan:
      return "verify-scan";
  }
  return "unknown";
}

std::string QueryPlan::LegacySummary() const {
  std::string verify_list;
  // The legacy string lists verify conjuncts in declaration order
  // (spatial, visual, categorical, textual, temporal), not evaluation
  // order — callers grep it, so the format is frozen.
  static const char* kFamilies[] = {"spatial", "visual", "categorical",
                                    "textual", "temporal"};
  for (const char* f : kFamilies) {
    if (seed_family == f) continue;
    bool present = false;
    for (const ConjunctPlan& c : conjuncts) {
      if (c.family == f) present = true;
    }
    if (present) verify_list += (verify_list.empty() ? "" : " ") + std::string(f);
  }
  std::string out = StrFormat("seed=%s(%zu) verify=[%s]", seed_family.c_str(),
                              seed_candidates, verify_list.c_str());
  if (capped_from > 0) {
    out += StrFormat(" cap=%zu/%zu", seed_candidates, capped_from);
  }
  if (degraded) out += " degraded";
  return out;
}

Json QueryPlan::ToJson() const {
  Json out = Json::MakeObject();
  out["seed"] = seed_family;
  out["degraded"] = degraded;
  Json b = Json::MakeObject();
  b["lsh_probes"] = budget.lsh_probes;
  b["max_candidates"] = budget.max_candidates;
  out["budget"] = std::move(b);
  Json cj = Json::MakeArray();
  for (const ConjunctPlan& c : conjuncts) {
    Json one = Json::MakeObject();
    one["family"] = c.family;
    one["strategy"] = std::string(ConjunctStrategyName(c.strategy));
    if (c.estimated_rows >= 0) one["estimated_rows"] = c.estimated_rows;
    cj.Append(std::move(one));
  }
  out["conjuncts"] = std::move(cj);
  out["operators"] = root.ToJson();
  if (executed) out["summary"] = LegacySummary();
  return out;
}

}  // namespace tvdp::query
