#include "query/localize.h"

#include <cmath>

namespace tvdp::query {

Result<Localization> SceneLocalizer::Localize(const std::string& feature_kind,
                                              const ml::FeatureVector& feature,
                                              int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  TVDP_ASSIGN_OR_RETURN(std::vector<QueryHit> hits,
                        engine_->VisualTopK(feature_kind, feature, k));
  if (hits.empty()) {
    return Status::FailedPrecondition(
        "no visually similar tagged images available");
  }

  const storage::Table* images =
      catalog_->GetTable(storage::tables::kImages);
  if (!images) return Status::FailedPrecondition("images table missing");
  const storage::Schema& s = images->schema();
  size_t lat_idx = static_cast<size_t>(s.ColumnIndex("lat"));
  size_t lon_idx = static_cast<size_t>(s.ColumnIndex("lon"));

  // Similarity-weighted centroid of the neighbours' camera locations.
  double total_weight = 0, lat = 0, lon = 0;
  std::vector<std::pair<geo::GeoPoint, double>> weighted;
  for (const QueryHit& hit : hits) {
    TVDP_ASSIGN_OR_RETURN(storage::Row row, images->Get(hit.image_id));
    geo::GeoPoint p{row[lat_idx].AsDouble(), row[lon_idx].AsDouble()};
    double w = 1.0 / (hit.visual_distance + 1e-3);
    weighted.emplace_back(p, w);
    total_weight += w;
    lat += p.lat * w;
    lon += p.lon * w;
  }
  Localization out;
  out.estimate = geo::GeoPoint{lat / total_weight, lon / total_weight};
  out.support = static_cast<int>(weighted.size());
  double spread = 0;
  for (const auto& [p, w] : weighted) {
    spread += w * geo::HaversineMeters(p, out.estimate);
  }
  out.spread_m = spread / total_weight;
  return out;
}

}  // namespace tvdp::query
