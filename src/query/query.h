#ifndef TVDP_QUERY_QUERY_H_
#define TVDP_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/timeutil.h"
#include "geo/bbox.h"
#include "geo/geo_point.h"
#include "ml/dataset.h"

namespace tvdp::query {

/// Spatial predicate: a range box, a k-nearest-neighbour request, or a
/// point-visibility request ("images that actually show this point",
/// evaluated against FOVs).
struct SpatialPredicate {
  enum class Kind { kRange, kKnn, kVisibleAt };
  Kind kind = Kind::kRange;
  geo::BoundingBox range;   // kRange
  geo::GeoPoint point;      // kKnn / kVisibleAt
  int k = 10;               // kKnn
};

/// Visual predicate: top-k by feature similarity or a distance threshold.
struct VisualPredicate {
  enum class Kind { kTopK, kThreshold };
  Kind kind = Kind::kTopK;
  std::string feature_kind = "cnn";
  ml::FeatureVector feature;
  int k = 10;
  double threshold = 0.5;
};

/// Categorical predicate: annotation label within a classification task.
struct CategoricalPredicate {
  std::string classification;  ///< e.g. "street_cleanliness"
  std::string label;           ///< e.g. "encampment"
  double min_confidence = 0.0;
  /// "manual", "machine", or "" for either.
  std::string source;
};

/// Textual predicate over manual keywords.
struct TextualPredicate {
  enum class Mode { kAnd, kOr };
  Mode mode = Mode::kAnd;
  std::vector<std::string> keywords;
};

/// Temporal predicate over the capture timestamp.
struct TemporalPredicate {
  Timestamp begin = 0;
  Timestamp end = 0;
};

/// A hybrid query: the conjunction of any subset of the five predicate
/// families (paper Sec. IV-C: "a combination of different query types,
/// e.g., spatial-visual query, and spatial-textual query"). Ranking:
/// when a visual top-k predicate is present the result is ordered by
/// visual distance; otherwise by record id.
struct HybridQuery {
  std::optional<SpatialPredicate> spatial;
  std::optional<VisualPredicate> visual;
  std::optional<CategoricalPredicate> categorical;
  std::optional<TextualPredicate> textual;
  std::optional<TemporalPredicate> temporal;
  /// Cap on returned results; 0 = unlimited.
  int limit = 0;
};

/// Per-query resource budget. The default-constructed budget means "no
/// override": the engine uses index-configured probe counts and carries
/// every seed candidate into verification. Degraded plans (admission
/// controller under overload) substitute a cheaper budget — fewer LSH
/// probes and a hard cap on hybrid candidates — trading recall for
/// latency.
struct QueryBudget {
  /// Multi-probe LSH budget per table; -1 = the index default.
  int lsh_probes = -1;
  /// Cap on seed candidates carried into hybrid verification (and on the
  /// visual over-fetch); 0 = uncapped.
  size_t max_candidates = 0;

  /// True when any knob deviates from the full-fidelity plan.
  bool degraded() const { return lsh_probes >= 0 || max_candidates > 0; }
};

/// One result row.
///
/// Score convention (uniform across every operator family): ascending,
/// lower is better, 0 means "boolean membership, no ranking signal".
///  - SpatialKnn: exact geodesic distance in meters.
///  - VisualTopK / VisualThreshold: L2 feature distance.
///  - SpatialVisualTopK: the alpha-blended spatial-visual score.
///  - Hybrid Execute: L2 feature distance when a visual predicate
///    participated, else 0.
///  - SpatialRange / VisibleAt / Categorical / Textual / Temporal: 0.
/// Because all families agree on "ascending, lower is better", hits from
/// different operators can be merged and re-ranked without per-family
/// special cases.
struct QueryHit {
  int64_t image_id = 0;
  /// Visual distance when a visual predicate participated, else 0.
  /// (Kept alongside `score` for callers that specifically want the
  /// visual component of a blended score.)
  double visual_distance = 0;
  /// The unified ranking score (see convention above).
  double score = 0;
};

/// Human-readable summary of which predicates a query carries, e.g.
/// "spatial+visual" — used in logs and plan explanations.
std::string DescribeQuery(const HybridQuery& q);

}  // namespace tvdp::query

#endif  // TVDP_QUERY_QUERY_H_
