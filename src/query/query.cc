#include "query/query.h"

namespace tvdp::query {

std::string DescribeQuery(const HybridQuery& q) {
  std::string out;
  auto add = [&](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (q.spatial) add("spatial");
  if (q.visual) add("visual");
  if (q.categorical) add("categorical");
  if (q.textual) add("textual");
  if (q.temporal) add("temporal");
  if (out.empty()) out = "empty";
  return out;
}

}  // namespace tvdp::query
