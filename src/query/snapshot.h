#ifndef TVDP_QUERY_SNAPSHOT_H_
#define TVDP_QUERY_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "index/inverted_index.h"
#include "index/lsh.h"
#include "index/oriented_rtree.h"
#include "index/rtree.h"
#include "index/temporal_index.h"
#include "index/visual_rtree.h"
#include "storage/columnar.h"
#include "storage/table.h"

namespace tvdp::query {

/// classification name -> (classification row id, label -> type row id).
/// Same shape as the platform facade's registry cache; snapshotted so
/// lock-free readers can resolve labels without touching the live map.
using ClassMap =
    std::map<std::string, std::pair<int64_t, std::map<std::string, int64_t>>>;

/// One immutable published version of the engine's queryable state: the
/// catalog tables, the columnar hot columns, and every index, all frozen
/// at a single commit boundary. Snapshots are published by an atomic
/// shared_ptr root swap; readers pin one at query start and see a stable
/// version for the query's whole lifetime while writers race ahead.
///
/// Copy-on-write: components untouched by a commit are shared (the same
/// shared_ptr) with the previous version, so consecutive snapshots share
/// almost everything structurally. Reclamation is refcount-driven — the
/// last reader to release a retired version frees exactly the components
/// no newer version shares.
struct EngineSnapshot {
  EngineSnapshot() = default;
  // Copying would double-count the live-version gauge in the destructor.
  EngineSnapshot(const EngineSnapshot&) = delete;
  EngineSnapshot& operator=(const EngineSnapshot&) = delete;

  ~EngineSnapshot() {
    if (live_gauge) live_gauge->fetch_sub(1, std::memory_order_relaxed);
  }

  /// Monotonic commit version (1 = initial publish).
  uint64_t version = 0;

  /// Immutable per-version view of the catalog tables.
  storage::TableSet tables;

  /// Columnar hot columns (id, lat/lon, timestamp; annotation category).
  std::shared_ptr<const storage::ColumnarImages> col_images;
  std::shared_ptr<const storage::ColumnarAnnotations> col_annotations;

  /// Frozen indexes. Non-const map values for lsh/visual_rtree so the
  /// engine's live maps and these share one AccessPaths type; immutability
  /// is by convention (queries only call const methods).
  std::shared_ptr<const index::RTree> points;
  std::shared_ptr<const index::OrientedRTree> fovs;
  std::shared_ptr<const index::TemporalIndex> temporal;
  std::shared_ptr<const index::InvertedIndex> keywords;
  std::map<std::string, std::shared_ptr<index::LshIndex>> lsh;
  std::map<std::string, std::shared_ptr<index::VisualRTree>> visual_rtree;

  /// Classification registry at this version.
  std::shared_ptr<const ClassMap> classifications;

  size_t indexed_images = 0;

  /// Commit accounting (bytes of snapshot components copied by the commit
  /// that published this version vs. shared with its predecessor).
  size_t bytes_copied = 0;
  size_t bytes_shared = 0;

  /// Decremented on destruction: (gauge - 1) = retired versions still
  /// awaiting reclamation by a pinned reader.
  std::shared_ptr<std::atomic<int64_t>> live_gauge;

  const storage::Table* FindTable(const std::string& name) const {
    auto it = tables.find(name);
    return it == tables.end() ? nullptr : it->second.get();
  }
};

/// RAII pin on a snapshot: holds the shared_ptr (keeping every component
/// of that version alive) and counts itself in the engine's pinned-reader
/// gauge. Move-only; cheap (two atomic ops) — taken per query.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(std::shared_ptr<const EngineSnapshot> snap,
              std::atomic<int64_t>* pinned)
      : snap_(std::move(snap)), pinned_(snap_ ? pinned : nullptr) {
    if (pinned_) pinned_->fetch_add(1, std::memory_order_relaxed);
  }
  ~SnapshotRef() { Release(); }

  SnapshotRef(SnapshotRef&& other) noexcept
      : snap_(std::move(other.snap_)), pinned_(other.pinned_) {
    other.pinned_ = nullptr;
    other.snap_.reset();
  }
  SnapshotRef& operator=(SnapshotRef&& other) noexcept {
    if (this != &other) {
      Release();
      snap_ = std::move(other.snap_);
      pinned_ = other.pinned_;
      other.pinned_ = nullptr;
      other.snap_.reset();
    }
    return *this;
  }
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;

  void Release() {
    if (pinned_) pinned_->fetch_sub(1, std::memory_order_relaxed);
    pinned_ = nullptr;
    snap_.reset();
  }

  const EngineSnapshot& operator*() const { return *snap_; }
  const EngineSnapshot* operator->() const { return snap_.get(); }
  const EngineSnapshot* get() const { return snap_.get(); }
  explicit operator bool() const { return snap_ != nullptr; }

 private:
  std::shared_ptr<const EngineSnapshot> snap_;
  std::atomic<int64_t>* pinned_ = nullptr;
};

/// Atomic root pointer for the published snapshot.
///
/// Not std::atomic<std::shared_ptr<...>>: libstdc++ guards its pointer
/// with an embedded spinlock whose load() path releases the gate with
/// relaxed ordering (_Sp_atomic::load in bits/shared_ptr_atomic.h), so
/// ThreadSanitizer cannot pair a reader's pointer read with the writer's
/// later swap and reports every pin/publish as a race. This box is the
/// same technique — std::atomic<shared_ptr> is internally lock-based too
/// — with explicit acquire/release ordering on the gate, which TSan
/// models exactly. The critical section is a pointer copy plus refcount
/// bump, so a saturating read load cannot meaningfully delay the
/// (already fully serialized) writer's publish.
class AtomicSnapshotPtr {
 public:
  std::shared_ptr<const EngineSnapshot> load() const {
    Lock();
    std::shared_ptr<const EngineSnapshot> out = ptr_;
    Unlock();
    return out;
  }

  void store(std::shared_ptr<const EngineSnapshot> next) {
    Lock();
    ptr_.swap(next);
    Unlock();
    // `next` now holds the retired version; if this was its last owner
    // the whole component graph destructs here, outside the gate.
  }

 private:
  void Lock() const {
    int expected = 0;
    while (!gate_.compare_exchange_weak(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      expected = 0;
    }
  }
  void Unlock() const { gate_.store(0, std::memory_order_release); }

  std::shared_ptr<const EngineSnapshot> ptr_;
  mutable std::atomic<int> gate_{0};
};

}  // namespace tvdp::query

#endif  // TVDP_QUERY_SNAPSHOT_H_
